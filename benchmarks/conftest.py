"""Shared fixtures for the experiment benches.

Each ``bench_eN_*.py`` regenerates one experiment from DESIGN.md's
per-experiment index and prints its table (the paper analogue), while the
``benchmark`` fixture times the experiment's core kernel.
Run: ``pytest benchmarks/ --benchmark-only -s`` (``-s`` to see the tables).
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))


def print_experiment(title: str, table: str) -> None:
    """Uniform experiment output block."""
    bar = "=" * max(len(title), 40)
    print(f"\n{bar}\n{title}\n{bar}\n{table}\n")
