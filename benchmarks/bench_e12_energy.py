"""E12 — Energy / data-motion breakdown (claim C8).

Joules per training step, decomposed into compute / on-node memory /
network / static, across parallel plans and precisions.  Expected shape:
data motion (memory + network) rivals or exceeds compute; low precision
cuts both compute and motion energy; poor-scaling plans burn static
energy across idle nodes.
"""

import numpy as np
import pytest

from conftest import print_experiment
from repro.hpc import (
    DataParallel,
    HybridParallel,
    ModelParallel,
    SimCluster,
    SingleNode,
    energy_per_sample,
    mlp_profile,
    step_energy,
)
from repro.utils import format_table


def test_e12_energy_breakdown(benchmark):
    profile = mlp_profile([8192] * 6, batch_size=2048, name="fc6")
    cluster64 = SimCluster.build("summit_era", 64, "fat_tree")
    cluster1 = SimCluster.build("summit_era", 1, "ring")

    cases = [
        ("single fp32", SingleNode(), cluster1, "fp32"),
        ("single fp16", SingleNode(), cluster1, "fp16"),
        ("data(64) fp32", DataParallel(64), cluster64, "fp32"),
        ("data(64) fp16", DataParallel(64), cluster64, "fp16"),
        ("model(64) fp16", ModelParallel(64), cluster64, "fp16"),
        ("hybrid(8x8) fp16", HybridParallel(8, 8, intra_bandwidth=150e9), cluster64, "fp16"),
    ]
    rows = []
    results = {}
    for name, plan, cluster, precision in cases:
        e = step_energy(plan, profile, cluster, precision)
        eps = energy_per_sample(plan, profile, cluster, precision)
        results[name] = e
        rows.append([
            name, e.compute, e.memory, e.network, e.static, e.total,
            (e.memory + e.network) / max(e.compute, 1e-12), eps,
        ])
    print_experiment(
        "E12  Energy per training step (joules) and data-motion/compute ratio",
        format_table(
            ["case", "compute", "memory", "network", "static", "total", "motion/compute", "J/sample"],
            rows,
        ),
    )

    # fp16 halves-or-better the compute energy of fp32.
    assert results["single fp16"].compute < results["single fp32"].compute * 0.6
    # At 64-node data parallelism, network energy appears and data motion
    # (memory+network) rivals compute (claim C8's motivation).
    dp = results["data(64) fp16"]
    assert dp.network > 0
    assert (dp.memory + dp.network) > 0.3 * dp.compute
    # Static energy at 64 poorly-scaled nodes dwarfs the single-node run's.
    assert results["data(64) fp32"].static > results["single fp32"].static

    benchmark(lambda: step_energy(DataParallel(64), profile, cluster64, "fp16"))
