"""E3 — Data vs model vs hybrid parallelism (claims C9, C11).

A model that exceeds single-node memory forces the plan choice the
keynote describes: pure DP is infeasible, pure MP pays activation
traffic, hybrid (model groups + data parallel across groups) wins — and
its advantage grows with intra-group fabric bandwidth.
"""

import numpy as np
import pytest

from conftest import print_experiment
from repro.hpc import (
    DataParallel,
    HybridParallel,
    ModelParallel,
    SimCluster,
    mlp_profile,
)
from repro.utils import format_table

GBPS = 1e9


def test_e3_plan_comparison(benchmark):
    # ~2.7B params: > 16 GB node memory even at fp16 with optimizer state.
    profile = mlp_profile([16384] * 11, batch_size=2048, name="big_fc")
    n_nodes = 64
    cluster = SimCluster.build("summit_era", n_nodes, "fat_tree")

    nvlink = 150 * GBPS  # Summit-class intra-group fabric
    plans = {
        "data(64)": DataParallel(64),
        "model(64)": ModelParallel(64),
        "hybrid(8x8) thin-fabric": HybridParallel(group_size=8, n_groups=8),
        "hybrid(8x8) nvlink": HybridParallel(group_size=8, n_groups=8, intra_bandwidth=nvlink),
        "hybrid(4x16) nvlink": HybridParallel(group_size=4, n_groups=16, intra_bandwidth=nvlink),
        "hybrid(16x4) nvlink": HybridParallel(group_size=16, n_groups=4, intra_bandwidth=nvlink),
    }
    rows = []
    results = {}
    for name, plan in plans.items():
        feasible = plan.feasible(profile, cluster, "fp16")
        t = plan.step_time(profile, cluster, "fp16") if feasible else float("nan")
        mem = plan.memory_per_node(profile, "fp16") / 1e9
        results[name] = (feasible, t)
        rows.append([name, "yes" if feasible else "NO", mem, t * 1e3 if feasible else float("nan")])
    print_experiment(
        "E3a Plan comparison, 2.7B-param FC model, 64 nodes (fp16)",
        format_table(["plan", "fits", "GB/node", "step ms"], rows),
    )

    # DP cannot hold the model; sharded plans can (claim C9's premise).
    assert not results["data(64)"][0]
    assert results["model(64)"][0]
    assert results["hybrid(8x8) nvlink"][0]
    # The best hybrid geometry with a fat intra-group fabric beats pure
    # model parallelism (claim C9: "modest scale groups of processors") —
    # and for a fixed geometry, the fat fabric is what makes the difference.
    best_hybrid = min(
        results["hybrid(8x8) nvlink"][1],
        results["hybrid(4x16) nvlink"][1],
        results["hybrid(16x4) nvlink"][1],
    )
    assert best_hybrid < results["model(64)"][1]
    assert results["hybrid(8x8) nvlink"][1] < results["hybrid(8x8) thin-fabric"][1]

    # E3b: intra-group fabric bandwidth sweep (the keynote's "high-bandwidth
    # communication fabric between modest scale groups").
    rows = []
    times = []
    for bw in (12.5, 25, 100, 300):
        plan = HybridParallel(group_size=8, n_groups=8, intra_bandwidth=bw * GBPS)
        t = plan.step_time(profile, cluster, "fp16")
        times.append(t)
        rows.append([f"{bw:g} GB/s", t * 1e3, times[0] / t])
    print_experiment(
        "E3b Hybrid(8x8) step time vs intra-group fabric bandwidth",
        format_table(["intra-group BW", "step ms", "speedup vs 12.5"], rows),
    )
    assert times[-1] < times[0]  # more fabric bandwidth -> faster steps
    assert times == sorted(times, reverse=True)

    benchmark(lambda: HybridParallel(8, 8).step_time(profile, cluster, "fp16"))
