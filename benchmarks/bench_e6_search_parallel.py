"""E6 — Search parallelism / time-to-accuracy (claims C11, C15).

Runs the same search with 1..256 simulated workers on the summit-era
cluster, with per-trial costs from the architecture model (wider configs
genuinely cost more).  Expected shape: wall-clock time-to-target drops
with workers but saturates; async beats sync because trial durations vary.
"""

import numpy as np
import pytest

from conftest import print_experiment
from repro.hpc import SimCluster
from repro.hpo import RandomSearch, SurrogateLandscape, candle_mlp_space, run_parallel
from repro.utils import format_table
from repro.workflow import simulated_trial_cost

N_TRIALS = 256
TARGET = 1.55  # surrogate loss target (random search reaches it within 256 trials)


def test_e6_search_parallelism(benchmark):
    space = candle_mlp_space()
    cluster = SimCluster.build("summit_era", 256)
    cost = simulated_trial_cost("p1b2", cluster, samples_per_epoch=50_000, base_epochs=10)

    rows = []
    results = {}
    for workers in (1, 4, 16, 64, 256):
        for sync in (False, True):
            land = SurrogateLandscape(space, noise=0.01, seed=2)
            strat = RandomSearch(space, seed=0, default_budget=27)
            log = run_parallel(strat, land, N_TRIALS, workers, cost, sync=sync)
            wall = max(t.sim_time for t in log.trials)
            ttt = log.time_to_value(TARGET)
            results[(workers, sync)] = (wall, ttt)
            rows.append([
                workers, "sync" if sync else "async", wall,
                ttt if ttt is not None else float("nan"), log.best_value(),
            ])
    print_experiment(
        f"E6  Search parallelism: wall-clock and time-to-target (loss <= {TARGET}), {N_TRIALS} trials",
        format_table(["workers", "mode", "wall s", "time-to-target s", "best"], rows),
    )

    # More workers -> shorter campaigns (both modes).
    walls_async = [results[(w, False)][0] for w in (1, 4, 16, 64, 256)]
    assert walls_async == sorted(walls_async, reverse=True)
    # Async never slower than sync at every width.
    for w in (4, 16, 64, 256):
        assert results[(w, False)][0] <= results[(w, True)][0] + 1e-9
    # Diminishing returns: 64 -> 256 gains less than 4x.
    assert walls_async[3] / walls_async[4] < 4.0

    land = SurrogateLandscape(space, noise=0.01, seed=2)
    benchmark(lambda: run_parallel(RandomSearch(space, seed=1), land, 64, 16, cost))
