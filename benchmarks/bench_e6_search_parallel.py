"""E6 — Search parallelism / time-to-accuracy (claims C11, C15).

Runs the same search with 1..256 simulated workers on the summit-era
cluster, with per-trial costs from the architecture model (wider configs
genuinely cost more).  Expected shape: wall-clock time-to-target drops
with workers but saturates; async beats sync because trial durations vary.
"""

import numpy as np
import pytest

from conftest import print_experiment
from repro.hpc import SimCluster
from repro.hpo import RandomSearch, SurrogateLandscape, candle_mlp_space, run_parallel
from repro.utils import format_table
from repro.workflow import simulated_trial_cost

N_TRIALS = 256
TARGET = 1.55  # surrogate loss target (random search reaches it within 256 trials)


def test_e6_search_parallelism(benchmark):
    space = candle_mlp_space()
    cluster = SimCluster.build("summit_era", 256)
    cost = simulated_trial_cost("p1b2", cluster, samples_per_epoch=50_000, base_epochs=10)

    rows = []
    results = {}
    for workers in (1, 4, 16, 64, 256):
        for sync in (False, True):
            land = SurrogateLandscape(space, noise=0.01, seed=2)
            strat = RandomSearch(space, seed=0, default_budget=27)
            log = run_parallel(strat, land, N_TRIALS, workers, cost, sync=sync)
            wall = max(t.sim_time for t in log.trials)
            ttt = log.time_to_value(TARGET)
            results[(workers, sync)] = (wall, ttt)
            rows.append([
                workers, "sync" if sync else "async", wall,
                ttt if ttt is not None else float("nan"), log.best_value(),
            ])
    print_experiment(
        f"E6  Search parallelism: wall-clock and time-to-target (loss <= {TARGET}), {N_TRIALS} trials",
        format_table(["workers", "mode", "wall s", "time-to-target s", "best"], rows),
    )

    # More workers -> shorter campaigns (both modes).
    walls_async = [results[(w, False)][0] for w in (1, 4, 16, 64, 256)]
    assert walls_async == sorted(walls_async, reverse=True)
    # Async never slower than sync at every width.
    for w in (4, 16, 64, 256):
        assert results[(w, False)][0] <= results[(w, True)][0] + 1e-9
    # Diminishing returns: 64 -> 256 gains less than 4x.
    assert walls_async[3] / walls_async[4] < 4.0

    land = SurrogateLandscape(space, noise=0.01, seed=2)
    benchmark(lambda: run_parallel(RandomSearch(space, seed=1), land, 64, 16, cost))


# ----------------------------------------------------------------------
# E6b — the simulated claim, checked against real processes
# ----------------------------------------------------------------------
E6B_TRIALS = 8
E6B_STALL_S = 0.05


def _e6b_objective(config, budget):
    """Staging stall + tiny deterministic compute (real-clock trial)."""
    import time

    time.sleep(E6B_STALL_S)
    return float((config["lam"] - 1.0) ** 2)


def test_e6b_measured_speedup_matches_analytic_model():
    """E6's speedup curve is simulated; E6b reruns a small slice of it on
    *real* worker processes and checks the measurement against the
    analytic model ``wall(w) ~= ceil(N/w) * T_trial`` (stall-dominated
    trials overlap freely even on one core).  Loose band: process
    startup, scheduling jitter, and the serialized compute fraction all
    push the measurement below the model."""
    import time

    from repro.hpo import run_sequential
    from repro.hpo.space import Float, SearchSpace
    from repro.parallel import ParallelTrialExecutor

    space = SearchSpace({"lam": Float(1e-2, 1e2, log=True)})

    t0 = time.perf_counter()
    log_serial = run_sequential(RandomSearch(space, seed=3), _e6b_objective,
                                n_trials=E6B_TRIALS)
    serial_s = time.perf_counter() - t0
    t_trial = serial_s / E6B_TRIALS

    rows = []
    for workers in (2, 4):
        with ParallelTrialExecutor(workers) as ex:
            t0 = time.perf_counter()
            log_par = run_parallel(RandomSearch(space, seed=3), _e6b_objective,
                                   E6B_TRIALS, workers, executor=ex)
            measured_s = time.perf_counter() - t0
        model_s = -(-E6B_TRIALS // workers) * t_trial
        meas_speedup = serial_s / measured_s
        model_speedup = serial_s / model_s
        ratio = meas_speedup / model_speedup
        rows.append([workers, measured_s, model_s, meas_speedup,
                     model_speedup, ratio])
        assert log_par.best().config == log_serial.best().config
        # The model must predict the measurement within a loose 2x band.
        assert 0.5 <= ratio <= 1.3, (
            f"{workers} workers: measured {meas_speedup:.2f}x vs "
            f"model {model_speedup:.2f}x (ratio {ratio:.2f})"
        )

    print_experiment(
        f"E6b  Measured process-parallel HPO vs analytic model "
        f"({E6B_TRIALS} trials, {E6B_STALL_S * 1e3:.0f} ms stall/trial)",
        format_table(
            ["workers", "measured s", "model s", "meas x", "model x", "ratio"],
            rows,
        ),
    )
