"""E5 — Hyperparameter-search strategy shoot-out (claims C13, C14).

All strategies on the surrogate CANDLE landscape at equal *epoch* budget
(the keynote's "tens of thousands of model configurations" scale is
feasible because the surrogate is instant).  Expected shape:
random >= grid; multi-fidelity (halving/Hyperband) reaches good configs
with far fewer epochs; model-guided methods (GP, evolutionary,
generative-NN) find better optima at equal budget.
"""

import numpy as np
import pytest

from conftest import print_experiment
from repro.hpo import (
    STRATEGIES,
    RandomSearch,
    SurrogateLandscape,
    candle_mlp_space,
    run_sequential,
)
from repro.utils import format_table

EPOCH_BUDGET = 3000  # total training epochs each strategy may spend
FULL_FIDELITY = 27


def _run(name, space, seed):
    land = SurrogateLandscape(space, noise=0.01, seed=5)
    kwargs = {}
    if name in ("random", "grid", "evolutionary", "bayesian", "generative"):
        kwargs["default_budget"] = FULL_FIDELITY
    if name == "generative":
        kwargs.update(n_init=25, elite_frac=0.15, refit_every=15, latent_dim=4)
    if name == "bayesian":
        kwargs.update(n_candidates=256)
    if name == "grid":
        kwargs["points_per_dim"] = 3
    strat = STRATEGIES[name](space, seed=seed, **kwargs)
    # Manual ask/tell loop with a hard epoch-budget stop.
    spent, n_cfg, best = 0, 0, float("inf")
    stalls = 0
    while spent < EPOCH_BUDGET:
        sug = strat.ask()
        if sug is None:
            stalls += 1
            if strat.exhausted() or stalls > 5:
                break
            continue
        stalls = 0
        if spent + sug.budget > EPOCH_BUDGET:
            break
        value = land(sug.config, sug.budget)
        strat.tell(sug, value)
        spent += sug.budget
        n_cfg += 1
        if np.isfinite(value):
            best = min(best, value)
    return best, n_cfg, spent


def test_e5_strategy_comparison(benchmark):
    space = candle_mlp_space()
    land_ref = SurrogateLandscape(space, noise=0.0, seed=5)
    rows = []
    bests = {}
    for name in ("grid", "random", "successive_halving", "hyperband", "evolutionary", "bayesian", "generative"):
        per_seed = [_run(name, space, seed)[0] for seed in range(3)]
        best, n_cfg, spent = _run(name, space, 0)
        med = float(np.median(per_seed))
        bests[name] = med
        rows.append([name, med, min(per_seed), n_cfg, spent])
    rows.append(["(optimum)", land_ref.optimum(), land_ref.optimum(), "-", "-"])
    print_experiment(
        f"E5  Best validation loss at equal epoch budget ({EPOCH_BUDGET} epochs)",
        format_table(["strategy", "median best", "min best", "configs", "epochs"], rows),
    )

    # Claim C14's shape: every intelligent strategy is at least as good as
    # random search, and the best of them beats both naive searches by a
    # clear margin.
    smart_names = ("successive_halving", "hyperband", "evolutionary", "bayesian", "generative")
    for smart in smart_names:
        assert bests[smart] <= bests["random"] + 0.05, f"{smart} did not match random search"
    naive = min(bests["grid"], bests["random"])
    assert min(bests[s] for s in smart_names) < naive - 0.2

    land = SurrogateLandscape(space, seed=5)
    benchmark(lambda: run_sequential(RandomSearch(space, seed=0, default_budget=FULL_FIDELITY), land, 50))
