"""Distributed serving scale benchmark.

Two entry points over :func:`repro.serve.scale_bench.run_serving_scale_bench`:

* ``pytest benchmarks/bench_serving_scale.py --benchmark-only -s`` —
  smoke-mode run that prints the scale tables and gates on the
  robustness contract: accounting exactly balanced under seeded
  kill/hang/slow chaos (zero lost requests), completed responses
  bit-identical to ``Model.predict``, and at least one replica
  respawned under traffic.
* ``python benchmarks/bench_serving_scale.py [--smoke] [--out PATH]`` —
  the runner that emits ``BENCH_serving_scale.json``; exits nonzero if
  any gate fails.  Equivalent to ``python -m repro serve-scale-bench``.
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from conftest import print_experiment  # noqa: E402
from repro.serve.scale_bench import format_results, run_serving_scale_bench  # noqa: E402


def test_serving_scale_bench_smoke(benchmark):
    results = run_serving_scale_bench(smoke=True)
    print_experiment(
        "Distributed serving scale benchmark (smoke request counts)",
        format_results(results),
    )

    acc = results["acceptance"]
    assert acc["parity_ok"], "distributed outputs differ from Model.predict"
    assert acc["accounting_ok"], "request accounting does not balance"
    assert acc["chaos_zero_lost"], "chaos replay lost requests"
    assert acc["respawns_ok"], "no replica respawned under traffic"
    assert acc["speedup"] > 1.0, f"replication slower than single: {acc['speedup']:.2f}x"
    assert results["chaos"]["parity_checked"] > 0, "chaos parity audit checked nothing"

    benchmark(lambda: None)  # timing lives in the results table above


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small request counts (CI)")
    parser.add_argument("--requests", type=int, default=None, help="override request count")
    parser.add_argument("--replicas", type=int, default=None, help="override replica count")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent.parent / "BENCH_serving_scale.json",
        help="output JSON path (default: repo-root BENCH_serving_scale.json)",
    )
    args = parser.parse_args(argv)

    results = run_serving_scale_bench(
        smoke=args.smoke, seed=args.seed,
        n_replicas=args.replicas, n_requests=args.requests,
    )
    print(format_results(results))
    args.out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.out}")

    acc = results["acceptance"]
    failures = []
    if not acc["parity_ok"]:
        failures.append("distributed outputs differ from Model.predict")
    if not acc["accounting_ok"]:
        failures.append("request accounting does not balance")
    if not acc["chaos_zero_lost"]:
        failures.append("chaos replay lost requests")
    if not acc["respawns_ok"]:
        failures.append("no replica respawned under traffic")
    if args.smoke:
        # Shared CI runners make timings noisy: require only that
        # replication isn't slower; the committed full-mode run scores
        # the real >=1.5x gate.
        if acc["speedup"] <= 1.0:
            failures.append(f"replication slower than single: {acc['speedup']:.2f}x")
    elif not acc["speedup_ok"]:
        failures.append(
            f"distributed speedup {acc['speedup']:.2f}x below gate {acc['speedup_min']}x"
        )
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
