"""Parallel execution engine benchmark: speedup + parity gates.

Measures the three layers of :mod:`repro.parallel` end to end and
writes ``BENCH_parallel.json`` (schema:
``repro.obs.schema.BENCH_PARALLEL_SCHEMA``):

* **HPO trial throughput** — ``run_parallel(..., executor=
  ParallelTrialExecutor(w))`` vs ``run_sequential`` on the same
  objective; gate: >= 2.5x at 4 workers *and* the identical best
  config (the search must not change, only its wall clock).
* **Data-parallel training** — ``fit_data_parallel`` process backend
  vs the serial reference at world=2; gates: >= 1.5x step throughput
  and **bit-identical** weights (max |diff| == 0.0) on a stall-free
  parity run.
* **Prefetching** — :class:`PrefetchLoader` overlap of batch staging
  with compute (reported, not gated).

Workload honesty: each trial/step pays a *real, measured staging
stall* (``time.sleep`` standing in for the parallel-filesystem /
burst-buffer latency the keynote's CANDLE pipelines stage against)
plus NumPy compute.  On the single-core CI container the speedup
comes from overlapping those stalls across worker processes — which
is exactly the resource the engine parallelises there; on multi-core
hosts the compute overlaps too.  ``meta.cpus`` records how many cores
the run actually had.

Two entry points:

* ``pytest benchmarks/bench_parallel.py -s`` — smoke run gating parity.
* ``python benchmarks/bench_parallel.py [--smoke] [--out PATH]`` —
  emits ``BENCH_parallel.json``; exits nonzero on gate failure
  (smoke mode enforces only the parity gates; the speedup gates are
  scored on the full run that produces the committed artifact).
"""

import argparse
import functools
import json
import os
import sys
import time
from pathlib import Path

# BLAS pins must precede the first numpy import: an oversubscribed BLAS
# thread pool inside every worker is the classic way a parallel bench
# quietly measures contention instead of speedup.
for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "VECLIB_MAXIMUM_THREADS", "NUMEXPR_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import numpy as np  # noqa: E402

HPO_SPEEDUP_MIN = 2.5  # at 4 workers vs run_sequential
DDP_SPEEDUP_MIN = 1.5  # at world=2 vs the serial reference


# ----------------------------------------------------------------------
# HPO section: objective = staging stall + deterministic compute
# ----------------------------------------------------------------------
def hpo_objective(config, budget):
    """One trial: stage the shard (measured stall), then fit a ridge
    model on the shared-memory dataset.  Deterministic in config, so
    serial and process-parallel searches must agree exactly."""
    from repro.parallel import worker_data

    d = worker_data()
    time.sleep(float(d["stall"][0]))  # staging latency (shared-memory scalar)
    x, y = d["x"], d["y"]
    lam = float(config["lam"])
    # Ridge solve: real BLAS work whose optimum depends on the config.
    gram = x.T @ x + lam * np.eye(x.shape[1])
    w = np.linalg.solve(gram, x.T @ y)
    resid = y - x @ w
    return float(resid @ resid / len(y))


def run_hpo_section(smoke: bool) -> dict:
    from repro.hpo.scheduler import run_parallel, run_sequential
    from repro.hpo.space import Float, SearchSpace
    from repro.hpo.strategies import RandomSearch
    from repro.parallel import ParallelTrialExecutor, bind_worker_data

    n_trials = 8
    stall_s = 0.08 if smoke else 0.30
    rng = np.random.default_rng(5)
    x = rng.standard_normal((2048, 24))
    w_true = rng.standard_normal(24)
    y = x @ w_true + 0.3 * rng.standard_normal(2048)
    data = {"x": x, "y": y, "stall": np.array([stall_s])}
    space = SearchSpace({"lam": Float(1e-4, 1e2, log=True)})

    def strat():
        return RandomSearch(space, seed=17)

    bind_worker_data(data)
    t0 = time.perf_counter()
    log_serial = run_sequential(strat(), hpo_objective, n_trials=n_trials)
    serial_s = time.perf_counter() - t0
    best_serial = log_serial.best()

    workers = []
    for w in (2, 4):
        with ParallelTrialExecutor(w, data=data) as ex:
            t0 = time.perf_counter()
            log_par = run_parallel(strat(), hpo_objective, n_trials=n_trials,
                                   n_workers=w, executor=ex)
            elapsed = time.perf_counter() - t0
        best = log_par.best()
        workers.append({
            "n_workers": w,
            "elapsed_s": float(elapsed),
            "speedup": float(serial_s / elapsed),
            "best_value": float(best.value),
            "best_match": bool(best.config == best_serial.config
                               and best.value == best_serial.value),
            "trials": len(log_par.trials),
        })

    return {
        "n_trials": n_trials,
        "trial_stall_s": stall_s,
        "serial": {"elapsed_s": float(serial_s), "best_value": float(best_serial.value)},
        "workers": workers,
    }


# ----------------------------------------------------------------------
# DDP section: per-step staging stall, process vs serial backend
# ----------------------------------------------------------------------
def _staging_stall(stall_s, rank, step):
    time.sleep(stall_s)


def _make_net():
    from repro.nn import Sequential
    from repro.nn.layers import Dense

    return Sequential([Dense(16, activation="tanh"), Dense(1)])


def run_ddp_section(smoke: bool) -> dict:
    from repro.parallel import fit_data_parallel

    world = 2
    n, d = (128, 12) if smoke else (256, 16)
    batch = 32
    epochs = 1 if smoke else 2
    stall_s = 0.02 if smoke else 0.05
    rng = np.random.default_rng(9)
    x = rng.standard_normal((n, d))
    y = (x @ rng.standard_normal(d)).reshape(-1, 1)
    hook = functools.partial(_staging_stall, stall_s)

    # Throughput: both backends pay the same per-(rank, step) staging
    # stall; only the process backend can overlap stalls across ranks.
    m_ser = _make_net()
    r_ser = fit_data_parallel(m_ser, x, y, world=world, epochs=epochs,
                              batch_size=batch, backend="serial", seed=2,
                              pre_step_hook=hook)
    m_proc = _make_net()
    r_proc = fit_data_parallel(m_proc, x, y, world=world, epochs=epochs,
                               batch_size=batch, backend="process", seed=2,
                               pre_step_hook=hook)

    # Parity: stall-free run, weights must match bit-for-bit.
    m_a, m_b = _make_net(), _make_net()
    p_proc = fit_data_parallel(m_a, x, y, world=world, epochs=epochs,
                               batch_size=batch, backend="process", seed=2)
    p_ser = fit_data_parallel(m_b, x, y, world=world, epochs=epochs,
                              batch_size=batch, backend="serial", seed=2)
    parity = max(float(np.abs(a - b).max())
                 for a, b in zip(m_a.get_weights(), m_b.get_weights()))

    return {
        "world": world,
        "epochs": epochs,
        "steps": r_proc.steps,
        "stall_per_batch_s": stall_s,
        "serial": {"elapsed_s": float(r_ser.elapsed_s),
                   "steps_per_s": float(r_ser.steps_per_s),
                   "final_loss": float(r_ser.final_loss)},
        "process": {"elapsed_s": float(r_proc.elapsed_s),
                    "steps_per_s": float(r_proc.steps_per_s),
                    "final_loss": float(r_proc.final_loss),
                    "speedup": float(r_proc.steps_per_s / r_ser.steps_per_s)},
        "parity_max_abs_diff": parity,
        "loss_match": bool(p_proc.epoch_losses == p_ser.epoch_losses),
    }


# ----------------------------------------------------------------------
# Prefetch section: staging stall overlapped with compute
# ----------------------------------------------------------------------
def _staged_batches(n_batches, stall_s, size, rng):
    for _ in range(n_batches):
        time.sleep(stall_s)  # the staging latency prefetch hides
        yield rng.standard_normal((size, size))


def _consume(batches, work):
    acc = 0.0
    for b in batches:
        for _ in range(work):
            b = b @ b * 1e-2  # keep magnitudes bounded
        acc += float(b.sum())
    return acc


def run_prefetch_section(smoke: bool) -> dict:
    from repro.parallel import PrefetchLoader

    n_batches = 6 if smoke else 12
    stall_s = 0.02 if smoke else 0.05
    size = 160 if smoke else 256

    # Calibrate per-batch compute to roughly one stall: balanced stages
    # are where double buffering shows its full overlap.
    probe = np.random.default_rng(1).standard_normal((size, size))
    t0 = time.perf_counter()
    for _ in range(4):
        probe = probe @ probe * 1e-2
    t_mm = (time.perf_counter() - t0) / 4
    work = max(4, int(round(stall_s / max(t_mm, 1e-6))))

    t0 = time.perf_counter()
    _consume(_staged_batches(n_batches, stall_s, size, np.random.default_rng(0)), work)
    plain_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    _consume(PrefetchLoader(_staged_batches(n_batches, stall_s, size,
                                            np.random.default_rng(0))), work)
    prefetch_s = time.perf_counter() - t0

    return {
        "plain_s": float(plain_s),
        "prefetch_s": float(prefetch_s),
        "speedup": float(plain_s / prefetch_s),
        "batches": n_batches,
        "stall_s": stall_s,
    }


# ----------------------------------------------------------------------
def run_parallel_bench(smoke: bool = False) -> dict:
    import multiprocessing as mp

    hpo = run_hpo_section(smoke)
    ddp = run_ddp_section(smoke)
    prefetch = run_prefetch_section(smoke)

    hpo_best_match = all(w["best_match"] for w in hpo["workers"])
    hpo_speedup_4w = max(w["speedup"] for w in hpo["workers"]
                         if w["n_workers"] == 4)
    parity_ok = (ddp["parity_max_abs_diff"] == 0.0 and ddp["loss_match"]
                 and hpo_best_match)
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1

    return {
        "acceptance": {
            "parity_ok": bool(parity_ok),
            "ddp_parity_max_abs_diff": ddp["parity_max_abs_diff"],
            "hpo_best_match": bool(hpo_best_match),
            "hpo_speedup_4w": float(hpo_speedup_4w),
            "hpo_speedup_min": HPO_SPEEDUP_MIN,
            "hpo_speedup_ok": bool(hpo_speedup_4w >= HPO_SPEEDUP_MIN),
            "ddp_speedup_2r": ddp["process"]["speedup"],
            "ddp_speedup_min": DDP_SPEEDUP_MIN,
            "ddp_speedup_ok": bool(ddp["process"]["speedup"] >= DDP_SPEEDUP_MIN),
        },
        "hpo": hpo,
        "ddp": ddp,
        "prefetch": prefetch,
        "meta": {
            "numpy": np.__version__,
            "cpus": int(cpus),
            "start_method": mp.get_start_method(),
            "smoke": bool(smoke),
            "blas_pinned": all(os.environ.get(v) == "1" for v in
                               ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                                "MKL_NUM_THREADS")),
        },
    }


def format_results(results: dict) -> str:
    acc = results["acceptance"]
    hpo, ddp, pre = results["hpo"], results["ddp"], results["prefetch"]
    lines = [
        f"HPO: {hpo['n_trials']} trials, {hpo['trial_stall_s'] * 1e3:.0f} ms "
        f"staging stall/trial; serial {hpo['serial']['elapsed_s']:.2f} s",
    ]
    for w in hpo["workers"]:
        match = "best=serial" if w["best_match"] else "BEST DIVERGED"
        lines.append(f"  {w['n_workers']} workers  {w['elapsed_s']:6.2f} s  "
                     f"{w['speedup']:4.2f}x  {match}")
    lines += [
        f"DDP world={ddp['world']}: serial {ddp['serial']['steps_per_s']:.2f} "
        f"steps/s, process {ddp['process']['steps_per_s']:.2f} steps/s "
        f"({ddp['process']['speedup']:.2f}x), parity max|diff| "
        f"{ddp['parity_max_abs_diff']:.1e}",
        f"Prefetch: {pre['plain_s']:.2f} s -> {pre['prefetch_s']:.2f} s "
        f"({pre['speedup']:.2f}x) over {pre['batches']} staged batches",
        f"Gates: parity {'PASS' if acc['parity_ok'] else 'FAIL'} | "
        f"hpo >= {acc['hpo_speedup_min']}x: "
        f"{acc['hpo_speedup_4w']:.2f}x {'PASS' if acc['hpo_speedup_ok'] else 'FAIL'} | "
        f"ddp >= {acc['ddp_speedup_min']}x: "
        f"{acc['ddp_speedup_2r']:.2f}x {'PASS' if acc['ddp_speedup_ok'] else 'FAIL'}",
        f"({results['meta']['cpus']} cpu(s), start_method="
        f"{results['meta']['start_method']})",
    ]
    return "\n".join(lines)


def test_parallel_bench_smoke():
    results = run_parallel_bench(smoke=True)
    print()
    print(format_results(results))
    from repro.obs import BENCH_PARALLEL_SCHEMA, validate

    validate(results, BENCH_PARALLEL_SCHEMA)
    acc = results["acceptance"]
    assert acc["parity_ok"], "process/serial parity broken"
    assert acc["ddp_parity_max_abs_diff"] == 0.0
    assert acc["hpo_best_match"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short stalls; gate parity only (CI)")
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent.parent / "BENCH_parallel.json",
        help="output JSON path (default: repo-root BENCH_parallel.json)",
    )
    args = parser.parse_args(argv)

    results = run_parallel_bench(smoke=args.smoke)
    print(format_results(results))

    from repro.obs import BENCH_PARALLEL_SCHEMA, validate

    validate(results, BENCH_PARALLEL_SCHEMA)
    args.out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.out}")

    acc = results["acceptance"]
    failed = not acc["parity_ok"]
    if not args.smoke:
        failed = failed or not (acc["hpo_speedup_ok"] and acc["ddp_speedup_ok"])
    if failed:
        print("FAIL: see gates above", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
