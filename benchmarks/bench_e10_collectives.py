"""E10 — Allreduce algorithm crossover (claim C9's fabric design question).

Allreduce time for each algorithm across message sizes (1 KB – 1 GB) and
topologies at 256 ranks.  Expected shape: latency-optimal recursive
doubling wins small messages; bandwidth-optimal ring wins large ones;
Rabenseifner tracks the winner at both ends; the crossover point moves
with the topology's latency/bisection characteristics.
"""

import numpy as np
import pytest

from conftest import print_experiment
from repro.hpc import ALLREDUCE_ALGORITHMS, LinkSpec, Network, best_allreduce, make_topology
from repro.utils import format_table

N_RANKS = 256
SIZES = [1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9]


def test_e10_collective_crossover(benchmark):
    rows = []
    crossovers = {}
    for topo_name in ("ring", "torus3d", "fat_tree", "dragonfly"):
        net = Network(make_topology(topo_name, N_RANKS), LinkSpec.from_bandwidth(25e9))
        winners = []
        for size in SIZES:
            times = {name: fn(net, N_RANKS, size) for name, fn in ALLREDUCE_ALGORITHMS.items()}
            winner = min(times, key=times.get)
            winners.append(winner)
            rows.append([topo_name, f"{size:.0e}", winner] + [times[k] * 1e3 for k in sorted(times)])
        crossovers[topo_name] = winners
    header = ["topology", "bytes", "winner"] + [k + " ms" for k in sorted(ALLREDUCE_ALGORITHMS)]
    print_experiment(
        f"E10  Allreduce algorithm comparison, {N_RANKS} ranks, 25 GB/s links",
        format_table(header, rows),
    )

    for topo_name, winners in crossovers.items():
        # Small messages: a logarithmic-latency algorithm wins.
        assert winners[0] in ("recursive_doubling", "tree", "rabenseifner"), topo_name
        # Large messages: a bandwidth-optimal algorithm wins.
        assert winners[-1] in ("ring", "rabenseifner"), topo_name
        # There is an actual crossover.
        assert len(set(winners)) >= 2, f"no crossover on {topo_name}"

    net = Network(make_topology("fat_tree", N_RANKS), LinkSpec.from_bandwidth(25e9))
    benchmark(lambda: best_allreduce(net, N_RANKS, 1e7))
