"""E4 — Memory-tier data placement (claims C8, C12).

Per-batch input-read time when training data lives in each tier of the
hierarchy, on the 2017-era node and on the keynote's wishlist node.
Expected shape: HBM << DRAM << NVRAM << PFS, with the gap to PFS being
the argument for node-local staging.
"""

import numpy as np
import pytest

from conftest import print_experiment
from repro.hpc import FUTURE_DL, SUMMIT_ERA, mlp_profile
from repro.hpc.perfmodel import compute_step_time
from repro.utils import format_table

BATCH_BYTES = 32 * 60_000 * 4.0  # batch 32 of 60k fp32 features (CANDLE-ish)


def test_e4_tier_placement(benchmark):
    profile = mlp_profile([60_000, 2048, 512, 32], batch_size=32)
    rows = []
    per_node = {}
    for node in (SUMMIT_ERA, FUTURE_DL):
        compute = compute_step_time(profile, node, "fp32")
        times = {}
        for tier in node.tiers:
            io = tier.access_time(BATCH_BYTES)
            times[tier.name] = io
            rows.append([node.name, tier.name, io * 1e3, compute * 1e3, io / compute])
        per_node[node.name] = (times, compute)
    print_experiment(
        "E4  Per-batch input read time by tier (vs compute time of the step)",
        format_table(["node", "tier", "read ms", "compute ms", "read/compute"], rows),
    )

    for name, (times, compute) in per_node.items():
        # Strict tier ordering.
        assert times["hbm"] < times["dram"] < times["pfs"]
        if "nvram" in times:
            assert times["dram"] < times["nvram"] < times["pfs"]
        # From HBM, input reads hide behind compute; from PFS they dominate.
        assert times["hbm"] < compute
        assert times["pfs"] > compute

    node = SUMMIT_ERA
    benchmark(lambda: [t.access_time(BATCH_BYTES) for t in node.tiers])
