"""Overlapped bucketed DDP benchmark: throughput + wire + parity gates.

Measures the bucketed, overlapped gradient-communication engine of
:mod:`repro.parallel.ddp` against the monolithic post-backward
allreduce it replaces, and writes ``BENCH_ddp_overlap.json`` (schema:
``repro.obs.schema.BENCH_DDP_OVERLAP_SCHEMA``):

* **Step throughput** — ``fit_data_parallel`` process backend at 2 and
  4 ranks under an injected comm-staging stall
  (``comm_stall_s_per_mib``), four engines per world size: the
  monolithic 3-barrier allreduce, bucketed with overlap disabled
  (bucket granularity alone), bucketed+overlapped (buckets launch
  from the backward tape hook while the rest of backward runs), and
  the headline engine — bucketed+overlapped on the **fp32 wire**,
  which pairs the overlap schedule with the reduced-precision wire
  format this PR ships (the monolithic engine is architecturally
  f64-only).  Gate: the headline engine >= 1.25x monolithic step
  throughput at 4 ranks; the f64 rows isolate what scheduling alone
  buys and are reported, not gated.
* **Bytes on wire** — measured ``wire_bytes_per_step`` per wire dtype
  (``float64`` | ``float32`` | ``bf16``); gate: the fp32 wire is
  exactly half the f64 bytes (bf16 a quarter, reported).
* **Parity audit** — every (comm, wire-dtype) combination trains on
  both backends; the process run must be **bit-identical** to its
  serial same-schedule reference (``reduce_ranks_bucketed`` with the
  same bucket plan and wire codec), and overlap on/off must not change
  weights.

Workload honesty: the stall is a *measured, calibrated* sleep per MiB
of wire traffic standing in for the inter-node gradient exchange the
paper's CANDLE drivers pay.  It is charged **inside the collective**,
after the publish barrier (the bandwidth term of the alpha-beta cost
model — at that point all ranks are synchronized, so no engine can
hide it behind rank skew), it never touches numerics, and it scales
with the *wire* bytes, so the fp32 wire genuinely halves the charged
transfer.  On a single-core container the f64 bucketed engine can at
best tie monolithic (every cycle backward would hide comm under is
already spoken for), which the ablation rows show; the gated speedup
comes from the overlap schedule plus the halved wire stall.
``meta.cpus`` records what the run had.

Two entry points:

* ``pytest benchmarks/bench_ddp_overlap.py -s`` — smoke run gating
  parity + the bytes ratio.
* ``python benchmarks/bench_ddp_overlap.py [--smoke] [--out PATH]`` —
  emits ``BENCH_ddp_overlap.json``; exits nonzero on gate failure
  (smoke mode enforces parity and the bytes ratio; the throughput gate
  is scored on the full run that produces the committed artifact).
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

# BLAS pins must precede the first numpy import: an oversubscribed BLAS
# thread pool inside every rank is the classic way a parallel bench
# quietly measures contention instead of speedup.
for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "VECLIB_MAXIMUM_THREADS", "NUMEXPR_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import numpy as np  # noqa: E402

OVERLAP_SPEEDUP_MIN = 1.25  # bucketed+overlap+fp32 wire vs monolithic, 4 ranks
# One bucket per hidden layer: each 128x128 weight is 128 KiB of float64
# payload, so a 128 KiB target closes a bucket at every layer boundary.
# (Parameters are never split, so a single huge layer would degenerate
# to one bucket and nothing could overlap.)
BUCKET_BYTES = 1 << 17
WIRE_DTYPES = ("float64", "float32", "bf16")


def _make_net():
    from repro.nn import Sequential
    from repro.nn.layers import Dense

    # Deep and even: four hidden layers give backward a real tail for
    # early buckets to overlap with, and similar-size buckets keep the
    # per-bucket stalls comparable.
    return Sequential([Dense(128, activation="tanh") for _ in range(4)]
                      + [Dense(1)])


def _make_data(n, d=128, seed=9):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, d))
    y = (x @ rng.standard_normal(d)).reshape(-1, 1)
    return x, y


def _rank_steps_per_s(res):
    """Step throughput from the rank-side epoch walls (excludes process
    spawn / shared-memory setup, which is identical across engines and
    would otherwise dilute every ratio toward 1)."""
    return res.steps / sum(res.epoch_times)


def _vec_mib(model, x):
    """Size of the flattened f64 gradient vector (params + loss slot)."""
    if not model.built:
        model.build(x.shape[1:], np.random.default_rng(0))
    n = sum(int(w.size) for w in model.get_weights()) + 1
    return n * 8 / 2**20


def _weights_diff(a, b):
    return max(float(np.abs(p - q).max())
               for p, q in zip(a.get_weights(), b.get_weights()))


# ----------------------------------------------------------------------
# Throughput: monolithic vs bucketed(+/- overlap) under the comm stall
# ----------------------------------------------------------------------
def run_throughput_section(smoke: bool) -> dict:
    from repro.parallel import fit_data_parallel

    n = 256 if smoke else 512
    batch = 128
    epochs = 1 if smoke else 3
    x, y = _make_data(n)
    vec_mib = _vec_mib(_make_net(), x)

    # Calibrate the stall to the workload: a stall-free monolithic probe
    # at 4 ranks gives the per-step compute wall (rank-side, setup
    # excluded); the injected f64 stall is 1.5x that, putting the run in
    # the comm-bound regime slow interconnects produce — where wire
    # compression and overlap are worth measuring at all.
    probe = _make_net()
    r = fit_data_parallel(probe, x, y, world=4, epochs=1, batch_size=batch,
                          backend="process", seed=2, comm="monolithic")
    probe_step_s = sum(r.epoch_times) / r.steps
    stall_s = max(1.5 * probe_step_s, 0.02 if smoke else 0.04)
    stall_s_per_mib = stall_s / vec_mib

    worlds = []
    for world in (2, 4):
        rows = {}
        for engine, kwargs in (
            ("monolithic", {"comm": "monolithic"}),
            ("bucketed_noverlap", {"comm": "bucketed", "overlap": False,
                                   "bucket_bytes": BUCKET_BYTES}),
            ("bucketed", {"comm": "bucketed", "overlap": True,
                          "bucket_bytes": BUCKET_BYTES}),
            ("bucketed_fp32", {"comm": "bucketed", "overlap": True,
                               "bucket_bytes": BUCKET_BYTES,
                               "wire_dtype": "float32"}),
        ):
            m = _make_net()
            res = fit_data_parallel(
                m, x, y, world=world, epochs=epochs, batch_size=batch,
                backend="process", seed=2,
                comm_stall_s_per_mib=stall_s_per_mib, **kwargs,
            )
            stats = res.comm_stats
            rows[engine] = {
                "elapsed_s": float(res.elapsed_s),
                "steps_per_s": float(_rank_steps_per_s(res)),
                "n_buckets": int(stats["n_buckets"]),
                "overlap_fraction": float(stats["overlap_fraction"]),
                "final_loss": float(res.final_loss),
            }
        mono = rows["monolithic"]["steps_per_s"]
        for engine in ("bucketed_noverlap", "bucketed", "bucketed_fp32"):
            rows[engine]["speedup"] = float(rows[engine]["steps_per_s"] / mono)
        worlds.append({"world": world, **rows})

    return {
        "epochs": epochs,
        "steps_per_epoch": int(n // batch),
        "stall_s_per_step": float(stall_s),
        "stall_s_per_mib": float(stall_s_per_mib),
        "vec_mib": float(vec_mib),
        "worlds": worlds,
    }


# ----------------------------------------------------------------------
# Wire: measured bytes-on-wire per step per wire dtype
# ----------------------------------------------------------------------
def run_wire_section(smoke: bool) -> dict:
    from repro.parallel import fit_data_parallel

    x, y = _make_data(256)
    rows = []
    f64_bytes = None
    for wd in WIRE_DTYPES:
        m = _make_net()
        res = fit_data_parallel(m, x, y, world=2, epochs=1, batch_size=128,
                                backend="process", seed=2, comm="bucketed",
                                bucket_bytes=BUCKET_BYTES, wire_dtype=wd)
        wire_bytes = int(res.comm_stats["wire_bytes_per_step"])
        if wd == "float64":
            f64_bytes = wire_bytes
        rows.append({
            "wire_dtype": wd,
            "wire_bytes_per_step": wire_bytes,
            "bytes_ratio_vs_f64": float(wire_bytes / f64_bytes),
            "final_loss": float(res.final_loss),
        })
    return {"world": 2, "rows": rows}


# ----------------------------------------------------------------------
# Parity: every (comm, wire dtype) process run vs its serial reference
# ----------------------------------------------------------------------
def run_parity_section(smoke: bool) -> dict:
    from repro.parallel import fit_data_parallel

    n = 96
    epochs = 1 if smoke else 2
    x, y = _make_data(n, seed=3)
    combos = [("monolithic", "float64")] + [("bucketed", wd) for wd in WIRE_DTYPES]

    rows = []
    for comm, wd in combos:
        m_ser, m_proc = _make_net(), _make_net()
        kwargs = dict(world=2, epochs=epochs, batch_size=16, seed=4,
                      comm=comm, wire_dtype=wd, bucket_bytes=BUCKET_BYTES)
        r_ser = fit_data_parallel(m_ser, x, y, backend="serial", **kwargs)
        r_proc = fit_data_parallel(m_proc, x, y, backend="process", **kwargs)
        diff = _weights_diff(m_proc, m_ser)
        rows.append({
            "comm": comm,
            "wire_dtype": wd,
            "max_abs_diff": diff,
            "bit_identical": bool(diff == 0.0),
            "loss_match": bool(r_proc.epoch_losses == r_ser.epoch_losses),
        })

    # Overlap must be a pure scheduling change: on/off weights identical.
    m_on, m_off = _make_net(), _make_net()
    fit_data_parallel(m_on, x, y, world=2, epochs=epochs, batch_size=16,
                      backend="process", seed=4, comm="bucketed",
                      bucket_bytes=BUCKET_BYTES, overlap=True)
    fit_data_parallel(m_off, x, y, world=2, epochs=epochs, batch_size=16,
                      backend="process", seed=4, comm="bucketed",
                      bucket_bytes=BUCKET_BYTES, overlap=False)
    overlap_invariant = bool(_weights_diff(m_on, m_off) == 0.0)

    return {"rows": rows, "overlap_invariant": overlap_invariant}


# ----------------------------------------------------------------------
def run_ddp_overlap_bench(smoke: bool = False) -> dict:
    import multiprocessing as mp

    throughput = run_throughput_section(smoke)
    wire = run_wire_section(smoke)
    parity = run_parity_section(smoke)

    parity_ok = (all(r["bit_identical"] and r["loss_match"]
                     for r in parity["rows"])
                 and parity["overlap_invariant"])
    w4 = next(w for w in throughput["worlds"] if w["world"] == 4)
    overlap_speedup_4r = w4["bucketed_fp32"]["speedup"]
    fp32_ratio = next(r["bytes_ratio_vs_f64"] for r in wire["rows"]
                      if r["wire_dtype"] == "float32")
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1

    return {
        "acceptance": {
            "parity_ok": bool(parity_ok),
            "overlap_speedup_4r": float(overlap_speedup_4r),
            "overlap_speedup_4r_f64": float(w4["bucketed"]["speedup"]),
            "overlap_speedup_min": OVERLAP_SPEEDUP_MIN,
            "overlap_speedup_ok": bool(overlap_speedup_4r >= OVERLAP_SPEEDUP_MIN),
            "overlap_fraction_4r": float(w4["bucketed_fp32"]["overlap_fraction"]),
            "fp32_wire_bytes_ratio": float(fp32_ratio),
            "fp32_wire_halves_bytes": bool(fp32_ratio == 0.5),
        },
        "throughput": throughput,
        "wire": wire,
        "parity": parity,
        "meta": {
            "numpy": np.__version__,
            "cpus": int(cpus),
            "start_method": mp.get_start_method(),
            "smoke": bool(smoke),
            "blas_pinned": all(os.environ.get(v) == "1" for v in
                               ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                                "MKL_NUM_THREADS")),
        },
    }


def format_results(results: dict) -> str:
    acc = results["acceptance"]
    thr, wire, par = results["throughput"], results["wire"], results["parity"]
    lines = [
        f"DDP overlap: {thr['vec_mib'] * 1024:.0f} KiB grad vector, "
        f"{thr['stall_s_per_step'] * 1e3:.0f} ms comm stall/step "
        f"({thr['stall_s_per_mib']:.2f} s/MiB charged on wire bytes)",
    ]
    for w in thr["worlds"]:
        lines.append(f"  world={w['world']}:")
        for engine in ("monolithic", "bucketed_noverlap", "bucketed",
                       "bucketed_fp32"):
            row = w[engine]
            speed = f"  {row['speedup']:4.2f}x" if "speedup" in row else "  1.00x"
            lines.append(
                f"    {engine:<18} {row['steps_per_s']:7.2f} steps/s{speed}"
                f"  overlap={row['overlap_fraction']:.2f}"
                f"  buckets={row['n_buckets']}")
    wire_txt = ", ".join(
        f"{r['wire_dtype']}={r['wire_bytes_per_step']}B "
        f"({r['bytes_ratio_vs_f64']:.2f}x)" for r in wire["rows"])
    lines.append(f"Wire bytes/step @ world={wire['world']}: {wire_txt}")
    for r in par["rows"]:
        tag = "BIT-IDENTICAL" if r["bit_identical"] and r["loss_match"] else "DIVERGED"
        lines.append(f"  parity {r['comm']}/{r['wire_dtype']}: "
                     f"max|diff|={r['max_abs_diff']:.1e} {tag}")
    lines += [
        f"  parity overlap on/off invariant: {par['overlap_invariant']}",
        f"Gates: parity {'PASS' if acc['parity_ok'] else 'FAIL'} | "
        f"overlap+fp32 wire >= {acc['overlap_speedup_min']}x @ 4 ranks: "
        f"{acc['overlap_speedup_4r']:.2f}x "
        f"(f64 ablation {acc['overlap_speedup_4r_f64']:.2f}x) "
        f"{'PASS' if acc['overlap_speedup_ok'] else 'FAIL'} | "
        f"fp32 wire halves bytes: "
        f"{'PASS' if acc['fp32_wire_halves_bytes'] else 'FAIL'}",
        f"({results['meta']['cpus']} cpu(s), start_method="
        f"{results['meta']['start_method']})",
    ]
    return "\n".join(lines)


def test_ddp_overlap_bench_smoke():
    results = run_ddp_overlap_bench(smoke=True)
    print()
    print(format_results(results))
    from repro.obs import BENCH_DDP_OVERLAP_SCHEMA, validate

    validate(results, BENCH_DDP_OVERLAP_SCHEMA)
    acc = results["acceptance"]
    assert acc["parity_ok"], "process/serial parity broken"
    assert acc["fp32_wire_halves_bytes"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short run; gate parity + bytes ratio only (CI)")
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent.parent / "BENCH_ddp_overlap.json",
        help="output JSON path (default: repo-root BENCH_ddp_overlap.json)",
    )
    args = parser.parse_args(argv)

    results = run_ddp_overlap_bench(smoke=args.smoke)
    print(format_results(results))

    from repro.obs import BENCH_DDP_OVERLAP_SCHEMA, validate

    validate(results, BENCH_DDP_OVERLAP_SCHEMA)
    args.out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.out}")

    acc = results["acceptance"]
    failed = not (acc["parity_ok"] and acc["fp32_wire_halves_bytes"])
    if not args.smoke:
        failed = failed or not acc["overlap_speedup_ok"]
    if failed:
        print("FAIL: see gates above", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
