"""E9 — Compute density / roofline study (claim C6).

Achieved fraction of peak vs arithmetic intensity for the kernel classes a
DNN step is made of, at each precision, on the summit-era accelerator.
Expected shape: elementwise ops are bandwidth-bound everywhere; GEMMs
approach peak once intensity clears the machine-balance ridge; lower
precision raises the effective peak (and moves the ridge right).
"""

import numpy as np
import pytest

from conftest import print_experiment
from repro.hpc import SUMMIT_ERA, achieved_flops, arithmetic_intensity, roofline_time
from repro.hpc.hardware import DTYPE_BYTES
from repro.utils import format_table


def _kernels(precision):
    """(name, flops, bytes) for representative step kernels."""
    e = DTYPE_BYTES[precision]
    b, n, k = 256, 4096, 4096
    out = []
    # GEMM: 2*b*n*k flops; traffic = A + B + C.
    out.append(("gemm 256x4096x4096", 2.0 * b * n * k, (b * k + k * n + b * n) * e))
    out.append(("gemm 32x512x512", 2.0 * 32 * 512 * 512, (32 * 512 + 512 * 512 + 32 * 512) * e))
    # Matrix-vector: 2*n*k flops, reads the whole matrix.
    out.append(("gemv 4096x4096", 2.0 * n * k, (n * k + k + n) * e))
    # Elementwise activation: 1 flop per element, read+write.
    m = b * n
    out.append(("elementwise relu", 1.0 * m, 2.0 * m * e))
    # Batch norm: ~5 flops/elem, read+write.
    out.append(("batch norm", 5.0 * m, 2.0 * m * e))
    return out


def test_e9_roofline(benchmark):
    acc = SUMMIT_ERA.accelerator
    ridge = {}
    rows = []
    for precision in ("fp64", "fp32", "fp16"):
        peak = acc.effective_flops(precision)
        ridge[precision] = peak / acc.mem_bandwidth  # machine balance (flops/byte)
        for name, flops, nbytes in _kernels(precision):
            ai = arithmetic_intensity(flops, nbytes)
            frac = achieved_flops(flops, nbytes, acc, precision) / peak
            rows.append([precision, name, ai, frac])
    print_experiment(
        "E9  Roofline: fraction of effective peak vs arithmetic intensity (summit_era)",
        format_table(["precision", "kernel", "flops/byte", "frac of peak"], rows),
    )
    ridge_rows = [[p, r] for p, r in ridge.items()]
    print_experiment("E9b Machine balance (ridge point, flops/byte)", format_table(["precision", "ridge"], ridge_rows))

    by = {(r[0], r[1]): r[3] for r in rows}
    # Big GEMMs hit peak at every precision.
    for p in ("fp64", "fp32"):
        assert by[(p, "gemm 256x4096x4096")] == pytest.approx(1.0)
    # Elementwise ops are bandwidth-bound: tiny fraction of peak.
    assert by[("fp32", "elementwise relu")] < 0.01
    # GEMV (matrix-vector) is bandwidth-bound too — the keynote's
    # matrix-vector workloads motivate high memory bandwidth.
    assert by[("fp32", "gemv 4096x4096")] < 0.05
    # Lower precision has a higher ridge: the same big GEMM that saturates
    # fp32 no longer saturates fp16 (its intensity stays put, peak grows).
    assert ridge["fp16"] > ridge["fp32"] > ridge["fp64"]
    assert by[("fp16", "gemm 256x4096x4096")] <= by[("fp32", "gemm 256x4096x4096")] + 1e-12

    flops, nbytes = 2.0 * 256 * 4096 * 4096, (256 * 4096 * 2 + 4096 * 4096) * 4.0
    benchmark(lambda: achieved_flops(flops, nbytes, acc, "fp16"))


def test_e9c_measured_vs_modeled(benchmark):
    """Measured op-level profile of a real train step vs the modeled story.

    The roofline model above *predicts* that a DNN step is GEMM-dominated
    (claim C6).  Here we train an actual MLP with the op profiler attached
    and check the prediction against measured wall time: the fused
    GEMM-bearing op (linear_act) must dominate the elementwise rest.
    Absolute times are host-CPU and machine-dependent, so the assertions
    are about *shares*, not seconds.
    """
    from repro.nn import Dense, Sequential
    from repro.perf import OpProfiler

    rng = np.random.default_rng(9)
    x = rng.standard_normal((512, 128))
    y = rng.integers(0, 10, 512)
    model = Sequential([Dense(128, activation="relu"), Dense(64, activation="relu"), Dense(10)])
    prof = OpProfiler()
    model.fit(x, y, epochs=2, batch_size=64, loss="cross_entropy", profiler=prof)

    stats = prof.as_dict()
    total = sum(s["total_s"] for s in stats.values())
    assert total > 0, "profiler recorded nothing"
    rows = [
        [name, s["calls"], 1e3 * s["total_s"], 100.0 * s["total_s"] / total]
        for name, s in stats.items()
    ]
    print_experiment(
        "E9c Measured op profile of a real MLP train step (host CPU)",
        format_table(["op", "calls", "total ms", "% of op time"], rows),
    )

    share = {name: s["total_s"] / total for name, s in stats.items()}
    # The modeled claim, checked against measurement: the GEMM-bearing op
    # dominates the op-time budget...
    assert share.get("linear_act", 0.0) > 0.4, f"expected GEMM-dominated step, got {share}"
    # ...and beats the loss + any elementwise epilogues combined.
    rest = sum(v for k, v in share.items() if k != "linear_act")
    assert share["linear_act"] > rest, f"linear_act does not dominate: {share}"

    # Modeled arithmetic intensity of the first layer's forward GEMM, for
    # the printed comparison (the measured host has no fp16 tensor cores —
    # the point of the modeled column is the *target* machine).
    flops = 2.0 * 64 * 128 * 128
    nbytes = (64 * 128 + 128 * 128 + 64 * 128) * 8.0
    ai = arithmetic_intensity(flops, nbytes)
    print_experiment(
        "E9d Modeled intensity of the measured step's first GEMM",
        format_table(["kernel", "flops/byte"], [["gemm 64x128x128 fp64", ai]]),
    )

    benchmark(lambda: model.predict(x[:64]))
