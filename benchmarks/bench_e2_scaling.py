"""E2 — Strong vs weak scaling of data parallelism (claim C10).

Sweeps node counts for a CANDLE-scale MLP under synchronous data
parallelism.  Expected shape: weak scaling near-flat; strong scaling
saturates and then degrades as the local batch shrinks and the gradient
allreduce dominates.
"""

import numpy as np
import pytest

from conftest import print_experiment
from repro.hpc import DataParallel, SimCluster, SingleNode, mlp_profile, throughput
from repro.utils import format_table

NODES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def _strong_weak_tables():
    profile = mlp_profile([4096, 4096, 4096, 4096, 1000], batch_size=4096, name="candle_mlp")
    base = SimCluster.build("summit_era", 1, "ring")
    t1 = SingleNode().step_time(profile, base, "fp32")

    rows = []
    strong_speedup = {}
    weak_eff = {}
    for n in NODES:
        cluster = SimCluster.build("summit_era", n, "fat_tree")
        strong = DataParallel(n, strong_scaling=True) if n > 1 else SingleNode()
        t_strong = strong.step_time(profile, cluster, "fp32")
        strong_speedup[n] = t1 / t_strong
        weak = DataParallel(n, strong_scaling=False) if n > 1 else SingleNode()
        weak_profile = profile.with_batch_size(profile.batch_size)  # fixed local batch
        t_weak = weak.step_time(weak_profile, cluster, "fp32")
        weak_eff[n] = t1 / t_weak
        rows.append([n, t_strong * 1e3, strong_speedup[n], strong_speedup[n] / n, t_weak * 1e3, weak_eff[n]])
    table = format_table(
        ["nodes", "strong ms", "speedup", "strong eff", "weak ms", "weak eff"], rows
    )
    return table, strong_speedup, weak_eff


def test_e2_scaling_curves(benchmark):
    table, strong, weak = _strong_weak_tables()
    print_experiment("E2  Strong vs weak scaling, data parallelism (summit_era, fat-tree)", table)

    # Strong scaling is far from ideal at 1024 nodes (claim C10)...
    assert strong[1024] < 0.15 * 1024
    # ...and the marginal benefit collapses at scale.
    assert strong[1024] < strong[256] * 2.0
    # Weak scaling stays within 3x of perfect.
    assert weak[1024] > 1.0 / 3.0

    profile = mlp_profile([4096, 4096, 1000], batch_size=4096)
    cluster = SimCluster.build("summit_era", 256, "fat_tree")
    benchmark(lambda: DataParallel(256).step_time(profile, cluster, "fp32"))
