"""Observability overhead gate: tracing the MLP train step must be cheap.

Times the same full-batch MLP train step the kernel suite's acceptance
row uses (``repro.perf.bench.bench_mlp_train_step``: batch 256, d=64,
hidden (64, 32), 10 classes), through ``Model.fit`` — once detached and
once with a :class:`repro.obs.TraceRecorder` attached.  Attached runs
pay for the fit/epoch/step spans, the loss and gradient-norm gauges,
and the recorder bookkeeping; the gate is that this costs **under 5%**
of the step.

Measurement protocol: alternating detached/attached samples, then the
**minimum of each side** — on a shared machine the minimum is the
least-interfered observation and approaches each side's noise floor
(the same reasoning behind ``timeit``'s min recommendation).  Paired
per-round ratios were tried and rejected: a single interference burst
inside one round swings the round's ratio by ±10%, far above the
effect being gated.

Two entry points:

* ``pytest benchmarks/bench_obs_overhead.py -s`` — smoke-mode run that
  gates the overhead fraction and validates the recorded trace.
* ``python benchmarks/bench_obs_overhead.py [--smoke] [--reps N]
  [--out PATH]`` — emits ``BENCH_obs.json`` (schema:
  ``repro.obs.schema.BENCH_OBS_SCHEMA``); exits nonzero if the gate
  fails.
"""

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import numpy as np  # noqa: E402

GATE_FRAC = 0.05  # attached fit may cost at most 5% over detached

# The kernel suite's acceptance MLP (full mode): one step is one
# full-batch forward/backward/Adam update over all 256 samples.
N, D, HIDDEN, CLASSES = 256, 64, (64, 32), 10


def _make_model():
    from repro.nn import Sequential
    from repro.nn.layers import Activation, Dense

    model = Sequential()
    for h in HIDDEN:
        model.add(Dense(h)).add(Activation("relu"))
    model.add(Dense(CLASSES))
    return model


def _fit_seconds(x, y, epochs, attached):
    from repro.obs import TraceRecorder

    model = _make_model()
    if not attached:
        t0 = time.perf_counter()
        model.fit(x, y, epochs=epochs, batch_size=N, loss="cross_entropy",
                  lr=1e-3, seed=0)
        return time.perf_counter() - t0, None
    recorder = TraceRecorder()
    with recorder:
        t0 = time.perf_counter()
        model.fit(x, y, epochs=epochs, batch_size=N, loss="cross_entropy",
                  lr=1e-3, seed=0)
        dt = time.perf_counter() - t0
    return dt, recorder


def run_overhead_bench(smoke: bool = False, reps: int = None) -> dict:
    rng = np.random.default_rng(4)
    x = rng.standard_normal((N, D))
    y = rng.integers(0, CLASSES, N)

    epochs = 10 if smoke else 20   # = steps per fit (full-batch)
    rounds = reps if reps is not None else (6 if smoke else 12)

    # Warm both paths (numpy caches, imports, first-touch pages).
    _fit_seconds(x, y, 2, attached=False)
    _, recorder = _fit_seconds(x, y, 2, attached=True)

    det_times, att_times = [], []
    for _ in range(rounds):
        d, _ = _fit_seconds(x, y, epochs, attached=False)
        a, recorder = _fit_seconds(x, y, epochs, attached=True)
        det_times.append(d)
        att_times.append(a)

    detached_s = min(det_times)
    attached_s = min(att_times)
    overhead_frac = attached_s / detached_s - 1.0
    detached_ms = detached_s * 1e3
    attached_ms = attached_s * 1e3

    # The last attached recorder doubles as the trace sanity check.
    from repro.obs import trace_records, validate_trace

    counts = validate_trace(trace_records(recorder))

    return {
        "acceptance": {
            "overhead_ok": bool(overhead_frac < GATE_FRAC),
            "overhead_frac": float(overhead_frac),
            "gate_frac": GATE_FRAC,
        },
        "overhead": {
            "detached_ms": float(detached_ms),
            "attached_ms": float(attached_ms),
            "overhead_frac": float(overhead_frac),
            "steps": epochs,
            "shape": f"n={N} d={D} hidden={'x'.join(map(str, HIDDEN))} classes={CLASSES}",
        },
        "trace": {
            "records": int(sum(counts.values()) - 1),  # minus the header
            "records_per_step": float((sum(counts.values()) - 1) / epochs),
        },
        "meta": {
            "numpy": np.__version__,
            "reps": int(rounds),
            "smoke": bool(smoke),
        },
    }


def format_results(results: dict) -> str:
    over = results["overhead"]
    acc = results["acceptance"]
    trace = results["trace"]
    verdict = "PASS" if acc["overhead_ok"] else "FAIL"
    return "\n".join([
        f"MLP train step ({over['shape']}), {over['steps']} steps/fit:",
        f"  detached  {over['detached_ms']:8.2f} ms",
        f"  attached  {over['attached_ms']:8.2f} ms",
        f"  overhead  {over['overhead_frac'] * 100:7.2f}%  "
        f"(gate < {acc['gate_frac'] * 100:.0f}%)  {verdict}",
        f"  trace     {trace['records']} records "
        f"({trace['records_per_step']:.1f}/step), schema-valid",
    ])


def test_obs_overhead_smoke():
    results = run_overhead_bench(smoke=True)
    print()
    print(format_results(results))
    acc = results["acceptance"]
    assert acc["overhead_ok"], (
        f"instrumented fit overhead {acc['overhead_frac'] * 100:.2f}% "
        f"exceeds the {acc['gate_frac'] * 100:.0f}% gate"
    )
    # Every step must have left a span (plus epoch/fit framing records).
    assert results["trace"]["records_per_step"] >= 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="fewer steps and rounds (CI)")
    parser.add_argument("--reps", type=int, default=None, help="ABBA measurement rounds")
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent.parent / "BENCH_obs.json",
        help="output JSON path (default: repo-root BENCH_obs.json)",
    )
    args = parser.parse_args(argv)

    results = run_overhead_bench(smoke=args.smoke, reps=args.reps)
    print(format_results(results))

    from repro.obs import BENCH_OBS_SCHEMA, validate

    validate(results, BENCH_OBS_SCHEMA)
    args.out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.out}")

    if not results["acceptance"]["overhead_ok"]:
        print(
            f"FAIL: overhead {results['acceptance']['overhead_frac'] * 100:.2f}% "
            f"exceeds gate {GATE_FRAC * 100:.0f}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
