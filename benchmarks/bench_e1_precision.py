"""E1 — Precision ablation (claim C7: "rarely require 64bit or even 32bits").

Trains three CANDLE-style models at fp64/fp32/fp16/bf16/int8 under the
emulated precision policies and reports the headline metric per format.
Expected shape: fp32/fp16/bf16 within noise of fp64; int8 degrades mildly.
"""

import numpy as np
import pytest

from conftest import print_experiment
from repro.candle import build_combo_mlp, build_nt3_classifier, build_p1b2_classifier
from repro.datasets import make_combo_response, make_tumor_expression
from repro.nn import metrics
from repro.precision import PrecisionPolicy, train_with_policy
from repro.utils import format_table

FORMATS = ("fp64", "fp32", "fp16", "bf16", "int8")


from repro.nn import train_val_split


def _train_p1b2(fmt: str) -> float:
    # noise=1.4: a hard problem, so held-out accuracy sits well below 1.0
    # and format-induced degradation is visible.
    ds = make_tumor_expression(n_samples=500, n_genes=100, n_classes=4, noise=1.4, seed=0)
    x_tr, y_tr, x_te, y_te = train_val_split(ds.x, ds.y, val_frac=0.3, rng=np.random.default_rng(0))
    model = build_p1b2_classifier(4, hidden=(64, 32), dropout=0.0)
    train_with_policy(model, x_tr, y_tr, PrecisionPolicy(fmt), epochs=15,
                      loss="cross_entropy", lr=1e-3, seed=0)
    return metrics.accuracy(model.predict(x_te), y_te)


def _train_nt3(fmt: str) -> float:
    ds = make_tumor_expression(n_samples=400, n_genes=120, n_classes=2, noise=1.6, seed=1)
    x = ds.as_conv_input()
    x_tr, y_tr, x_te, y_te = train_val_split(x, ds.y, val_frac=0.3, rng=np.random.default_rng(0))
    model = build_nt3_classifier(2, conv_filters=(8,), dense_units=(32,), kernel_size=5, dropout=0.0)
    train_with_policy(model, x_tr, y_tr, PrecisionPolicy(fmt), epochs=8,
                      loss="cross_entropy", lr=1e-3, seed=0)
    return metrics.accuracy(model.predict(x_te), y_te)


def _train_combo(fmt: str) -> float:
    ds = make_combo_response(n_samples=1200, seed=0)
    x_tr, y_tr, x_te, y_te = train_val_split(ds.x, ds.y, val_frac=0.3, rng=np.random.default_rng(0))
    mu, sd = x_tr.mean(axis=0), x_tr.std(axis=0) + 1e-9
    model = build_combo_mlp(hidden=(64, 32), dropout=0.0)
    train_with_policy(model, (x_tr - mu) / sd, y_tr.reshape(-1, 1), PrecisionPolicy(fmt), epochs=25,
                      loss="mse", lr=3e-3, seed=0)
    return metrics.r2_score(model.predict((x_te - mu) / sd), y_te)


def test_e1_precision_ablation(benchmark):
    rows = []
    results = {}
    for fmt in FORMATS:
        acc_p1b2 = _train_p1b2(fmt)
        acc_nt3 = _train_nt3(fmt)
        r2_combo = _train_combo(fmt)
        results[fmt] = (acc_p1b2, acc_nt3, r2_combo)
        rows.append([fmt, acc_p1b2, acc_nt3, r2_combo])
    print_experiment(
        "E1  Precision ablation: metric vs numeric format",
        format_table(["format", "P1B2 acc", "NT3 acc", "Combo R2"], rows),
    )

    # Shape assertions (the reproduction criteria).
    for fmt in ("fp32", "fp16", "bf16"):
        assert results[fmt][0] >= results["fp64"][0] - 0.1, f"{fmt} P1B2 degraded"
        assert results[fmt][2] >= results["fp64"][2] - 0.15, f"{fmt} Combo degraded"
    # int8 may degrade but must stay usable.
    assert results["int8"][0] > 0.5

    # Timed kernel: one fp16 policy training epoch.
    ds = make_tumor_expression(n_samples=150, n_genes=60, n_classes=4, seed=2)

    def kernel():
        model = build_p1b2_classifier(4, hidden=(32,), dropout=0.0)
        train_with_policy(model, ds.x, ds.y, PrecisionPolicy("fp16"), epochs=1,
                          loss="cross_entropy", lr=1e-3, seed=0)

    benchmark(kernel)
