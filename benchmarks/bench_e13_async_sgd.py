"""E13 (ablation) — Asynchronous SGD staleness vs convergence (claim C10).

The keynote's scaling story implies asynchrony (to hide allreduce
latency); this ablation quantifies its numerical price by training the
*same* model with exactly-controlled gradient staleness.  Expected shape:
staleness up to ~the number of workers is benign; far beyond it, early
convergence collapses.
"""

import numpy as np
import pytest

from conftest import print_experiment
from repro.candle import build_p1b2_classifier
from repro.datasets import make_tumor_expression
from repro.utils import format_table
from repro.workflow import train_async_sgd

STALENESS = (0, 2, 8, 32, 96)
EPOCHS = 4


def test_e13_staleness_ablation(benchmark):
    ds = make_tumor_expression(n_samples=256, n_genes=60, n_classes=3, seed=0)

    rows = []
    finals = {}
    early = {}
    for s in STALENESS:
        model = build_p1b2_classifier(3, hidden=(32,), dropout=0.0)
        res = train_async_sgd(model, ds.x, ds.y, n_workers=8, staleness=s,
                              epochs=EPOCHS, loss="cross_entropy", lr=0.05, seed=0)
        finals[s] = res.final_loss
        early[s] = res.epoch_losses[0]
        rows.append([s] + [round(v, 4) for v in res.epoch_losses])
    print_experiment(
        "E13  Async SGD: training loss per epoch vs gradient staleness",
        format_table(["staleness"] + [f"epoch {i+1}" for i in range(EPOCHS)], rows),
    )

    # Moderate staleness is benign...
    assert finals[8] < finals[0] * 3 + 0.1
    # ...extreme staleness wrecks early convergence.
    assert early[96] > early[0] * 2
    assert finals[96] > finals[0]

    model = build_p1b2_classifier(3, hidden=(16,), dropout=0.0)
    benchmark(lambda: train_async_sgd(
        build_p1b2_classifier(3, hidden=(16,), dropout=0.0),
        ds.x[:128], ds.y[:128], n_workers=4, staleness=4, epochs=1,
        loss="cross_entropy", lr=0.05, seed=0,
    ))
