"""E15 (ablation) — Checkpoint/restart efficiency of training campaigns
at scale, and what node-local NVRAM buys.

The machines the keynote targets fail; a multi-day training campaign must
checkpoint.  Young/Daly analysis over node count x checkpoint tier.
Expected shape: efficiency degrades with node count (system MTBF shrinks);
NVRAM checkpointing recovers part of the loss; optimal intervals shrink
toward minutes at extreme scale.
"""

import tempfile

import numpy as np
import pytest

from conftest import print_experiment
from repro.hpc import SUMMIT_ERA, campaign_efficiency, daly_interval, mlp_profile
from repro.hpc.resilience import efficiency as modeled_efficiency
from repro.utils import format_table

NODES = (64, 1024, 16384, 131072)


def test_e15_resilience(benchmark):
    profile = mlp_profile([16384] * 10, batch_size=1024)  # ~2.4B params
    rows = []
    eff = {}
    for n in NODES:
        for tier in ("pfs", "nvram"):
            r = campaign_efficiency(profile, SUMMIT_ERA, n, tier_name=tier)
            eff[(n, tier)] = r["efficiency"]
            rows.append([
                n, tier, r["mtbf"] / 3600, r["checkpoint_time"],
                r["interval"] / 60, r["efficiency"],
            ])
    print_experiment(
        "E15  Training-campaign efficiency under failures (Young/Daly optimal checkpointing)",
        format_table(
            ["nodes", "ckpt tier", "system MTBF h", "ckpt s", "interval min", "efficiency"],
            rows,
        ),
    )

    # Efficiency monotonically degrades with scale (each tier).
    for tier in ("pfs", "nvram"):
        effs = [eff[(n, tier)] for n in NODES]
        assert effs == sorted(effs, reverse=True)
    # NVRAM checkpointing strictly better at every scale.
    for n in NODES:
        assert eff[(n, "nvram")] > eff[(n, "pfs")]
    # At extreme scale the PFS penalty is material (>1% of the machine).
    assert eff[(131072, "pfs")] < 0.95

    benchmark(lambda: campaign_efficiency(profile, SUMMIT_ERA, 16384, tier_name="nvram"))


def test_e15_measured_vs_modeled(benchmark):
    """The model, lived: run a real training loop under injected crashes
    at the modeled failure rate, checkpointing at the Daly interval, and
    compare the *measured* efficiency (from the run's time ledger) with
    the Young/Daly prediction.  The analytic column above is only
    trustworthy if the runtime reproduces it."""
    from repro.candle import build_p1b2_classifier
    from repro.datasets import make_tumor_expression
    from repro.resilience import FaultInjector, run_resilient_training

    d = make_tumor_expression(n_samples=256, n_genes=20, n_classes=4, seed=0)
    step_time, ckpt_time, restart_time = 1.0, 2.0, 2.0
    epochs, batch = 12, 8
    total_steps = int(np.ceil(len(d.x) / batch)) * epochs

    rows = []
    measured = {}
    for mtbf in (120.0, 400.0, float("inf")):
        crash_prob = 0.0 if mtbf == float("inf") else step_time / mtbf
        interval_steps = (
            total_steps if mtbf == float("inf")
            else max(1, int(round(daly_interval(ckpt_time, mtbf) / step_time)))
        )
        inj = FaultInjector(crash_prob=crash_prob, seed=42) if crash_prob else None
        model = build_p1b2_classifier(4, hidden=(16,), dropout=0.0)
        with tempfile.TemporaryDirectory() as tmp:
            _, rep = run_resilient_training(
                model, d.x, d.y, checkpoint_dir=tmp, epochs=epochs,
                batch_size=batch, loss="cross_entropy", seed=0,
                checkpoint_every=interval_steps, injector=inj,
                max_restarts=200, step_time_s=step_time,
                checkpoint_time_s=ckpt_time, restart_time_s=restart_time,
            )
        modeled = modeled_efficiency(
            total_steps * step_time, ckpt_time, restart_time, mtbf,
            interval_steps * step_time,
        ) if mtbf != float("inf") else 1.0
        measured[mtbf] = rep.measured_efficiency
        rows.append([
            "inf" if mtbf == float("inf") else f"{mtbf:.0f}",
            interval_steps, rep.restarts, rep.steps_replayed,
            rep.checkpoints_written, round(modeled, 4),
            round(rep.measured_efficiency, 4),
        ])

    print_experiment(
        "E15b  Measured vs modeled checkpoint/restart efficiency (injected faults)",
        format_table(
            ["MTBF s", "ckpt every", "restarts", "replayed", "ckpts",
             "modeled eff", "measured eff"],
            rows,
        ),
    )

    # No faults -> ledger overhead is checkpoint writes only.
    assert measured[float("inf")] > 0.9
    # More failures -> lower measured efficiency, same ordering as the model.
    assert measured[120.0] < measured[400.0] < measured[float("inf")]
    # The lived run lands near the analytic prediction at each MTBF.
    for mtbf in (120.0, 400.0):
        modeled = modeled_efficiency(
            total_steps * step_time, ckpt_time, restart_time, mtbf,
            max(1, int(round(daly_interval(ckpt_time, mtbf) / step_time))) * step_time,
        )
        assert abs(measured[mtbf] - modeled) < 0.15, (mtbf, measured[mtbf], modeled)

    def kernel():
        model = build_p1b2_classifier(4, hidden=(16,), dropout=0.0)
        with tempfile.TemporaryDirectory() as tmp:
            run_resilient_training(
                model, d.x[:64], d.y[:64], checkpoint_dir=tmp, epochs=1,
                batch_size=8, loss="cross_entropy", seed=0, checkpoint_every=8,
                injector=FaultInjector(crash_steps=(3,), seed=0),
            )

    benchmark(kernel)
