"""E15 (ablation) — Checkpoint/restart efficiency of training campaigns
at scale, and what node-local NVRAM buys.

The machines the keynote targets fail; a multi-day training campaign must
checkpoint.  Young/Daly analysis over node count x checkpoint tier.
Expected shape: efficiency degrades with node count (system MTBF shrinks);
NVRAM checkpointing recovers part of the loss; optimal intervals shrink
toward minutes at extreme scale.
"""

import numpy as np
import pytest

from conftest import print_experiment
from repro.hpc import SUMMIT_ERA, campaign_efficiency, daly_interval, mlp_profile
from repro.utils import format_table

NODES = (64, 1024, 16384, 131072)


def test_e15_resilience(benchmark):
    profile = mlp_profile([16384] * 10, batch_size=1024)  # ~2.4B params
    rows = []
    eff = {}
    for n in NODES:
        for tier in ("pfs", "nvram"):
            r = campaign_efficiency(profile, SUMMIT_ERA, n, tier_name=tier)
            eff[(n, tier)] = r["efficiency"]
            rows.append([
                n, tier, r["mtbf"] / 3600, r["checkpoint_time"],
                r["interval"] / 60, r["efficiency"],
            ])
    print_experiment(
        "E15  Training-campaign efficiency under failures (Young/Daly optimal checkpointing)",
        format_table(
            ["nodes", "ckpt tier", "system MTBF h", "ckpt s", "interval min", "efficiency"],
            rows,
        ),
    )

    # Efficiency monotonically degrades with scale (each tier).
    for tier in ("pfs", "nvram"):
        effs = [eff[(n, tier)] for n in NODES]
        assert effs == sorted(effs, reverse=True)
    # NVRAM checkpointing strictly better at every scale.
    for n in NODES:
        assert eff[(n, "nvram")] > eff[(n, "pfs")]
    # At extreme scale the PFS penalty is material (>1% of the machine).
    assert eff[(131072, "pfs")] < 0.95

    benchmark(lambda: campaign_efficiency(profile, SUMMIT_ERA, 16384, tier_name="nvram"))
