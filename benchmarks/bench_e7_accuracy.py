"""E7 — Benchmark accuracy: DL models vs classical baselines (C1/C2/C4/C5).

Every CANDLE-style workload against the matching classical method on
held-out data.  Expected shape: the DL model beats its baseline on every
planted-nonlinear-structure dataset.
"""

import numpy as np
import pytest

from conftest import print_experiment
from repro.candle import (
    KNNRegressor,
    build_imaging_classifier,
    LogisticRegression,
    MultitaskModel,
    PCA,
    RidgeRegression,
    build_amr_classifier,
    build_combo_mlp,
    build_nt3_classifier,
    build_p1b1_autoencoder,
    build_p1b2_classifier,
    fit_multitask,
)
from repro.datasets import (
    make_amr_genomes,
    make_tumor_images,
    make_autoencoder_expression,
    make_combo_response,
    make_medical_records,
    make_tumor_expression,
)
from repro.nn import metrics, train_val_split
from repro.utils import format_table


def _split(x, y, seed=0):
    return train_val_split(x, y, val_frac=0.3, rng=np.random.default_rng(seed))


def row_p1b1():
    # saturation=4: a genuinely nonlinear manifold, where the linear
    # bottleneck (PCA) hits a floor the autoencoder can go below.
    x, _ = make_autoencoder_expression(
        n_samples=800, n_genes=150, latent_dim=8, noise=0.2, saturation=4.0, seed=0
    )
    x_tr, _, x_te, _ = _split(x, None)
    ae = build_p1b1_autoencoder(150, latent_dim=8, hidden=(120, 60), activation="tanh")
    ae.fit(x_tr, None, epochs=200, lr=3e-3, batch_size=64, seed=0)
    dl = ae.evaluate(x_te, None)["loss"]
    pca = PCA(8).fit(x_tr)
    base = pca.reconstruction_mse(x_te)
    return ["p1b1 (autoencoder)", "recon MSE (lower better)", dl, base, dl < base]


def row_p1b2():
    ds = make_tumor_expression(n_samples=700, n_genes=150, n_classes=4, noise=0.6, seed=0)
    x_tr, y_tr, x_te, y_te = _split(ds.x, ds.y)
    m = build_p1b2_classifier(4, hidden=(128, 64), dropout=0.1)
    m.fit(x_tr, y_tr, epochs=25, loss="cross_entropy", lr=1e-3, seed=0)
    dl = metrics.accuracy(m.predict(x_te), y_te)
    base = metrics.accuracy(
        LogisticRegression(n_iter=400).fit(x_tr, y_tr).predict_proba(x_te), y_te
    )
    return ["p1b2 (tumor type)", "accuracy", dl, base, dl >= base - 0.02]


def row_nt3():
    ds = make_tumor_expression(n_samples=500, n_genes=200, n_classes=2, noise=0.8, seed=1)
    x = ds.as_conv_input()
    x_tr, y_tr, x_te, y_te = _split(x, ds.y)
    m = build_nt3_classifier(2, conv_filters=(16,), dense_units=(32,), kernel_size=7, dropout=0.1)
    m.fit(x_tr, y_tr, epochs=12, loss="cross_entropy", lr=1e-3, seed=0)
    dl = metrics.accuracy(m.predict(x_te), y_te)
    base = metrics.accuracy(
        LogisticRegression(n_iter=400).fit(x_tr[:, 0, :], y_tr).predict_proba(x_te[:, 0, :]), y_te
    )
    return ["nt3 (conv tumor/normal)", "accuracy", dl, base, dl >= base - 0.02]


def row_combo():
    ds = make_combo_response(n_samples=2500, seed=0)
    x_tr, y_tr, x_te, y_te = _split(ds.x, ds.y)
    # Standardize (fit on train): the raw dose column's scale otherwise
    # dominates the MLP's early optimization.
    mu, sd = x_tr.mean(axis=0), x_tr.std(axis=0) + 1e-9
    xs_tr, xs_te = (x_tr - mu) / sd, (x_te - mu) / sd
    m = build_combo_mlp(hidden=(128, 64), dropout=0.0)
    m.fit(xs_tr, y_tr.reshape(-1, 1), epochs=60, loss="mse", lr=3e-3, seed=0)
    dl = metrics.r2_score(m.predict(xs_te), y_te)
    base = metrics.r2_score(RidgeRegression(alpha=1.0).fit(x_tr, y_tr).predict(x_te), y_te)
    return ["combo (drug pair R2)", "R2", dl, base, dl > base]


def row_p3b1():
    ds = make_medical_records(n_docs=900, seed=0)
    idx = np.random.default_rng(0).permutation(len(ds.x))
    tr, te = idx[:650], idx[650:]
    m = MultitaskModel(ds.n_classes, shared_units=(128,), head_units=(32,), dropout=0.1)
    fit_multitask(m, ds.x[tr], {t: ds.labels[t][tr] for t in ds.tasks}, epochs=20, lr=1e-3, seed=0)
    preds = m.predict_all(ds.x[te])
    dl = float(np.mean([metrics.accuracy(preds[t], ds.labels[t][te]) for t in ds.tasks]))
    base_accs = []
    for t in ds.tasks:
        clf = LogisticRegression(n_iter=300).fit(ds.x[tr], ds.labels[t][tr])
        base_accs.append(metrics.accuracy(clf.predict_proba(ds.x[te]), ds.labels[t][te]))
    base = float(np.mean(base_accs))
    return ["p3b1 (multitask records)", "mean accuracy", dl, base, dl >= base - 0.03]


def row_amr():
    ds = make_amr_genomes(n_genomes=400, genome_length=2000, seed=0)
    x_tr, y_tr, x_te, y_te = _split(ds.x, ds.y)
    m = build_amr_classifier(hidden=(128, 64), dropout=0.1)
    m.fit(x_tr, y_tr.reshape(-1, 1).astype(float), epochs=25, loss="bce_logits", lr=1e-3, seed=0)
    dl = metrics.roc_auc(m.predict(x_te).ravel(), y_te)
    knn = KNNRegressor(k=5).fit(x_tr, y_tr.astype(float))
    base = metrics.roc_auc(knn.predict(x_te), y_te)
    return ["amr (resistance AUC)", "ROC AUC", dl, base, dl > base - 0.02]


def row_imaging():
    # Hard variant: equal nucleus density + per-patch standardization, so
    # only local shape/texture signal remains (no linear shortcut).
    ds = make_tumor_images(n_samples=300, size=20, equal_density=True, standardize=True, seed=0)
    x_tr, y_tr, x_te, y_te = _split(ds.x, ds.y)
    m = build_imaging_classifier(2, conv_filters=(8, 16), dense_units=(32,), dropout=0.0)
    m.fit(x_tr, y_tr, epochs=8, batch_size=32, loss="cross_entropy", lr=2e-3, seed=0)
    dl = metrics.accuracy(m.predict(x_te), y_te)
    flat_tr, flat_te = x_tr.reshape(len(x_tr), -1), x_te.reshape(len(x_te), -1)
    base = metrics.accuracy(
        LogisticRegression(n_iter=300).fit(flat_tr, y_tr).predict_proba(flat_te), y_te
    )
    return ["imaging (tumor grade conv2d)", "accuracy", dl, base, dl > base + 0.1]


def test_e7_accuracy_table(benchmark):
    rows = [row_p1b1(), row_p1b2(), row_nt3(), row_combo(), row_p3b1(), row_amr(), row_imaging()]
    table_rows = [[r[0], r[1], r[2], r[3], "yes" if r[4] else "NO"] for r in rows]
    print_experiment(
        "E7  DL benchmarks vs classical baselines (held-out data)",
        format_table(["benchmark", "metric", "DL", "baseline", "DL wins"], table_rows),
    )
    failures = [r[0] for r in rows if not r[4]]
    assert not failures, f"DL failed to beat baseline on: {failures}"

    benchmark(row_p1b1)
