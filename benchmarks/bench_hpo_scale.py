"""Durable elastic HPO benchmark: 10^4-trial campaigns over the on-disk queue.

Two entry points over :func:`repro.hpo.scale_bench.run_hpo_scale_bench`:

* ``pytest benchmarks/bench_hpo_scale.py --benchmark-only -s`` — smoke-mode
  run that prints the campaign tables and *gates on correctness*: zero
  lost and zero duplicated completions through seeded consumer kills and
  a driver kill/resume, the resumed ``ResultLog`` bit-identical to the
  uninterrupted run, and ASHA's time-to-target no worse than synchronous
  halving at equal worker count.  The <5% scheduler-overhead gate is
  informational in smoke mode (CI clocks are noisy) and enforced on the
  full run.
* ``python benchmarks/bench_hpo_scale.py [--smoke] [--out PATH]`` — the
  runner that emits ``BENCH_hpo_scale.json``; exits nonzero if any gate
  fails.  Equivalent to ``python -m repro hpo-scale-bench``.
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from conftest import print_experiment  # noqa: E402
from repro.hpo.scale_bench import (  # noqa: E402
    check_gates,
    format_results,
    run_hpo_scale_bench,
    write_results,
)


def test_hpo_scale_bench_smoke(benchmark):
    import tempfile

    from repro.hpo import ASHA, DurableTrialQueue, candle_mlp_space, run_elastic
    from repro.hpo.scale_bench import _budget_cost, _surrogate

    results = run_hpo_scale_bench(smoke=True)
    print_experiment("HPO scale benchmark (smoke)", format_results(results))

    failures = check_gates(results, smoke=True)
    assert not failures, "; ".join(failures)

    # Microbenchmark: one short durable ASHA campaign per round.
    space = candle_mlp_space()
    objective = _surrogate(space, seed=0)
    counter = [0]

    with tempfile.TemporaryDirectory(prefix="repro_hposcale_") as tmp:

        def durable_campaign():
            counter[0] += 1
            path = Path(tmp) / f"bench{counter[0]}.db"
            with DurableTrialQueue(path, lease_s=1e9, fast=True) as q:
                return run_elastic(
                    ASHA(space, seed=counter[0]), objective, 32, q,
                    n_workers=8, cost_model=_budget_cost,
                )

        benchmark(durable_campaign)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small trial counts (CI)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent.parent / "BENCH_hpo_scale.json",
        help="output JSON path (default: repo-root BENCH_hpo_scale.json)",
    )
    args = parser.parse_args(argv)

    results = run_hpo_scale_bench(smoke=args.smoke, seed=args.seed)
    print(format_results(results))
    out = write_results(results, args.out)
    print(f"\nwrote {out}")

    failures = check_gates(results, smoke=args.smoke)
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
