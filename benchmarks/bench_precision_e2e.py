"""E2E reduced-precision benchmark: measured wall-clock, not emulation.

The emulated E1 ablation (``bench_e1_precision.py``) answers the
*accuracy* half of claim C7 — reduced precision barely moves the
headline metric — but every format runs on the same float64 datapath, so
it can say nothing about *time*.  This runner closes that gap on the
p1b2 benchmark:

* **Training**: one measured train-step time per storage format —
  ``fp64`` (native :meth:`Model.fit`), ``fp32``/``bf16``/``fp16`` (the
  real narrow datapath via ``fit(precision=...)``), and
  ``fp32_emulated`` (the pre-existing ``PrecisionPolicy("fp32")``
  float64-datapath reference).  Loss trajectories are checked against
  the fp64 run per format so the speedups are parity-audited, not free.
* **Serving**: a fp32-trained p1b2 classifier is int8-quantized
  (:meth:`Model.quantize_int8`) and served through the micro-batching
  :class:`~repro.serve.InferenceServer`; throughput is scored against
  the fp32 *single-stream* baseline (one request at a time — the
  deployment pattern batching + quantization replaces), with AUC
  measured per datapath and a bit-identical check between served int8
  outputs and direct ``predict(precision="int8")``.

Output (``BENCH_precision.json``) validates against
:data:`repro.obs.schema.BENCH_PRECISION_SCHEMA`.  Acceptance gates, CI
enforced in full mode only (smoke shapes are too small for ratios to
mean anything — there the parity checks are the gate):

* int8 batched serving >= 2.0x fp32 single-stream throughput,
* int8 AUC within 1% of fp32 AUC,
* bf16 train step >= 1.3x the emulated-fp32 reference step.
"""

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.candle import get_benchmark  # noqa: E402
from repro.nn import train_val_split  # noqa: E402
from repro.nn.metrics import roc_auc  # noqa: E402
from repro.precision import PrecisionPolicy, train_with_policy  # noqa: E402
from repro.serve import BatchPolicy, InferenceServer  # noqa: E402

# Gates (full mode).
BF16_TRAIN_SPEEDUP_MIN = 1.3  # vs the emulated-fp32 reference step
INT8_SERVING_SPEEDUP_MIN = 2.0  # batched int8 vs fp32 single-stream
INT8_AUC_DROP_MAX = 0.01

# Per-format loss-trajectory tolerance vs the fp64 run, as a fraction
# of the *initial* fp64 loss (the problem's loss scale — the per-epoch
# loss itself decays toward zero, so a pointwise relative bound would
# amplify noise in the converged tail).  The emulated path shares the
# fp64 datapath (only the weights are rounded), so it tracks to ~1e-6.
# The real narrow datapaths round every kernel output and diverge
# chaotically after a few hundred Adam steps — the audit catches gross
# failures (NaN, stalled, wrong loss), so they get a 10% bound.
LOSS_PARITY_RTOL = {"fp32_emulated": 1e-6, "fp32": 1e-1, "bf16": 1e-1, "fp16": 1e-1}

TRAIN_FORMATS = ("fp64", "fp32_emulated", "fp32", "bf16", "fp16")


def _softmax(logits: np.ndarray) -> np.ndarray:
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def _mean_ovr_auc(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean one-vs-rest AUC over the classes present in ``labels``."""
    probs = _softmax(np.asarray(logits, dtype=np.float64))
    aucs = [
        roc_auc(probs[:, c], labels == c)
        for c in range(probs.shape[1])
        if 0 < int((labels == c).sum()) < len(labels)
    ]
    return float(np.mean(aucs))


def _fit_losses(bm, x, y, fmt, epochs, batch_size):
    """One training run of ``fmt``; returns (elapsed_s, losses, amp_stats)."""
    model = bm.build_model()
    if fmt == "fp32_emulated":
        t0 = time.perf_counter()
        losses = train_with_policy(
            model, x, y, PrecisionPolicy("fp32"),
            epochs=epochs, batch_size=batch_size, loss=bm.loss, lr=1e-3, seed=0,
        )
        return time.perf_counter() - t0, losses, None
    precision = None if fmt == "fp64" else fmt
    t0 = time.perf_counter()
    hist = model.fit(
        x, y, epochs=epochs, batch_size=batch_size,
        loss=bm.loss, lr=1e-3, seed=0, precision=precision,
    )
    return time.perf_counter() - t0, hist.series("loss"), getattr(hist, "precision", None)


def bench_train(bm, x, y, epochs, batch_size, reps):
    steps = epochs * ((len(x) + batch_size - 1) // batch_size)
    rows = []
    ref_losses = None
    by_format = {}
    for fmt in TRAIN_FORMATS:
        times = []
        losses = stats = None
        for _ in range(reps):
            elapsed, losses, stats = _fit_losses(bm, x, y, fmt, epochs, batch_size)
            times.append(elapsed)
        if fmt == "fp64":
            ref_losses = np.asarray(losses, dtype=np.float64)
        dev = float(
            np.max(np.abs(np.asarray(losses) - ref_losses)) / max(abs(ref_losses[0]), 1e-9)
        )
        row = {
            "format": fmt,
            "step_ms": statistics.median(times) / steps * 1e3,
            "speedup_vs_fp64": 0.0,  # filled below
            "final_loss": float(losses[-1]),
            "loss_dev_vs_fp64": dev,
        }
        if stats is not None:
            row["skipped_steps"] = int(stats["skipped_steps"])
            if stats.get("final_loss_scale") is not None:
                row["final_loss_scale"] = float(stats["final_loss_scale"])
        rows.append(row)
        by_format[fmt] = row
    for row in rows:
        row["speedup_vs_fp64"] = by_format["fp64"]["step_ms"] / max(row["step_ms"], 1e-12)
    return {
        "n_samples": int(len(x)),
        "n_features": int(x.shape[1]),
        "batch_size": int(batch_size),
        "epochs": int(epochs),
        "rows": rows,
        "bf16_vs_emulated_fp32_speedup": by_format["fp32_emulated"]["step_ms"]
        / max(by_format["bf16"]["step_ms"], 1e-12),
        "bf16_vs_fp32_speedup": by_format["fp32"]["step_ms"]
        / max(by_format["bf16"]["step_ms"], 1e-12),
        "bf16_vs_fp64_speedup": by_format["fp64"]["step_ms"]
        / max(by_format["bf16"]["step_ms"], 1e-12),
    }


def _throughput(fn, n_requests, reps):
    """Median requests/s of ``fn`` (which serves ``n_requests``)."""
    rates = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        rates.append(n_requests / (time.perf_counter() - t0))
    return statistics.median(rates)


def bench_serving(bm, x_tr, y_tr, x_te, y_te, epochs, batch_size, reps):
    # The deployed model: fp32 weights (half the checkpoint bytes), then
    # int8-quantized on the training data as calibration set.
    model64 = bm.build_model()
    model64.fit(x_tr, y_tr, epochs=epochs, batch_size=batch_size, loss=bm.loss, lr=1e-3, seed=0)
    model = bm.build_model()
    model.fit(
        x_tr, y_tr, epochs=epochs, batch_size=batch_size,
        loss=bm.loss, lr=1e-3, seed=0, precision="fp32",
    )
    plan = model.quantize_int8(x_tr)

    x_eval = np.asarray(x_te, dtype=np.float32)
    auc = {
        "fp64": _mean_ovr_auc(model64.predict(x_te), y_te),
        "fp32": _mean_ovr_auc(model.predict(x_eval, precision="fp32"), y_te),
        "int8": _mean_ovr_auc(model.predict(x_eval, precision="int8"), y_te),
    }

    n = len(x_eval)

    def single_stream(precision):
        def run():
            for i in range(n):
                model.predict(x_eval[i : i + 1], precision=precision)
        return run

    def batched(precision):
        server = InferenceServer(
            model,
            BatchPolicy(max_batch_size=64, max_wait_s=0.0, max_queue=max(2 * n, 64)),
            precision=precision,
        )

        def run():
            for i in range(n):
                server.submit(x_eval[i])
            server.drain()
        return run

    fp32_single = _throughput(single_stream("fp32"), n, reps)
    int8_single = _throughput(single_stream("int8"), n, reps)
    fp32_batched = _throughput(batched("fp32"), n, reps)
    int8_batched = _throughput(batched("int8"), n, reps)

    # Bit-identical check: every served int8 result must equal the
    # direct predict row for the same sample.
    server = InferenceServer(
        model,
        BatchPolicy(max_batch_size=64, max_wait_s=0.0, max_queue=max(2 * n, 64)),
        precision="int8",
    )
    requests = [server.submit(x_eval[i]) for i in range(n)]
    server.drain()
    direct = model.predict(x_eval, precision="int8")
    bit_identical = all(
        req.status == "completed" and np.array_equal(req.result, direct[i])
        for i, req in enumerate(requests)
    )

    return {
        "n_eval": int(n),
        "auc": auc,
        "auc_drop_int8_vs_fp32": auc["fp32"] - auc["int8"],
        "fp32_single_stream_rps": fp32_single,
        "fp32_batched_rps": fp32_batched,
        "int8_single_stream_rps": int8_single,
        "int8_batched_rps": int8_batched,
        "served_bit_identical": bool(bit_identical),
        "weight_bytes": {
            "fp64": int(sum(p.data.nbytes for p in model64.parameters())),
            "fp32": int(sum(p.data.nbytes for p in model.parameters())),
            "int8": int(plan.weight_bytes()),
        },
    }


def run_suite(smoke: bool = False, reps: int = None):
    reps = reps if reps is not None else (1 if smoke else 3)
    bm = get_benchmark("p1b2")
    x, y = bm.make_data(seed=0)
    if smoke:
        x, y = x[:200], y[:200]
    x_tr, y_tr, x_te, y_te = train_val_split(x, y, val_frac=0.2, rng=np.random.default_rng(0))
    epochs = 2 if smoke else 3
    batch_size = 32

    train = bench_train(bm, x_tr, y_tr, epochs, batch_size, reps)
    serving = bench_serving(bm, x_tr, y_tr, x_te, y_te, epochs, batch_size, reps)

    parity_ok = all(
        row["loss_dev_vs_fp64"] <= LOSS_PARITY_RTOL[row["format"]]
        for row in train["rows"]
        if row["format"] in LOSS_PARITY_RTOL
    )
    bf16_speedup = train["bf16_vs_emulated_fp32_speedup"]
    int8_speedup = serving["int8_batched_rps"] / max(serving["fp32_single_stream_rps"], 1e-12)
    auc_drop = serving["auc_drop_int8_vs_fp32"]
    return {
        "meta": {
            "numpy": np.__version__,
            "smoke": bool(smoke),
            "reps": int(reps),
            "benchmark": "p1b2",
        },
        "train": train,
        "serving": serving,
        "acceptance": {
            "bf16_train_speedup": bf16_speedup,
            "bf16_train_speedup_min": BF16_TRAIN_SPEEDUP_MIN,
            "bf16_train_ok": bool(bf16_speedup >= BF16_TRAIN_SPEEDUP_MIN),
            "int8_serving_speedup": int8_speedup,
            "int8_serving_speedup_min": INT8_SERVING_SPEEDUP_MIN,
            "int8_serving_ok": bool(int8_speedup >= INT8_SERVING_SPEEDUP_MIN),
            "int8_auc_drop": auc_drop,
            "int8_auc_drop_max": INT8_AUC_DROP_MAX,
            "int8_auc_ok": bool(auc_drop <= INT8_AUC_DROP_MAX),
            "train_parity_ok": bool(parity_ok),
            "served_bit_identical": serving["served_bit_identical"],
            "gates_enforced": not smoke,
        },
    }


def format_results(r) -> str:
    lines = [
        f"numpy {r['meta']['numpy']}  smoke={r['meta']['smoke']}  reps={r['meta']['reps']}"
        f"  benchmark={r['meta']['benchmark']}",
        f"-- train (N{r['train']['n_samples']} d{r['train']['n_features']}"
        f" bs{r['train']['batch_size']} x{r['train']['epochs']} epochs)",
    ]
    for row in r["train"]["rows"]:
        extra = ""
        if "skipped_steps" in row:
            extra = f"  skipped={row['skipped_steps']}"
        lines.append(
            f"   {row['format']:<14} step {row['step_ms']:8.3f} ms"
            f"  x{row['speedup_vs_fp64']:.2f} vs fp64"
            f"  loss_dev {row['loss_dev_vs_fp64']:.2e}{extra}"
        )
    s = r["serving"]
    lines += [
        f"   bf16 vs emulated-fp32 x{r['train']['bf16_vs_emulated_fp32_speedup']:.2f}"
        f"  vs real-fp32 x{r['train']['bf16_vs_fp32_speedup']:.2f}"
        f"  vs fp64 x{r['train']['bf16_vs_fp64_speedup']:.2f}",
        f"-- serving (n_eval={s['n_eval']})",
        f"   auc fp64 {s['auc']['fp64']:.4f}  fp32 {s['auc']['fp32']:.4f}"
        f"  int8 {s['auc']['int8']:.4f}  (drop {s['auc_drop_int8_vs_fp32']:+.4f})",
        f"   fp32 single-stream {s['fp32_single_stream_rps']:9.1f} req/s"
        f"   batched {s['fp32_batched_rps']:9.1f} req/s",
        f"   int8 single-stream {s['int8_single_stream_rps']:9.1f} req/s"
        f"   batched {s['int8_batched_rps']:9.1f} req/s",
        f"   served int8 bit-identical to predict: {s['served_bit_identical']}",
        f"   weight bytes: fp64 {s['weight_bytes']['fp64']}  fp32 {s['weight_bytes']['fp32']}"
        f"  int8 {s['weight_bytes']['int8']}",
    ]
    a = r["acceptance"]
    lines.append(
        f"-- acceptance: bf16 train x{a['bf16_train_speedup']:.2f}"
        f" (min {a['bf16_train_speedup_min']}, ok={a['bf16_train_ok']}),"
        f" int8 serving x{a['int8_serving_speedup']:.2f}"
        f" (min {a['int8_serving_speedup_min']}, ok={a['int8_serving_ok']}),"
        f" auc drop {a['int8_auc_drop']:+.4f} (max {a['int8_auc_drop_max']},"
        f" ok={a['int8_auc_ok']}), parity_ok={a['train_parity_ok']},"
        f" bit_identical={a['served_bit_identical']},"
        f" gates_enforced={a['gates_enforced']}"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small subset + 1 rep (CI): parity gates only, no speedup gates",
    )
    parser.add_argument("--reps", type=int, default=None, help="timing repetitions")
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent.parent / "BENCH_precision.json",
        help="output JSON path (default: repo-root BENCH_precision.json)",
    )
    args = parser.parse_args(argv)

    results = run_suite(smoke=args.smoke, reps=args.reps)
    print(format_results(results))
    args.out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.out}")

    a = results["acceptance"]
    failures = []
    # Parity is the gate in every mode: wrong numbers fail even at smoke
    # shapes, where timing ratios are noise.
    if not a["train_parity_ok"]:
        failures.append("loss trajectories diverge from fp64 beyond tolerance")
    if not a["served_bit_identical"]:
        failures.append("served int8 outputs differ from Model.predict(precision='int8')")
    if not a["int8_auc_ok"]:
        failures.append(
            f"int8 AUC drop {a['int8_auc_drop']:.4f} exceeds {a['int8_auc_drop_max']}"
        )
    if a["gates_enforced"]:
        if not a["bf16_train_ok"]:
            failures.append(
                f"bf16 train speedup {a['bf16_train_speedup']:.2f}x"
                f" < {a['bf16_train_speedup_min']}x vs emulated fp32"
            )
        if not a["int8_serving_ok"]:
            failures.append(
                f"int8 serving speedup {a['int8_serving_speedup']:.2f}x"
                f" < {a['int8_serving_speedup_min']}x vs fp32 single-stream"
            )
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
