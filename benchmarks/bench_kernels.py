"""Kernel microbenchmarks for the NumPy training engine.

Two entry points over :func:`repro.perf.bench.run_suite`:

* ``pytest benchmarks/bench_kernels.py --benchmark-only -s`` — smoke-mode
  run that prints the suite tables and *gates on correctness* (fused ops
  must match their unfused compositions; the optimized conv kernels must
  match the frozen pre-PR kernels).  Smoke shapes are tiny, so the timing
  ratios are not meaningful here — only the parity checks are.
* ``python benchmarks/bench_kernels.py [--smoke] [--reps N] [--out PATH]``
  — the runner that emits ``BENCH_kernels.json``; exits nonzero if any
  parity check fails.  Full mode records the speedup trajectory
  (``acceptance`` section) future PRs regress against.
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from conftest import print_experiment  # noqa: E402
from repro.perf.bench import format_results, run_suite  # noqa: E402


def test_kernel_bench_smoke(benchmark):
    import numpy as np

    from repro.nn import Tensor, no_grad
    from repro.nn import functional as F

    results = run_suite(smoke=True)
    print_experiment("Kernel microbenchmarks (smoke shapes)", format_results(results))

    # The gate: fused must match unfused, optimized conv must match the
    # frozen pre-PR kernels.  Timings at smoke shapes are noise.
    fused = results["fused"]
    assert fused["linear_act"]["ok"], f"linear_act mismatch: {fused['linear_act']}"
    assert fused["softmax_cross_entropy"]["ok"], (
        f"softmax_cross_entropy mismatch: {fused['softmax_cross_entropy']}"
    )
    for section in ("conv1d_forward", "conv2d_forward"):
        for row in results[section]:
            assert row["max_diff"] < 1e-9, f"{section} {row['shape']}: diff {row['max_diff']}"

    rng = np.random.default_rng(0)
    xt = Tensor(rng.standard_normal((4, 2, 16, 16)))
    wt = Tensor(rng.standard_normal((4, 2, 3, 3)))
    bt = Tensor(rng.standard_normal(4))

    def conv_fwd():
        with no_grad():
            return F.conv2d(xt, wt, bt, stride=1, padding=1)

    benchmark(conv_fwd)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny shapes (CI): parity gate only")
    parser.add_argument("--reps", type=int, default=None, help="timing repetitions per kernel")
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent.parent / "BENCH_kernels.json",
        help="output JSON path (default: repo-root BENCH_kernels.json)",
    )
    args = parser.parse_args(argv)

    results = run_suite(smoke=args.smoke, reps=args.reps)
    print(format_results(results))
    args.out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.out}")

    if not results["acceptance"]["parity_ok"]:
        print("FAIL: fused/unfused or optimized/reference outputs disagree", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
