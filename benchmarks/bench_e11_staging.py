"""E11 — NVRAM staging policies (claim C12).

Total exposed I/O time over a 20-epoch training run for each staging
policy, sweeping the dataset-to-NVRAM ratio.  Expected shape: NVRAM
prefetch recovers most of the PFS penalty while the dataset fits; beyond
capacity the advantage shrinks gracefully; the DRAM cache dominates for
small datasets.
"""

import numpy as np
import pytest

from conftest import print_experiment
from repro.hpc import SUMMIT_ERA, DatasetSpec, StagingSimulator, compare_policies
from repro.utils import format_table

N_EPOCHS = 20
# summit_era usable NVRAM for data = 0.8 TB (half of 1.6 TB).
SIZES_GB = (50, 200, 600, 1200, 2400)


def test_e11_staging_policies(benchmark):
    rows = []
    results = {}
    for gb in SIZES_GB:
        ds = DatasetSpec(bytes_total=gb * 1e9, samples=int(1e6))
        totals = compare_policies(SUMMIT_ERA, ds, n_epochs=N_EPOCHS)
        results[gb] = totals
        rows.append([
            gb,
            totals["pfs_direct"],
            totals["nvram_prefetch"],
            totals["dram_cache"],
            totals["pfs_direct"] / totals["nvram_prefetch"],
        ])
    print_experiment(
        f"E11  Exposed I/O time over {N_EPOCHS} epochs by staging policy (seconds)",
        format_table(["dataset GB", "pfs_direct", "nvram_prefetch", "dram_cache", "prefetch speedup"], rows),
    )

    for gb in SIZES_GB:
        # Staging never loses to direct PFS reads over a long-enough run.
        assert results[gb]["nvram_prefetch"] <= results[gb]["pfs_direct"] * 1.01
    # While the dataset fits NVRAM, prefetch approaches the physical cap
    # (NVRAM/PFS bandwidth ratio = 6/2.5 = 2.4x)...
    assert results[600]["pfs_direct"] / results[600]["nvram_prefetch"] > 2.0
    # ...and the advantage shrinks once it spills.
    fit_speedup = results[600]["pfs_direct"] / results[600]["nvram_prefetch"]
    spill_speedup = results[2400]["pfs_direct"] / results[2400]["nvram_prefetch"]
    assert spill_speedup < fit_speedup
    # Small datasets: DRAM cache is at least as good as NVRAM prefetch.
    assert results[50]["dram_cache"] <= results[50]["nvram_prefetch"] * 1.01

    ds = DatasetSpec(bytes_total=600e9, samples=int(1e6))
    benchmark(lambda: StagingSimulator(SUMMIT_ERA, ds, "nvram_prefetch").total_exposed_time(N_EPOCHS))
