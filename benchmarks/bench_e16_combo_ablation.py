"""E16 (ablation) — Combo architecture: two-tower vs flat MLP vs linear,
across planted synergy strengths.

DESIGN.md's Combo entry commits to the two-tower topology with a
symmetric (sum + product) merge; this ablation justifies it: the product
merge carries the pairwise interaction, so the tower's advantage over the
flat MLP should *grow* with the planted synergy strength, while the
linear baseline stays flat (it can never see the interaction).
"""

import numpy as np
import pytest

from conftest import print_experiment
from repro.candle import ComboModel, RidgeRegression, build_combo_mlp
from repro.datasets import make_combo_response
from repro.nn import metrics, train_val_split
from repro.utils import format_table

STRENGTHS = (0.0, 1.5, 3.0)


def _r2(model_kind: str, strength: float, seed: int = 0) -> float:
    ds = make_combo_response(
        n_samples=2400, n_drugs=15, synergy_strength=strength,
        response_noise=0.02, seed=seed,
    )
    x_tr, y_tr, x_te, y_te = train_val_split(ds.x, ds.y, val_frac=0.3, rng=np.random.default_rng(seed))
    if model_kind == "ridge":
        model = RidgeRegression(alpha=1.0).fit(x_tr, y_tr)
        return metrics.r2_score(model.predict(x_te), y_te)
    mu, sd = x_tr.mean(axis=0), x_tr.std(axis=0) + 1e-9
    xs_tr, xs_te = (x_tr - mu) / sd, (x_te - mu) / sd
    if model_kind == "flat":
        model = build_combo_mlp(hidden=(96, 48), dropout=0.0)
    else:
        model = ComboModel(ds.n_cell_features, ds.n_drug_features,
                           tower_units=(64, 32), head_units=(64, 32))
    model.fit(xs_tr, y_tr.reshape(-1, 1), epochs=40, batch_size=32, loss="mse", lr=3e-3, seed=0)
    return metrics.r2_score(model.predict(xs_te), y_te)


def test_e16_combo_architecture_ablation(benchmark):
    rows = []
    results = {}
    for strength in STRENGTHS:
        r2s = {kind: _r2(kind, strength) for kind in ("ridge", "flat", "tower")}
        results[strength] = r2s
        rows.append([strength, r2s["ridge"], r2s["flat"], r2s["tower"],
                     r2s["tower"] - r2s["ridge"]])
    print_experiment(
        "E16  Combo architecture ablation: held-out R2 vs planted synergy strength",
        format_table(["synergy strength", "ridge", "flat MLP", "two-tower", "tower - ridge"], rows),
    )

    # Nonlinear models beat the linear baseline at every strength.
    for s in STRENGTHS:
        assert results[s]["tower"] > results[s]["ridge"]
        assert results[s]["flat"] > results[s]["ridge"]
    # The nonlinear advantage over ridge does not shrink as the
    # interaction signal grows (ridge can't represent it at all).
    gaps = [results[s]["tower"] - results[s]["ridge"] for s in STRENGTHS]
    assert gaps[-1] >= gaps[0] - 0.05

    benchmark(lambda: _r2("ridge", 1.5))
