"""Batched inference serving benchmark.

Two entry points over :func:`repro.serve.bench.run_serving_bench`:

* ``pytest benchmarks/bench_serving.py --benchmark-only -s`` — smoke-mode
  run that prints the serving tables and *gates on correctness*: served
  outputs bit-identical to ``Model.predict``, request accounting exactly
  balanced, batching faster than unbatched.  Smoke request counts are
  small, so the speedup gate is relaxed; the full-mode gate is 3x.
* ``python benchmarks/bench_serving.py [--smoke] [--out PATH]`` — the
  runner that emits ``BENCH_serving.json``; exits nonzero if any gate
  fails.  Equivalent to ``python -m repro serve-bench``.
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from conftest import print_experiment  # noqa: E402
from repro.serve.bench import format_results, run_serving_bench  # noqa: E402


def test_serving_bench_smoke(benchmark):
    import numpy as np

    from repro.candle.registry import get_benchmark
    from repro.serve import BatchPolicy, InferenceServer

    results = run_serving_bench(smoke=True)
    print_experiment("Serving benchmark (smoke request counts)", format_results(results))

    acc = results["acceptance"]
    assert acc["parity_ok"], "served outputs differ from Model.predict"
    assert acc["accounting_ok"], "request accounting does not balance"
    assert acc["speedup"] > 1.0, f"batching slower than unbatched: {acc['speedup']:.2f}x"
    assert results["overload"]["shed"] > 0, "overload scenario shed nothing"

    spec = get_benchmark("p1b2")
    model = spec.materialize()
    x = np.random.default_rng(0).standard_normal((64,) + spec.input_shape())
    server = InferenceServer(model, BatchPolicy(max_batch_size=64, max_wait_s=0.0))

    def serve_batch():
        for i in range(len(x)):
            server.submit(x[i])
        return server.drain()

    benchmark(serve_batch)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small request counts (CI)")
    parser.add_argument("--requests", type=int, default=None, help="override request count")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent.parent / "BENCH_serving.json",
        help="output JSON path (default: repo-root BENCH_serving.json)",
    )
    args = parser.parse_args(argv)

    results = run_serving_bench(smoke=args.smoke, seed=args.seed, n_requests=args.requests)
    print(format_results(results))
    args.out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.out}")

    acc = results["acceptance"]
    if not acc["parity_ok"]:
        print("FAIL: served outputs differ from Model.predict", file=sys.stderr)
        return 1
    if not acc["accounting_ok"]:
        print("FAIL: request accounting does not balance", file=sys.stderr)
        return 1
    if not acc["speedup_ok"]:
        print(
            f"FAIL: batched speedup {acc['speedup']:.2f}x below gate {acc['speedup_min']}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
