"""E8 — DL-supervised adaptive MD sampling (claim C3).

Basin coverage per unit simulation budget: adaptive (autoencoder-novelty-
guided) vs uniform restarts vs replica (restart-from-endpoint).  Expected
shape: adaptive >= uniform >> replica.
"""

import numpy as np
import pytest

from conftest import print_experiment
from repro.datasets import langevin_trajectory, make_rugged_landscape
from repro.utils import format_table
from repro.workflow import run_sampling_campaign

SETTINGS = dict(n_rounds=7, trajectories_per_round=3, steps_per_trajectory=200, temperature=0.15, extent=9.0)


def test_e8_md_supervision(benchmark):
    pot = make_rugged_landscape(n_wells=16, extent=8.0, min_separation=2.0, seed=1)
    rows = []
    coverage = {}
    curves = {}
    for strategy in ("uniform", "adaptive", "replica"):
        finals = []
        curve_acc = None
        for seed in range(4):
            res = run_sampling_campaign(pot, strategy=strategy, seed=seed, **SETTINGS)
            finals.append(res.final_coverage)
            c = np.array(res.coverage_curve)
            curve_acc = c if curve_acc is None else curve_acc + c
        coverage[strategy] = float(np.mean(finals))
        curves[strategy] = curve_acc / 4
        rows.append([strategy, coverage[strategy]] + list(np.round(curves[strategy], 3)))
    header = ["strategy", "final cov"] + [f"rnd{i+1}" for i in range(SETTINGS["n_rounds"])]
    print_experiment(
        "E8  Basin coverage vs sampling strategy (16-well landscape, 4 seeds)",
        format_table(header, rows),
    )

    assert coverage["adaptive"] > coverage["replica"], "supervision must beat blind continuation"
    assert coverage["adaptive"] >= coverage["uniform"] - 1e-9, "supervision must not lose to uniform"

    benchmark(
        lambda: langevin_trajectory(pot, np.zeros(2), n_steps=200, rng=np.random.default_rng(0))
    )
