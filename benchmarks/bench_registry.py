"""Content-addressed model registry benchmark.

Two entry points over :func:`repro.registry.bench.run_registry_bench`:

* ``pytest benchmarks/bench_registry.py --benchmark-only -s`` — smoke-mode
  run that prints the registry tables and *gates on correctness*: zero
  torn reads while a publisher churns versions under concurrent reader
  processes, store round-trip outputs bit-identical to ``Model.predict``,
  corrupt blobs refused, warm-cache hit rate over the floor, aliases of
  identical bytes sharing one resident model, and re-``scan()`` keeping
  registry loads flat.
* ``python benchmarks/bench_registry.py [--smoke] [--out PATH]`` — the
  runner that emits ``BENCH_registry.json``; exits nonzero if any gate
  fails.  Equivalent to ``python -m repro registry-bench``.
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from conftest import print_experiment  # noqa: E402
from repro.registry.bench import (  # noqa: E402
    check_gates,
    format_results,
    run_registry_bench,
    write_results,
)


def test_registry_bench_smoke(benchmark):
    from repro.registry import ArtifactStore
    from repro.registry.bench import BENCHMARK, CHURN_HPARAMS, _tiny_model

    results = run_registry_bench(smoke=True)
    print_experiment("Registry benchmark (smoke churn)", format_results(results))

    failures = check_gates(results, smoke=True)
    assert not failures, "; ".join(failures)

    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro_regbench_") as tmp:
        store = ArtifactStore(tmp, capacity=2, warmup=False)
        model, _ = _tiny_model(0)
        param = next(iter(model.parameters()))
        counter = [0]

        def publish_and_load():
            counter[0] += 1
            param.data.flat[0] = float(counter[0])
            ref = store.publish(model, "bench", BENCHMARK, hparams=CHURN_HPARAMS)
            return store.get(ref)

        benchmark(publish_and_load)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small churn (CI)")
    parser.add_argument("--artifacts", type=int, default=None,
                        help="override churned artifact count")
    parser.add_argument("--readers", type=int, default=None,
                        help="override concurrent reader count")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent.parent / "BENCH_registry.json",
        help="output JSON path (default: repo-root BENCH_registry.json)",
    )
    args = parser.parse_args(argv)

    results = run_registry_bench(
        smoke=args.smoke, seed=args.seed,
        n_artifacts=args.artifacts, n_readers=args.readers,
    )
    print(format_results(results))
    out = write_results(results, args.out)
    print(f"\nwrote {out}")

    failures = check_gates(results, smoke=args.smoke)
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
