"""E14 (ablation) — Gradient sparsification: accuracy vs communication
volume (the keynote's "future DNNs may rely less on dense communication
patterns").

Top-k SGD with error feedback across sparsity levels, on real training.
Expected shape: with error feedback, 10-100x communication reduction at
near-dense accuracy; without it, aggressive sparsity stalls.  The second
table converts the byte savings into simulated allreduce time on the
2017-era fabric.
"""

import numpy as np
import pytest

from conftest import print_experiment
from repro.candle import build_p1b2_classifier
from repro.datasets import make_tumor_expression
from repro.hpc import SimCluster, allreduce_ring
from repro.utils import format_table
from repro.workflow import train_topk_sgd

FRACTIONS = (1.0, 0.1, 0.01, 0.001)
EPOCHS = 6


def test_e14_gradient_compression(benchmark):
    ds = make_tumor_expression(n_samples=256, n_genes=60, n_classes=3, seed=0)

    rows = []
    results = {}
    for frac in FRACTIONS:
        model = build_p1b2_classifier(3, hidden=(32,), dropout=0.0)
        res = train_topk_sgd(model, ds.x, ds.y, fraction=frac, epochs=EPOCHS,
                             loss="cross_entropy", lr=0.05, seed=0)
        results[frac] = res
        rows.append([frac, res.final_loss, res.compression_ratio, res.comm_bytes / 1e6])
    # No-error-feedback control at the most aggressive level.
    model = build_p1b2_classifier(3, hidden=(32,), dropout=0.0)
    no_ef = train_topk_sgd(model, ds.x, ds.y, fraction=0.01, error_feedback=False,
                           epochs=EPOCHS, loss="cross_entropy", lr=0.05, seed=0)
    rows.append(["0.01 (no EF)", no_ef.final_loss, no_ef.compression_ratio, no_ef.comm_bytes / 1e6])
    print_experiment(
        "E14a Top-k sparsified SGD: final loss vs kept fraction (with error feedback)",
        format_table(["kept fraction", "final loss", "compression", "MB sent"], rows),
    )

    dense = results[1.0]
    # 1% sparsity with EF: near-dense accuracy at >20x compression.
    assert results[0.01].final_loss < dense.final_loss * 3 + 0.1
    assert results[0.01].compression_ratio > 20
    # Error feedback is essential at this sparsity.
    assert no_ef.final_loss > results[0.01].final_loss * 2

    # E14b: what the byte savings buy on the simulated fabric.
    cluster = SimCluster.build("summit_era", 256, "fat_tree")
    grad_bytes = 500e6 * 2  # a 500M-param fp16 model
    rows = []
    for frac in FRACTIONS:
        sent = grad_bytes * frac * 1.5  # 12B/entry sparse vs 8B dense
        t = allreduce_ring(cluster.network, 256, min(sent, grad_bytes))
        rows.append([frac, min(sent, grad_bytes) / 1e6, t * 1e3])
    print_experiment(
        "E14b Simulated 256-node allreduce time for the sparsified gradient",
        format_table(["kept fraction", "MB on wire", "allreduce ms"], rows),
    )

    benchmark(lambda: train_topk_sgd(
        build_p1b2_classifier(3, hidden=(16,), dropout=0.0),
        ds.x[:128], ds.y[:128], fraction=0.1, epochs=1,
        loss="cross_entropy", lr=0.05, seed=0,
    ))
