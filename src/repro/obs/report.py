"""Trace analysis: where the time went, and what watching it cost.

:func:`summarize_trace` reduces an exported record list to the three
answers the ``repro trace`` subcommand prints:

* **per-kind breakdown** — wall time by span kind, split into total
  (span durations, children included) and *self* time (durations minus
  child spans), so nested instrumentation does not double-count;
* **critical path** — the greedy heaviest-child walk from the longest
  root span down, i.e. the chain of nested spans that bounds the run;
* **overhead estimate** — the recorder's own bookkeeping cost, from the
  record count times a per-record cost calibrated on the spot (timing a
  scratch recorder), as a fraction of the traced wall clock.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from .trace import TraceRecorder


def calibrate_record_cost(n: int = 2000) -> float:
    """Measured seconds per begin/end span pair on this machine, now."""
    rec = TraceRecorder()
    t0 = time.perf_counter()
    for i in range(n):
        rec.end(rec.begin("calib", kind="calib", i=i))
    return (time.perf_counter() - t0) / n


def summarize_trace(records: List[Dict], record_cost_s: Optional[float] = None) -> Dict:
    """Aggregate a trace record list (see module docstring for fields)."""
    spans = [r for r in records if r.get("type") == "span"]
    events = [r for r in records if r.get("type") == "event"]
    metrics = [r for r in records if r.get("type") == "metric"]

    by_id = {s["id"]: s for s in spans}
    children: Dict[Optional[int], List[Dict]] = {}
    for s in spans:
        children.setdefault(s["parent"], []).append(s)

    # Per-kind totals; self time subtracts direct children (clamped at 0:
    # separately-timed child intervals can overrun their parent by clock
    # resolution).
    kinds: Dict[str, Dict] = {}
    for s in spans:
        child_wall = sum(c["dur_wall"] for c in children.get(s["id"], ()))
        s_self = max(s["dur_wall"] - child_wall, 0.0)
        k = kinds.setdefault(
            s["kind"], {"count": 0, "total_wall_s": 0.0, "self_wall_s": 0.0}
        )
        k["count"] += 1
        k["total_wall_s"] += s["dur_wall"]
        k["self_wall_s"] += s_self
    event_kinds: Dict[str, int] = {}
    for e in events:
        event_kinds[e["kind"]] = event_kinds.get(e["kind"], 0) + 1

    # Critical path: heaviest root, then heaviest child all the way down.
    path: List[Dict] = []
    roots = children.get(None, [])
    node = max(roots, key=lambda s: s["dur_wall"], default=None)
    while node is not None:
        kids = children.get(node["id"], [])
        child_wall = sum(c["dur_wall"] for c in kids)
        path.append({
            "name": node["name"],
            "kind": node["kind"],
            "dur_wall_s": node["dur_wall"],
            "self_wall_s": max(node["dur_wall"] - child_wall, 0.0),
        })
        node = max(kids, key=lambda s: s["dur_wall"], default=None)

    if spans or events:
        stamped = spans + events
        t_lo = min(r["t_wall"] for r in stamped)
        t_hi = max(r["t_wall"] + r.get("dur_wall", 0.0) for r in stamped)
        wall_span = t_hi - t_lo
    else:
        wall_span = 0.0

    cost = calibrate_record_cost() if record_cost_s is None else record_cost_s
    # An event is one timestamp+append, roughly half a span's two.
    overhead_s = cost * (len(spans) + 0.5 * len(events))
    return {
        "spans": len(spans),
        "events": len(events),
        "metrics": len(metrics),
        "wall_span_s": wall_span,
        "kinds": dict(sorted(kinds.items(), key=lambda kv: -kv[1]["total_wall_s"])),
        "event_kinds": dict(sorted(event_kinds.items())),
        "critical_path": path,
        "overhead": {
            "per_record_s": cost,
            "estimate_s": overhead_s,
            "estimate_frac": overhead_s / wall_span if wall_span > 0 else 0.0,
        },
    }


def format_summary(summary: Dict) -> str:
    """Human-readable rendering of :func:`summarize_trace` output."""
    lines = [
        f"trace: {summary['spans']} spans, {summary['events']} events, "
        f"{summary['metrics']} metrics over {summary['wall_span_s'] * 1e3:.2f} ms wall",
        "",
        f"{'span kind':<24} {'count':>7} {'total ms':>10} {'self ms':>10} {'self %':>7}",
    ]
    total_self = sum(k["self_wall_s"] for k in summary["kinds"].values()) or 1.0
    for kind, row in summary["kinds"].items():
        lines.append(
            f"{kind:<24} {row['count']:>7d} {row['total_wall_s'] * 1e3:>10.3f} "
            f"{row['self_wall_s'] * 1e3:>10.3f} {row['self_wall_s'] / total_self * 100:>6.1f}%"
        )
    if summary["event_kinds"]:
        lines.append("")
        lines.append("events: " + "  ".join(
            f"{kind}={n}" for kind, n in summary["event_kinds"].items()
        ))
    if summary["critical_path"]:
        lines.append("")
        lines.append("critical path (heaviest nested chain):")
        for depth, hop in enumerate(summary["critical_path"]):
            lines.append(
                f"  {'  ' * depth}{hop['name']} [{hop['kind']}] "
                f"{hop['dur_wall_s'] * 1e3:.3f} ms "
                f"(self {hop['self_wall_s'] * 1e3:.3f} ms)"
            )
    over = summary["overhead"]
    lines.append("")
    lines.append(
        f"recorder overhead ≈ {over['estimate_s'] * 1e3:.3f} ms "
        f"({over['estimate_frac'] * 100:.2f}% of traced wall, "
        f"{over['per_record_s'] * 1e9:.0f} ns/record)"
    )
    return "\n".join(lines)
