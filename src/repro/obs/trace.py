"""The trace recorder: nestable spans on dual clocks.

A :class:`TraceRecorder` collects *spans* (named intervals with
key-value attributes, nested via an explicit open stack) and *events*
(instants), each stamped on two clocks:

* **wall** — real seconds since the recorder was created
  (``time.perf_counter`` based, so durations are meaningful even though
  the epoch is arbitrary);
* **sim** — the discrete-event simulation clock, when one is attached
  (``recorder.sim_clock = lambda: loop.now``).  The HPO scheduler wires
  this up for the duration of a search so trial spans carry both the
  real compute time and the simulated campaign time.

The open/close invariant is enforced: ``end`` must close the innermost
open span, and a recorder that exits its ``with`` block cleanly with
spans still open raises.  Exceptional exits instead close the leftover
spans marked ``aborted`` — a crashed run still exports a balanced trace.

Entering the recorder as a context manager installs it as the process's
active recorder (:mod:`repro.obs.context`); every hook point in the
library reads that slot.  Detached cost at each hook site is one module
global read; attached cost is two clock reads and two dict operations
per span — gated below 5% on the MLP train step by
``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

from . import context
from .metrics import MetricsRegistry

#: Bumped whenever the exported record shapes change; the JSONL header
#: carries it and the validator refuses versions it does not know.
TRACE_SCHEMA_VERSION = 1


class TraceError(RuntimeError):
    """A span-stack invariant was violated (unbalanced open/close)."""


class TraceRecorder:
    """Collects spans, events, and metrics for one observed execution."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        sim_clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self._clock = clock or time.perf_counter
        #: Optional 0-arg callable returning the current simulated time.
        #: Mutable on purpose: subsystems that own a sim clock (the HPO
        #: scheduler's EventLoop) attach it for their scope and restore
        #: the previous value after.
        self.sim_clock = sim_clock
        self.metrics = MetricsRegistry()
        self.records: List[Dict] = []   # closed spans + events, close order
        self._stack: List[Dict] = []    # open spans, innermost last
        self._next_id = 1
        self._t0 = self._clock()
        self._prev_recorder: Optional[Any] = None
        self._entered = False

    # -- clocks ----------------------------------------------------------
    def now(self) -> float:
        """Wall seconds since the recorder was created."""
        return self._clock() - self._t0

    def sim_now(self) -> Optional[float]:
        sc = self.sim_clock
        return float(sc()) if sc is not None else None

    # -- spans -----------------------------------------------------------
    def begin(self, name: str, kind: str = "span", **attrs: Any) -> int:
        """Open a span nested under the innermost open span; returns its id."""
        span_id = self._next_id
        self._next_id += 1
        self._stack.append({
            "type": "span",
            "id": span_id,
            "parent": self._stack[-1]["id"] if self._stack else None,
            "name": name,
            "kind": kind,
            "t_wall": self.now(),
            "t_sim": self.sim_now(),
            "attrs": attrs,
        })
        return span_id

    def end(self, span_id: int, _unwind: bool = False, **attrs: Any) -> Dict:
        """Close the innermost open span (which must be ``span_id``).

        ``_unwind=True`` is the exception path used by :meth:`span`: an
        exception that escaped explicit ``begin``/``end`` hook sites
        leaves their spans open, so the enclosing ``with`` span closes
        them too (marked ``aborted``) instead of raising a
        :class:`TraceError` that would mask the original exception.
        """
        if not self._stack:
            raise TraceError(f"end(span {span_id}) with no open span")
        span = self._stack[-1]
        if span["id"] != span_id:
            if _unwind and any(s["id"] == span_id for s in self._stack):
                while self._stack[-1]["id"] != span_id:
                    self._close(self._stack.pop(), aborted=True)
                span = self._stack[-1]
            else:
                raise TraceError(
                    f"unbalanced span close: innermost open span is "
                    f"{span['name']!r} (id {span['id']}), got end({span_id})"
                )
        self._stack.pop()
        return self._close(span, **attrs)

    def _close(self, span: Dict, **attrs: Any) -> Dict:
        span["dur_wall"] = self.now() - span["t_wall"]
        sim = self.sim_now()
        span["dur_sim"] = (
            sim - span["t_sim"] if sim is not None and span["t_sim"] is not None else None
        )
        if attrs:
            span["attrs"].update(attrs)
        self.records.append(span)
        return span

    @contextmanager
    def span(self, name: str, kind: str = "span", **attrs: Any) -> Iterator[Dict]:
        """``with rec.span("search", kind="campaign.search"): ...``

        Yields the open span dict so the body can add attributes
        (``span["attrs"]["trials"] = n``) before it closes.
        """
        span_id = self.begin(name, kind=kind, **attrs)
        span = self._stack[-1]
        aborted = False
        try:
            yield span
        except BaseException:
            aborted = True
            span["attrs"]["aborted"] = True
            raise
        finally:
            self.end(span_id, _unwind=aborted)

    def add_complete(
        self,
        name: str,
        kind: str = "span",
        *,
        dur_wall: float,
        t_wall: Optional[float] = None,
        t_sim: Optional[float] = None,
        dur_sim: Optional[float] = None,
        **attrs: Any,
    ) -> Dict:
        """Record an already-measured span (begin and end in one call).

        The op-profiler path: the profiler times the op itself, then
        reports the finished interval here.  The span nests under the
        innermost currently-open span.  ``t_wall`` defaults to "it just
        ended": now minus its duration.
        """
        span_id = self._next_id
        self._next_id += 1
        span = {
            "type": "span",
            "id": span_id,
            "parent": self._stack[-1]["id"] if self._stack else None,
            "name": name,
            "kind": kind,
            "t_wall": (self.now() - dur_wall) if t_wall is None else t_wall,
            "dur_wall": dur_wall,
            "t_sim": self.sim_now() if t_sim is None else t_sim,
            "dur_sim": dur_sim,
            "attrs": attrs,
        }
        self.records.append(span)
        return span

    # -- events ----------------------------------------------------------
    def event(self, name: str, kind: str = "event", **attrs: Any) -> Dict:
        """Record an instantaneous event at the current stack position."""
        event_id = self._next_id
        self._next_id += 1
        record = {
            "type": "event",
            "id": event_id,
            "parent": self._stack[-1]["id"] if self._stack else None,
            "name": name,
            "kind": kind,
            "t_wall": self.now(),
            "t_sim": self.sim_now(),
            "attrs": attrs,
        }
        self.records.append(record)
        return record

    # -- introspection ---------------------------------------------------
    @property
    def open_spans(self) -> List[str]:
        return [s["name"] for s in self._stack]

    @property
    def balanced(self) -> bool:
        return not self._stack

    def spans(self, kind: Optional[str] = None) -> List[Dict]:
        """Closed spans, optionally filtered by exact kind."""
        return [
            r for r in self.records
            if r["type"] == "span" and (kind is None or r["kind"] == kind)
        ]

    def events(self, kind: Optional[str] = None) -> List[Dict]:
        return [
            r for r in self.records
            if r["type"] == "event" and (kind is None or r["kind"] == kind)
        ]

    def __len__(self) -> int:
        return len(self.records)

    # -- installation ----------------------------------------------------
    def __enter__(self) -> "TraceRecorder":
        if self._entered:
            raise TraceError("recorder context is not reentrant")
        self._entered = True
        self._prev_recorder = context.set_recorder(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        context.set_recorder(self._prev_recorder)
        self._prev_recorder = None
        self._entered = False
        if self._stack and exc_type is None:
            names = ", ".join(self.open_spans)
            raise TraceError(f"recorder exited with open spans: {names}")
        while self._stack:  # exceptional exit: close, mark, stay balanced
            self.end(self._stack[-1]["id"], aborted=True)


@contextmanager
def maybe_span(
    recorder: Optional["TraceRecorder"], name: str, kind: str = "span", **attrs: Any
) -> Iterator[Optional[Dict]]:
    """``recorder.span(...)`` that no-ops when ``recorder`` is None.

    The idiom for hook points that wrap a whole phase::

        rec = get_recorder()
        with maybe_span(rec, "search", "campaign.search") as span:
            ...
            if span is not None:
                span["attrs"]["trials"] = len(log)
    """
    if recorder is None:
        yield None
    else:
        with recorder.span(name, kind=kind, **attrs) as span:
            yield span
