"""Explicit schemas for every JSON artifact the repo emits, plus the
tiny validator that checks them.

Silent format drift is the failure mode: a benchmark runner reshapes its
output, nothing notices, and three PRs later the regression tooling is
comparing fields that no longer exist.  Each artifact therefore gets a
declared schema — the trace JSONL records (versioned via
:data:`~repro.obs.trace.TRACE_SCHEMA_VERSION`), ``BENCH_kernels.json``,
``BENCH_serving.json``, ``BENCH_serving_scale.json``, ``BENCH_obs.json``,
``BENCH_parallel.json``, ``BENCH_precision.json``, and
``BENCH_ddp_overlap.json``
— and CI validates the generated files against them
(``tests/test_schemas.py``).

The validator is a deliberately small JSON-Schema subset (type /
required / properties / items / enum / anyOf / minimum / null-unions /
additionalProperties) so it needs no third-party dependency; it raises
:class:`SchemaError` with a JSON-path to the offending value.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union


class SchemaError(ValueError):
    """A JSON value does not match its declared schema."""


_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "boolean": lambda v: isinstance(v, bool),
    # bool is an int subclass in Python; a schema saying "integer" must
    # not silently accept True.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate(value: Any, schema: Dict, path: str = "$") -> None:
    """Check ``value`` against ``schema``; raises :class:`SchemaError`."""
    if "anyOf" in schema:
        errors = []
        for i, sub in enumerate(schema["anyOf"]):
            try:
                validate(value, sub, path)
                break
            except SchemaError as e:
                errors.append(str(e))
        else:
            raise SchemaError(f"{path}: no anyOf branch matched ({'; '.join(errors)})")
        return

    declared = schema.get("type")
    if declared is not None:
        types = declared if isinstance(declared, (list, tuple)) else (declared,)
        if not any(_TYPE_CHECKS[t](value) for t in types):
            raise SchemaError(
                f"{path}: expected {'/'.join(types)}, got {type(value).__name__} ({value!r})"
            )

    if "enum" in schema and value not in schema["enum"]:
        raise SchemaError(f"{path}: {value!r} not in {schema['enum']}")

    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            raise SchemaError(f"{path}: {value!r} < minimum {schema['minimum']}")
        if "maximum" in schema and value > schema["maximum"]:
            raise SchemaError(f"{path}: {value!r} > maximum {schema['maximum']}")

    if isinstance(value, dict):
        props = schema.get("properties", {})
        for key in schema.get("required", ()):
            if key not in value:
                raise SchemaError(f"{path}: missing required key {key!r}")
        extra = schema.get("additionalProperties", True)
        for key, item in value.items():
            if key in props:
                validate(item, props[key], f"{path}.{key}")
            elif extra is False:
                raise SchemaError(f"{path}: unexpected key {key!r}")
            elif isinstance(extra, dict):
                validate(item, extra, f"{path}.{key}")

    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]")


# ----------------------------------------------------------------------
# Shorthand constructors (schemas below would be unreadable longhand)
# ----------------------------------------------------------------------
NUM: Dict = {"type": "number"}
NONNEG: Dict = {"type": "number", "minimum": 0}
INT: Dict = {"type": "integer"}
NONNEG_INT: Dict = {"type": "integer", "minimum": 0}
STR: Dict = {"type": "string"}
BOOL: Dict = {"type": "boolean"}
#: A number or null — sim-clock fields when no sim clock is attached,
#: and measured values that may be NaN (JSON round-trips them as floats).
OPT_NUM: Dict = {"type": ["number", "null"]}


def obj(required: Dict, optional: Optional[Dict] = None, extra: Union[bool, Dict] = False) -> Dict:
    """Object schema from {key: subschema} dicts; required keys enforced."""
    props = dict(required)
    if optional:
        props.update(optional)
    return {
        "type": "object",
        "required": sorted(required),
        "properties": props,
        "additionalProperties": extra,
    }


def arr(items: Dict) -> Dict:
    return {"type": "array", "items": items}


# ----------------------------------------------------------------------
# Trace JSONL records (schema_version 1)
# ----------------------------------------------------------------------
TRACE_HEADER_SCHEMA = obj(
    {
        "type": {"enum": ["header"]},
        "schema_version": {"type": "integer", "minimum": 1},
        "generator": STR,
        "spans": NONNEG_INT,
        "events": NONNEG_INT,
        "metrics": NONNEG_INT,
    },
)

TRACE_SPAN_SCHEMA = obj(
    {
        "type": {"enum": ["span"]},
        "id": {"type": "integer", "minimum": 1},
        "parent": {"type": ["integer", "null"]},
        "name": STR,
        "kind": STR,
        "t_wall": NONNEG,
        "dur_wall": NONNEG,
        "t_sim": OPT_NUM,
        "dur_sim": OPT_NUM,
        "attrs": {"type": "object"},
    },
)

TRACE_EVENT_SCHEMA = obj(
    {
        "type": {"enum": ["event"]},
        "id": {"type": "integer", "minimum": 1},
        "parent": {"type": ["integer", "null"]},
        "name": STR,
        "kind": STR,
        "t_wall": NONNEG,
        "t_sim": OPT_NUM,
        "attrs": {"type": "object"},
    },
)

TRACE_METRIC_SCHEMA = obj(
    {
        "type": {"enum": ["metric"]},
        "metric": {"enum": ["counter", "gauge", "histogram"]},
        "name": STR,
    },
    extra=True,  # per-instrument payload: value/min/max or bucket summary
)

#: Dispatch table the trace validator uses, keyed on the record's "type".
TRACE_RECORD_SCHEMAS = {
    "header": TRACE_HEADER_SCHEMA,
    "span": TRACE_SPAN_SCHEMA,
    "event": TRACE_EVENT_SCHEMA,
    "metric": TRACE_METRIC_SCHEMA,
}


# ----------------------------------------------------------------------
# Benchmark artifacts
# ----------------------------------------------------------------------
_KERNEL_ROW = obj(
    {"shape": STR, "ref_ms": NONNEG, "new_ms": NONNEG, "speedup": NONNEG, "max_diff": NONNEG},
)
_FUSED_ROW_COMMON = {
    "fused_ms": NONNEG, "unfused_ms": NONNEG, "speedup": NONNEG, "ok": BOOL,
}

BENCH_KERNELS_SCHEMA = obj(
    {
        "acceptance": obj(
            {
                "parity_ok": BOOL,
                "conv2d_forward_speedup_geomean": NONNEG,
                "mlp_train_step_speedup": NONNEG,
                "cnn_train_step_speedup": NONNEG,
            },
        ),
        "gemm": arr(obj({"shape": STR, "ms": NONNEG, "gflops": NONNEG})),
        "conv1d_forward": arr(_KERNEL_ROW),
        "conv2d_forward": arr(_KERNEL_ROW),
        "fused": obj(
            {
                "linear_act": obj({"max_grad_diff": NONNEG, **_FUSED_ROW_COMMON}),
                "softmax_cross_entropy": obj({"max_diff": NONNEG, **_FUSED_ROW_COMMON}),
                "tol": NONNEG,
            },
        ),
        "dtype": obj(
            {
                "shape": STR,
                "rows": arr(obj(
                    {"format": {"enum": ["fp64", "fp32", "bf16", "fp16"]},
                     "ms": NONNEG, "speedup_vs_fp64": NONNEG, "max_fwd_diff": NONNEG},
                )),
                "int8_linear": obj(
                    {"fp32_ms": NONNEG, "int8_ms": NONNEG, "speedup_vs_fp32": NONNEG,
                     "max_diff_vs_fp32": NONNEG, "exact_f32_path": BOOL},
                ),
            },
        ),
        "train_step": obj(
            {
                "mlp": arr(obj(
                    {"role": STR, "shape": STR, "ref_ms": NONNEG, "new_ms": NONNEG,
                     "speedup": NONNEG, "first_loss_diff": NONNEG},
                )),
                "cnn": obj(
                    {"shape": STR, "ref_ms": NONNEG, "new_ms": NONNEG,
                     "speedup": NONNEG, "first_loss_diff": NONNEG},
                ),
            },
        ),
        "meta": obj({"numpy": STR, "reps": {"type": "integer", "minimum": 1}, "smoke": BOOL}),
    },
)

_LATENCY_SUMMARY = obj(
    {"count": NONNEG_INT, "mean_s": NONNEG, "min_s": NONNEG, "max_s": NONNEG,
     "p50_s": NONNEG, "p95_s": NONNEG, "p99_s": NONNEG},
)

BENCH_SERVING_SCHEMA = obj(
    {
        "acceptance": obj(
            {"parity_ok": BOOL, "accounting_ok": BOOL, "speedup": NONNEG,
             "speedup_min": NONNEG, "speedup_ok": BOOL},
        ),
        "batched": obj(
            {"accounted": BOOL, "batch_occupancy": NONNEG, "batches": NONNEG_INT,
             "busy_time_s": NONNEG, "completed": NONNEG_INT, "elapsed_s": NONNEG,
             "latency": _LATENCY_SUMMARY, "mean_batch_size": NONNEG, "shed": NONNEG_INT,
             "submitted": NONNEG_INT, "throughput_rps": NONNEG, "timed_out": NONNEG_INT,
             "utilization": NONNEG},
        ),
        "single": obj(
            {"elapsed_s": NONNEG, "max_abs_diff_vs_batched": NONNEG,
             "mean_latency_s": NONNEG, "requests": NONNEG_INT, "throughput_rps": NONNEG},
        ),
        "overload": obj(
            {"accounted": BOOL, "burst": NONNEG_INT, "completed": NONNEG_INT,
             "handle_statuses": {"type": "object", "additionalProperties": NONNEG_INT},
             "max_queue": NONNEG_INT, "shed": NONNEG_INT, "timed_out": NONNEG_INT},
        ),
        "registry": obj(
            {"evictions": NONNEG_INT, "hits": NONNEG_INT, "loads": NONNEG_INT,
             "registered": NONNEG_INT, "resident": NONNEG_INT},
        ),
        "service_time": obj({"base_s": NUM, "per_sample_s": NUM}),
        "sweep": arr(obj(
            {"accounted": BOOL, "batch_occupancy": NONNEG, "offered_rps": NONNEG,
             "p50_s": NONNEG, "p95_s": NONNEG, "p99_s": NONNEG, "shed": NONNEG_INT,
             "throughput_rps": NONNEG, "timed_out": NONNEG_INT, "utilization": NONNEG},
        )),
        "benchmark": STR,
        "max_batch_size": NONNEG_INT,
        "n_requests": NONNEG_INT,
        "smoke": BOOL,
    },
)

BENCH_REGISTRY_SCHEMA = obj(
    {
        "acceptance": obj(
            {"parity_ok": BOOL, "integrity_ok": BOOL, "churn_zero_torn": BOOL,
             "hit_rate": NONNEG, "hit_rate_min": NONNEG, "hit_rate_ok": BOOL,
             "alias_shared": BOOL, "dedup_ok": BOOL,
             "single_read_speedup": NONNEG, "single_read_speedup_min": NONNEG,
             "single_read_speedup_ok": BOOL, "scan_loads_flat": BOOL},
        ),
        "churn": obj(
            {"n_artifacts": NONNEG_INT, "n_readers": NONNEG_INT,
             "publish_elapsed_s": NONNEG, "publishes_per_s": NONNEG,
             "reader_reads": NONNEG_INT, "reader_errors": NONNEG_INT,
             "reads_per_s": NONNEG, "last_error": STR, "versions": NONNEG_INT},
        ),
        "load": obj(
            {"reps": NONNEG_INT, "double_read_ms": NONNEG,
             "single_read_ms": NONNEG, "speedup": NONNEG},
        ),
        "cache": obj(
            {"names": NONNEG_INT, "distinct_contents": NONNEG_INT,
             "accesses": NONNEG_INT, "hits": NONNEG_INT, "loads": NONNEG_INT,
             "evictions": NONNEG_INT, "dedup_hits": NONNEG_INT,
             "hit_rate": NONNEG, "alias_shared": BOOL, "dedup_ok": BOOL,
             "objects": NONNEG_INT},
        ),
        "scan": obj(
            {"models": NONNEG_INT, "scans": NONNEG_INT, "loads_before": NONNEG_INT,
             "loads_after": NONNEG_INT, "loads_flat": BOOL},
        ),
        "benchmark": STR,
        "smoke": BOOL,
    },
)

_REPLAY_REPORT = {
    "n_requests": NONNEG_INT,
    "elapsed_s": NONNEG,
    "submitted": NONNEG_INT,
    "completed": NONNEG_INT,
    "shed": NONNEG_INT,
    "timed_out": NONNEG_INT,
    "retried_away": NONNEG_INT,
    "retries": NONNEG_INT,
    "respawns": NONNEG_INT,
    "invariant_ok": BOOL,
    "parity_checked": NONNEG_INT,
    "parity_ok": BOOL,
}

BENCH_SERVING_SCALE_SCHEMA = obj(
    {
        "acceptance": obj(
            {
                "speedup": NONNEG,
                "speedup_min": NONNEG,
                "speedup_ok": BOOL,
                "parity_ok": BOOL,
                "accounting_ok": BOOL,
                "chaos_zero_lost": BOOL,
                "respawns_ok": BOOL,
            },
        ),
        "single": obj(
            {"requests": NONNEG_INT, "batches": NONNEG_INT, "elapsed_s": NONNEG,
             "throughput_rps": NONNEG},
        ),
        "distributed": obj(
            {**_REPLAY_REPORT, "throughput_rps": NONNEG, "latency": _LATENCY_SUMMARY},
        ),
        "mixes": arr(obj(
            {
                "mix": {"enum": ["poisson", "bursty", "diurnal"]},
                "offered_rps": NONNEG,
                "n_requests": NONNEG_INT,
                "completed": NONNEG_INT,
                "shed": NONNEG_INT,
                "shed_rate": NONNEG,
                "timed_out": NONNEG_INT,
                "retried_away": NONNEG_INT,
                "throughput_rps": NONNEG,
                "p50_s": NONNEG,
                "p99_s": NONNEG,
                "invariant_ok": BOOL,
                "parity_ok": BOOL,
            },
        )),
        "chaos": obj(
            {
                **_REPLAY_REPORT,
                "fault_counts": {"type": "object", "additionalProperties": NONNEG_INT},
                "supervisor": obj(
                    {"probes": NONNEG_INT, "probe_failures": NONNEG_INT,
                     "corrupt_detected": NONNEG_INT, "recycled": NONNEG_INT},
                ),
                "autoscale_events": NONNEG_INT,
                "breaker_opens": NONNEG_INT,
            },
        ),
        "benchmark": STR,
        "n_replicas": {"type": "integer", "minimum": 1},
        "max_batch_size": {"type": "integer", "minimum": 1},
        "n_requests": NONNEG_INT,
        "stall_per_batch_s": NONNEG,
        "smoke": BOOL,
        "meta": obj(
            {"numpy": STR, "cpus": {"type": "integer", "minimum": 1},
             "start_method": STR, "smoke": BOOL},
        ),
    },
)

BENCH_OBS_SCHEMA = obj(
    {
        "acceptance": obj(
            {"overhead_ok": BOOL, "overhead_frac": NUM, "gate_frac": NONNEG},
        ),
        "overhead": obj(
            {"detached_ms": NONNEG, "attached_ms": NONNEG, "overhead_frac": NUM,
             "steps": NONNEG_INT, "shape": STR},
        ),
        "trace": obj(
            {"records": NONNEG_INT, "records_per_step": NONNEG},
        ),
        "meta": obj({"numpy": STR, "reps": {"type": "integer", "minimum": 1}, "smoke": BOOL}),
    },
)

_POS_INT: Dict = {"type": "integer", "minimum": 1}

BENCH_PARALLEL_SCHEMA = obj(
    {
        "acceptance": obj(
            {
                "parity_ok": BOOL,
                "ddp_parity_max_abs_diff": NONNEG,
                "hpo_best_match": BOOL,
                "hpo_speedup_4w": NONNEG,
                "hpo_speedup_min": NONNEG,
                "hpo_speedup_ok": BOOL,
                "ddp_speedup_2r": NONNEG,
                "ddp_speedup_min": NONNEG,
                "ddp_speedup_ok": BOOL,
            },
        ),
        "hpo": obj(
            {
                "n_trials": NONNEG_INT,
                "trial_stall_s": NONNEG,
                "serial": obj({"elapsed_s": NONNEG, "best_value": NUM}),
                "workers": arr(obj(
                    {"n_workers": _POS_INT, "elapsed_s": NONNEG, "speedup": NONNEG,
                     "best_value": NUM, "best_match": BOOL, "trials": NONNEG_INT},
                )),
            },
        ),
        "ddp": obj(
            {
                "world": _POS_INT,
                "epochs": NONNEG_INT,
                "steps": NONNEG_INT,
                "stall_per_batch_s": NONNEG,
                "serial": obj({"elapsed_s": NONNEG, "steps_per_s": NONNEG, "final_loss": NUM}),
                "process": obj(
                    {"elapsed_s": NONNEG, "steps_per_s": NONNEG, "final_loss": NUM,
                     "speedup": NONNEG},
                ),
                "parity_max_abs_diff": NONNEG,
                "loss_match": BOOL,
            },
        ),
        "prefetch": obj(
            {"plain_s": NONNEG, "prefetch_s": NONNEG, "speedup": NONNEG,
             "batches": NONNEG_INT, "stall_s": NONNEG},
        ),
        "meta": obj(
            {"numpy": STR, "cpus": _POS_INT, "start_method": STR,
             "smoke": BOOL, "blas_pinned": BOOL},
        ),
    },
)

#: ``BENCH_precision.json`` — the end-to-end reduced-precision benchmark
#: (``benchmarks/bench_precision_e2e.py``): measured p1b2 train-step time
#: per storage format, int8 serving throughput vs the fp32 single-stream
#: baseline, AUC parity, and the CI acceptance gates.
BENCH_PRECISION_SCHEMA = obj(
    {
        "meta": obj(
            {"numpy": STR, "smoke": BOOL, "reps": _POS_INT, "benchmark": STR},
        ),
        "train": obj(
            {
                "n_samples": NONNEG_INT,
                "n_features": NONNEG_INT,
                "batch_size": _POS_INT,
                "epochs": _POS_INT,
                # One row per trained format.  ``fp32_emulated`` is the
                # pre-existing PrecisionPolicy("fp32") emulation path
                # (float64 datapath + rounding) — the baseline the bf16
                # gate is scored against; the others run the real
                # narrow-storage datapath via Model.fit(precision=...).
                "rows": arr(obj(
                    {
                        "format": {
                            "enum": ["fp64", "fp32", "bf16", "fp16", "fp32_emulated"],
                        },
                        "step_ms": NONNEG,
                        "speedup_vs_fp64": NONNEG,
                        "final_loss": NUM,
                        "loss_dev_vs_fp64": NONNEG,
                    },
                    optional={"skipped_steps": NONNEG_INT, "final_loss_scale": NONNEG},
                )),
                "bf16_vs_emulated_fp32_speedup": NONNEG,
                "bf16_vs_fp32_speedup": NONNEG,
                "bf16_vs_fp64_speedup": NONNEG,
            },
        ),
        "serving": obj(
            {
                "n_eval": NONNEG_INT,
                "auc": obj({"fp64": NONNEG, "fp32": NONNEG, "int8": NONNEG}),
                "auc_drop_int8_vs_fp32": NUM,
                "fp32_single_stream_rps": NONNEG,
                "fp32_batched_rps": NONNEG,
                "int8_single_stream_rps": NONNEG,
                "int8_batched_rps": NONNEG,
                "served_bit_identical": BOOL,
                "weight_bytes": obj(
                    {"fp64": NONNEG_INT, "fp32": NONNEG_INT, "int8": NONNEG_INT},
                ),
            },
        ),
        "acceptance": obj(
            {
                "bf16_train_speedup": NONNEG,
                "bf16_train_speedup_min": NONNEG,
                "bf16_train_ok": BOOL,
                "int8_serving_speedup": NONNEG,
                "int8_serving_speedup_min": NONNEG,
                "int8_serving_ok": BOOL,
                "int8_auc_drop": NUM,
                "int8_auc_drop_max": NONNEG,
                "int8_auc_ok": BOOL,
                "train_parity_ok": BOOL,
                "served_bit_identical": BOOL,
                "gates_enforced": BOOL,
            },
        ),
    },
)


BENCH_HPO_SCALE_SCHEMA = obj(
    {
        "smoke": BOOL,
        "sim": obj(
            {"n_trials": _POS_INT, "n_workers": _POS_INT, "elapsed_s": NONNEG,
             "trials_per_s": NONNEG, "sim_makespan": NONNEG, "best_value": NUM,
             "promotions": NONNEG_INT, "claims": NONNEG_INT, "acks": NONNEG_INT},
        ),
        "real": obj(
            {"n_trials": _POS_INT, "n_workers": _POS_INT, "completed": NONNEG_INT,
             "elapsed_s": NONNEG, "ideal_s": NONNEG, "overhead_frac": NUM,
             "trials_per_s": NONNEG, "failures": NONNEG_INT,
             "retries": NONNEG_INT},
        ),
        "replay": obj(
            {"n_trials": _POS_INT, "n_workers": _POS_INT,
             "consumer_kills": NONNEG_INT, "workers_killed": NONNEG_INT,
             "reclaims": NONNEG_INT, "duplicate_acks": NONNEG_INT,
             "lost": INT, "duplicated": INT, "resumed_trials": NONNEG_INT,
             "bit_identical": BOOL},
        ),
        "asha_vs_sync": obj(
            {"n_trials": _POS_INT, "n_workers": _POS_INT, "seeds": arr(INT),
             "per_seed": arr(obj(
                 {"seed": INT, "target": NUM, "asha_tta": NUM, "sync_tta": NUM,
                  "asha_best": NUM, "sync_best": NUM},
             )),
             "asha_tta": NONNEG, "sync_tta": NONNEG, "tta_ratio": NONNEG},
        ),
        "acceptance": obj(
            {"sim_trials": _POS_INT, "sim_trials_ok": BOOL,
             "real_trials": NONNEG_INT, "real_trials_ok": BOOL,
             "overhead_frac": NUM, "overhead_gate": NONNEG, "overhead_ok": BOOL,
             "replay_lost": INT, "replay_duplicated": INT, "replay_ok": BOOL,
             "resume_bit_identical": BOOL, "tta_ratio": NONNEG,
             "asha_not_slower": BOOL},
        ),
    },
)


#: ``BENCH_ddp_overlap.json`` — the overlapped bucketed gradient
#: allreduce benchmark (``benchmarks/bench_ddp_overlap.py``): step
#: throughput per engine (monolithic / bucketed / bucketed+overlap /
#: bucketed+overlap on the fp32 wire) at 2 and 4 ranks under a
#: calibrated comm stall, measured bytes-on-wire per wire dtype, and
#: the per-(comm, wire-dtype) process-vs-serial bit-parity audit.
_DDP_ENGINE_ROW = obj(
    {"elapsed_s": NONNEG, "steps_per_s": NONNEG, "n_buckets": _POS_INT,
     "overlap_fraction": NONNEG, "final_loss": NUM},
    optional={"speedup": NONNEG},
)

BENCH_DDP_OVERLAP_SCHEMA = obj(
    {
        "acceptance": obj(
            {
                "parity_ok": BOOL,
                "overlap_speedup_4r": NONNEG,
                "overlap_speedup_4r_f64": NONNEG,
                "overlap_speedup_min": NONNEG,
                "overlap_speedup_ok": BOOL,
                "overlap_fraction_4r": NONNEG,
                "fp32_wire_bytes_ratio": NONNEG,
                "fp32_wire_halves_bytes": BOOL,
            },
        ),
        "throughput": obj(
            {
                "epochs": _POS_INT,
                "steps_per_epoch": _POS_INT,
                "stall_s_per_step": NONNEG,
                "stall_s_per_mib": NONNEG,
                "vec_mib": NONNEG,
                "worlds": arr(obj(
                    {"world": _POS_INT, "monolithic": _DDP_ENGINE_ROW,
                     "bucketed_noverlap": _DDP_ENGINE_ROW,
                     "bucketed": _DDP_ENGINE_ROW,
                     "bucketed_fp32": _DDP_ENGINE_ROW},
                )),
            },
        ),
        "wire": obj(
            {
                "world": _POS_INT,
                "rows": arr(obj(
                    {"wire_dtype": {"enum": ["float64", "float32", "bf16"]},
                     "wire_bytes_per_step": _POS_INT,
                     "bytes_ratio_vs_f64": NONNEG, "final_loss": NUM},
                )),
            },
        ),
        "parity": obj(
            {
                "rows": arr(obj(
                    {"comm": {"enum": ["monolithic", "bucketed"]},
                     "wire_dtype": {"enum": ["float64", "float32", "bf16"]},
                     "max_abs_diff": NONNEG, "bit_identical": BOOL,
                     "loss_match": BOOL},
                )),
                "overlap_invariant": BOOL,
            },
        ),
        "meta": obj(
            {"numpy": STR, "cpus": _POS_INT, "start_method": STR,
             "smoke": BOOL, "blas_pinned": BOOL},
        ),
    },
)
