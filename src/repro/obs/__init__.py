"""Unified observability: spans, metrics, and trace export for the whole
stack.

The architectural claims this repo measures (compute density, precision
trade-offs, the roofline study) are only as credible as our ability to
see where time actually goes — across a training step, an HPO trial, a
fault event, and a serving batch on *one* timeline.  This package is
that layer:

* :class:`TraceRecorder` — nestable spans with dual sim/wall clocks and
  key-value attributes (:mod:`repro.obs.trace`);
* :class:`MetricsRegistry` — counters, gauges, log-bucket histograms
  (:mod:`repro.obs.metrics`);
* :mod:`repro.obs.export` — versioned JSONL traces, validation, and
  Chrome trace-event (``chrome://tracing`` / Perfetto) conversion;
* :mod:`repro.obs.report` — per-kind time breakdown, critical path, and
  recorder-overhead estimation (the ``repro trace`` subcommand);
* :mod:`repro.obs.schema` — explicit schemas for the trace records and
  every ``BENCH_*.json`` artifact, with a dependency-free validator.

Usage — attach a recorder and everything instrumented reports to it::

    from repro.obs import TraceRecorder, write_jsonl

    rec = TraceRecorder()
    with rec:
        report = run_campaign("p1b2", space, faults=spec, ...)
    write_jsonl(rec, "trace.jsonl")       # then: python -m repro trace trace.jsonl

Hook points live in ``Model.fit`` (epoch/step spans, loss and grad-norm
gauges), :class:`repro.perf.OpProfiler` (op spans nested under step
spans), the HPO schedulers (trial lifecycle, retries, quarantine), the
resilience fault injector (fault events), the inference server (batch
spans, queue-depth gauge), and the campaign driver (top-level span).
Detached cost is one module-global read per hook site; attached cost is
gated below 5% on the MLP train step by
``benchmarks/bench_obs_overhead.py``.
"""

from .context import get_recorder, set_recorder
from .export import (
    read_jsonl,
    to_chrome_trace,
    trace_records,
    validate_trace,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .report import format_summary, summarize_trace
from .schema import (
    BENCH_DDP_OVERLAP_SCHEMA,
    BENCH_HPO_SCALE_SCHEMA,
    BENCH_KERNELS_SCHEMA,
    BENCH_OBS_SCHEMA,
    BENCH_PARALLEL_SCHEMA,
    BENCH_PRECISION_SCHEMA,
    BENCH_REGISTRY_SCHEMA,
    BENCH_SERVING_SCALE_SCHEMA,
    BENCH_SERVING_SCHEMA,
    SchemaError,
    validate,
)
from .trace import TRACE_SCHEMA_VERSION, TraceError, TraceRecorder, maybe_span

__all__ = [
    "TraceRecorder",
    "TraceError",
    "maybe_span",
    "TRACE_SCHEMA_VERSION",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "get_recorder",
    "set_recorder",
    "trace_records",
    "write_jsonl",
    "read_jsonl",
    "validate_trace",
    "to_chrome_trace",
    "write_chrome_trace",
    "summarize_trace",
    "format_summary",
    "validate",
    "SchemaError",
    "BENCH_DDP_OVERLAP_SCHEMA",
    "BENCH_HPO_SCALE_SCHEMA",
    "BENCH_KERNELS_SCHEMA",
    "BENCH_SERVING_SCHEMA",
    "BENCH_SERVING_SCALE_SCHEMA",
    "BENCH_OBS_SCHEMA",
    "BENCH_PARALLEL_SCHEMA",
    "BENCH_PRECISION_SCHEMA",
    "BENCH_REGISTRY_SCHEMA",
]
