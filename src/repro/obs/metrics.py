"""Counters, gauges, and histograms for the observability layer.

The :class:`MetricsRegistry` is the numeric side of a trace: spans say
*when*, metrics say *how much*.  Histograms reuse the log-bucket
:class:`repro.serve.metrics.LatencyHistogram` — the serving layer solved
the wide-dynamic-range percentile problem once; gauges and counters are
deliberately minimal (a float slot, an int slot) so hook sites can
update them inside training steps without measurable cost.

Instruments are created on first use (``registry.counter("x").inc()``)
so hook points never need registration ceremony, and a snapshot is a
list of plain JSON records ready for the trace exporter.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class Counter:
    """Monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a gauge for deltas")
        self.value += n

    def as_record(self) -> Dict:
        return {"type": "metric", "metric": "counter", "name": self.name, "value": self.value}


class Gauge:
    """Last-value instrument that also tracks min/max/count of sets."""

    __slots__ = ("name", "value", "n", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.n = 0
        self.min = float("inf")
        self.max = float("-inf")

    def set(self, value: float) -> None:
        v = float(value)
        self.value = v
        self.n += 1
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    def as_record(self) -> Dict:
        return {
            "type": "metric", "metric": "gauge", "name": self.name,
            "value": self.value, "n": self.n,
            "min": self.min if self.n else 0.0,
            "max": self.max if self.n else 0.0,
        }


class Histogram:
    """Log-bucket value histogram (delegates to the serving histogram)."""

    __slots__ = ("name", "_hist")

    def __init__(self, name: str, low: float = 1e-6, high: float = 1e3) -> None:
        # Imported lazily: repro.serve.__init__ pulls in the server (and
        # through it repro.nn.model), which itself imports repro.obs —
        # a top-level import here would cycle at module init.
        from ..serve.metrics import LatencyHistogram

        self.name = name
        self._hist = LatencyHistogram(min_latency=low, max_latency=high)

    def observe(self, value: float) -> None:
        self._hist.observe(value)

    def percentile(self, q: float) -> float:
        return self._hist.percentile(q)

    @property
    def n(self) -> int:
        return self._hist.n

    def as_record(self) -> Dict:
        summary = self._hist.summary()
        return {"type": "metric", "metric": "histogram", "name": self.name, **summary}


class MetricsRegistry:
    """Name-keyed instrument store with create-on-first-use semantics."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            self._check_free(name, self._counters)
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            self._check_free(name, self._gauges)
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, low: float = 1e-6, high: float = 1e3) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            self._check_free(name, self._histograms)
            h = self._histograms[name] = Histogram(name, low=low, high=high)
        return h

    def _check_free(self, name: str, own: Dict) -> None:
        for store in (self._counters, self._gauges, self._histograms):
            if store is not own and name in store:
                raise ValueError(f"metric {name!r} already registered with a different type")

    def snapshot(self) -> List[Dict]:
        """All instruments as JSON records, sorted by (type, name)."""
        records = (
            [c.as_record() for c in self._counters.values()]
            + [g.as_record() for g in self._gauges.values()]
            + [h.as_record() for h in self._histograms.values()]
        )
        return sorted(records, key=lambda r: (r["metric"], r["name"]))

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)
