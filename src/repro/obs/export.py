"""Trace serialization: JSONL out, validation, Chrome trace conversion.

The JSONL file is the artifact of record — one JSON object per line, a
``header`` line first (carrying the schema version), then every closed
span and event in close order, then a snapshot of the metrics registry.
:func:`validate_trace` checks the whole file against the schemas in
:mod:`repro.obs.schema` plus the referential invariants a per-record
schema cannot express (unique ids, parents that exist and are spans).

:func:`to_chrome_trace` converts the same records to the Chrome
trace-event format, loadable in ``chrome://tracing`` or Perfetto: spans
become complete ("X") events on the wall clock, instants become "i"
events.  Everything lands on one thread lane because the engine really
is single-threaded — wall intervals genuinely nest; the simulated
timeline stays in the JSONL (and the ``repro trace`` summary) where
overlapping trial spans are meaningful.
"""

from __future__ import annotations

import json
import math
import numbers
from pathlib import Path
from typing import Any, Dict, List, Union

from .schema import SchemaError, TRACE_RECORD_SCHEMAS, validate
from .trace import TRACE_SCHEMA_VERSION, TraceError, TraceRecorder


def _scalar(value: Any) -> Any:
    """Coerce one attribute value to a JSON-safe scalar.

    Numpy scalars satisfy the ``numbers`` ABCs, so this needs no numpy
    import; non-finite floats become strings because strict JSON (and
    Chrome's trace loader) has no NaN/Infinity literal.
    """
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        f = float(value)
        return f if math.isfinite(f) else repr(f)
    return str(value)


def _sanitize(record: Dict) -> Dict:
    out = {k: _scalar(v) if k != "attrs" else v for k, v in record.items()}
    if "attrs" in record:
        out["attrs"] = {str(k): _scalar(v) for k, v in record["attrs"].items()}
    return out


def trace_records(recorder: TraceRecorder, generator: str = "repro.obs") -> List[Dict]:
    """Header + sanitized spans/events + metrics snapshot, export order."""
    if not recorder.balanced:
        raise TraceError(
            f"cannot export with open spans: {', '.join(recorder.open_spans)}"
        )
    body = [_sanitize(r) for r in recorder.records]
    metrics = [_sanitize(m) for m in recorder.metrics.snapshot()]
    header = {
        "type": "header",
        "schema_version": TRACE_SCHEMA_VERSION,
        "generator": generator,
        "spans": sum(1 for r in body if r["type"] == "span"),
        "events": sum(1 for r in body if r["type"] == "event"),
        "metrics": len(metrics),
    }
    return [header] + body + metrics


def write_jsonl(trace: Union[TraceRecorder, List[Dict]], path: Union[str, Path]) -> Path:
    """Write a JSONL trace file; returns the path.

    ``trace`` is either a :class:`TraceRecorder` (exported via
    :func:`trace_records`) or an already-exported record list.
    """
    records = trace if isinstance(trace, list) else trace_records(trace)
    path = Path(path)
    lines = [json.dumps(r, sort_keys=True, allow_nan=False) for r in records]
    path.write_text("\n".join(lines) + "\n")
    return path


def read_jsonl(path: Union[str, Path]) -> List[Dict]:
    records = []
    for i, line in enumerate(Path(path).read_text().splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as e:
            raise SchemaError(f"line {i + 1}: not valid JSON ({e})") from e
    return records


def validate_trace(records: List[Dict]) -> Dict[str, int]:
    """Validate a full trace record list; returns counts by record type.

    Checks, in order: a header line first with a known schema version;
    every record against its per-type schema; span/event ids unique;
    every parent reference resolving to a span that exists.
    """
    if not records:
        raise SchemaError("empty trace: expected a header record")
    header = records[0]
    if not isinstance(header, dict) or header.get("type") != "header":
        raise SchemaError("first record must be the header")
    validate(header, TRACE_RECORD_SCHEMAS["header"], "$[0]")
    if header["schema_version"] != TRACE_SCHEMA_VERSION:
        raise SchemaError(
            f"unknown trace schema version {header['schema_version']} "
            f"(this library reads version {TRACE_SCHEMA_VERSION})"
        )

    counts = {"header": 1, "span": 0, "event": 0, "metric": 0}
    span_ids = set()
    all_ids = set()
    parents = []  # (path, parent_id)
    for i, record in enumerate(records[1:], start=1):
        rtype = record.get("type") if isinstance(record, dict) else None
        schema = TRACE_RECORD_SCHEMAS.get(rtype)
        if schema is None:
            raise SchemaError(f"$[{i}]: unknown record type {rtype!r}")
        if rtype == "header":
            raise SchemaError(f"$[{i}]: duplicate header")
        validate(record, schema, f"$[{i}]")
        counts[rtype] += 1
        if rtype in ("span", "event"):
            rid = record["id"]
            if rid in all_ids:
                raise SchemaError(f"$[{i}]: duplicate id {rid}")
            all_ids.add(rid)
            if rtype == "span":
                span_ids.add(rid)
            if record["parent"] is not None:
                parents.append((f"$[{i}]", record["parent"]))
    for path, parent in parents:
        if parent not in span_ids:
            raise SchemaError(f"{path}: parent {parent} is not a recorded span")

    declared = {"span": header["spans"], "event": header["events"], "metric": header["metrics"]}
    for rtype, n in declared.items():
        if counts[rtype] != n:
            raise SchemaError(
                f"header declares {n} {rtype} records, file has {counts[rtype]}"
            )
    return counts


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
def to_chrome_trace(records: List[Dict]) -> Dict:
    """Convert trace records to a ``chrome://tracing`` / Perfetto object."""
    events: List[Dict] = [
        {"ph": "M", "name": "process_name", "pid": 0, "tid": 0,
         "args": {"name": "repro"}},
        {"ph": "M", "name": "thread_name", "pid": 0, "tid": 0,
         "args": {"name": "engine"}},
    ]
    for record in records:
        rtype = record.get("type")
        if rtype == "span":
            events.append({
                "ph": "X",
                "name": record["name"],
                "cat": record["kind"],
                "pid": 0,
                "tid": 0,
                "ts": record["t_wall"] * 1e6,
                "dur": max(record["dur_wall"], 0.0) * 1e6,
                "args": dict(record.get("attrs", {})),
            })
        elif rtype == "event":
            events.append({
                "ph": "i",
                "s": "p",  # process-scoped instant marker
                "name": record["name"],
                "cat": record["kind"],
                "pid": 0,
                "tid": 0,
                "ts": record["t_wall"] * 1e6,
                "args": dict(record.get("attrs", {})),
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: List[Dict], path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(records), sort_keys=True, allow_nan=False))
    return path
