"""The active-recorder slot every hook point reads.

Mirrors :mod:`repro.perf.hooks`: a plain module global rather than a
thread-local (the engine is single-threaded per process; parallelism in
this repo is process-level).  With no recorder attached each hook site
pays one module-global read and a ``None`` test — that is the whole
"zero-cost when detached" contract, and the obs-overhead benchmark gates
the attached cost too.

This module must stay import-light (stdlib only): it is imported by
``repro.nn.model`` and ``repro.perf.profiler``, so pulling anything from
the rest of the library here would create an import cycle.
"""

from __future__ import annotations

from typing import Any, Optional

_RECORDER: Optional[Any] = None


def get_recorder() -> Optional[Any]:
    """The active :class:`~repro.obs.trace.TraceRecorder`, or None."""
    return _RECORDER


def set_recorder(recorder: Optional[Any]) -> Optional[Any]:
    """Install ``recorder`` as the active recorder; returns the previous one.

    Recorders install themselves on ``__enter__`` and restore the
    previous recorder on ``__exit__``, so ``with`` blocks nest.
    """
    global _RECORDER
    prev = _RECORDER
    _RECORDER = recorder
    return prev
