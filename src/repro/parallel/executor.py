"""Real-process trial execution backend for the HPO scheduler.

``run_parallel(..., executor=ParallelTrialExecutor(n_workers=4))`` runs
search trials on real cores instead of the simulated clock: the
executor owns a persistent :class:`~repro.parallel.pool.ProcessWorkerPool`,
publishes the training data once through the shared-memory plane, and
ships only ``(trial_id, config, budget)`` per trial — the objective
callable crosses the process boundary once, at pool startup.

Objectives read their dataset through :func:`worker_data`, which
resolves to zero-copy shared-memory views inside workers and to the
original arrays in the parent (so the *same* objective function runs
serially for parity checks).  Extra non-array context (scalars the
bench wants to vary without re-importing modules) rides along in
``data`` too — anything that is not an ndarray is pickled once into the
worker initializer instead of the shm plane.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

import numpy as np

from .pool import DEFAULT_WORKER_ENV, ProcessWorkerPool, TaskResult
from .shm import SharedArrayStore, attach

# Worker-global objective + dataset, installed once per worker by the
# pool initializer (and in the parent by Executor.start, so the same
# objective code path works serially).
_OBJECTIVE: Optional[Callable] = None
_DATA: Dict[str, Any] = {}
_ATTACHED = []  # keep shm mappings alive for the worker's lifetime


def worker_data() -> Dict[str, Any]:
    """The dataset/context dict bound by the active executor.

    Inside a worker the array values are zero-copy shared-memory views;
    in the parent they are the arrays passed to the executor.
    """
    return _DATA


def bind_worker_data(data: Dict[str, Any]) -> None:
    """Bind ``data`` in this process (serial baselines, tests)."""
    global _DATA
    _DATA = dict(data)


def _init_worker(objective, array_refs, extra) -> None:
    global _OBJECTIVE, _DATA
    _OBJECTIVE = objective
    _DATA = dict(extra)
    for key, ref in array_refs.items():
        att = attach(ref)
        _ATTACHED.append(att)
        _DATA[key] = att.array


def _run_trial(payload) -> float:
    config, budget = payload
    return float(_OBJECTIVE(config, budget))


class ParallelTrialExecutor:
    """Evaluates HPO trials on a pool of real worker processes.

    Parameters
    ----------
    n_workers:
        Pool width; must match the ``n_workers`` given to
        ``run_parallel`` (the scheduler cross-checks).
    data:
        Optional dict the objective reads via :func:`worker_data`.
        ndarray values are published to shared memory once and attached
        zero-copy per worker; everything else is pickled once into the
        worker initializer.
    start_method / env:
        Forwarded to :class:`ProcessWorkerPool`; env defaults to the
        BLAS single-thread pins.
    """

    def __init__(
        self,
        n_workers: int,
        data: Optional[Dict[str, Any]] = None,
        start_method: Optional[str] = None,
        env: Optional[Dict[str, str]] = None,
        timeout_s: float = 300.0,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.timeout_s = timeout_s
        self._data = data or {}
        self._start_method = start_method
        self._env = env
        self._pool: Optional[ProcessWorkerPool] = None
        self._store: Optional[SharedArrayStore] = None

    # -- lifecycle -------------------------------------------------------
    def start(self, objective: Callable) -> "ParallelTrialExecutor":
        """Publish the data plane and spin up the worker pool."""
        if self._pool is not None:
            raise RuntimeError("executor already started")
        self._store = SharedArrayStore(prefix="repro_hpo")
        refs: Dict[str, Any] = {}
        extra: Dict[str, Any] = {}
        for key, value in self._data.items():
            if isinstance(value, np.ndarray):
                refs[key] = self._store.publish(key, value)
            else:
                extra[key] = value
        # Parent-side bind: the identical objective code runs serially.
        bind_worker_data(self._data)
        self._pool = ProcessWorkerPool(
            _run_trial,
            self.n_workers,
            initializer=_init_worker,
            initargs=(objective, refs, extra),
            start_method=self._start_method,
            env=self._env,
        )
        return self

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._store is not None:
            self._store.close()
            self._store = None

    def __enter__(self) -> "ParallelTrialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- trial protocol --------------------------------------------------
    @property
    def outstanding(self) -> int:
        return 0 if self._pool is None else self._pool.outstanding

    @property
    def respawns(self) -> int:
        return 0 if self._pool is None else self._pool.respawns

    def submit(self, config, budget: int) -> int:
        """Dispatch one trial; returns the task id."""
        if self._pool is None:
            raise RuntimeError("executor not started")
        return self._pool.submit((config, budget))

    def next_result(self) -> TaskResult:
        """Next finished trial (unordered): ``status`` "ok" carries the
        objective value, "err"/"died" mean the attempt crashed."""
        if self._pool is None:
            raise RuntimeError("executor not started")
        return self._pool.next_result(timeout=self.timeout_s)
