"""Real data-parallel training: per-rank shards, shared-memory allreduce.

:func:`fit_data_parallel` trains one model on ``world`` ranks.  Each
step, every rank draws the *same* global-batch permutation slice (the
data-order RNG is replicated bit-for-bit into every rank), computes
gradients on its ``batch_size / world`` micro-batch, and the gradients
are averaged through the deterministic shared-memory allreduce of
:mod:`repro.parallel.allreduce`.  All ranks then apply the identical
averaged gradient with identical optimizer state, so replica weights
never diverge — standard DDP, actually running on processes.

Two backends, one contract:

* ``backend="process"`` — real OS processes; the dataset is published
  once through the shared-memory data plane and ranks attach zero-copy.
* ``backend="serial"`` — the same algorithm executed by one process
  (rank micro-batches evaluated sequentially, combined with
  :func:`~repro.parallel.allreduce.reduce_ranks`).

Because the reduction association order is pinned (ascending rank
order in both backends) the two produce **bit-identical** weights —
the parity gate ``benchmarks/bench_parallel.py`` enforces.  With
``world=1`` the loop degenerates to plain mini-batch SGD and matches
``Model.fit`` exactly (same RNG draw order, provided ``batch_size``
divides the dataset — the loop drops the ragged tail batch so shards
stay equal-sized).

``pre_step_hook(rank, step)`` runs during micro-batch assembly — the
place a real pipeline pays its staging latency (and where the parallel
benchmark injects a measured stall); ``prefetch=True`` overlaps that
assembly with compute via :class:`~repro.parallel.prefetch.PrefetchLoader`.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as queue_mod
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..nn import losses as losses_mod
from ..nn.model import Model
from ..nn.optim import Adam, Optimizer
from ..nn.tensor import Tensor
from ..obs.context import get_recorder
from .allreduce import AllreduceHandle, RankReducer, create_allreduce, reduce_ranks
from .pool import DEFAULT_WORKER_ENV
from .prefetch import PrefetchLoader
from .shm import SharedArrayRef, attach, SharedArrayStore


@dataclass
class DataParallelResult:
    """Outcome of a data-parallel fit (either backend)."""

    world: int
    backend: str
    epochs: int
    steps_per_epoch: int
    elapsed_s: float
    epoch_losses: List[float]
    epoch_times: List[float] = field(default_factory=list)

    @property
    def steps(self) -> int:
        return self.epochs * self.steps_per_epoch

    @property
    def steps_per_s(self) -> float:
        """Global train-step throughput (the bench acceptance metric)."""
        return self.steps / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1]


@dataclass
class _TrainSpec:
    """Everything a rank needs, in one picklable bundle (the model and
    RNG state cross the process boundary once, at rank startup)."""

    model_bytes: bytes
    rng_state: dict
    world: int
    epochs: int
    batch_size: int  # global batch; each rank takes batch_size/world
    loss: object  # name or picklable callable
    lr: float
    optimizer_factory: Optional[Callable]
    shuffle: bool
    pre_step_hook: Optional[Callable[[int, int], None]]
    prefetch: bool
    n_samples: int


def _param_layout(params) -> Tuple[List[Tuple[int, int, Tuple[int, ...]]], int]:
    """(offset, size, shape) per parameter in one flat float64 vector,
    plus the vector length (one trailing slot carries the batch loss)."""
    layout = []
    off = 0
    for p in params:
        layout.append((off, p.data.size, p.data.shape))
        off += p.data.size
    return layout, off + 1


def _grads_into(model, loss_fn, params, layout, xb, yb, out_vec) -> None:
    """One micro-batch forward/backward; pack grads + loss into out_vec."""
    for p in params:
        p.grad = None
    target = xb if yb is None else yb
    loss = loss_fn(model.forward(Tensor(xb), training=True), target)
    loss.backward()
    for p, (off, size, _) in zip(params, layout):
        if p.grad is None:
            out_vec[off:off + size] = 0.0
        else:
            out_vec[off:off + size] = p.grad.ravel()
    out_vec[-1] = loss.item()


def _apply_combined(params, layout, combined, opt) -> None:
    """Point each param's grad at its slice of the averaged vector and step."""
    for p, (off, size, shape) in zip(params, layout):
        p.grad = combined[off:off + size].reshape(shape)
    opt.step()


def _epoch_batches(x, y, perm, steps, batch, micro, ranks, hook):
    """Micro-batch assembly for one epoch, staging hook included.

    Yields one ``(xb, yb)`` per (step, rank) pair in deterministic
    order.  This generator is what ``prefetch=True`` overlaps with
    compute — the gather *and* the staging hook run on the producer
    thread while the consumer computes the previous step.
    """
    for step in range(steps):
        base = step * batch
        for rank in ranks:
            if hook is not None:
                hook(rank, step)
            idx = perm[base + rank * micro: base + (rank + 1) * micro]
            yield x[idx], (None if y is None else y[idx])


def _make_optimizer(spec: _TrainSpec, params) -> Optimizer:
    if spec.optimizer_factory is not None:
        return spec.optimizer_factory(params)
    return Adam(params, lr=spec.lr)


def _restore_rng(state: dict) -> np.random.Generator:
    rng = np.random.default_rng()
    rng.bit_generator.state = state
    return rng


def _train_rank(model, x, y, spec: _TrainSpec, rank: int,
                reducer: Optional[RankReducer]) -> Tuple[List[float], List[float]]:
    """The per-rank training loop (process backend).

    Returns (epoch mean losses, epoch wall times).  The combined
    gradient is ``(sum over ranks in ascending order) * (1/world)`` —
    the exact float sequence the serial backend replays.
    """
    params = list(model.parameters())
    loss_fn = losses_mod.get(spec.loss) if isinstance(spec.loss, str) else spec.loss
    opt = _make_optimizer(spec, params)
    rng = _restore_rng(spec.rng_state)
    layout, total = _param_layout(params)
    buf = np.empty(total, dtype=np.float64)
    micro = spec.batch_size // spec.world
    steps = spec.n_samples // spec.batch_size
    inv_world = 1.0 / spec.world
    epoch_losses: List[float] = []
    epoch_times: List[float] = []
    for _ in range(spec.epochs):
        t0 = time.perf_counter()
        perm = rng.permutation(spec.n_samples) if spec.shuffle else np.arange(spec.n_samples)
        batches = _epoch_batches(
            x, y, perm, steps, spec.batch_size, micro, (rank,), spec.pre_step_hook
        )
        if spec.prefetch:
            batches = iter(PrefetchLoader(batches))
        loss_sum = 0.0
        for xb, yb in batches:
            _grads_into(model, loss_fn, params, layout, xb, yb, buf)
            if reducer is not None:
                reducer.allreduce(buf)
            buf *= inv_world
            _apply_combined(params, layout, buf, opt)
            loss_sum += buf[-1]
        epoch_losses.append(loss_sum / max(steps, 1))
        epoch_times.append(time.perf_counter() - t0)
    return epoch_losses, epoch_times


def _train_serial(model, x, y, spec: _TrainSpec) -> Tuple[List[float], List[float]]:
    """Single-process reference: same shards, same reduction order."""
    params = list(model.parameters())
    loss_fn = losses_mod.get(spec.loss) if isinstance(spec.loss, str) else spec.loss
    opt = _make_optimizer(spec, params)
    rng = _restore_rng(spec.rng_state)
    layout, total = _param_layout(params)
    world = spec.world
    rank_vecs = np.empty((world, total), dtype=np.float64)
    micro = spec.batch_size // world
    steps = spec.n_samples // spec.batch_size
    inv_world = 1.0 / world
    epoch_losses: List[float] = []
    epoch_times: List[float] = []
    for _ in range(spec.epochs):
        t0 = time.perf_counter()
        perm = rng.permutation(spec.n_samples) if spec.shuffle else np.arange(spec.n_samples)
        batches = _epoch_batches(
            x, y, perm, steps, spec.batch_size, micro, range(world), spec.pre_step_hook
        )
        if spec.prefetch:
            batches = iter(PrefetchLoader(batches))
        loss_sum = 0.0
        for step in range(steps):
            for r in range(world):
                xb, yb = next(batches)
                _grads_into(model, loss_fn, params, layout, xb, yb, rank_vecs[r])
            combined = reduce_ranks(list(rank_vecs))
            combined *= inv_world
            _apply_combined(params, layout, combined, opt)
            loss_sum += combined[-1]
        epoch_losses.append(loss_sum / max(steps, 1))
        epoch_times.append(time.perf_counter() - t0)
    return epoch_losses, epoch_times


def _rank_main(rank: int, spec: _TrainSpec, x_ref: SharedArrayRef,
               y_ref: Optional[SharedArrayRef], handle: AllreduceHandle,
               result_q, env: Dict[str, str]) -> None:
    if env:
        os.environ.update(env)
    reducer = None
    x_att = y_att = None
    try:
        x_att = attach(x_ref)
        y_att = attach(y_ref) if y_ref is not None else None
        model = pickle.loads(spec.model_bytes)
        reducer = RankReducer(handle, rank)
        losses, times = _train_rank(
            model, x_att.array, None if y_att is None else y_att.array,
            spec, rank, reducer,
        )
        payload = None
        if rank == 0:
            payload = (model.get_weights(), losses, times)
        result_q.put(("done", rank, payload))
    except BaseException:
        result_q.put(("error", rank, traceback.format_exc()))
    finally:
        if reducer is not None:
            reducer.close()
        if x_att is not None:
            x_att.close()
        if y_att is not None:
            y_att.close()


def fit_data_parallel(
    model: Model,
    x: np.ndarray,
    y: Optional[np.ndarray] = None,
    *,
    world: int = 2,
    epochs: int = 5,
    batch_size: int = 32,
    loss="mse",
    lr: float = 1e-3,
    optimizer_factory: Optional[Callable] = None,
    seed: int = 0,
    shuffle: bool = True,
    backend: str = "process",
    start_method: Optional[str] = None,
    pre_step_hook: Optional[Callable[[int, int], None]] = None,
    prefetch: bool = False,
    env: Optional[Dict[str, str]] = None,
    timeout_s: float = 600.0,
) -> DataParallelResult:
    """Train ``model`` data-parallel on ``world`` ranks; weights land in
    ``model``.

    ``batch_size`` is the *global* batch and must be divisible by
    ``world``; the ragged tail of each epoch (fewer than ``batch_size``
    samples) is dropped so every rank always holds an equal micro-batch
    — the precondition for the 1/world averaging to be exact.

    ``backend="process"`` runs real rank processes over the shared-
    memory data plane; ``backend="serial"`` executes the identical
    algorithm in-process.  Both produce bit-identical weights (the
    allreduce association order is pinned), which is the testable
    definition of "the parallel path does not change the numerics".

    ``optimizer_factory(params) -> Optimizer`` builds each rank's local
    optimizer (default: ``Adam(lr=lr)``); with ``start_method="spawn"``
    it, the loss callable, and ``pre_step_hook`` must be module-level
    picklables.
    """
    if world < 1:
        raise ValueError("world must be >= 1")
    if backend not in ("process", "serial"):
        raise ValueError(f"unknown backend {backend!r}")
    if batch_size % world != 0:
        raise ValueError(f"batch_size {batch_size} not divisible by world {world}")
    x = np.ascontiguousarray(x)
    y_arr = None if y is None else np.ascontiguousarray(y)
    n = len(x)
    if y_arr is not None and len(y_arr) != n:
        raise ValueError(f"x and y length mismatch: {n} vs {len(y_arr)}")
    steps = n // batch_size
    if steps < 1:
        raise ValueError(f"dataset ({n}) smaller than one global batch ({batch_size})")

    rng = np.random.default_rng(seed)
    if not model.built:
        model.build(x.shape[1:], rng)
    params = list(model.parameters())
    layout, total = _param_layout(params)

    spec = _TrainSpec(
        model_bytes=pickle.dumps(model),
        rng_state=rng.bit_generator.state,
        world=world, epochs=epochs, batch_size=batch_size, loss=loss, lr=lr,
        optimizer_factory=optimizer_factory, shuffle=shuffle,
        pre_step_hook=pre_step_hook, prefetch=prefetch, n_samples=n,
    )

    rec = get_recorder()
    span_id = None
    if rec is not None:
        span_id = rec.begin(
            "ddp_fit", kind="ddp.fit", world=world, backend=backend,
            epochs=epochs, steps_per_epoch=steps, batch_size=batch_size,
            data_bytes=x.nbytes + (0 if y_arr is None else y_arr.nbytes),
        )

    t0 = time.perf_counter()
    try:
        if backend == "serial" or world == 1:
            # world==1 process mode would pay the data-plane setup for a
            # pool of one; run it in-process (identical numerics).
            losses, times = _train_serial(model, x, y_arr, spec)
        else:
            losses, times = _run_processes(
                model, x, y_arr, spec, total, start_method, env, timeout_s
            )
        elapsed = time.perf_counter() - t0
    except BaseException:
        if rec is not None:
            rec.end(span_id, aborted=True)
        raise

    if rec is not None:
        for i, (dt, lv) in enumerate(zip(times, losses)):
            rec.add_complete("epoch", kind="ddp.epoch", dur_wall=dt, epoch=i, loss=lv)
        rec.end(span_id, elapsed_s=elapsed, final_loss=losses[-1])
    return DataParallelResult(
        world=world, backend=backend, epochs=epochs, steps_per_epoch=steps,
        elapsed_s=elapsed, epoch_losses=losses, epoch_times=times,
    )


def _run_processes(model, x, y, spec: _TrainSpec, vec_len: int,
                   start_method: Optional[str], env: Optional[Dict[str, str]],
                   timeout_s: float) -> Tuple[List[float], List[float]]:
    ctx = mp.get_context(start_method)
    env = DEFAULT_WORKER_ENV if env is None else env
    with SharedArrayStore(prefix="repro_ddp") as store:
        x_ref = store.publish("x", x)
        y_ref = store.publish("y", y) if y is not None else None
        handle = create_allreduce(store, ctx, spec.world, vec_len)
        result_q = ctx.Queue()
        saved = {k: os.environ.get(k) for k in env}
        os.environ.update(env)
        try:
            procs = [
                ctx.Process(
                    target=_rank_main,
                    args=(r, spec, x_ref, y_ref, handle, result_q, env),
                    daemon=True,
                )
                for r in range(spec.world)
            ]
            for p in procs:
                p.start()
        finally:
            for k, v in saved.items():
                if v is None:
                    os.environ.pop(k, None)
                else:
                    os.environ[k] = v
        payload = None
        try:
            done = 0
            deadline = time.perf_counter() + timeout_s
            while done < spec.world:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    raise TimeoutError(f"data-parallel ranks not done within {timeout_s}s")
                try:
                    status, rank, data = result_q.get(timeout=min(remaining, 1.0))
                except queue_mod.Empty:
                    if any(p.exitcode not in (None, 0) for p in procs):
                        raise RuntimeError(
                            "a data-parallel rank died: "
                            + str([p.exitcode for p in procs])
                        )
                    continue
                if status == "error":
                    raise RuntimeError(f"rank {rank} failed:\n{data}")
                done += 1
                if rank == 0:
                    payload = data
            for p in procs:
                p.join(timeout=5.0)
        finally:
            for p in procs:
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=1.0)
    if payload is None:  # pragma: no cover - rank 0 always reports
        raise RuntimeError("rank 0 produced no result")
    weights, losses, times = payload
    model.set_weights(weights)
    return losses, times
