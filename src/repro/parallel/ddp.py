"""Real data-parallel training: per-rank shards, shared-memory allreduce.

:func:`fit_data_parallel` trains one model on ``world`` ranks.  Each
step, every rank draws the *same* global-batch permutation slice (the
data-order RNG is replicated bit-for-bit into every rank), computes
gradients on its ``batch_size / world`` micro-batch, and the gradients
are averaged through the deterministic shared-memory allreduce of
:mod:`repro.parallel.allreduce`.  All ranks then apply the identical
averaged gradient with identical optimizer state, so replica weights
never diverge — standard DDP, actually running on processes.

Two backends, one contract:

* ``backend="process"`` — real OS processes; the dataset is published
  once through the shared-memory data plane and ranks attach zero-copy.
* ``backend="serial"`` — the same algorithm executed by one process
  (rank micro-batches evaluated sequentially, combined with
  :func:`~repro.parallel.allreduce.reduce_ranks`).

Because the reduction association order is pinned (ascending rank
order in both backends) the two produce **bit-identical** weights —
the parity gate ``benchmarks/bench_parallel.py`` enforces.  With
``world=1`` the loop degenerates to plain mini-batch SGD and matches
``Model.fit`` exactly (same RNG draw order, provided ``batch_size``
divides the dataset; see ``drop_last`` for the ragged tail).

Gradient communication itself has two shapes (``comm=``):

* ``"bucketed"`` (default) — the overlapped engine.  Parameters are
  partitioned into size-targeted buckets in reverse layout order
  (:func:`~repro.parallel.allreduce.plan_buckets`); a per-parameter
  grad-ready tape hook (``Tensor.backward(grad_ready_hook=…)``) packs
  each gradient the moment backward finalises it, and completed
  buckets are handed — in pinned schedule order — to a per-rank comm
  thread that runs the double-buffered shared-memory allreduce while
  backward keeps producing the remaining buckets.  ``overlap=False``
  flushes the same buckets synchronously after backward (the ablation
  baseline).  ``wire_dtype`` selects the slab format (``float64`` |
  ``float32`` | ``bf16``); accumulation is always float64 in ascending
  rank order, so the serial backend replaying the identical schedule
  (:func:`~repro.parallel.allreduce.reduce_ranks_bucketed`) stays
  bit-identical at every wire precision.
* ``"monolithic"`` — the original single 3-barrier allreduce over the
  whole flat vector after backward (float64 wire only); kept as the
  measured baseline for ``benchmarks/bench_ddp_overlap.py``.

``pre_step_hook(rank, step)`` runs during micro-batch assembly — the
place a real pipeline pays its staging latency (and where the parallel
benchmark injects a measured stall); ``prefetch=True`` overlaps that
assembly with compute via :class:`~repro.parallel.prefetch.PrefetchLoader`.
``comm_stall_s_per_mib`` injects a *communication* staging stall (per
MiB of wire traffic, slept on the comm path) — the knob the overlap
benchmark turns to model interconnect latency; it never changes
numerics, so the stall-free serial reference stays the parity oracle.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as queue_mod
import threading
import time
import traceback
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..nn import losses as losses_mod
from ..nn.model import Model
from ..nn.optim import Adam, Optimizer
from ..nn.tensor import Tensor
from ..obs.context import get_recorder
from .allreduce import (
    DEFAULT_BUCKET_BYTES,
    WIRE_DTYPES,
    AllreduceHandle,
    BucketAllreduceHandle,
    BucketPlan,
    BucketRankReducer,
    RankReducer,
    chunk_bounds,
    create_allreduce,
    create_bucketed_allreduce,
    plan_buckets,
    reduce_ranks,
    reduce_ranks_bucketed,
    wire_itemsize,
)
from .pool import DEFAULT_WORKER_ENV
from .prefetch import PrefetchLoader
from .shm import SharedArrayRef, attach, SharedArrayStore


@dataclass
class DataParallelResult:
    """Outcome of a data-parallel fit (either backend).

    ``comm_stats`` (process backend, rank 0's view) reports what the
    gradient-communication engine actually did: per-bucket spans and
    cumulative comm seconds, total vs *exposed* comm time (exposed =
    main thread blocked after backward), the derived overlap fraction,
    and bytes-on-wire per step.
    """

    world: int
    backend: str
    epochs: int
    steps_per_epoch: int
    elapsed_s: float
    epoch_losses: List[float]
    epoch_times: List[float] = field(default_factory=list)
    comm_stats: Optional[Dict] = None

    @property
    def steps(self) -> int:
        return self.epochs * self.steps_per_epoch

    @property
    def steps_per_s(self) -> float:
        """Global train-step throughput (the bench acceptance metric)."""
        return self.steps / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1]


@dataclass
class _TrainSpec:
    """Everything a rank needs, in one picklable bundle (the model and
    RNG state cross the process boundary once, at rank startup)."""

    model_bytes: bytes
    rng_state: dict
    world: int
    epochs: int
    batch_size: int  # global batch; each rank takes batch_size/world
    loss: object  # name or picklable callable
    lr: float
    optimizer_factory: Optional[Callable]
    shuffle: bool
    pre_step_hook: Optional[Callable[[int, int], None]]
    prefetch: bool
    n_samples: int
    comm: str = "bucketed"
    wire_dtype: str = "float64"
    bucket_bytes: int = DEFAULT_BUCKET_BYTES
    overlap: bool = True
    comm_stall_s_per_mib: float = 0.0
    drop_last: bool = True


def _param_layout(params) -> Tuple[List[Tuple[int, int, Tuple[int, ...]]], int]:
    """(offset, size, shape) per parameter in one flat float64 vector,
    plus the vector length (one trailing slot carries the batch loss)."""
    layout = []
    off = 0
    for p in params:
        layout.append((off, p.data.size, p.data.shape))
        off += p.data.size
    return layout, off + 1


def _grads_into(model, loss_fn, params, layout, xb, yb, out_vec,
                sched: Optional["_GradBucketScheduler"] = None, step: int = 0) -> None:
    """One micro-batch forward/backward; pack grads + loss into out_vec.

    Without a scheduler the gradients are packed after backward returns
    (and the scheduler path packs the *same* floats — each hook reads
    the finalised ``.grad``); with one, every parameter is packed the
    moment the tape finishes it, so completed buckets start
    communicating while backward is still running.  The loss lands in
    the trailing slot before backward — bucket 0 carries it and may
    ship mid-backward.
    """
    for p in params:
        p.grad = None
    target = xb if yb is None else yb
    loss = loss_fn(model.forward(Tensor(xb), training=True), target)
    if sched is not None:
        sched.begin_step(out_vec, step)
        out_vec[-1] = loss.item()
        loss.backward(grad_ready_hook=sched.grad_ready)
        sched.finish_backward()
    else:
        loss.backward()
        for p, (off, size, _) in zip(params, layout):
            if p.grad is None:
                out_vec[off:off + size] = 0.0
            else:
                out_vec[off:off + size] = p.grad.ravel()
        out_vec[-1] = loss.item()


def _apply_combined(params, layout, combined, opt) -> None:
    """Point each param's grad at its slice of the averaged vector and step."""
    for p, (off, size, shape) in zip(params, layout):
        p.grad = combined[off:off + size].reshape(shape)
    opt.step()


class _GradBucketScheduler:
    """Per-rank bucket engine: pack gradients as backward produces them,
    ship completed buckets in pinned schedule order.

    ``grad_ready`` is handed to ``Tensor.backward(grad_ready_hook=…)``;
    when the countdown of the *next* scheduled bucket reaches zero its
    slice is dispatched — to a dedicated comm thread when ``overlap``
    (the allreduce barrier waits and NumPy reductions release the GIL,
    so communication genuinely runs under the remaining backward), or
    queued for a synchronous post-backward flush otherwise.  Buckets
    always cross the wire in schedule order on every rank, so the
    per-bucket barriers can never interleave across buckets.

    With ``reducer=None`` (the serial backend) the scheduler is pure
    bookkeeping: the same hooks pack the same buckets, and the caller
    combines ranks through :func:`reduce_ranks_bucketed`.

    ``stall_s_per_mib`` charges a wire-transfer stall per bucket, scaled
    by the bucket's wire bytes, *inside* the collective (post-publish
    barrier; see :meth:`BucketRankReducer.allreduce_bucket`) — the
    bandwidth term of the alpha-beta cost model the overlap benchmark
    measures against.  Timing bookkeeping: ``total_comm_s`` is comm-path
    busy time, ``exposed_wait_s`` is how long the main thread actually
    blocked for it, and ``comm_chain_s`` is the wall span of each step's
    comm chain (first bucket dispatched to last bucket reduced) — the
    overlap fraction is the share of that span hidden under backward,
    ``1 - exposed / chain``.
    """

    def __init__(self, plan: BucketPlan, params, layout,
                 reducer: Optional[BucketRankReducer], wire_dtype: str, *,
                 overlap: bool = True, stall_s_per_mib: float = 0.0) -> None:
        self.plan = plan
        self._params = params
        self._layout = layout
        self._id2idx = {id(p): i for i, p in enumerate(params)}
        self._counts0 = plan.param_counts()
        self._reducer = reducer
        self._active = reducer is not None and reducer.world > 1
        self._overlap = overlap and self._active
        itemsize = wire_itemsize(wire_dtype)
        self._stalls = [
            stall_s_per_mib * (hi - lo) * itemsize / 2**20 for lo, hi in plan.spans
        ]
        self.steps = 0
        self.total_comm_s = 0.0
        self.exposed_wait_s = 0.0
        self.comm_chain_s = 0.0
        self.bucket_comm_s = [0.0] * plan.n_buckets
        self._t_first = 0.0
        self._thread: Optional[threading.Thread] = None
        if self._overlap:
            self._queue: queue_mod.SimpleQueue = queue_mod.SimpleQueue()
            self._cv = threading.Condition()
            self._done = 0
            self._error: Optional[BaseException] = None
            self._thread = threading.Thread(
                target=self._comm_loop, name="ddp-comm", daemon=True
            )
            self._thread.start()

    # -- per-step protocol ------------------------------------------------
    def begin_step(self, buf: np.ndarray, step: int) -> None:
        self._buf = buf
        self._step = step
        self._counts = list(self._counts0)
        self._complete = [False] * self.plan.n_buckets
        self._seen = [False] * len(self._params)
        self._next = 0
        if self._overlap:
            with self._cv:
                self._done = 0

    def grad_ready(self, node) -> None:
        """Tape hook: ``node``'s gradient for this backward is final."""
        idx = self._id2idx.get(id(node))
        if idx is None or self._seen[idx]:
            return
        self._seen[idx] = True
        off, size, _ = self._layout[idx]
        self._buf[off:off + size] = node.grad.ravel()
        self._bucket_down(self.plan.param_bucket[idx])

    def finish_backward(self) -> None:
        """Zero-fill parameters backward never reached; flush their buckets."""
        for idx, seen in enumerate(self._seen):
            if not seen:
                off, size, _ = self._layout[idx]
                self._buf[off:off + size] = 0.0
                self._bucket_down(self.plan.param_bucket[idx])

    def wait_step(self) -> None:
        """Block until every bucket of the step is reduced into ``buf``."""
        self.steps += 1
        if not self._active:
            return
        if self._overlap:
            t0 = time.perf_counter()
            with self._cv:
                while self._done < self.plan.n_buckets and self._error is None:
                    self._cv.wait(timeout=1.0)
                err = self._error
            self.exposed_wait_s += time.perf_counter() - t0
            if err is not None:
                raise RuntimeError("ddp comm thread failed") from err
        else:
            for b in range(self.plan.n_buckets):
                dt = self._comm_bucket(b, self._buf, self._step)
                self.exposed_wait_s += dt
                self.comm_chain_s += dt

    def flush_inline(self, buf: np.ndarray, step: int) -> None:
        """One whole step synchronously (the ragged-tail step): every
        bucket shipped in order from ``buf``, no hooks involved."""
        self.steps += 1
        if not self._active:
            return
        for b in range(self.plan.n_buckets):
            dt = self._comm_bucket(b, buf, step)
            self.exposed_wait_s += dt
            self.comm_chain_s += dt

    def stats(self, world: int, steps: int) -> Dict:
        total, exposed = self.total_comm_s, self.exposed_wait_s
        chain = self.comm_chain_s
        frac = 0.0 if chain <= 0 else min(1.0, max(0.0, 1.0 - exposed / chain))
        wire = self._reducer.wire_dtype if self._reducer is not None else "float64"
        return {
            "comm": "bucketed",
            "wire_dtype": wire,
            "overlap": bool(self._overlap),
            "n_buckets": self.plan.n_buckets,
            "steps": int(steps),
            "total_comm_s": float(total),
            "exposed_wait_s": float(exposed),
            "comm_chain_s": float(chain),
            "overlap_fraction": float(frac),
            "wire_bytes_per_step": int(world * self.plan.wire_bytes(wire)),
            "bucket_spans": [[int(lo), int(hi)] for lo, hi in self.plan.spans],
            "bucket_comm_s": [float(t) for t in self.bucket_comm_s],
        }

    def close(self) -> None:
        if self._thread is not None:
            self._queue.put(None)
            self._thread.join(timeout=5.0)
            self._thread = None

    # -- internals --------------------------------------------------------
    def _bucket_down(self, b: int) -> None:
        self._counts[b] -= 1
        if self._counts[b] == 0:
            self._complete[b] = True
            if self._overlap:
                while self._next < self.plan.n_buckets and self._complete[self._next]:
                    if self._next == 0:
                        self._t_first = time.perf_counter()
                    self._queue.put((self._next, self._buf, self._step))
                    self._next += 1

    def _comm_bucket(self, b: int, buf: np.ndarray, step: int) -> float:
        t0 = time.perf_counter()
        self._reducer.allreduce_bucket(b, buf, step, stall_s=self._stalls[b])
        dt = time.perf_counter() - t0
        self.total_comm_s += dt
        self.bucket_comm_s[b] += dt
        return dt

    def _comm_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            b, buf, step = item
            try:
                self._comm_bucket(b, buf, step)
            except BaseException as e:  # surface into wait_step
                with self._cv:
                    self._error = e
                    self._cv.notify_all()
                return
            with self._cv:
                self._done += 1
                if self._done == self.plan.n_buckets:
                    self.comm_chain_s += time.perf_counter() - self._t_first
                self._cv.notify_all()


def _epoch_batches(x, y, perm, steps, batch, micro, ranks, hook):
    """Micro-batch assembly for one epoch, staging hook included.

    Yields one ``(xb, yb)`` per (step, rank) pair in deterministic
    order.  This generator is what ``prefetch=True`` overlaps with
    compute — the gather *and* the staging hook run on the producer
    thread while the consumer computes the previous step.
    """
    for step in range(steps):
        base = step * batch
        for rank in ranks:
            if hook is not None:
                hook(rank, step)
            idx = perm[base + rank * micro: base + (rank + 1) * micro]
            yield x[idx], (None if y is None else y[idx])


def _make_optimizer(spec: _TrainSpec, params) -> Optimizer:
    if spec.optimizer_factory is not None:
        return spec.optimizer_factory(params)
    return Adam(params, lr=spec.lr)


def _restore_rng(state: dict) -> np.random.Generator:
    rng = np.random.default_rng()
    rng.bit_generator.state = state
    return rng


def _epoch_steps(spec: _TrainSpec) -> Tuple[int, int]:
    """(full steps per epoch, ragged-tail sample count or 0)."""
    steps = spec.n_samples // spec.batch_size
    tail = 0 if spec.drop_last else spec.n_samples - steps * spec.batch_size
    return steps, tail


def _tail_grads(model, loss_fn, params, layout, x, y, perm, steps, spec,
                rank, out_vec, hook) -> None:
    """One rank's share of the ragged tail batch, pre-weighted.

    The tail (``n_tail < batch_size`` samples) is split across ranks by
    :func:`chunk_bounds` — pad-free, so no fabricated samples touch the
    statistics.  Each rank scales its micro-batch-mean gradient (and
    loss) by ``n_r * world / n_tail`` before the allreduce; after the
    usual ``1/world`` the combined vector is exactly the sample-weighted
    tail-batch average ``sum_r (n_r / n_tail) * g_r``.  A rank whose
    share is empty skips compute and contributes zeros.  Every float in
    that sequence is identical across backends.
    """
    if hook is not None:
        hook(rank, steps)
    tail = spec.n_samples - steps * spec.batch_size
    lo, hi = chunk_bounds(tail, spec.world, rank)
    if hi > lo:
        idx = perm[steps * spec.batch_size + lo: steps * spec.batch_size + hi]
        _grads_into(model, loss_fn, params, layout,
                    x[idx], None if y is None else y[idx], out_vec)
        out_vec *= (hi - lo) * spec.world / tail
    else:
        out_vec[:] = 0.0


def _monolithic_stats(world: int, total: int, steps: int, comm_s: float) -> Dict:
    """Comm report for the baseline engine: one bucket, fully exposed."""
    return {
        "comm": "monolithic",
        "wire_dtype": "float64",
        "overlap": False,
        "n_buckets": 1,
        "steps": int(steps),
        "total_comm_s": float(comm_s),
        "exposed_wait_s": float(comm_s),
        "comm_chain_s": float(comm_s),
        "overlap_fraction": 0.0,
        "wire_bytes_per_step": int(world * total * 8),
        "bucket_spans": [[0, int(total)]],
        "bucket_comm_s": [float(comm_s)],
    }


def _train_rank(model, x, y, spec: _TrainSpec, rank: int,
                reducer) -> Tuple[List[float], List[float], Optional[Dict]]:
    """The per-rank training loop (process backend).

    Returns (epoch mean losses, epoch wall times, comm stats).  The
    combined gradient is ``(sum over ranks in ascending order) *
    (1/world)`` — the exact float sequence the serial backend replays.
    """
    params = list(model.parameters())
    loss_fn = losses_mod.get(spec.loss) if isinstance(spec.loss, str) else spec.loss
    opt = _make_optimizer(spec, params)
    rng = _restore_rng(spec.rng_state)
    layout, total = _param_layout(params)
    buf = np.empty(total, dtype=np.float64)
    micro = spec.batch_size // spec.world
    steps, tail = _epoch_steps(spec)
    inv_world = 1.0 / spec.world
    sched = None
    if spec.comm == "bucketed":
        plan = (reducer.plan if isinstance(reducer, BucketRankReducer)
                else plan_buckets([sz for _, sz, _ in layout], total, spec.bucket_bytes))
        sched = _GradBucketScheduler(
            plan, params, layout,
            reducer if isinstance(reducer, BucketRankReducer) else None,
            spec.wire_dtype, overlap=spec.overlap,
            stall_s_per_mib=spec.comm_stall_s_per_mib,
        )
    mono_stall = spec.comm_stall_s_per_mib * total * 8 / 2**20
    mono_comm_s = 0.0
    step_no = 0
    epoch_losses: List[float] = []
    epoch_times: List[float] = []
    try:
        for _ in range(spec.epochs):
            t0 = time.perf_counter()
            perm = rng.permutation(spec.n_samples) if spec.shuffle else np.arange(spec.n_samples)
            batches = _epoch_batches(
                x, y, perm, steps, spec.batch_size, micro, (rank,), spec.pre_step_hook
            )
            if spec.prefetch:
                batches = iter(PrefetchLoader(batches))
            loss_sum = 0.0
            for xb, yb in batches:
                _grads_into(model, loss_fn, params, layout, xb, yb, buf,
                            sched=sched, step=step_no)
                if sched is not None:
                    sched.wait_step()
                elif reducer is not None:
                    tc = time.perf_counter()
                    reducer.allreduce(buf, stall_s=mono_stall)
                    mono_comm_s += time.perf_counter() - tc
                buf *= inv_world
                _apply_combined(params, layout, buf, opt)
                loss_sum += buf[-1]
                step_no += 1
            if tail:
                _tail_grads(model, loss_fn, params, layout, x, y, perm, steps,
                            spec, rank, buf, spec.pre_step_hook)
                if sched is not None:
                    sched.flush_inline(buf, step_no)
                elif reducer is not None:
                    tc = time.perf_counter()
                    reducer.allreduce(buf, stall_s=mono_stall)
                    mono_comm_s += time.perf_counter() - tc
                buf *= inv_world
                _apply_combined(params, layout, buf, opt)
                loss_sum += buf[-1]
                step_no += 1
            epoch_losses.append(loss_sum / max(steps + (1 if tail else 0), 1))
            epoch_times.append(time.perf_counter() - t0)
    finally:
        if sched is not None:
            sched.close()
    if sched is not None:
        stats = sched.stats(spec.world, step_no)
    else:
        stats = _monolithic_stats(spec.world, total, step_no, mono_comm_s)
    return epoch_losses, epoch_times, stats


def _train_serial(model, x, y, spec: _TrainSpec) -> Tuple[List[float], List[float], Optional[Dict]]:
    """Single-process reference: same shards, same schedule, same codec.

    With ``comm="bucketed"`` every rank's backward runs through the same
    grad-ready bucket scheduler (packing per parameter as the tape
    finishes it) and ranks combine through
    :func:`reduce_ranks_bucketed` — the identical encode/decode and
    ascending accumulation the process engine performs on the slabs.
    """
    params = list(model.parameters())
    loss_fn = losses_mod.get(spec.loss) if isinstance(spec.loss, str) else spec.loss
    opt = _make_optimizer(spec, params)
    rng = _restore_rng(spec.rng_state)
    layout, total = _param_layout(params)
    world = spec.world
    rank_vecs = np.empty((world, total), dtype=np.float64)
    micro = spec.batch_size // world
    steps, tail = _epoch_steps(spec)
    inv_world = 1.0 / world
    sched = None
    spans = None
    if spec.comm == "bucketed":
        plan = plan_buckets([sz for _, sz, _ in layout], total, spec.bucket_bytes)
        sched = _GradBucketScheduler(plan, params, layout, None, spec.wire_dtype)
        spans = plan.spans

    def combine() -> np.ndarray:
        if spans is not None:
            return reduce_ranks_bucketed(list(rank_vecs), spans, spec.wire_dtype)
        return reduce_ranks(list(rank_vecs))

    step_no = 0
    epoch_losses: List[float] = []
    epoch_times: List[float] = []
    for _ in range(spec.epochs):
        t0 = time.perf_counter()
        perm = rng.permutation(spec.n_samples) if spec.shuffle else np.arange(spec.n_samples)
        batches = _epoch_batches(
            x, y, perm, steps, spec.batch_size, micro, range(world), spec.pre_step_hook
        )
        if spec.prefetch:
            batches = iter(PrefetchLoader(batches))
        loss_sum = 0.0
        for _step in range(steps):
            for r in range(world):
                xb, yb = next(batches)
                _grads_into(model, loss_fn, params, layout, xb, yb, rank_vecs[r],
                            sched=sched, step=step_no)
                if sched is not None:
                    sched.wait_step()
            combined = combine()
            combined *= inv_world
            _apply_combined(params, layout, combined, opt)
            loss_sum += combined[-1]
            step_no += 1
        if tail:
            for r in range(world):
                _tail_grads(model, loss_fn, params, layout, x, y, perm, steps,
                            spec, r, rank_vecs[r], spec.pre_step_hook)
            combined = combine()
            combined *= inv_world
            _apply_combined(params, layout, combined, opt)
            loss_sum += combined[-1]
            step_no += 1
        epoch_losses.append(loss_sum / max(steps + (1 if tail else 0), 1))
        epoch_times.append(time.perf_counter() - t0)
    return epoch_losses, epoch_times, None


def _rank_main(rank: int, spec: _TrainSpec, x_ref: SharedArrayRef,
               y_ref: Optional[SharedArrayRef], handle,
               result_q, env: Dict[str, str]) -> None:
    if env:
        os.environ.update(env)
    reducer = None
    x_att = y_att = None
    try:
        x_att = attach(x_ref)
        y_att = attach(y_ref) if y_ref is not None else None
        model = pickle.loads(spec.model_bytes)
        if isinstance(handle, BucketAllreduceHandle):
            reducer = BucketRankReducer(handle, rank)
        else:
            reducer = RankReducer(handle, rank)
        losses, times, stats = _train_rank(
            model, x_att.array, None if y_att is None else y_att.array,
            spec, rank, reducer,
        )
        payload = None
        if rank == 0:
            payload = (model.get_weights(), losses, times, stats)
        result_q.put(("done", rank, payload))
    except BaseException:
        result_q.put(("error", rank, traceback.format_exc()))
    finally:
        if reducer is not None:
            reducer.close()
        if x_att is not None:
            x_att.close()
        if y_att is not None:
            y_att.close()


def fit_data_parallel(
    model: Model,
    x: np.ndarray,
    y: Optional[np.ndarray] = None,
    *,
    world: int = 2,
    epochs: int = 5,
    batch_size: int = 32,
    loss="mse",
    lr: float = 1e-3,
    optimizer_factory: Optional[Callable] = None,
    seed: int = 0,
    shuffle: bool = True,
    backend: str = "process",
    start_method: Optional[str] = None,
    pre_step_hook: Optional[Callable[[int, int], None]] = None,
    prefetch: bool = False,
    env: Optional[Dict[str, str]] = None,
    timeout_s: float = 600.0,
    comm: str = "bucketed",
    wire_dtype: str = "float64",
    bucket_bytes: int = DEFAULT_BUCKET_BYTES,
    overlap: bool = True,
    comm_stall_s_per_mib: float = 0.0,
    drop_last: Optional[bool] = None,
) -> DataParallelResult:
    """Train ``model`` data-parallel on ``world`` ranks; weights land in
    ``model``.

    ``batch_size`` is the *global* batch and must be divisible by
    ``world``.  When it does not divide the dataset, ``drop_last``
    decides the ragged tail's fate: ``True`` drops it (every rank
    always holds an equal micro-batch), ``False`` trains on it as one
    extra sample-weighted step per epoch (pad-free: each rank takes its
    :func:`~repro.parallel.allreduce.chunk_bounds` share and pre-scales
    by ``n_r * world / n_tail``, so the averaged gradient is exact and
    deterministic).  The default ``None`` behaves like ``True`` but
    warns — the silent drop used to be an easy way to lose data.

    ``backend="process"`` runs real rank processes over the shared-
    memory data plane; ``backend="serial"`` executes the identical
    algorithm in-process.  Both produce bit-identical weights (the
    allreduce association order is pinned), which is the testable
    definition of "the parallel path does not change the numerics".

    ``comm``/``wire_dtype``/``bucket_bytes``/``overlap`` select the
    gradient-communication engine (see the module docstring);
    ``comm="monolithic"`` is the original single post-backward
    allreduce and supports only the ``float64`` wire.
    ``comm_stall_s_per_mib`` injects a measured comm-staging sleep per
    MiB of wire traffic on the process backend (timing only — numerics
    are unchanged, and the serial backend ignores it).

    ``optimizer_factory(params) -> Optimizer`` builds each rank's local
    optimizer (default: ``Adam(lr=lr)``); with ``start_method="spawn"``
    it, the loss callable, and ``pre_step_hook`` must be module-level
    picklables.
    """
    if world < 1:
        raise ValueError("world must be >= 1")
    if backend not in ("process", "serial"):
        raise ValueError(f"unknown backend {backend!r}")
    if comm not in ("bucketed", "monolithic"):
        raise ValueError(f"unknown comm {comm!r}; choose 'bucketed' or 'monolithic'")
    if wire_dtype not in WIRE_DTYPES:
        raise ValueError(f"unknown wire dtype {wire_dtype!r}; choose from {WIRE_DTYPES}")
    if comm == "monolithic" and wire_dtype != "float64":
        raise ValueError("comm='monolithic' supports only the float64 wire; "
                         "use comm='bucketed' for reduced-precision exchange")
    if batch_size % world != 0:
        raise ValueError(f"batch_size {batch_size} not divisible by world {world}")
    x = np.ascontiguousarray(x)
    y_arr = None if y is None else np.ascontiguousarray(y)
    n = len(x)
    if y_arr is not None and len(y_arr) != n:
        raise ValueError(f"x and y length mismatch: {n} vs {len(y_arr)}")
    steps = n // batch_size
    if steps < 1:
        raise ValueError(f"dataset ({n}) smaller than one global batch ({batch_size})")
    tail = n - steps * batch_size
    if tail and drop_last is None:
        warnings.warn(
            f"batch_size {batch_size} does not divide the dataset ({n}); "
            f"dropping the {tail}-sample ragged tail each epoch. Pass "
            f"drop_last=True to silence this, or drop_last=False to train "
            f"on the tail as a weighted step.",
            UserWarning, stacklevel=2,
        )
    drop_tail = True if drop_last is None else bool(drop_last)
    steps_per_epoch = steps + (1 if (tail and not drop_tail) else 0)

    rng = np.random.default_rng(seed)
    if not model.built:
        model.build(x.shape[1:], rng)
    params = list(model.parameters())
    layout, total = _param_layout(params)

    spec = _TrainSpec(
        model_bytes=pickle.dumps(model),
        rng_state=rng.bit_generator.state,
        world=world, epochs=epochs, batch_size=batch_size, loss=loss, lr=lr,
        optimizer_factory=optimizer_factory, shuffle=shuffle,
        pre_step_hook=pre_step_hook, prefetch=prefetch, n_samples=n,
        comm=comm, wire_dtype=wire_dtype, bucket_bytes=bucket_bytes,
        overlap=overlap, comm_stall_s_per_mib=comm_stall_s_per_mib,
        drop_last=drop_tail,
    )

    rec = get_recorder()
    span_id = None
    if rec is not None:
        span_id = rec.begin(
            "ddp_fit", kind="ddp.fit", world=world, backend=backend,
            epochs=epochs, steps_per_epoch=steps_per_epoch, batch_size=batch_size,
            comm=comm, wire_dtype=wire_dtype, overlap=bool(overlap),
            data_bytes=x.nbytes + (0 if y_arr is None else y_arr.nbytes),
        )

    t0 = time.perf_counter()
    try:
        if backend == "serial" or world == 1:
            # world==1 process mode would pay the data-plane setup for a
            # pool of one; run it in-process (identical numerics).
            losses, times, stats = _train_serial(model, x, y_arr, spec)
        else:
            losses, times, stats = _run_processes(
                model, x, y_arr, spec, layout, total, start_method, env, timeout_s
            )
        elapsed = time.perf_counter() - t0
    except BaseException:
        if rec is not None:
            rec.end(span_id, aborted=True)
        raise

    if rec is not None:
        for i, (dt, lv) in enumerate(zip(times, losses)):
            rec.add_complete("epoch", kind="ddp.epoch", dur_wall=dt, epoch=i, loss=lv)
        if stats is not None:
            itemsize = wire_itemsize(stats["wire_dtype"])
            for b, (span, comm_s) in enumerate(
                zip(stats["bucket_spans"], stats["bucket_comm_s"])
            ):
                rec.add_complete(
                    "bucket", kind="ddp.bucket", dur_wall=comm_s, bucket=b,
                    lo=span[0], hi=span[1], wire_dtype=stats["wire_dtype"],
                    wire_bytes_per_step=(span[1] - span[0]) * itemsize * world,
                )
            rec.metrics.gauge("ddp.overlap_fraction").set(stats["overlap_fraction"])
        rec.end(span_id, elapsed_s=elapsed, final_loss=losses[-1])
    return DataParallelResult(
        world=world, backend=backend, epochs=epochs, steps_per_epoch=steps_per_epoch,
        elapsed_s=elapsed, epoch_losses=losses, epoch_times=times, comm_stats=stats,
    )


def _run_processes(model, x, y, spec: _TrainSpec, layout, vec_len: int,
                   start_method: Optional[str], env: Optional[Dict[str, str]],
                   timeout_s: float) -> Tuple[List[float], List[float], Optional[Dict]]:
    ctx = mp.get_context(start_method)
    env = DEFAULT_WORKER_ENV if env is None else env
    with SharedArrayStore(prefix="repro_ddp") as store:
        x_ref = store.publish("x", x)
        y_ref = store.publish("y", y) if y is not None else None
        if spec.comm == "bucketed":
            plan = plan_buckets([sz for _, sz, _ in layout], vec_len, spec.bucket_bytes)
            handle = create_bucketed_allreduce(
                store, ctx, spec.world, plan, spec.wire_dtype
            )
        else:
            handle = create_allreduce(store, ctx, spec.world, vec_len)
        result_q = ctx.Queue()
        saved = {k: os.environ.get(k) for k in env}
        os.environ.update(env)
        try:
            procs = [
                ctx.Process(
                    target=_rank_main,
                    args=(r, spec, x_ref, y_ref, handle, result_q, env),
                    daemon=True,
                )
                for r in range(spec.world)
            ]
            for p in procs:
                p.start()
        finally:
            for k, v in saved.items():
                if v is None:
                    os.environ.pop(k, None)
                else:
                    os.environ[k] = v
        payload = None
        try:
            done = 0
            deadline = time.perf_counter() + timeout_s
            while done < spec.world:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    raise TimeoutError(f"data-parallel ranks not done within {timeout_s}s")
                try:
                    status, rank, data = result_q.get(timeout=min(remaining, 1.0))
                except queue_mod.Empty:
                    if any(p.exitcode not in (None, 0) for p in procs):
                        raise RuntimeError(
                            "a data-parallel rank died: "
                            + str([p.exitcode for p in procs])
                        )
                    continue
                if status == "error":
                    raise RuntimeError(f"rank {rank} failed:\n{data}")
                done += 1
                if rank == 0:
                    payload = data
            for p in procs:
                p.join(timeout=5.0)
        finally:
            for p in procs:
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=1.0)
    if payload is None:  # pragma: no cover - rank 0 always reports
        raise RuntimeError("rank 0 produced no result")
    weights, losses, times, stats = payload
    model.set_weights(weights)
    return losses, times, stats
