"""Real multi-core execution engine.

Everything else under :mod:`repro.hpc`/:mod:`repro.hpo` models or
simulates parallelism; this package actually uses the cores.  Four
layers, bottom-up:

* :mod:`repro.parallel.shm` — shared-memory data plane: publish dataset
  arrays once, workers attach zero-copy (:class:`SharedArrayStore`,
  :func:`attach`).
* :mod:`repro.parallel.pool` — persistent fork/spawn-safe process
  worker pool with a pickle-light task protocol and died-worker
  respawn (:class:`ProcessWorkerPool`).
* :mod:`repro.parallel.allreduce` — deterministic shared-memory
  reduce-scatter/allgather allreduce whose fixed rank-order association
  makes parallel training bit-identical to the serial reference
  (:class:`RankReducer`, :func:`reduce_ranks`), plus the bucketed
  double-buffered variant with selectable wire precision that backs
  overlapped DDP (:class:`BucketRankReducer`, :func:`plan_buckets`,
  :func:`reduce_ranks_bucketed`, ``wire_dtype in WIRE_DTYPES``).
* :mod:`repro.parallel.ddp` / :mod:`repro.parallel.executor` — the two
  user-facing drivers: :func:`fit_data_parallel` (real data-parallel
  training) and :class:`ParallelTrialExecutor` (real-clock HPO via
  ``run_parallel(..., executor=...)``).

:class:`PrefetchLoader` (background-thread double buffering) overlaps
batch assembly/staging with compute and is usable standalone or via
``Model.fit(..., prefetch=True)``.

Measured by ``benchmarks/bench_parallel.py`` (speedup + parity gates,
``BENCH_parallel.json``); see the README "Parallel execution" section.
"""

from .allreduce import (
    DEFAULT_BUCKET_BYTES,
    WIRE_DTYPES,
    BucketPlan,
    BucketRankReducer,
    RankReducer,
    accumulate_rows,
    chunk_bounds,
    create_allreduce,
    create_bucketed_allreduce,
    decode_wire,
    encode_wire,
    plan_buckets,
    reduce_ranks,
    reduce_ranks_bucketed,
    wire_itemsize,
)
from .ddp import DataParallelResult, fit_data_parallel
from .executor import ParallelTrialExecutor, bind_worker_data, worker_data
from .pool import DEFAULT_WORKER_ENV, ProcessWorkerPool, TaskResult, echo_task
from .prefetch import PrefetchLoader
from .shm import AttachedArray, SharedArrayRef, SharedArrayStore, attach

__all__ = [
    "SharedArrayStore", "SharedArrayRef", "AttachedArray", "attach",
    "ProcessWorkerPool", "TaskResult", "DEFAULT_WORKER_ENV", "echo_task",
    "RankReducer", "reduce_ranks", "create_allreduce", "chunk_bounds",
    "BucketPlan", "BucketRankReducer", "plan_buckets",
    "create_bucketed_allreduce", "reduce_ranks_bucketed", "accumulate_rows",
    "encode_wire", "decode_wire", "wire_itemsize",
    "WIRE_DTYPES", "DEFAULT_BUCKET_BYTES",
    "fit_data_parallel", "DataParallelResult",
    "ParallelTrialExecutor", "worker_data", "bind_worker_data",
    "PrefetchLoader",
]
