"""Shared-memory data plane: publish dataset arrays once, attach zero-copy.

The simulated schedulers never move data; a *real* process-parallel run
must, and naively that means re-pickling the training set into every
worker for every trial — exactly the data-staging overhead the keynote
warns about.  This module is the fix: the parent publishes each array
into a POSIX shared-memory segment once (:class:`SharedArrayStore`),
ships only a tiny picklable :class:`SharedArrayRef` (name/shape/dtype)
to workers, and each worker attaches a zero-copy NumPy view
(:func:`attach`).  A 100 MB training set costs 100 MB total, not
100 MB x workers x trials.

Lifecycle: the *publishing* process owns the segments and unlinks them
in :meth:`SharedArrayStore.close` (or at context exit).  Attaching
processes only close their mapping.  When the attacher runs a *private*
resource tracker (spawn children), attach unregisters the segment from
it — otherwise the tracker of the first worker to exit unlinks segments
the parent still owns (the long-standing CPython gotcha for
cross-process shared memory).  Fork children share the publisher's
tracker and must leave it alone.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class SharedArrayRef:
    """Picklable handle to a published array: everything a worker needs
    to attach, and nothing else (a few dozen bytes on the wire)."""

    shm_name: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


# Per-pid latch: True when this process inherited an already-running
# resource tracker (fork child, or the publishing parent itself).  Such
# a process must NOT unregister attached segments — the tracker is
# shared, its cache is keyed by name, and the publisher's eventual
# ``unlink`` performs the one legitimate unregister.  A process whose
# tracker starts fresh (spawn child) owns a private tracker that would
# unlink the publisher's segments when the child exits, so there the
# attach must unregister.  Decided once, before the first attach.
_TRACKER_INHERITED: Dict[int, bool] = {}


def _tracker_inherited() -> bool:
    import os

    pid = os.getpid()
    if pid not in _TRACKER_INHERITED:
        try:  # pragma: no cover - depends on interpreter internals
            from multiprocessing import resource_tracker

            fd = getattr(resource_tracker._resource_tracker, "_fd", None)
        except Exception:
            fd = None
        _TRACKER_INHERITED[pid] = fd is not None
    return _TRACKER_INHERITED[pid]


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Keep this process's *private* resource tracker from unlinking a
    segment the publisher still owns.  No-op when the tracker is shared
    with the publisher (fork).  Best-effort: tracker internals are not a
    stable API.
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass


class AttachedArray:
    """A zero-copy NumPy view over a published segment.

    Keeps the :class:`SharedMemory` mapping alive for as long as the
    view is used (dropping the mapping invalidates the buffer).
    """

    def __init__(self, ref: SharedArrayRef) -> None:
        self.ref = ref
        inherited = _tracker_inherited()  # must be sampled before attach
        self._shm = shared_memory.SharedMemory(name=ref.shm_name)
        if not inherited:
            _untrack(self._shm)
        self.array: np.ndarray = np.ndarray(
            ref.shape, dtype=np.dtype(ref.dtype), buffer=self._shm.buf
        )

    def close(self) -> None:
        # The view must die before the mapping can be closed.
        self.array = None  # type: ignore[assignment]
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - exported views still alive
            pass

    def __enter__(self) -> "AttachedArray":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach(ref: SharedArrayRef) -> AttachedArray:
    """Attach to a published array; returns the view-holding handle."""
    return AttachedArray(ref)


class SharedArrayStore:
    """Owner of a set of named shared-memory arrays (the data plane).

    ``publish`` copies an array in once; ``allocate`` creates an empty
    shared array (scratch slabs for the allreduce).  ``refs()`` returns
    the picklable handles to ship to workers.  ``close`` unlinks
    everything; it is idempotent and runs at context exit.
    """

    def __init__(self, prefix: str = "repro") -> None:
        self._prefix = prefix
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._refs: Dict[str, SharedArrayRef] = {}
        self._arrays: Dict[str, np.ndarray] = {}

    def _new_segment(self, key: str, nbytes: int) -> shared_memory.SharedMemory:
        if key in self._refs:
            raise ValueError(f"array {key!r} already published")
        name = f"{self._prefix}_{secrets.token_hex(6)}"
        return shared_memory.SharedMemory(name=name, create=True, size=max(nbytes, 1))

    def allocate(self, key: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """Create an uninitialised shared array; returns the owner's view."""
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        shm = self._new_segment(key, nbytes)
        view = np.ndarray(shape, dtype=dt, buffer=shm.buf)
        self._segments[key] = shm
        self._refs[key] = SharedArrayRef(shm.name, tuple(shape), dt.str)
        self._arrays[key] = view
        return view

    def publish(self, key: str, array: np.ndarray, dtype=None) -> SharedArrayRef:
        """Copy ``array`` into shared memory once; returns its ref.

        ``dtype`` casts at publish time (e.g. float64 weights into
        float32 segments — half the shared bytes); the source array is
        untouched.
        """
        array = np.ascontiguousarray(array, dtype=dtype)
        view = self.allocate(key, array.shape, array.dtype)
        view[...] = array
        return self._refs[key]

    def ref(self, key: str) -> SharedArrayRef:
        return self._refs[key]

    def refs(self) -> Dict[str, SharedArrayRef]:
        return dict(self._refs)

    def array(self, key: str) -> np.ndarray:
        """The owner-side view of a published/allocated array."""
        return self._arrays[key]

    @property
    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self._refs.values())

    def close(self) -> None:
        """Close and unlink every segment (publisher-side cleanup)."""
        self._arrays.clear()
        for key, shm in list(self._segments.items()):
            try:
                shm.close()
            except BufferError:  # pragma: no cover
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            del self._segments[key]
        self._refs.clear()

    def __enter__(self) -> "SharedArrayStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._refs)
