"""Background-thread prefetching: overlap batch assembly with compute.

Batch assembly (fancy-index gathers, staging waits, augmentation) and
the NumPy compute of a training step are naturally overlappable: the
gather is memory/IO-bound and the heavy BLAS kernels release the GIL.
:class:`PrefetchLoader` wraps any batch iterable with a producer thread
and a small bounded queue (double buffering by default), so batch
``t+1`` is assembled while step ``t`` computes.

The wrapper is ordering- and value-transparent: batches come out
exactly as the underlying loader yields them, so training remains
bit-identical with prefetching on or off — it only moves *when* the
assembly work happens.  That transparency includes dtype: batches are
handed over by reference, never copied or re-packed, so a float32
pipeline (``DataLoader(dtype=np.float32)``) stays float32 end to end —
guarded by the dtype-preservation regression tests.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Iterable, Iterator


class _EndOfEpoch:
    pass


class _ProducerError:
    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


class PrefetchLoader:
    """Wrap a batch iterable with an N-deep background prefetch buffer.

    Parameters
    ----------
    loader:
        Any re-iterable yielding batches (typically a
        :class:`repro.nn.DataLoader`).  Each ``__iter__`` starts a fresh
        producer thread, so one wrapper serves many epochs.
    depth:
        Buffer capacity; 2 is classic double buffering (one batch being
        consumed, one being assembled).
    """

    def __init__(self, loader: Iterable, depth: int = 2) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.loader = loader
        self.depth = depth

    def __len__(self) -> int:
        return len(self.loader)  # type: ignore[arg-type]

    @property
    def n_samples(self) -> int:
        return self.loader.n_samples  # type: ignore[attr-defined]

    def __iter__(self) -> Iterator[Any]:
        buf: queue.Queue = queue.Queue(maxsize=self.depth)
        stop = threading.Event()

        def produce() -> None:
            try:
                for item in self.loader:
                    while not stop.is_set():
                        try:
                            buf.put(item, timeout=0.05)
                            break
                        except queue.Full:
                            continue
                    if stop.is_set():
                        return
                buf.put(_EndOfEpoch())
            except BaseException as exc:  # propagate into the consumer
                buf.put(_ProducerError(exc))

        thread = threading.Thread(target=produce, daemon=True, name="prefetch")
        thread.start()
        try:
            while True:
                item = buf.get()
                if isinstance(item, _EndOfEpoch):
                    break
                if isinstance(item, _ProducerError):
                    raise item.exc
                yield item
        finally:
            # Early exit (break / exception): release the producer if it
            # is blocked on a full buffer, then reap the thread.
            stop.set()
            while True:
                try:
                    buf.get_nowait()
                except queue.Empty:
                    break
            thread.join(timeout=5.0)
