"""Persistent process worker pool with a pickle-light task protocol.

Unlike :class:`repro.hpc.events.WorkerPool` (simulated workers on a
virtual clock), this pool runs tasks on *real* OS processes.  Design
points, in the order they matter:

* **Persistent workers.**  Each worker is forked/spawned once, runs an
  optional initializer (attach shared memory, pin BLAS threads), then
  loops on a private task pipe until shutdown.  Per-task cost is one
  small pickle each way — the task function and any bulk data cross the
  process boundary exactly once, at startup.
* **Parent-side dispatch.**  Submitted tasks queue *in the parent*; a
  task is written to a worker's pipe only when that worker has reported
  ready and has no task in flight.  One task in flight per worker means
  a worker death can strand at most one task — everything else is still
  safely in the parent — and a replacement worker on a *fresh* pipe can
  never deadlock on a lock its dead predecessor held (the failure mode
  of sharing one ``mp.Queue`` across incarnations).
* **Slots, not just workers.**  The pool is organized as ``n_workers``
  *slots*; a respawn replaces the process in a slot but keeps the
  slot's parent-side backlog, so with ``dedicated_queues=True`` (per-
  slot backlogs — the serving tier's replica-scoped dispatch) tasks
  queued behind a dead worker survive its replacement.
* **Fork/spawn safe.**  The start method is selectable; with ``spawn``
  the task function and initializer must be module-level picklables.
  BLAS thread-count env pins are exported around worker startup so
  spawned interpreters import NumPy already pinned (the oversubscription
  guard the parallel benchmarks rely on).
* **Graceful degradation.**  A worker that dies mid-task (segfault,
  ``os._exit``) is detected by liveness polling; its lost task is
  *resubmitted* up to ``max_task_retries`` times (default 1) before
  being reported with status ``"died"``, and a replacement worker is
  spawned either way so pool capacity survives — the real-clock
  analogue of ``WorkerPool.fail_worker``.  A worker that *hangs* past
  ``task_timeout_s`` on one task is terminated and takes the same
  resubmit-or-report path with status ``"hung"``.

Observability: with a recorder attached, the pool maintains a
``parallel.queue_depth`` gauge (tasks submitted but not finished),
``parallel.tasks_completed`` / ``parallel.tasks_lost`` /
``parallel.tasks_retried`` / ``parallel.worker_respawns`` counters, and
``parallel.worker`` lifecycle events.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..obs.context import get_recorder

#: BLAS/OpenMP pins exported to workers: one process == one compute lane.
#: Oversubscribed BLAS thread pools are the classic way a "4x" parallel
#: run measures 1.1x, so the pool defaults to pinning them all.
DEFAULT_WORKER_ENV: Dict[str, str] = {
    "OMP_NUM_THREADS": "1",
    "OPENBLAS_NUM_THREADS": "1",
    "MKL_NUM_THREADS": "1",
    "VECLIB_MAXIMUM_THREADS": "1",
    "NUMEXPR_NUM_THREADS": "1",
}

_POLL_S = 0.02  # liveness-check cadence while waiting on results


@dataclass
class TaskResult:
    """One finished task, as the parent sees it."""

    task_id: int
    worker: int
    status: str  # "ok" | "err" | "died" | "hung"
    value: Any  # result, or traceback text for "err", or None for died/hung
    duration_s: float  # worker-measured wall time of the task body


def echo_task(payload: Any) -> Any:
    """Module-level identity task (spawn-mode smoke tests)."""
    return payload


def _worker_main(idx, task_fn, initializer, initargs, env, task_r, result_q) -> None:
    if env:
        os.environ.update(env)
    try:
        if initializer is not None:
            initializer(*initargs)
    except BaseException:
        result_q.put((None, idx, "init_err", traceback.format_exc(), 0.0))
        return
    result_q.put((None, idx, "ready", os.getpid(), 0.0))
    while True:
        try:
            item = task_r.recv()
        except EOFError:  # parent closed the pipe: shutdown
            break
        if item is None:
            break
        task_id, payload = item
        t0 = time.perf_counter()
        try:
            value = task_fn(payload)
            result_q.put((task_id, idx, "ok", value, time.perf_counter() - t0))
        except BaseException:
            result_q.put((task_id, idx, "err", traceback.format_exc(), time.perf_counter() - t0))


class ProcessWorkerPool:
    """N persistent worker processes executing ``task_fn`` on payloads.

    Parameters
    ----------
    task_fn:
        ``payload -> result``.  Crosses the process boundary once per
        worker at startup; must be picklable under ``spawn``.
    n_workers:
        Pool width (slots; one real process per slot).
    initializer / initargs:
        Run once in each worker before its task loop — the place to
        attach the shared-memory data plane.  Re-runs in every respawned
        replacement worker, so slot state (attached segments, built
        models) survives a crash.
    start_method:
        ``"fork"`` (default on Linux: instant, inherits the parent) or
        ``"spawn"`` (fresh interpreters; everything must pickle).
    env:
        Environment exported to workers *before* the initializer runs;
        defaults to :data:`DEFAULT_WORKER_ENV` (BLAS pinned to 1 thread).
    dedicated_queues:
        One parent-side backlog per slot instead of a shared backlog.
        ``submit`` then targets a slot (``slot=``, default round-robin)
        — the replica-scoped dispatch the distributed serving tier
        routes on.
    max_task_retries:
        How many times a task lost to a dead or hung worker is silently
        resubmitted before it is surfaced as ``"died"``/``"hung"``.
    task_timeout_s:
        If set, a worker that holds one dispatched task longer than this
        is declared hung, terminated, and respawned (its task follows
        the retry policy).  ``None`` (default) disables hang detection.
    """

    def __init__(
        self,
        task_fn: Callable[[Any], Any],
        n_workers: int,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple = (),
        start_method: Optional[str] = None,
        env: Optional[Dict[str, str]] = None,
        dedicated_queues: bool = False,
        max_task_retries: int = 1,
        task_timeout_s: Optional[float] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be positive")
        self.task_fn = task_fn
        self.n_workers = n_workers
        self.max_task_retries = max_task_retries
        self.task_timeout_s = task_timeout_s
        self.dedicated_queues = dedicated_queues
        self._initializer = initializer
        self._initargs = initargs
        self._env = DEFAULT_WORKER_ENV if env is None else env
        self._ctx = mp.get_context(start_method)
        # Results ride a SimpleQueue on purpose: its put() writes the
        # message synchronously into the pipe, so a worker's result is
        # durable the moment put() returns — even if the worker then
        # dies (mp.Queue's background feeder thread would lose it).
        self._result_q = self._ctx.SimpleQueue()
        # Parent-side backlogs: one per slot (dedicated) or one shared.
        n_backlogs = n_workers if dedicated_queues else 1
        self._backlogs: List[Deque[int]] = [deque() for _ in range(n_backlogs)]
        self._procs: Dict[int, Any] = {}          # slot -> live process
        self._pipes: Dict[int, Any] = {}          # slot -> parent Connection
        self._widx: Dict[int, int] = {}           # slot -> incarnation id
        self._slot_of: Dict[int, int] = {}        # incarnation id -> slot
        self._ready: Dict[int, bool] = {}         # slot -> sent "ready"
        self._running: Dict[int, Optional[int]] = {}   # slot -> task id
        self._dispatched_at: Dict[int, float] = {}     # slot -> dispatch time
        self._kill_reason: Dict[int, str] = {}    # slot -> "hung"|"terminated"
        self._pending: List[TaskResult] = []      # reaped terminal results
        self._payloads: Dict[int, Any] = {}       # task id -> payload (live)
        self._retries: Dict[int, int] = {}        # task id -> resubmissions
        self._task_slot: Dict[int, Optional[int]] = {}  # task id -> target slot
        self._next_task = 0
        self._next_worker = 0
        self._rr = 0
        self._outstanding = 0
        self.respawns = 0
        self.tasks_lost = 0
        self.tasks_retried = 0
        self._closed = False
        for slot in range(n_workers):
            self._spawn_worker(slot)

    # -- workers ---------------------------------------------------------
    def _backlog_for(self, slot: Optional[int]) -> Deque[int]:
        if self.dedicated_queues and slot is not None:
            return self._backlogs[slot]
        return self._backlogs[0]

    def _spawn_worker(self, slot: int) -> None:
        idx = self._next_worker
        self._next_worker += 1
        # A fresh pipe per incarnation: nothing a dead predecessor was
        # blocked on can poison the replacement.
        task_r, task_w = self._ctx.Pipe(duplex=False)
        # Export the env pins in the parent around startup too: a spawned
        # interpreter reads them when it first imports NumPy, which
        # happens before the worker's own os.environ.update could run.
        saved = {k: os.environ.get(k) for k in self._env}
        os.environ.update(self._env)
        try:
            proc = self._ctx.Process(
                target=_worker_main,
                args=(idx, self.task_fn, self._initializer, self._initargs,
                      self._env, task_r, self._result_q),
                daemon=True,
            )
            proc.start()
        finally:
            for k, v in saved.items():
                if v is None:
                    os.environ.pop(k, None)
                else:
                    os.environ[k] = v
        task_r.close()  # parent keeps only the write end
        self._procs[slot] = proc
        self._pipes[slot] = task_w
        self._widx[slot] = idx
        self._slot_of[idx] = slot
        self._ready[slot] = False
        self._running[slot] = None
        rec = get_recorder()
        if rec is not None:
            rec.event("worker_spawn", kind="parallel.worker",
                      worker=idx, slot=slot, pid=proc.pid)

    def terminate_worker(self, slot: int, reason: str = "terminated") -> None:
        """Kill the process in ``slot`` (chaos injection, supervisor
        recycling a wedged replica).  The next result poll reaps it:
        its in-flight task follows the retry policy and a replacement
        worker spawns on the same slot — backlogged tasks survive."""
        if slot not in self._procs:
            raise KeyError(f"no worker in slot {slot}")
        self._kill_reason.setdefault(slot, reason)
        proc = self._procs[slot]
        proc.terminate()
        proc.join(timeout=5.0)

    def _check_hung(self) -> None:
        """Terminate any worker that has sat on one task past the bound."""
        if self.task_timeout_s is None:
            return
        now = time.perf_counter()
        for slot, t0 in list(self._dispatched_at.items()):
            if self._running.get(slot) is not None and now - t0 > self.task_timeout_s:
                self.terminate_worker(slot, reason="hung")

    def _reap_dead(self) -> None:
        """Detect dead workers; respawn them and resubmit or surface
        their lost tasks.  Tasks that exhausted their retries land in
        the pending buffer as terminal ``"died"``/``"hung"`` results."""
        for slot, proc in list(self._procs.items()):
            if proc.is_alive():
                continue
            task_id = self._running[slot]
            self._dispatched_at.pop(slot, None)
            reason = self._kill_reason.pop(slot, "died")
            status = "hung" if reason == "hung" else "died"
            idx = self._widx.pop(slot)
            self._slot_of.pop(idx, None)
            del self._procs[slot]
            try:
                self._pipes.pop(slot).close()
            except OSError:  # pragma: no cover - already closed
                pass
            rec = get_recorder()
            if rec is not None:
                rec.event(
                    "worker_death", kind="parallel.worker",
                    worker=idx, slot=slot, reason=reason,
                    exitcode=proc.exitcode, lost_task=task_id,
                )
            self.respawns += 1
            if rec is not None:
                rec.metrics.counter("parallel.worker_respawns").inc()
            self._spawn_worker(slot)
            if task_id is None or task_id not in self._payloads:
                continue
            self.tasks_lost += 1
            if rec is not None:
                rec.metrics.counter("parallel.tasks_lost").inc()
            if self._retries.get(task_id, 0) < self.max_task_retries:
                # Re-backlog to the same target (the slot's replacement
                # worker drains the same backlog).
                self._retries[task_id] = self._retries.get(task_id, 0) + 1
                self.tasks_retried += 1
                if rec is not None:
                    rec.metrics.counter("parallel.tasks_retried").inc()
                self._backlog_for(self._task_slot.get(task_id)).append(task_id)
            else:
                self._pending.append(TaskResult(task_id, idx, status, None, 0.0))
                self._forget(task_id)

    def _dispatch(self) -> None:
        """Write backlogged tasks to every free, ready worker's pipe."""
        for slot in self._procs:
            if not self._ready[slot] or self._running[slot] is not None:
                continue
            backlog = self._backlog_for(slot)
            task_id = None
            while backlog:
                candidate = backlog.popleft()
                if candidate in self._payloads and self._running_nowhere(candidate):
                    task_id = candidate
                    break
            if task_id is None:
                continue
            try:
                self._pipes[slot].send((task_id, self._payloads[task_id]))
            except (OSError, BrokenPipeError):  # dead worker: next reap fixes it
                backlog.appendleft(task_id)
                continue
            self._running[slot] = task_id
            self._dispatched_at[slot] = time.perf_counter()

    def _running_nowhere(self, task_id: int) -> bool:
        return all(t != task_id for t in self._running.values())

    def _forget(self, task_id: int) -> None:
        """Drop a task's bookkeeping once its outcome is decided.
        ``_outstanding`` is only decremented when the result is handed
        to the caller (the pending buffer still owes it one)."""
        self._payloads.pop(task_id, None)
        self._retries.pop(task_id, None)
        self._task_slot.pop(task_id, None)

    def _gauge(self) -> None:
        rec = get_recorder()
        if rec is not None:
            rec.metrics.gauge("parallel.queue_depth").set(self._outstanding)

    # -- task protocol ---------------------------------------------------
    def submit(self, payload: Any, slot: Optional[int] = None) -> int:
        """Enqueue one task; returns its id (results arrive unordered).

        With ``dedicated_queues``, ``slot`` picks the target worker slot
        (round-robin when omitted); without, ``slot`` must be None.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        if slot is not None:
            if not self.dedicated_queues:
                raise ValueError("slot targeting requires dedicated_queues=True")
            if not 0 <= slot < self.n_workers:
                raise ValueError(f"slot must be in [0, {self.n_workers})")
        elif self.dedicated_queues:
            slot = self._rr
            self._rr = (self._rr + 1) % self.n_workers
        task_id = self._next_task
        self._next_task += 1
        self._outstanding += 1
        self._payloads[task_id] = payload
        self._task_slot[task_id] = slot
        self._backlog_for(slot).append(task_id)
        self._dispatch()
        self._gauge()
        return task_id

    @property
    def outstanding(self) -> int:
        """Tasks submitted whose results have not been returned yet."""
        return self._outstanding

    def backlog_depth(self, slot: Optional[int] = None) -> int:
        """Tasks queued in the parent, not yet dispatched to a worker."""
        if slot is None:
            return sum(len(b) for b in self._backlogs)
        return len(self._backlog_for(slot))

    def worker_alive(self, slot: int) -> bool:
        """Liveness of the process currently occupying ``slot``."""
        proc = self._procs.get(slot)
        return proc is not None and proc.is_alive()

    def worker_busy(self, slot: int) -> bool:
        """Does ``slot`` have a task in flight right now?"""
        return self._running.get(slot) is not None

    def wait_ready(self, timeout_s: float = 60.0) -> None:
        """Block until every slot's worker has finished its initializer.

        Purely optional — dispatch already waits per worker — but timed
        code (benches) calls it so worker startup is not billed to the
        first tasks.  Any task results consumed while waiting are
        re-buffered, not lost.
        """
        deadline = time.perf_counter() + timeout_s
        while not all(self._ready.get(s, False) for s in range(self.n_workers)):
            res = self._poll_once(wait_s=0.005)
            if res is not None:
                # _emit already settled accounting; re-credit and buffer.
                self._outstanding += 1
                self._pending.append(res)
            if time.perf_counter() > deadline:
                raise TimeoutError("workers not ready within bound")

    def next_result(self, timeout: Optional[float] = 300.0) -> TaskResult:
        """Block until one task finishes; returns its :class:`TaskResult`.

        Interleaves pipe reads with worker-liveness and hang checks so a
        worker that died (or wedged) without replying still produces a
        ``"died"``/``"hung"`` result (and a replacement worker) instead
        of a parent-side hang.
        """
        if self._outstanding <= 0:
            raise RuntimeError("no outstanding tasks")
        deadline = None if timeout is None else time.perf_counter() + timeout
        while True:
            res = self._poll_once()
            if res is not None:
                return res
            if deadline is not None and time.perf_counter() > deadline:
                raise TimeoutError(
                    f"no result within {timeout}s ({self._outstanding} outstanding)"
                )

    def poll_result(self, timeout: float = 0.0) -> Optional[TaskResult]:
        """Non-blocking variant of :meth:`next_result`: returns None when
        nothing finishes within ``timeout`` (or nothing is outstanding) —
        the router's pump loop interleaves this with dispatching."""
        if self._outstanding <= 0:
            return None
        deadline = time.perf_counter() + timeout
        while True:
            res = self._poll_once(wait_s=min(timeout, _POLL_S))
            if res is not None:
                return res
            if time.perf_counter() >= deadline:
                return None

    def _poll_once(self, wait_s: float = _POLL_S) -> Optional[TaskResult]:
        """One poll step: reap/hang-check/dispatch, then one message."""
        if self._pending:
            return self._emit(self._pending.pop(0))
        self._dispatch()
        # SimpleQueue has no get(timeout=); poll the read pipe so
        # liveness checks interleave with the wait.
        if not self._result_q._reader.poll(wait_s):
            self._check_hung()
            self._reap_dead()
            self._dispatch()
            return self._emit(self._pending.pop(0)) if self._pending else None
        task_id, idx, status, value, dur = self._result_q.get()
        if status == "init_err":
            raise RuntimeError(f"worker {idx} initializer failed:\n{value}")
        slot = self._slot_of.get(idx)
        if status == "ready":
            if slot is not None:
                self._ready[slot] = True
                self._dispatch()
            return None
        if slot is not None and self._running.get(slot) == task_id:
            self._running[slot] = None
            self._dispatched_at.pop(slot, None)
            self._dispatch()
        if task_id not in self._payloads:
            # Stale duplicate: the task was already resolved (e.g. a
            # hang-verdict retry and the original both finished).
            return None
        rec = get_recorder()
        if rec is not None:
            rec.metrics.counter("parallel.tasks_completed").inc()
        self._forget(task_id)
        return self._emit(TaskResult(task_id, idx, status, value, dur))

    def _emit(self, result: TaskResult) -> TaskResult:
        """Hand one terminal result to the caller; settles accounting."""
        self._outstanding -= 1
        self._gauge()
        return result

    def map(self, payloads, timeout: Optional[float] = 300.0):
        """Submit every payload; returns results ordered by *submission*.

        Convenience for benches/tests; the scheduler uses submit/next_result
        directly to react to completions as they land.
        """
        ids = [self.submit(p) for p in payloads]
        by_id = {}
        for _ in ids:
            res = self.next_result(timeout=timeout)
            by_id[res.task_id] = res
        return [by_id[i] for i in ids]

    # -- lifecycle -------------------------------------------------------
    def close(self, join_timeout: float = 5.0) -> None:
        """Shut down workers (idempotent); drains nothing — callers should
        have consumed their results first."""
        if self._closed:
            return
        self._closed = True
        for slot, pipe in self._pipes.items():
            try:
                pipe.send(None)
            except (OSError, BrokenPipeError):  # pragma: no cover - dead worker
                pass
        for slot, proc in self._procs.items():
            proc.join(timeout=join_timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        rec = get_recorder()
        if rec is not None:
            for slot, idx in self._widx.items():
                rec.event("worker_exit", kind="parallel.worker", worker=idx, slot=slot)
        for pipe in self._pipes.values():
            try:
                pipe.close()
            except OSError:  # pragma: no cover
                pass
        self._procs.clear()
        self._pipes.clear()
        self._running.clear()
        self._widx.clear()
        self._slot_of.clear()
        self._result_q.close()

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
