"""Persistent process worker pool with a pickle-light task protocol.

Unlike :class:`repro.hpc.events.WorkerPool` (simulated workers on a
virtual clock), this pool runs tasks on *real* OS processes.  Design
points, in the order they matter:

* **Persistent workers.**  Each worker is forked/spawned once, runs an
  optional initializer (attach shared memory, pin BLAS threads), then
  loops on a task queue until shutdown.  Per-task cost is one small
  pickle each way — the task function and any bulk data cross the
  process boundary exactly once, at startup.
* **Pickle-light protocol.**  ``submit(payload)`` enqueues
  ``(task_id, payload)``; the worker replies with a claim message (for
  crash attribution) and then an ``ok``/``err`` result carrying the
  measured wall duration, so the parent can record authentic worker
  spans without cross-process clocks.
* **Fork/spawn safe.**  The start method is selectable; with ``spawn``
  the task function and initializer must be module-level picklables.
  BLAS thread-count env pins are exported around worker startup so
  spawned interpreters import NumPy already pinned (the oversubscription
  guard the parallel benchmarks rely on).
* **Graceful degradation.**  A worker that dies mid-task (segfault,
  ``os._exit``) is detected by liveness polling; its task is reported
  with status ``"died"`` (the scheduler decides whether to retry) and a
  replacement worker is spawned so pool capacity survives — the
  real-clock analogue of ``WorkerPool.fail_worker``.

Observability: with a recorder attached, the pool maintains a
``parallel.queue_depth`` gauge (tasks submitted but not finished),
``parallel.tasks_completed`` / ``parallel.worker_respawns`` counters,
and ``parallel.worker`` lifecycle events.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from ..obs.context import get_recorder

#: BLAS/OpenMP pins exported to workers: one process == one compute lane.
#: Oversubscribed BLAS thread pools are the classic way a "4x" parallel
#: run measures 1.1x, so the pool defaults to pinning them all.
DEFAULT_WORKER_ENV: Dict[str, str] = {
    "OMP_NUM_THREADS": "1",
    "OPENBLAS_NUM_THREADS": "1",
    "MKL_NUM_THREADS": "1",
    "VECLIB_MAXIMUM_THREADS": "1",
    "NUMEXPR_NUM_THREADS": "1",
}

_POLL_S = 0.02  # liveness-check cadence while waiting on results


@dataclass
class TaskResult:
    """One finished task, as the parent sees it."""

    task_id: int
    worker: int
    status: str  # "ok" | "err" | "died"
    value: Any  # result, or traceback text for "err", or None for "died"
    duration_s: float  # worker-measured wall time of the task body


def echo_task(payload: Any) -> Any:
    """Module-level identity task (spawn-mode smoke tests)."""
    return payload


def _worker_main(idx, task_fn, initializer, initargs, env, task_q, result_q) -> None:
    if env:
        os.environ.update(env)
    try:
        if initializer is not None:
            initializer(*initargs)
    except BaseException:
        result_q.put((None, idx, "init_err", traceback.format_exc(), 0.0))
        return
    result_q.put((None, idx, "ready", os.getpid(), 0.0))
    while True:
        item = task_q.get()
        if item is None:
            break
        task_id, payload = item
        result_q.put((task_id, idx, "claim", None, 0.0))
        t0 = time.perf_counter()
        try:
            value = task_fn(payload)
            result_q.put((task_id, idx, "ok", value, time.perf_counter() - t0))
        except BaseException:
            result_q.put((task_id, idx, "err", traceback.format_exc(), time.perf_counter() - t0))


class ProcessWorkerPool:
    """N persistent worker processes executing ``task_fn`` on payloads.

    Parameters
    ----------
    task_fn:
        ``payload -> result``.  Crosses the process boundary once per
        worker at startup; must be picklable under ``spawn``.
    n_workers:
        Pool width (real processes).
    initializer / initargs:
        Run once in each worker before its task loop — the place to
        attach the shared-memory data plane.
    start_method:
        ``"fork"`` (default on Linux: instant, inherits the parent) or
        ``"spawn"`` (fresh interpreters; everything must pickle).
    env:
        Environment exported to workers *before* the initializer runs;
        defaults to :data:`DEFAULT_WORKER_ENV` (BLAS pinned to 1 thread).
    """

    def __init__(
        self,
        task_fn: Callable[[Any], Any],
        n_workers: int,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple = (),
        start_method: Optional[str] = None,
        env: Optional[Dict[str, str]] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.task_fn = task_fn
        self.n_workers = n_workers
        self._initializer = initializer
        self._initargs = initargs
        self._env = DEFAULT_WORKER_ENV if env is None else env
        self._ctx = mp.get_context(start_method)
        self._task_q = self._ctx.Queue()
        # Results ride a SimpleQueue on purpose: its put() writes the
        # message synchronously into the pipe, so a worker's "claim" is
        # durable the moment put() returns — even if the worker then
        # dies mid-task (mp.Queue's background feeder thread would lose
        # it and the died-task attribution with it).
        self._result_q = self._ctx.SimpleQueue()
        self._procs: Dict[int, Any] = {}
        self._running: Dict[int, Optional[int]] = {}  # worker idx -> task id
        self._next_task = 0
        self._next_worker = 0
        self._outstanding = 0
        self.respawns = 0
        self._closed = False
        for _ in range(n_workers):
            self._spawn_worker()

    # -- workers ---------------------------------------------------------
    def _spawn_worker(self) -> None:
        idx = self._next_worker
        self._next_worker += 1
        # Export the env pins in the parent around startup too: a spawned
        # interpreter reads them when it first imports NumPy, which
        # happens before the worker's own os.environ.update could run.
        saved = {k: os.environ.get(k) for k in self._env}
        os.environ.update(self._env)
        try:
            proc = self._ctx.Process(
                target=_worker_main,
                args=(idx, self.task_fn, self._initializer, self._initargs,
                      self._env, self._task_q, self._result_q),
                daemon=True,
            )
            proc.start()
        finally:
            for k, v in saved.items():
                if v is None:
                    os.environ.pop(k, None)
                else:
                    os.environ[k] = v
        self._procs[idx] = proc
        self._running[idx] = None
        rec = get_recorder()
        if rec is not None:
            rec.event("worker_spawn", kind="parallel.worker", worker=idx, pid=proc.pid)

    def _reap_dead(self) -> Optional[TaskResult]:
        """Detect a dead worker; respawn it and surface its lost task."""
        for idx, proc in list(self._procs.items()):
            if proc.is_alive():
                continue
            task_id = self._running.pop(idx)
            del self._procs[idx]
            rec = get_recorder()
            if rec is not None:
                rec.event(
                    "worker_death", kind="parallel.worker",
                    worker=idx, exitcode=proc.exitcode, lost_task=task_id,
                )
            self.respawns += 1
            if rec is not None:
                rec.metrics.counter("parallel.worker_respawns").inc()
            self._spawn_worker()
            if task_id is not None:
                self._outstanding -= 1
                self._gauge()
                return TaskResult(task_id, idx, "died", None, 0.0)
        return None

    def _gauge(self) -> None:
        rec = get_recorder()
        if rec is not None:
            rec.metrics.gauge("parallel.queue_depth").set(self._outstanding)

    # -- task protocol ---------------------------------------------------
    def submit(self, payload: Any) -> int:
        """Enqueue one task; returns its id (results arrive unordered)."""
        if self._closed:
            raise RuntimeError("pool is closed")
        task_id = self._next_task
        self._next_task += 1
        self._outstanding += 1
        self._task_q.put((task_id, payload))
        self._gauge()
        return task_id

    @property
    def outstanding(self) -> int:
        """Tasks submitted whose results have not been returned yet."""
        return self._outstanding

    def next_result(self, timeout: Optional[float] = 300.0) -> TaskResult:
        """Block until one task finishes; returns its :class:`TaskResult`.

        Interleaves queue reads with worker-liveness checks so a worker
        that died without replying still produces a ``"died"`` result
        (and a replacement worker) instead of a hang.
        """
        if self._outstanding <= 0:
            raise RuntimeError("no outstanding tasks")
        deadline = None if timeout is None else time.perf_counter() + timeout
        while True:
            # SimpleQueue has no get(timeout=); poll the read pipe so
            # liveness checks interleave with the wait.
            if not self._result_q._reader.poll(_POLL_S):
                dead = self._reap_dead()
                if dead is not None:
                    return dead
                if deadline is not None and time.perf_counter() > deadline:
                    raise TimeoutError(
                        f"no result within {timeout}s ({self._outstanding} outstanding)"
                    )
                continue
            task_id, idx, status, value, dur = self._result_q.get()
            if status == "ready":
                continue
            if status == "init_err":
                raise RuntimeError(f"worker {idx} initializer failed:\n{value}")
            if status == "claim":
                if idx in self._running:
                    self._running[idx] = task_id
                continue
            if idx in self._running:
                self._running[idx] = None
            self._outstanding -= 1
            rec = get_recorder()
            if rec is not None:
                rec.metrics.counter("parallel.tasks_completed").inc()
            self._gauge()
            return TaskResult(task_id, idx, status, value, dur)

    def map(self, payloads, timeout: Optional[float] = 300.0):
        """Submit every payload; returns results ordered by *submission*.

        Convenience for benches/tests; the scheduler uses submit/next_result
        directly to react to completions as they land.
        """
        ids = [self.submit(p) for p in payloads]
        by_id = {}
        for _ in ids:
            res = self.next_result(timeout=timeout)
            by_id[res.task_id] = res
        return [by_id[i] for i in ids]

    # -- lifecycle -------------------------------------------------------
    def close(self, join_timeout: float = 5.0) -> None:
        """Shut down workers (idempotent); drains nothing — callers should
        have consumed their results first."""
        if self._closed:
            return
        self._closed = True
        for _ in self._procs:
            try:
                self._task_q.put(None)
            except (ValueError, OSError):  # pragma: no cover - queue gone
                break
        for idx, proc in self._procs.items():
            proc.join(timeout=join_timeout)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        rec = get_recorder()
        if rec is not None:
            for idx, proc in self._procs.items():
                rec.event("worker_exit", kind="parallel.worker", worker=idx)
        self._procs.clear()
        self._running.clear()
        self._task_q.close()
        self._result_q.close()

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
