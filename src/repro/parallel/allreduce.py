"""Shared-memory allreduce with a fixed, deterministic reduction order.

The classic ring allreduce is a reduce-scatter (each rank ends up owning
the reduced value of one chunk) followed by an allgather (owners
broadcast their chunks).  On a shared-memory node the rings collapse to
slab reads: every rank writes its contribution into its own input slab,
then each rank *owns* one contiguous chunk of the vector and reduces
that chunk across all ranks — chunk reductions run in parallel, each
element is summed exactly once, and the allgather is a single shared
output slab everyone copies from.  Three barriers sequence the phases.

Determinism is the point: each chunk owner accumulates contributions in
**ascending rank order** (``((g0 + g1) + g2) + ...``), so the floating-
point association is fixed — independent of scheduling, and *identical
to the serial reference* :func:`reduce_ranks`, which sums the same way.
That is what makes process-parallel training bit-identical to the
single-process path (IEEE-754 addition is deterministic; only the
association order had to be pinned).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .shm import AttachedArray, SharedArrayStore


def reduce_ranks(vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Serial reference reduction: ascending-rank-order sum.

    Bit-identical to what :class:`RankReducer.allreduce` computes —
    element ``i`` is accumulated ``((v0[i] + v1[i]) + v2[i]) + ...`` in
    both — so a single process can replay a parallel run exactly.
    """
    if not vectors:
        raise ValueError("reduce_ranks needs at least one vector")
    acc = vectors[0].astype(np.float64, copy=True)
    for v in vectors[1:]:
        acc += v
    return acc


def chunk_bounds(n: int, world: int, rank: int) -> tuple:
    """[lo, hi) of the chunk ``rank`` owns; same split as np.array_split."""
    base, extra = divmod(n, world)
    lo = rank * base + min(rank, extra)
    hi = lo + base + (1 if rank < extra else 0)
    return lo, hi


class AllreduceHandle:
    """Parent-built, rank-shipped state for one allreduce group.

    Carries the shared slab refs and the barrier.  Passable to
    ``Process(args=...)`` under both fork and spawn (multiprocessing
    synchronisation primitives pickle through process inheritance).
    """

    def __init__(self, world: int, n: int, in_ref, out_ref, barrier) -> None:
        self.world = world
        self.n = n
        self.in_ref = in_ref
        self.out_ref = out_ref
        self.barrier = barrier


def create_allreduce(store: SharedArrayStore, ctx, world: int, n: int) -> AllreduceHandle:
    """Allocate the slabs for a ``world``-rank group reducing ``n`` floats.

    ``store`` owns the segments (parent cleans up); ``ctx`` is the
    multiprocessing context whose Barrier the group synchronises on.
    """
    if world < 1:
        raise ValueError("world must be >= 1")
    if n < 1:
        raise ValueError("n must be >= 1")
    store.allocate("allreduce_in", (world, n), np.float64)
    store.allocate("allreduce_out", (n,), np.float64)
    return AllreduceHandle(
        world, n, store.ref("allreduce_in"), store.ref("allreduce_out"),
        ctx.Barrier(world),
    )


class RankReducer:
    """Per-rank endpoint of the shared-memory allreduce.

    Built inside each rank process from the shipped handle.  One
    ``allreduce`` call per step; the result lands in place.
    """

    def __init__(self, handle: AllreduceHandle, rank: int) -> None:
        if not 0 <= rank < handle.world:
            raise ValueError(f"rank {rank} out of range for world {handle.world}")
        self.rank = rank
        self.world = handle.world
        self._barrier = handle.barrier
        self._in_att = AttachedArray(handle.in_ref)
        self._out_att = AttachedArray(handle.out_ref)
        self._in = self._in_att.array  # (world, n)
        self._out = self._out_att.array  # (n,)
        self._lo, self._hi = chunk_bounds(handle.n, handle.world, rank)

    def allreduce(self, vec: np.ndarray) -> None:
        """Sum ``vec`` across all ranks, in place, deterministic order.

        Phases (3 barriers): publish inputs -> owners reduce their chunk
        in ascending rank order -> everyone copies the full result out.
        The trailing barrier keeps a fast rank from republishing step
        ``t+1`` inputs while a slow rank still reads step ``t`` output.
        """
        if vec.shape != (self._in.shape[1],):
            raise ValueError(f"expected shape ({self._in.shape[1]},), got {vec.shape}")
        if self.world == 1:
            return
        self._in[self.rank, :] = vec
        self._barrier.wait()
        lo, hi = self._lo, self._hi
        if hi > lo:
            np.add(self._in[0, lo:hi], self._in[1, lo:hi], out=self._out[lo:hi])
            for r in range(2, self.world):
                self._out[lo:hi] += self._in[r, lo:hi]
        self._barrier.wait()
        vec[:] = self._out
        self._barrier.wait()

    def close(self) -> None:
        self._in = None  # type: ignore[assignment]
        self._out = None  # type: ignore[assignment]
        self._in_att.close()
        self._out_att.close()
