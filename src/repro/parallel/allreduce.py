"""Shared-memory allreduce with a fixed, deterministic reduction order.

The classic ring allreduce is a reduce-scatter (each rank ends up owning
the reduced value of one chunk) followed by an allgather (owners
broadcast their chunks).  On a shared-memory node the rings collapse to
slab reads: every rank writes its contribution into its own input slab,
then each rank *owns* one contiguous chunk of the vector and reduces
that chunk across all ranks — chunk reductions run in parallel, each
element is summed exactly once, and the allgather is a single shared
output slab everyone copies from.  Three barriers sequence the phases.

Determinism is the point: each chunk owner accumulates contributions in
**ascending rank order** (``((g0 + g1) + g2) + ...``), so the floating-
point association is fixed — independent of scheduling, and *identical
to the serial reference* :func:`reduce_ranks`, which sums the same way.
That is what makes process-parallel training bit-identical to the
single-process path (IEEE-754 addition is deterministic; only the
association order had to be pinned).

Two engines share that contract:

* :class:`RankReducer` — the monolithic 3-barrier allreduce (one slab,
  one call per step covering the whole gradient vector).
* :class:`BucketRankReducer` — the bucketed, double-buffered engine:
  the vector is partitioned into size-targeted spans
  (:func:`plan_buckets`, reverse layout order so the spans match the
  order backward produces gradients), each bucket reduces through its
  own per-parity barrier pair, and the two slab generations alternate
  by step parity so the trailing "republish" barrier disappears from
  the steady state (2 barriers per bucket per step instead of 3).
  Contributions cross the slab in a selectable **wire dtype**
  (``float64`` | ``float32`` | ``bf16`` stored as uint16); decoding is
  value-exact widening, and accumulation always runs in float64 in
  ascending rank order, so :func:`reduce_ranks_bucketed` — the serial
  reference applying the same encode/decode and the same schedule — is
  bit-identical at every wire precision.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .shm import AttachedArray, SharedArrayStore

#: Selectable wire formats for bucketed gradient exchange.  Encoding is
#: round-to-nearest-even narrowing; decoding is exact widening back to
#: float64, so the only precision loss is the publish-side rounding —
#: identical on every rank and in the serial reference.
WIRE_DTYPES = ("float64", "float32", "bf16")

_WIRE_STORAGE = {
    "float64": np.float64,
    "float32": np.float32,
    "bf16": np.uint16,  # bf16 payload carried as raw upper-half bits
}


def reduce_ranks(vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Serial reference reduction: ascending-rank-order sum.

    Bit-identical to what :class:`RankReducer.allreduce` computes —
    element ``i`` is accumulated ``((v0[i] + v1[i]) + v2[i]) + ...`` in
    both — so a single process can replay a parallel run exactly.
    """
    if not vectors:
        raise ValueError("reduce_ranks needs at least one vector")
    acc = vectors[0].astype(np.float64, copy=True)
    for v in vectors[1:]:
        acc += v
    return acc


def chunk_bounds(n: int, world: int, rank: int) -> tuple:
    """[lo, hi) of the chunk ``rank`` owns; same split as np.array_split."""
    base, extra = divmod(n, world)
    lo = rank * base + min(rank, extra)
    hi = lo + base + (1 if rank < extra else 0)
    return lo, hi


# ----------------------------------------------------------------------
# Wire codecs
# ----------------------------------------------------------------------
def wire_itemsize(wire_dtype: str) -> int:
    """Bytes per element the given wire format puts on the slab."""
    return np.dtype(_WIRE_STORAGE[_check_wire(wire_dtype)]).itemsize


def _check_wire(wire_dtype: str) -> str:
    if wire_dtype not in _WIRE_STORAGE:
        raise ValueError(f"unknown wire dtype {wire_dtype!r}; choose from {WIRE_DTYPES}")
    return wire_dtype


def encode_wire(src: np.ndarray, wire_dtype: str, out: np.ndarray) -> None:
    """Narrow a float64 contribution into its wire storage, in ``out``.

    ``float32`` is the C cast (round-to-nearest-even); ``bf16`` rounds
    the float32 bit pattern to its upper 16 bits with the same RNE
    trick as :func:`repro.nn.amp.snap_bf16_` and stores them as uint16.
    Every rank (and the serial reference) runs this exact function, so
    the rounding it introduces is part of the pinned float sequence.
    """
    wire_dtype = _check_wire(wire_dtype)
    if wire_dtype == "float64":
        out[...] = src
    elif wire_dtype == "float32":
        out[...] = src.astype(np.float32)
    else:  # bf16
        bits = np.ascontiguousarray(src, dtype=np.float32).view(np.uint32)
        lsb = (bits >> 16) & np.uint32(1)
        bits += np.uint32(0x7FFF) + lsb
        out[...] = (bits >> 16).astype(np.uint16)


def decode_wire(src: np.ndarray, wire_dtype: str, out: np.ndarray) -> None:
    """Widen wire storage back to float64 in ``out`` — exact, no rounding."""
    wire_dtype = _check_wire(wire_dtype)
    if wire_dtype == "bf16":
        out[...] = (src.astype(np.uint32) << np.uint32(16)).view(np.float32)
    else:
        out[...] = src


def accumulate_rows(rows: np.ndarray, wire_dtype: str, out: np.ndarray) -> None:
    """Sum the (world, m) wire ``rows`` into float64 ``out``, ascending.

    The accumulation itself is ``np.add.reduce`` over the rank axis —
    a reduction over the *outer* (strided) axis of a C-order array,
    which NumPy performs as sequential row adds in index order (pairwise
    summation applies only to contiguous inner-axis reductions), i.e.
    the same ``((g0 + g1) + g2) + ...`` association as the explicit
    loop in :func:`reduce_ranks`.  ``tests/test_ddp_overlap.py`` pins
    that bit-parity as a regression gate.
    """
    if wire_dtype == "float64":
        np.add.reduce(rows, axis=0, out=out)
    else:
        dec = np.empty(rows.shape, dtype=np.float64)
        decode_wire(rows, wire_dtype, dec)
        np.add.reduce(dec, axis=0, out=out)


def reduce_ranks_bucketed(
    vectors: Sequence[np.ndarray],
    spans: Sequence[Tuple[int, int]],
    wire_dtype: str = "float64",
) -> np.ndarray:
    """Serial reference for the bucketed engine: same schedule, same codec.

    Each span is encoded to the wire format per rank, decoded back, and
    accumulated in ascending rank order — exactly the float sequence
    :class:`BucketRankReducer` produces, so a single process can replay
    a bucketed parallel run bit-for-bit.  With one rank the exchange is
    skipped entirely (both engines do), so no codec rounding applies.
    """
    if not vectors:
        raise ValueError("reduce_ranks_bucketed needs at least one vector")
    _check_wire(wire_dtype)
    if len(vectors) == 1:
        return vectors[0].astype(np.float64, copy=True)
    world = len(vectors)
    n = vectors[0].shape[0]
    if sum(hi - lo for lo, hi in spans) != n:
        raise ValueError("bucket spans must tile the whole vector")
    out = np.empty(n, dtype=np.float64)
    storage = _WIRE_STORAGE[wire_dtype]
    for lo, hi in spans:
        rows = np.empty((world, hi - lo), dtype=storage)
        for r, v in enumerate(vectors):
            encode_wire(v[lo:hi], wire_dtype, rows[r])
        accumulate_rows(rows, wire_dtype, out[lo:hi])
    return out


class AllreduceHandle:
    """Parent-built, rank-shipped state for one allreduce group.

    Carries the shared slab refs and the barrier.  Passable to
    ``Process(args=...)`` under both fork and spawn (multiprocessing
    synchronisation primitives pickle through process inheritance).
    """

    def __init__(self, world: int, n: int, in_ref, out_ref, barrier) -> None:
        self.world = world
        self.n = n
        self.in_ref = in_ref
        self.out_ref = out_ref
        self.barrier = barrier


def create_allreduce(store: SharedArrayStore, ctx, world: int, n: int) -> AllreduceHandle:
    """Allocate the slabs for a ``world``-rank group reducing ``n`` floats.

    ``store`` owns the segments (parent cleans up); ``ctx`` is the
    multiprocessing context whose Barrier the group synchronises on.
    """
    if world < 1:
        raise ValueError("world must be >= 1")
    if n < 1:
        raise ValueError("n must be >= 1")
    store.allocate("allreduce_in", (world, n), np.float64)
    store.allocate("allreduce_out", (n,), np.float64)
    return AllreduceHandle(
        world, n, store.ref("allreduce_in"), store.ref("allreduce_out"),
        ctx.Barrier(world),
    )


class RankReducer:
    """Per-rank endpoint of the shared-memory allreduce.

    Built inside each rank process from the shipped handle.  One
    ``allreduce`` call per step; the result lands in place.
    """

    def __init__(self, handle: AllreduceHandle, rank: int) -> None:
        if not 0 <= rank < handle.world:
            raise ValueError(f"rank {rank} out of range for world {handle.world}")
        self.rank = rank
        self.world = handle.world
        self._barrier = handle.barrier
        self._in_att = AttachedArray(handle.in_ref)
        self._out_att = AttachedArray(handle.out_ref)
        self._in = self._in_att.array  # (world, n)
        self._out = self._out_att.array  # (n,)
        self._lo, self._hi = chunk_bounds(handle.n, handle.world, rank)

    def allreduce(self, vec: np.ndarray, stall_s: float = 0.0) -> None:
        """Sum ``vec`` across all ranks, in place, deterministic order.

        Phases (3 barriers): publish inputs -> owners reduce their chunk
        in ascending rank order -> everyone copies the full result out.
        The trailing barrier keeps a fast rank from republishing step
        ``t+1`` inputs while a slow rank still reads step ``t`` output.

        ``stall_s`` injects a wire-transfer stall *after* the publish
        barrier — the bandwidth term of the alpha-beta collective cost
        model, charged once all ranks have arrived (every rank sleeps it
        concurrently, so it adds ``stall_s`` of wall per call).  Timing
        only; numerics are unchanged.
        """
        if vec.shape != (self._in.shape[1],):
            raise ValueError(f"expected shape ({self._in.shape[1]},), got {vec.shape}")
        if self.world == 1:
            return
        self._in[self.rank, :] = vec
        self._barrier.wait()
        if stall_s > 0.0:
            time.sleep(stall_s)
        lo, hi = self._lo, self._hi
        if hi > lo:
            # One vectorized reduction over the rank axis; same ascending
            # association as the old explicit loop (see accumulate_rows).
            accumulate_rows(self._in[:, lo:hi], "float64", self._out[lo:hi])
        self._barrier.wait()
        vec[:] = self._out
        self._barrier.wait()

    def close(self) -> None:
        self._in = None  # type: ignore[assignment]
        self._out = None  # type: ignore[assignment]
        self._in_att.close()
        self._out_att.close()


# ----------------------------------------------------------------------
# Bucketed, double-buffered engine
# ----------------------------------------------------------------------
#: Default bucket size budget, in bytes of the *logical* float64 gradient
#: vector.  Bucketing on logical size (not wire size) keeps the schedule
#: identical across wire dtypes, so wire-format ablations compare the
#: same bucket structure.
DEFAULT_BUCKET_BYTES = 1 << 16


class BucketPlan:
    """How one flat gradient vector is partitioned into comm buckets.

    ``spans`` are contiguous ``[lo, hi)`` ranges in **schedule order** —
    bucket 0 covers the tail of the vector (the last parameters in
    layout order, whose gradients backward produces first, plus any
    trailing extra slots such as the DDP loss scalar) and later buckets
    walk toward the head.  ``param_bucket[i]`` is the bucket of the
    ``i``-th layout parameter.  Together they let a scheduler know, per
    parameter, which bucket to count down and, per bucket, which slice
    of the vector to ship.
    """

    def __init__(self, spans: List[Tuple[int, int]], param_bucket: List[int], n: int) -> None:
        self.spans = spans
        self.param_bucket = param_bucket
        self.n = n

    @property
    def n_buckets(self) -> int:
        return len(self.spans)

    def param_counts(self) -> List[int]:
        """Parameters per bucket (the scheduler's countdown seeds)."""
        counts = [0] * self.n_buckets
        for b in self.param_bucket:
            counts[b] += 1
        return counts

    def wire_bytes(self, wire_dtype: str) -> int:
        """Bytes one rank publishes per step at the given wire format."""
        return self.n * wire_itemsize(wire_dtype)


def plan_buckets(
    sizes: Sequence[int],
    total: int,
    bucket_bytes: int = DEFAULT_BUCKET_BYTES,
) -> BucketPlan:
    """Partition a flat vector of ``total`` float64 slots into buckets.

    ``sizes`` are the per-parameter element counts in layout order
    (their offsets are the running prefix sums); slots past the last
    parameter (e.g. the loss scalar the DDP layout appends) ride in
    bucket 0.  Parameters are walked in *reverse* layout order —
    matching the order backward finishes them — and greedily grouped
    until a bucket reaches ``bucket_bytes`` of float64 payload.  A
    parameter is never split, so every bucket is one contiguous span.
    """
    if total < 1:
        raise ValueError("total must be >= 1")
    if sum(sizes) > total:
        raise ValueError("parameter sizes exceed the vector length")
    if bucket_bytes < 8:
        raise ValueError("bucket_bytes must be at least one float64")
    offsets = []
    off = 0
    for s in sizes:
        offsets.append(off)
        off += s
    budget = bucket_bytes // 8
    spans: List[Tuple[int, int]] = []
    param_bucket = [0] * len(sizes)
    hi = total  # current bucket's open upper edge
    elems = total - off  # trailing extra slots seed bucket 0
    for i in reversed(range(len(sizes))):
        param_bucket[i] = len(spans)
        elems += sizes[i]
        if elems >= budget and i > 0:
            spans.append((offsets[i], hi))
            hi = offsets[i]
            elems = 0
    if hi > 0 or not spans:
        spans.append((0, hi))
    return BucketPlan(spans, param_bucket, total)


class BucketAllreduceHandle:
    """Parent-built, rank-shipped state for one bucketed allreduce group.

    Two slab generations (index = step parity) and, per generation, a
    (publish, reduce-done) barrier pair per bucket.  Like
    :class:`AllreduceHandle` it pickles through process inheritance.
    """

    def __init__(self, world: int, plan: BucketPlan, wire_dtype: str,
                 in_refs, out_refs, barriers) -> None:
        self.world = world
        self.plan = plan
        self.wire_dtype = wire_dtype
        self.in_refs = in_refs    # [parity] -> (world, n) wire-storage slab
        self.out_refs = out_refs  # [parity] -> (n,) float64 slab
        self.barriers = barriers  # [parity][bucket] -> (publish, reduced)


def create_bucketed_allreduce(
    store: SharedArrayStore,
    ctx,
    world: int,
    plan: BucketPlan,
    wire_dtype: str = "float64",
) -> BucketAllreduceHandle:
    """Allocate double-buffered slabs + per-(parity, bucket) barriers."""
    if world < 1:
        raise ValueError("world must be >= 1")
    _check_wire(wire_dtype)
    storage = _WIRE_STORAGE[wire_dtype]
    in_refs, out_refs = [], []
    for parity in (0, 1):
        store.allocate(f"bucket_in{parity}", (world, plan.n), storage)
        store.allocate(f"bucket_out{parity}", (plan.n,), np.float64)
        in_refs.append(store.ref(f"bucket_in{parity}"))
        out_refs.append(store.ref(f"bucket_out{parity}"))
    barriers = [
        [(ctx.Barrier(world), ctx.Barrier(world)) for _ in plan.spans]
        for _ in (0, 1)
    ]
    return BucketAllreduceHandle(world, plan, wire_dtype, in_refs, out_refs, barriers)


class BucketRankReducer:
    """Per-rank endpoint of the bucketed, double-buffered allreduce.

    ``allreduce_bucket(bucket, vec, step)`` ships one bucket's slice of
    ``vec``; callers issue buckets in schedule order and pass the global
    step index, whose parity selects the slab generation.  Two barriers
    sequence each bucket (publish-done, reduce-done); there is **no**
    trailing republish barrier — reusing a generation at step ``t+2``
    is safe because a rank reaches that publish only after passing step
    ``t+1``'s barriers for the same bucket, which every rank can only do
    after finishing its step-``t`` copy-out (program order).
    """

    def __init__(self, handle: BucketAllreduceHandle, rank: int) -> None:
        if not 0 <= rank < handle.world:
            raise ValueError(f"rank {rank} out of range for world {handle.world}")
        self.rank = rank
        self.world = handle.world
        self.plan = handle.plan
        self.wire_dtype = handle.wire_dtype
        self._barriers = handle.barriers
        self._in_atts = [AttachedArray(r) for r in handle.in_refs]
        self._out_atts = [AttachedArray(r) for r in handle.out_refs]
        self._ins = [a.array for a in self._in_atts]    # (world, n) wire storage
        self._outs = [a.array for a in self._out_atts]  # (n,) float64
        # Chunk ownership is per bucket: each bucket's span is split
        # across ranks so its reduction parallelises like the monolithic
        # engine's.
        self._chunks = [
            (lo + cl, lo + ch)
            for (lo, hi) in self.plan.spans
            for (cl, ch) in (chunk_bounds(hi - lo, self.world, rank),)
        ]

    def allreduce_bucket(self, bucket: int, vec: np.ndarray, step: int,
                         stall_s: float = 0.0) -> None:
        """Sum one bucket's slice of ``vec`` across ranks, in place.

        ``stall_s`` is the post-publish wire-transfer stall (see
        :meth:`RankReducer.allreduce`) for this bucket's bytes.
        """
        if self.world == 1:
            return
        parity = step & 1
        lo, hi = self.plan.spans[bucket]
        publish, reduced = self._barriers[parity][bucket]
        in_slab, out_slab = self._ins[parity], self._outs[parity]
        encode_wire(vec[lo:hi], self.wire_dtype, in_slab[self.rank, lo:hi])
        publish.wait()
        if stall_s > 0.0:
            time.sleep(stall_s)
        clo, chi = self._chunks[bucket]
        if chi > clo:
            accumulate_rows(in_slab[:, clo:chi], self.wire_dtype, out_slab[clo:chi])
        reduced.wait()
        vec[lo:hi] = out_slab[lo:hi]

    def allreduce(self, vec: np.ndarray, step: int) -> None:
        """All buckets of one step, inline in schedule order."""
        for b in range(self.plan.n_buckets):
            self.allreduce_bucket(b, vec, step)

    def close(self) -> None:
        self._ins = []
        self._outs = []
        for a in self._in_atts + self._out_atts:
            a.close()
