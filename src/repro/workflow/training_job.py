"""Training jobs that couple *real* NumPy training with *simulated* cost.

The bridge between the two halves of the library: a job trains an actual
CANDLE-style model (so accuracy numbers are real) while the HPC simulator
prices each step (so time/energy numbers reflect the target machine).
E6's time-to-accuracy experiments and the HPO cost models live on this
bridge.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..candle.registry import BenchmarkSpec, get_benchmark
from ..hpc.cluster import SimCluster
from ..hpc.energy import step_energy
from ..hpc.parallelism import DataParallel, ParallelPlan, SingleNode
from ..hpc.perfmodel import ModelProfile, profile_model
from ..hpo.space import Config
from ..nn.model import History, Model
from ..resilience import ResilienceReport, as_injector, plan_checkpoint_interval, run_resilient_training


@dataclass
class TrainingReport:
    """Outcome of one simulated-cost training run.

    ``resilience`` is populated only for fault-tolerant runs
    (``run_training_job(..., faults=...)``); plain runs leave it None.
    """

    history: History
    profile: ModelProfile
    sim_step_time: float
    sim_epoch_time: float
    sim_total_time: float
    energy_joules: float
    final_loss: float
    resilience: Optional[ResilienceReport] = None
    # Measured per-op wall-clock breakdown (repro.perf.OpProfiler.as_dict),
    # populated when run_training_job(..., profile_ops=True): the measured
    # counterpart to the modeled ``profile``/``sim_*`` numbers.
    op_profile: Optional[Dict] = None


def run_training_job(
    model: Model,
    x: np.ndarray,
    y,
    cluster: SimCluster,
    plan: Optional[ParallelPlan] = None,
    precision: str = "fp32",
    epochs: int = 5,
    batch_size: int = 32,
    loss: str = "mse",
    lr: float = 1e-3,
    seed: int = 0,
    faults=None,
    checkpoint_dir=None,
    profile_ops: bool = False,
) -> TrainingReport:
    """Train ``model`` for real; price every step on ``cluster``/``plan``.

    The simulated global batch is the fit loop's batch; steps per epoch
    come from the dataset size.

    With ``faults`` (a FaultSpec or FaultInjector) the job runs through
    :func:`repro.resilience.run_resilient_training` instead of the plain
    fit loop: it checkpoints at the Daly-optimal step interval for this
    model on this cluster, survives the injected crash/NaN schedule, and
    the report's time/energy bill includes the replayed work, checkpoint
    writes and restart overheads (its ``resilience`` field itemizes them).

    ``profile_ops=True`` attaches a :class:`repro.perf.OpProfiler` to the
    training run and fills the report's ``op_profile`` with the measured
    per-op breakdown — the empirical check on the ``sim_*`` cost model.
    """
    plan = plan or SingleNode()
    x = np.asarray(x)
    injector = as_injector(faults)
    op_prof = None
    if profile_ops:
        from ..perf import OpProfiler

        op_prof = OpProfiler()

    if injector is None:
        history = model.fit(
            x, y, epochs=epochs, batch_size=batch_size, loss=loss, lr=lr, seed=seed, profiler=op_prof
        )
        profile = profile_model(model, x.shape[1:], batch_size=batch_size)
        _check_feasible(plan, profile, cluster, precision)
        step_t = plan.step_time(profile, cluster, precision)
        steps_per_epoch = int(np.ceil(len(x) / batch_size))
        epoch_t = step_t * steps_per_epoch
        energy = step_energy(plan, profile, cluster, precision).total * steps_per_epoch * len(history)
        return TrainingReport(
            history=history,
            profile=profile,
            sim_step_time=step_t,
            sim_epoch_time=epoch_t,
            sim_total_time=epoch_t * len(history),
            energy_joules=energy,
            final_loss=history.series("loss")[-1],
            op_profile=op_prof.as_dict() if op_prof is not None else None,
        )

    # Fault-tolerant path: price the machine first (the checkpoint cadence
    # depends on step time and MTBF), then live through the fault schedule.
    if not model.built:
        model.build(x.shape[1:], np.random.default_rng(seed))
    profile = profile_model(model, x.shape[1:], batch_size=batch_size)
    _check_feasible(plan, profile, cluster, precision)
    step_t = plan.step_time(profile, cluster, precision)
    cadence = plan_checkpoint_interval(profile, cluster, precision=precision, step_time_s=step_t)
    ckpt_time = cadence["checkpoint_time"]
    checkpoint_every = int(cadence["interval_steps"])

    if checkpoint_dir is None:
        import tempfile

        checkpoint_dir = tempfile.mkdtemp(prefix="repro-ckpt-")
    # The profiler hooks ops globally (via the repro.perf sink), so
    # wrapping the resilient loop catches its inner fit calls too.
    with op_prof if op_prof is not None else contextlib.nullcontext():
        history, resilience = run_resilient_training(
            model, x, y,
            checkpoint_dir=checkpoint_dir,
            epochs=epochs, batch_size=batch_size, loss=loss, lr=lr, seed=seed,
            checkpoint_every=checkpoint_every,
            injector=injector,
            step_time_s=step_t,
            checkpoint_time_s=ckpt_time,
            restart_time_s=ckpt_time,  # reading the snapshot back mirrors writing it
        )
    steps_per_epoch = int(np.ceil(len(x) / batch_size))
    executed_steps = resilience.useful_steps + resilience.steps_replayed
    # Energy follows executed (not just useful) steps — replay burns watts.
    energy = step_energy(plan, profile, cluster, precision).total * executed_steps
    return TrainingReport(
        history=history,
        profile=profile,
        sim_step_time=step_t,
        sim_epoch_time=step_t * steps_per_epoch,
        sim_total_time=resilience.sim_total_time,
        energy_joules=energy,
        final_loss=history.series("loss")[-1],
        resilience=resilience,
        op_profile=op_prof.as_dict() if op_prof is not None else None,
    )


def _check_feasible(plan: ParallelPlan, profile: ModelProfile, cluster: SimCluster, precision: str) -> None:
    if not plan.feasible(profile, cluster, precision):
        raise ValueError(
            f"plan {plan.name} does not fit: needs "
            f"{plan.memory_per_node(profile, precision) / 1e9:.1f} GB/node, node has "
            f"{cluster.node.accelerator.mem_capacity / 1e9:.1f} GB"
        )


def simulated_trial_cost(
    benchmark: str | BenchmarkSpec,
    cluster: SimCluster,
    precision: str = "fp32",
    samples_per_epoch: int = 10_000,
    base_epochs: int = 1,
) -> Callable[[Config, int], float]:
    """Cost model for :func:`repro.hpo.scheduler.run_parallel`.

    Maps an HPO config to the simulated seconds one trial takes on a
    single cluster node: configs with wider layers genuinely cost more —
    the heterogeneity that makes async search win (E6).
    """
    spec = get_benchmark(benchmark) if isinstance(benchmark, str) else benchmark
    x, _ = spec.make_data(seed=0)
    input_dim = int(np.prod(x.shape[1:]))

    def cost(config: Config, budget: int) -> float:
        h1 = int(config.get("hidden1", 64))
        h2 = int(config.get("hidden2", 32))
        batch = int(config.get("batch_size", 32))
        from ..hpc.perfmodel import mlp_profile

        profile = mlp_profile([input_dim, h1, h2, 16], batch_size=batch)
        step = SingleNode().step_time(profile, cluster, precision)
        steps = int(np.ceil(samples_per_epoch / batch)) * max(1, base_epochs * budget)
        return step * steps

    return cost


def time_to_loss(
    report_or_history: History | TrainingReport,
    target_loss: float,
    epoch_time: Optional[float] = None,
) -> Optional[float]:
    """Simulated time at which training first reached ``target_loss``."""
    if isinstance(report_or_history, TrainingReport):
        history = report_or_history.history
        epoch_time = report_or_history.sim_epoch_time
    else:
        history = report_or_history
        if epoch_time is None:
            raise ValueError("epoch_time required when passing a bare History")
    for i, loss in enumerate(history.series("loss"), start=1):
        if loss <= target_loss:
            return i * epoch_time
    return None
