"""Deep-learning-supervised molecular dynamics sampling (claim C3).

The keynote: DL is "used to supervise large-scale multi-resolution
molecular dynamics simulations used to explore cancer gene signaling
pathways."  The workflow shape (as in the CANDLE pilot-2 / CVAE-guided MD
work): run a batch of trajectories, train a model on everything seen so
far, use it to decide *where to launch the next batch* so the simulation
budget concentrates on unexplored regions.

Here the supervisor is an autoencoder novelty detector built on
:mod:`repro.nn`: states the sampler has visited reconstruct well; states
in unvisited regions reconstruct badly, so high reconstruction error =
high novelty = good place to start the next trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..datasets.md import GaussianWellsPotential, basin_coverage, langevin_trajectory
from ..nn import Dense, Sequential


@dataclass
class SamplingResult:
    """Outcome of a sampling campaign."""

    strategy: str
    samples: np.ndarray  # all recorded trajectory points
    coverage_curve: List[float]  # basin coverage after each round
    trajectories_run: int

    @property
    def final_coverage(self) -> float:
        return self.coverage_curve[-1] if self.coverage_curve else 0.0


class NoveltyModel:
    """Autoencoder novelty detector over visited states."""

    def __init__(self, dim: int, hidden: int = 32, latent: int = 2, epochs: int = 60, lr: float = 5e-3) -> None:
        self.dim = dim
        self.hidden = hidden
        self.latent = latent
        self.epochs = epochs
        self.lr = lr
        self._model: Optional[Sequential] = None
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def fit(self, states: np.ndarray, seed: int = 0) -> "NoveltyModel":
        states = np.asarray(states, dtype=np.float64)
        self._mean = states.mean(axis=0)
        self._std = states.std(axis=0) + 1e-9
        z = (states - self._mean) / self._std
        self._model = Sequential([
            Dense(self.hidden, activation="tanh"),
            Dense(self.latent, activation="tanh"),
            Dense(self.hidden, activation="tanh"),
            Dense(self.dim),
        ])
        self._model.fit(z, None, epochs=self.epochs, batch_size=64, loss="mse", lr=self.lr, seed=seed)
        return self

    def novelty(self, candidates: np.ndarray) -> np.ndarray:
        """Per-candidate reconstruction error (higher = more novel)."""
        if self._model is None:
            raise RuntimeError("fit before novelty")
        z = (np.asarray(candidates) - self._mean) / self._std
        recon = self._model.predict(z)
        return ((recon - z) ** 2).mean(axis=1)


def _sample_candidates(rng: np.random.Generator, n: int, extent: float, dim: int) -> np.ndarray:
    return rng.uniform(-extent, extent, size=(n, dim))


def run_sampling_campaign(
    potential: GaussianWellsPotential,
    strategy: str = "adaptive",
    n_rounds: int = 6,
    trajectories_per_round: int = 8,
    steps_per_trajectory: int = 400,
    temperature: float = 0.3,
    extent: float = 7.0,
    n_candidates: int = 256,
    seed: int = 0,
) -> SamplingResult:
    """Run a multi-round sampling campaign on ``potential``.

    Strategies
    ----------
    ``uniform``: start each trajectory at a uniform random point.
    ``adaptive``: DL-supervised — rank candidate starts by autoencoder
        novelty against everything visited so far, launch from the top.
    ``replica``: restart each walker from its previous endpoint (the
        no-supervision baseline a plain long MD run corresponds to).
    """
    if strategy not in ("uniform", "adaptive", "replica"):
        raise ValueError(f"unknown strategy {strategy!r}")
    if n_rounds < 1 or trajectories_per_round < 1:
        raise ValueError("n_rounds and trajectories_per_round must be >= 1")
    rng = np.random.default_rng(seed)
    dim = potential.dim
    all_samples: List[np.ndarray] = []
    coverage_curve: List[float] = []
    endpoints = _sample_candidates(rng, trajectories_per_round, extent, dim)
    trajectories = 0

    for rnd in range(n_rounds):
        # --- choose starting points -----------------------------------
        if strategy == "uniform" or (strategy == "adaptive" and not all_samples):
            starts = _sample_candidates(rng, trajectories_per_round, extent, dim)
        elif strategy == "replica":
            starts = endpoints
        else:  # adaptive with history
            visited = np.concatenate(all_samples)
            model = NoveltyModel(dim=dim).fit(visited, seed=seed + rnd)
            candidates = _sample_candidates(rng, n_candidates, extent, dim)
            # Physically-informed acquisition: restrict to candidates in
            # the low-energy half of the domain (near *some* basin, not
            # empty far-field — pure novelty would chase the corners),
            # then launch from the most-novel of those.
            energy = potential.energy(candidates)
            relevant = candidates[energy < np.median(energy)]
            nov = model.novelty(relevant)
            top = np.argsort(nov)[::-1][:trajectories_per_round]
            starts = relevant[top]

        # --- run the round's simulations --------------------------------
        new_endpoints = []
        for i, x0 in enumerate(starts):
            traj = langevin_trajectory(
                potential, x0,
                n_steps=steps_per_trajectory,
                temperature=temperature,
                rng=np.random.default_rng(seed * 10_000 + rnd * 100 + i),
            )
            all_samples.append(traj)
            new_endpoints.append(traj[-1])
            trajectories += 1
        endpoints = np.array(new_endpoints)
        coverage_curve.append(basin_coverage(potential, np.concatenate(all_samples)))

    return SamplingResult(
        strategy=strategy,
        samples=np.concatenate(all_samples),
        coverage_curve=coverage_curve,
        trajectories_run=trajectories,
    )


def compare_strategies(
    potential: GaussianWellsPotential,
    n_rounds: int = 6,
    trajectories_per_round: int = 8,
    seeds: range = range(3),
    **kwargs,
) -> Dict[str, float]:
    """Mean final basin coverage per strategy over several seeds — the E8
    headline table."""
    out: Dict[str, float] = {}
    for strategy in ("uniform", "adaptive", "replica"):
        coverages = [
            run_sampling_campaign(
                potential, strategy=strategy,
                n_rounds=n_rounds, trajectories_per_round=trajectories_per_round,
                seed=s, **kwargs,
            ).final_coverage
            for s in seeds
        ]
        out[strategy] = float(np.mean(coverages))
    return out
