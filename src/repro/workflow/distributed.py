"""Numerically-exact simulation of distributed SGD variants.

Unlike :mod:`repro.hpc.parallelism` (which models *time*), this module
simulates the *numerics* of distributed training on real NumPy models:

* :func:`train_sync_data_parallel` — K replicas, exact gradient averaging
  (mathematically identical to large-batch SGD; the tests verify this).
* :func:`train_async_sgd` — parameter-server asynchrony: each arriving
  gradient was computed against weights ``staleness`` updates old.
  Quantifies claim C10's dark side: the convergence price of hiding
  communication latency with asynchrony (experiment E13).
* :func:`train_topk_sgd` — top-k gradient sparsification with error
  feedback, tracking the communicated byte volume.  Quantifies the
  keynote's forward-looking claim that "future DNNs may rely less on
  dense communication patterns" (experiment E14).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..nn import losses as losses_mod
from ..nn.dataloader import DataLoader, shard
from ..nn.model import Model
from ..nn.tensor import Tensor
from ..resilience.faults import CRASH, NAN, FaultInjector


@dataclass
class DistributedRunResult:
    """Outcome of a simulated distributed training run.

    ``dropped_updates`` counts per-worker gradient contributions that were
    discarded (NaN-poisoned, or from a worker as it died); ``workers_lost``
    counts replicas permanently removed by injected crashes.
    """

    epoch_losses: List[float]
    comm_bytes: float = 0.0
    dense_bytes: float = 0.0
    updates: int = 0
    dropped_updates: int = 0
    workers_lost: int = 0

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1]

    @property
    def compression_ratio(self) -> float:
        if self.comm_bytes == 0:
            return float("inf")
        return self.dense_bytes / self.comm_bytes


def _grads_of(model: Model, xb: np.ndarray, target, loss_fn) -> Tuple[List[np.ndarray], float]:
    """Compute (gradients, loss value) for one mini-batch at the model's
    current weights."""
    params = list(model.parameters())
    for p in params:
        p.grad = None
    loss = loss_fn(model.forward(Tensor(xb), training=True), target)
    loss.backward()
    return [p.grad.copy() if p.grad is not None else np.zeros_like(p.data) for p in params], loss.item()


def train_sync_data_parallel(
    model: Model,
    x: np.ndarray,
    y,
    n_workers: int,
    epochs: int = 5,
    batch_size_per_worker: int = 16,
    loss: str = "mse",
    lr: float = 1e-2,
    seed: int = 0,
    use_communicator: bool = False,
    injector: Optional[FaultInjector] = None,
) -> DistributedRunResult:
    """Synchronous data parallelism with exact gradient averaging.

    Each worker holds a contiguous shard; every step, all workers compute
    gradients at the *same* weights and the averaged gradient is applied
    once (plain SGD).  This is bit-for-bit the math of an allreduce step.

    ``use_communicator=True`` performs the averaging through the real
    ring-allreduce algorithm of :class:`repro.comm.Communicator` instead
    of a direct sum, and reports the communicator's measured traffic —
    the numerics and the traffic accounting cross-validate each other.

    An ``injector`` degrades the run gracefully instead of crashing it:
    a worker CRASH fault permanently removes that replica (the remaining
    workers keep averaging over the survivors; the last worker never
    dies), and a NAN fault drops that worker's contribution for that
    update only.  The result reports both.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    rng = np.random.default_rng(seed)
    x = np.asarray(x)
    if not model.built:
        model.build(x.shape[1:], rng)
    loss_fn = losses_mod.get(loss) if isinstance(loss, str) else loss
    params = list(model.parameters())

    shards = [shard(x, y, r, n_workers) for r in range(n_workers)]
    loaders = [
        DataLoader(sx, sy, batch_size=batch_size_per_worker, shuffle=True,
                   rng=np.random.default_rng(seed + 100 + r))
        for r, (sx, sy) in enumerate(shards)
    ]
    steps_per_epoch = min(len(l) for l in loaders)
    grad_bytes = sum(p.size for p in params) * 8.0
    communicator = None
    if use_communicator and n_workers > 1:
        from ..comm import Communicator

        communicator = Communicator(n_workers)

    alive = list(range(n_workers))
    epoch_losses: List[float] = []
    comm = 0.0
    comm_retired = 0.0  # traffic from communicators retired by pool shrinks
    updates = 0
    dropped = 0
    lost = 0
    for _ in range(epochs):
        iters = [iter(l) for l in loaders]
        total, count = 0.0, 0
        for _ in range(steps_per_epoch):
            contributions: List[List[np.ndarray]] = []
            crashed: List[int] = []
            for r in alive:
                xb, yb = next(iters[r])
                fault = injector.worker_fault(updates, r) if injector is not None else None
                if fault == CRASH and len(alive) - len(crashed) > 1:
                    # The replica died mid-step: its gradient is lost and
                    # it leaves the collective from the next step on.
                    crashed.append(r)
                    dropped += 1
                    continue
                target = xb if yb is None else yb
                grads, loss_val = _grads_of(model, xb, target, loss_fn)
                if fault == NAN:
                    dropped += 1  # poisoned contribution, quarantined
                    continue
                total += loss_val
                count += 1
                contributions.append(grads)
            if crashed:
                alive = [r for r in alive if r not in crashed]
                lost += len(crashed)
                if communicator is not None and len(alive) > 1:
                    # The ring re-forms over the survivors.
                    comm_retired += communicator.traffic.bytes_sent
                    from ..comm import Communicator

                    communicator = Communicator(len(alive))
                elif communicator is not None:
                    comm_retired += communicator.traffic.bytes_sent
                    communicator = None
            if not contributions:
                continue  # every contribution was dropped; skip the update
            if communicator is not None and len(contributions) == len(alive):
                # Real ring allreduce, parameter by parameter.
                summed: List[np.ndarray] = []
                for param_idx in range(len(params)):
                    bufs = [c[param_idx].copy() for c in contributions]
                    communicator.Allreduce_ring(bufs)
                    summed.append(bufs[0])
                grad_sum = summed
            else:
                # Direct sum (also the fallback when NaN drops leave the
                # step with fewer contributions than ring members).
                grad_sum = contributions[0]
                for c in contributions[1:]:
                    for gs, g in zip(grad_sum, c):
                        gs += g
                comm += grad_bytes * len(contributions)  # model the injected volume
            for p, g in zip(params, grad_sum):
                p.data -= lr * g / len(contributions)
            updates += 1
        epoch_losses.append(total / max(count, 1))
    if communicator is not None:
        comm += communicator.traffic.bytes_sent
    comm += comm_retired
    dense = grad_bytes * n_workers * updates if not use_communicator else comm
    return DistributedRunResult(
        epoch_losses, comm_bytes=comm, dense_bytes=dense, updates=updates,
        dropped_updates=dropped, workers_lost=lost,
    )


def train_async_sgd(
    model: Model,
    x: np.ndarray,
    y,
    n_workers: int,
    staleness: int = 0,
    epochs: int = 5,
    batch_size: int = 16,
    loss: str = "mse",
    lr: float = 1e-2,
    seed: int = 0,
    injector: Optional[FaultInjector] = None,
) -> DistributedRunResult:
    """Parameter-server asynchronous SGD with fixed gradient staleness.

    The server applies one worker gradient per step; that gradient was
    computed at the weights ``staleness`` server-updates ago (0 = fully
    synchronous-equivalent pipeline).  A weight-snapshot ring buffer makes
    the staleness exact rather than stochastic, which isolates the effect
    for the E13 ablation.

    An ``injector`` may poison arriving gradients (NaN faults); the
    parameter server drops those updates rather than absorbing NaNs —
    the live weights are untouched and the run reports the drop count.
    """
    if staleness < 0:
        raise ValueError("staleness must be >= 0")
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    rng = np.random.default_rng(seed)
    x = np.asarray(x)
    if not model.built:
        model.build(x.shape[1:], rng)
    loss_fn = losses_mod.get(loss) if isinstance(loss, str) else loss
    params = list(model.parameters())

    loader = DataLoader(x, y, batch_size=batch_size, shuffle=True, rng=rng)
    snapshots: deque = deque(maxlen=staleness + 1)

    def current_weights() -> List[np.ndarray]:
        return [p.data.copy() for p in params]

    epoch_losses: List[float] = []
    updates = 0
    arrivals = 0
    dropped = 0
    for _ in range(epochs):
        total, count = 0.0, 0
        for xb, yb in loader:
            target = xb if yb is None else yb
            snapshots.append(current_weights())
            stale = snapshots[0]  # weights `staleness` updates ago (or oldest)
            live = current_weights()
            # Compute the gradient at the stale weights...
            for p, w in zip(params, stale):
                p.data[...] = w
            grads, loss_val = _grads_of(model, xb, target, loss_fn)
            corrupted = (
                injector.corrupt_gradients(arrivals, grads) if injector is not None else False
            )
            arrivals += 1
            if corrupted or not all(np.isfinite(g).all() for g in grads):
                # Parameter server quarantine: a poisoned gradient is
                # dropped, the live weights stand.
                for p, w in zip(params, live):
                    p.data[...] = w
                dropped += 1
                continue
            # ...apply it to the live weights.
            for p, w, g in zip(params, live, grads):
                p.data[...] = w - lr * g
            total += loss_val
            count += 1
            updates += 1
        epoch_losses.append(total / max(count, 1))
    grad_bytes = sum(p.size for p in params) * 8.0 * updates
    return DistributedRunResult(
        epoch_losses, comm_bytes=grad_bytes, dense_bytes=grad_bytes, updates=updates,
        dropped_updates=dropped,
    )


def topk_sparsify(grad: np.ndarray, fraction: float) -> Tuple[np.ndarray, int]:
    """Keep the top-``fraction`` entries of ``grad`` by magnitude.

    Returns (sparse gradient with zeros elsewhere, number kept).
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    flat = grad.reshape(-1)
    k = max(1, int(round(flat.size * fraction)))
    if k >= flat.size:
        return grad, flat.size
    idx = np.argpartition(np.abs(flat), flat.size - k)[-k:]
    out = np.zeros_like(flat)
    out[idx] = flat[idx]
    return out.reshape(grad.shape), k


def train_topk_sgd(
    model: Model,
    x: np.ndarray,
    y,
    fraction: float = 0.1,
    error_feedback: bool = True,
    epochs: int = 5,
    batch_size: int = 32,
    loss: str = "mse",
    lr: float = 1e-2,
    seed: int = 0,
) -> DistributedRunResult:
    """SGD with top-k gradient sparsification.

    Only the top-``fraction`` gradient entries are "communicated" (applied);
    with ``error_feedback`` the dropped residual accumulates locally and is
    added to the next step's gradient (Stich et al.) — the mechanism that
    makes aggressive sparsification converge.

    Communicated bytes count 12 bytes per sent entry (8-byte value +
    4-byte index) vs 8 bytes per entry dense.
    """
    rng = np.random.default_rng(seed)
    x = np.asarray(x)
    if not model.built:
        model.build(x.shape[1:], rng)
    loss_fn = losses_mod.get(loss) if isinstance(loss, str) else loss
    params = list(model.parameters())
    residual = [np.zeros_like(p.data) for p in params]

    loader = DataLoader(x, y, batch_size=batch_size, shuffle=True, rng=rng)
    epoch_losses: List[float] = []
    comm = 0.0
    dense = 0.0
    updates = 0
    for _ in range(epochs):
        total, count = 0.0, 0
        for xb, yb in loader:
            target = xb if yb is None else yb
            grads, loss_val = _grads_of(model, xb, target, loss_fn)
            for i, (p, g) in enumerate(zip(params, grads)):
                corrected = g + residual[i] if error_feedback else g
                sparse, kept = topk_sparsify(corrected, fraction)
                if error_feedback:
                    residual[i] = corrected - sparse
                p.data -= lr * sparse
                comm += kept * 12.0
                dense += g.size * 8.0
            total += loss_val
            count += 1
            updates += 1
        epoch_losses.append(total / max(count, 1))
    return DistributedRunResult(epoch_losses, comm_bytes=comm, dense_bytes=dense, updates=updates)
