"""End-to-end workflows: real training priced on the simulated cluster,
and DL-supervised molecular-dynamics sampling (claims C3, C15)."""

from .campaign import CampaignReport, run_campaign
from .distributed import (
    DistributedRunResult,
    topk_sparsify,
    train_async_sgd,
    train_sync_data_parallel,
    train_topk_sgd,
)
from .md_supervision import NoveltyModel, SamplingResult, compare_strategies, run_sampling_campaign
from .training_job import TrainingReport, run_training_job, simulated_trial_cost, time_to_loss

__all__ = [
    "TrainingReport", "run_training_job", "simulated_trial_cost", "time_to_loss",
    "NoveltyModel", "SamplingResult", "run_sampling_campaign", "compare_strategies",
    "CampaignReport", "run_campaign",
    "DistributedRunResult", "train_sync_data_parallel", "train_async_sgd",
    "train_topk_sgd", "topk_sparsify",
]
