"""Full CANDLE-style campaign driver: search → final training → pricing.

One call runs the complete loop the keynote describes for a benchmark:

1. hyperparameter search with a chosen strategy, trial costs priced by
   the architecture model (search parallelism on the simulated cluster);
2. final training of the winning configuration (optionally under a
   reduced-precision policy);
3. a report with the achieved metric, the simulated campaign wall-clock,
   and the energy bill.

This is the module downstream users script against; the pieces are all
independently available, the campaign just composes them faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from ..candle.registry import BenchmarkSpec, get_benchmark
from ..hpc.cluster import SimCluster
from ..hpo.objectives import benchmark_objective
from ..hpo.results import ResultLog
from ..hpo.scheduler import run_parallel
from ..hpo.space import Config, SearchSpace
from ..hpo.strategies import STRATEGIES
from ..nn import metrics as metrics_mod
from ..nn.dataloader import train_val_split
from ..obs.context import get_recorder
from ..obs.trace import maybe_span
from ..precision.policy import PrecisionPolicy, train_with_policy
from ..resilience import ResilienceReport, as_injector
from .training_job import run_training_job, simulated_trial_cost


@dataclass
class CampaignReport:
    """Everything a campaign produced.

    ``resilience`` is attached when the campaign ran under a fault model
    (``run_campaign(..., faults=...)``): the combined ledger of what the
    search and the final training survived.
    """

    benchmark: str
    strategy: str
    search_log: ResultLog
    best_config: Config
    final_metric: float
    metric_name: str
    search_wallclock: float  # simulated seconds
    final_train_time: float  # simulated seconds
    total_energy: float  # joules (final training)
    resilience: Optional[ResilienceReport] = None
    #: Set when the campaign ran with ``publish_to=``: the registry
    #: reference (``name@version`` + content hash) of the final model.
    published: Optional[object] = None

    def summary(self) -> str:
        try:
            best = f"{self.search_log.best_value():.4f}"
        except ValueError:
            best = "n/a"  # every trial was lost to faults
        text = (
            f"campaign[{self.benchmark}] strategy={self.strategy} "
            f"trials={len(self.search_log)} "
            f"best search loss={best} "
            f"final {self.metric_name}={self.final_metric:.4f} "
            f"search wall={self.search_wallclock:.4g}s "
            f"train wall={self.final_train_time:.4g}s "
            f"energy={self.total_energy:.4g}J"
        )
        if self.resilience is not None:
            text += " | " + self.resilience.summary()
        return text


def run_campaign(
    benchmark: str,
    space: SearchSpace,
    cluster: Optional[SimCluster] = None,
    strategy: str = "random",
    n_trials: int = 20,
    n_workers: int = 8,
    final_epochs: int = 15,
    precision: str = "fp32",
    data_seed: int = 0,
    seed: int = 0,
    max_search_samples: int = 300,
    strategy_kwargs: Optional[Dict] = None,
    faults=None,
    max_retries: int = 3,
    retry_backoff: float = 0.0,
    checkpoint_dir=None,
    publish_to=None,
    model_name: Optional[str] = None,
    queue_path=None,
) -> CampaignReport:
    """Run search + final training for one registry benchmark.

    The search trains small models on a subsample (fast, real);
    the final training uses the full generated dataset under the
    requested precision policy, priced and metered on ``cluster``.

    ``faults`` (a FaultSpec or FaultInjector) runs the whole campaign
    under that fault model: search trials crash/straggle/NaN and are
    retried or quarantined, workers may leave the pool permanently, and
    the fp32 final training checkpoint/restarts through the injected
    crash schedule.  The campaign always completes; the report's
    ``resilience`` field says what it survived.  (Reduced-precision
    final training keeps its policy loop and only the search is
    fault-injected — the resilient fit loop is fp32.)

    ``publish_to`` (a :class:`repro.registry.ArtifactStore`) publishes
    the final trained model into the registry as ``model_name``
    (default: the benchmark name) with lineage back to this campaign —
    the campaign's obs span id, strategy, winning config, and final
    metric travel with the artifact, so a served model can always answer
    "which campaign produced you".  The report's ``published`` field
    carries the resulting :class:`repro.registry.ArtifactRef`.

    ``queue_path`` makes the search phase *durable*: every ask/claim/ack
    goes through an on-disk :class:`repro.hpo.DurableTrialQueue` at that
    path, so a campaign killed mid-search can be re-invoked with the
    same arguments and resumes bit-identically where it died (see
    :func:`repro.hpo.run_elastic`).
    """
    if n_trials < 1:
        raise ValueError("n_trials must be >= 1")
    spec = get_benchmark(benchmark)
    cluster = cluster or SimCluster.build("summit_era", max(n_workers, 1))
    injector = as_injector(faults)

    # Observability: with a repro.obs.TraceRecorder attached, the whole
    # campaign is one top-level span with search / final-training /
    # evaluate child phases; trial spans, fit spans, ops, and fault
    # events recorded by the nested subsystems land inside it.
    rec = get_recorder()
    with maybe_span(
        rec, benchmark, "campaign",
        benchmark=benchmark, strategy=strategy, n_trials=n_trials,
        n_workers=n_workers, precision=precision, faulted=injector is not None,
    ) as campaign_span:
        # -- 1. search -----------------------------------------------------
        with maybe_span(rec, "search", "campaign.search", strategy=strategy) as search_span:
            objective = benchmark_objective(
                spec, data_seed=data_seed, max_samples=max_search_samples
            )
            cost = simulated_trial_cost(spec, cluster)
            strat_cls = STRATEGIES[strategy]
            strat = strat_cls(space, seed=seed, **(strategy_kwargs or {}))
            if queue_path is not None:
                log = run_parallel(
                    strat, objective, n_trials, n_workers, cost,
                    injector=injector, max_retries=max_retries, queue=queue_path,
                )
            else:
                log = run_parallel(
                    strat, objective, n_trials, n_workers, cost,
                    injector=injector, max_retries=max_retries, retry_backoff=retry_backoff,
                )
            try:
                best = log.best_config()
            except ValueError:
                # Graceful degradation: every trial was lost to faults.  Fall
                # back to a seeded sample so the campaign still delivers a
                # model.
                best = space.sample(np.random.default_rng(seed))
            search_wall = max((t.sim_time for t in log.trials), default=0.0)
            if search_span is not None:
                search_span["attrs"].update(trials=len(log), sim_wallclock=search_wall)

        # -- 2. final training ---------------------------------------------
        with maybe_span(
            rec, "final_training", "campaign.final_training", precision=precision
        ) as train_span:
            x, y = spec.make_data(seed=data_seed + 1)
            rng = np.random.default_rng(seed)
            x_tr, y_tr, x_va, y_va = train_val_split(x, y, val_frac=0.3, rng=rng)

            cfg = dict(best)
            lr = float(cfg.pop("lr", 1e-3))
            batch_size = int(cfg.pop("batch_size", 32))
            h1, h2 = cfg.pop("hidden1", None), cfg.pop("hidden2", None)
            if h1 is not None:
                cfg["hidden"] = (int(h1),) if h2 is None else (int(h1), int(h2))
            model = spec.build_model(**cfg)

            train_resilience: Optional[ResilienceReport] = None
            if precision == "fp32":
                report = run_training_job(
                    model, x_tr, y_tr, cluster, precision=precision,
                    epochs=final_epochs, batch_size=batch_size, loss=spec.loss,
                    lr=lr, seed=seed, faults=injector, checkpoint_dir=checkpoint_dir,
                )
                train_time, energy = report.sim_total_time, report.energy_joules
                train_resilience = report.resilience
            else:
                policy = PrecisionPolicy(precision)
                train_with_policy(model, x_tr, y_tr, policy, epochs=final_epochs,
                                  batch_size=batch_size, loss=spec.loss, lr=lr, seed=seed)
                # Price the run post hoc (the policy loop trains; the
                # simulator meters).
                from ..hpc.energy import step_energy
                from ..hpc.parallelism import SingleNode
                from ..hpc.perfmodel import profile_model

                profile = profile_model(model, np.asarray(x_tr).shape[1:], batch_size=batch_size)
                plan = SingleNode()
                step_t = plan.step_time(profile, cluster, precision)
                steps = int(np.ceil(len(x_tr) / batch_size)) * final_epochs
                train_time = step_t * steps
                energy = step_energy(plan, profile, cluster, precision).total * steps
            if train_span is not None:
                train_span["attrs"].update(sim_time=train_time, energy_joules=energy)

        # -- 3. evaluate -----------------------------------------------------
        with maybe_span(rec, "evaluate", "campaign.evaluate"):
            if spec.metric == "loss":
                final_metric = model.evaluate(x_va, y_va, loss=spec.loss)["loss"]
            else:
                pred = model.predict(np.asarray(x_va))
                target = x_va if y_va is None else y_va
                final_metric = metrics_mod.get(spec.metric)(pred, np.asarray(target))

        # -- 4. resilience ledger --------------------------------------------
        resilience: Optional[ResilienceReport] = None
        if injector is not None:
            resilience = train_resilience or ResilienceReport()
            stats = log.stats
            resilience.retries += stats.get("retries", 0)
            resilience.quarantined += stats.get("quarantined", 0)
            resilience.workers_lost += stats.get("workers_lost", 0)
            resilience.faults = dict(injector.counts)  # search + training, by kind

        if campaign_span is not None:
            campaign_span["attrs"].update(
                final_metric=float(final_metric), metric=spec.metric,
            )

        # -- 5. publish ------------------------------------------------------
        published = None
        if publish_to is not None:
            with maybe_span(rec, "publish", "campaign.publish"):
                published = publish_to.publish(
                    model,
                    name=model_name or spec.name,
                    benchmark=spec.name,
                    input_shape=tuple(np.asarray(x_va).shape[1:]),
                    hparams=cfg,
                    lineage={
                        "campaign_span": campaign_span["id"] if campaign_span else None,
                        "strategy": strategy,
                        "best_config": dict(best),
                        "final_metric": float(final_metric),
                        "metric": spec.metric,
                        "precision": precision,
                        "seed": seed,
                    },
                )
            if campaign_span is not None:
                campaign_span["attrs"]["published"] = published.spec

    return CampaignReport(
        benchmark=spec.name,
        strategy=strategy,
        search_log=log,
        best_config=best,
        final_metric=float(final_metric),
        metric_name=spec.metric,
        search_wallclock=search_wall,
        final_train_time=train_time,
        total_energy=energy,
        resilience=resilience,
        published=published,
    )
