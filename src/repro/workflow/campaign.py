"""Full CANDLE-style campaign driver: search → final training → pricing.

One call runs the complete loop the keynote describes for a benchmark:

1. hyperparameter search with a chosen strategy, trial costs priced by
   the architecture model (search parallelism on the simulated cluster);
2. final training of the winning configuration (optionally under a
   reduced-precision policy);
3. a report with the achieved metric, the simulated campaign wall-clock,
   and the energy bill.

This is the module downstream users script against; the pieces are all
independently available, the campaign just composes them faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from ..candle.registry import BenchmarkSpec, get_benchmark
from ..hpc.cluster import SimCluster
from ..hpo.objectives import benchmark_objective
from ..hpo.results import ResultLog
from ..hpo.scheduler import run_parallel
from ..hpo.space import Config, SearchSpace
from ..hpo.strategies import STRATEGIES
from ..nn import metrics as metrics_mod
from ..nn.dataloader import train_val_split
from ..precision.policy import PrecisionPolicy, train_with_policy
from .training_job import run_training_job, simulated_trial_cost


@dataclass
class CampaignReport:
    """Everything a campaign produced."""

    benchmark: str
    strategy: str
    search_log: ResultLog
    best_config: Config
    final_metric: float
    metric_name: str
    search_wallclock: float  # simulated seconds
    final_train_time: float  # simulated seconds
    total_energy: float  # joules (final training)

    def summary(self) -> str:
        return (
            f"campaign[{self.benchmark}] strategy={self.strategy} "
            f"trials={len(self.search_log)} "
            f"best search loss={self.search_log.best_value():.4f} "
            f"final {self.metric_name}={self.final_metric:.4f} "
            f"search wall={self.search_wallclock:.4g}s "
            f"train wall={self.final_train_time:.4g}s "
            f"energy={self.total_energy:.4g}J"
        )


def run_campaign(
    benchmark: str,
    space: SearchSpace,
    cluster: Optional[SimCluster] = None,
    strategy: str = "random",
    n_trials: int = 20,
    n_workers: int = 8,
    final_epochs: int = 15,
    precision: str = "fp32",
    data_seed: int = 0,
    seed: int = 0,
    max_search_samples: int = 300,
    strategy_kwargs: Optional[Dict] = None,
) -> CampaignReport:
    """Run search + final training for one registry benchmark.

    The search trains small models on a subsample (fast, real);
    the final training uses the full generated dataset under the
    requested precision policy, priced and metered on ``cluster``.
    """
    if n_trials < 1:
        raise ValueError("n_trials must be >= 1")
    spec = get_benchmark(benchmark)
    cluster = cluster or SimCluster.build("summit_era", max(n_workers, 1))

    # -- 1. search ---------------------------------------------------------
    objective = benchmark_objective(spec, data_seed=data_seed, max_samples=max_search_samples)
    cost = simulated_trial_cost(spec, cluster)
    strat_cls = STRATEGIES[strategy]
    strat = strat_cls(space, seed=seed, **(strategy_kwargs or {}))
    log = run_parallel(strat, objective, n_trials, n_workers, cost)
    best = log.best_config()
    search_wall = max((t.sim_time for t in log.trials), default=0.0)

    # -- 2. final training ---------------------------------------------------
    x, y = spec.make_data(seed=data_seed + 1)
    rng = np.random.default_rng(seed)
    x_tr, y_tr, x_va, y_va = train_val_split(x, y, val_frac=0.3, rng=rng)

    cfg = dict(best)
    lr = float(cfg.pop("lr", 1e-3))
    batch_size = int(cfg.pop("batch_size", 32))
    h1, h2 = cfg.pop("hidden1", None), cfg.pop("hidden2", None)
    if h1 is not None:
        cfg["hidden"] = (int(h1),) if h2 is None else (int(h1), int(h2))
    model = spec.build_model(**cfg)

    if precision == "fp32":
        report = run_training_job(
            model, x_tr, y_tr, cluster, precision=precision,
            epochs=final_epochs, batch_size=batch_size, loss=spec.loss, lr=lr, seed=seed,
        )
        train_time, energy = report.sim_total_time, report.energy_joules
    else:
        policy = PrecisionPolicy(precision)
        train_with_policy(model, x_tr, y_tr, policy, epochs=final_epochs,
                          batch_size=batch_size, loss=spec.loss, lr=lr, seed=seed)
        # Price the run post hoc (the policy loop trains; the simulator meters).
        from ..hpc.energy import step_energy
        from ..hpc.parallelism import SingleNode
        from ..hpc.perfmodel import profile_model

        profile = profile_model(model, np.asarray(x_tr).shape[1:], batch_size=batch_size)
        plan = SingleNode()
        step_t = plan.step_time(profile, cluster, precision)
        steps = int(np.ceil(len(x_tr) / batch_size)) * final_epochs
        train_time = step_t * steps
        energy = step_energy(plan, profile, cluster, precision).total * steps

    # -- 3. evaluate ---------------------------------------------------------
    if spec.metric == "loss":
        final_metric = model.evaluate(x_va, y_va, loss=spec.loss)["loss"]
    else:
        pred = model.predict(np.asarray(x_va))
        target = x_va if y_va is None else y_va
        final_metric = metrics_mod.get(spec.metric)(pred, np.asarray(target))

    return CampaignReport(
        benchmark=spec.name,
        strategy=strategy,
        search_log=log,
        best_config=best,
        final_metric=float(final_metric),
        metric_name=spec.metric,
        search_wallclock=search_wall,
        final_train_time=train_time,
        total_energy=energy,
    )
