"""Training-data staging across the storage hierarchy (claims C8/C12).

The keynote: "deep learning problems require large quantities of training
data to be made available or generated at each node, thus providing
opportunities for NVRAM."  This module models epoch-level data movement
under three policies:

* ``pfs_direct`` — every batch read from the parallel filesystem.
* ``nvram_prefetch`` — stage the (shard of the) dataset into node-local
  NVRAM once, then read epochs from NVRAM; spills to PFS if it doesn't fit.
* ``dram_cache`` — cache-on-first-read into DRAM with NVRAM as victim
  tier: epoch 1 pays PFS, later epochs hit DRAM/NVRAM by capacity.

The model charges the *exposed* I/O time per epoch: reads overlap compute
up to the compute time of the epoch (double-buffered input pipelines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .hardware import MemoryTier, NodeSpec


@dataclass(frozen=True)
class DatasetSpec:
    """Per-node training-data shard.

    bytes_total: shard size in bytes.
    samples: sample count in the shard.
    """

    bytes_total: float
    samples: int

    def __post_init__(self) -> None:
        if self.bytes_total <= 0 or self.samples <= 0:
            raise ValueError("dataset must have positive size and samples")

    @property
    def bytes_per_sample(self) -> float:
        return self.bytes_total / self.samples


@dataclass
class EpochIO:
    """Result of one epoch's I/O simulation."""

    policy: str
    epoch: int
    read_bytes_by_tier: Dict[str, float]
    raw_io_time: float
    exposed_io_time: float
    energy: float


class StagingSimulator:
    """Simulates epoch-by-epoch data movement for one node."""

    POLICIES = ("pfs_direct", "nvram_prefetch", "dram_cache")

    def __init__(self, node: NodeSpec, dataset: DatasetSpec, policy: str = "nvram_prefetch") -> None:
        if policy not in self.POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {self.POLICIES}")
        if not node.has_tier("pfs"):
            raise ValueError("node must have a pfs tier")
        self.node = node
        self.dataset = dataset
        self.policy = policy
        self._staged = False
        self._cached: Dict[str, float] = {}  # tier -> bytes resident

    # -- capacity helpers ------------------------------------------------
    def _usable(self, tier_name: str, reserve_fraction: float = 0.5) -> float:
        """Bytes of a tier available for data caching (training state gets
        the rest — hence the reserve)."""
        if not self.node.has_tier(tier_name):
            return 0.0
        return self.node.tier(tier_name).capacity * reserve_fraction

    # -- policy logic -----------------------------------------------------
    def _epoch_reads(self, epoch: int) -> Dict[str, float]:
        """Bytes read from each tier during this epoch (and update caches)."""
        total = self.dataset.bytes_total
        reads: Dict[str, float] = {}
        if self.policy == "pfs_direct":
            reads["pfs"] = total
            return reads

        if self.policy == "nvram_prefetch":
            nv = self._usable("nvram")
            if not self._staged:
                # One-time staging PFS -> NVRAM, charged to epoch 0.
                staged = min(total, nv)
                reads["pfs"] = total  # read everything from PFS once
                self._cached["nvram"] = staged
                self._staged = True
                return reads
            fit = self._cached.get("nvram", 0.0)
            reads["nvram"] = fit
            if total > fit:
                reads["pfs"] = total - fit  # overflow re-read every epoch
            return reads

        # dram_cache: fill DRAM first, overflow to NVRAM, then PFS.
        dram = self._usable("dram")
        nv = self._usable("nvram")
        in_dram = self._cached.get("dram", 0.0)
        in_nvram = self._cached.get("nvram", 0.0)
        hit_dram = min(total, in_dram)
        hit_nvram = min(max(total - hit_dram, 0.0), in_nvram)
        miss = max(total - hit_dram - hit_nvram, 0.0)
        if hit_dram:
            reads["dram"] = hit_dram
        if hit_nvram:
            reads["nvram"] = hit_nvram
        if miss:
            reads["pfs"] = miss
            # Fill caches with the missed bytes.
            room_dram = max(dram - in_dram, 0.0)
            add_dram = min(miss, room_dram)
            self._cached["dram"] = in_dram + add_dram
            room_nv = max(nv - in_nvram, 0.0)
            self._cached["nvram"] = in_nvram + min(miss - add_dram, room_nv)
        return reads

    # -- simulation --------------------------------------------------------
    def epoch_io(self, epoch: int, compute_time: float = 0.0) -> EpochIO:
        """Simulate one epoch.  ``compute_time`` lets reads overlap compute
        (exposed time = max(0, io - compute) except first-byte latency)."""
        reads = self._epoch_reads(epoch)
        raw = 0.0
        energy = 0.0
        for tier_name, nbytes in reads.items():
            tier = self.node.tier(tier_name)
            raw += tier.access_time(nbytes)
            energy += tier.access_energy(nbytes)
        exposed = max(0.0, raw - compute_time)
        return EpochIO(
            policy=self.policy, epoch=epoch,
            read_bytes_by_tier=reads, raw_io_time=raw,
            exposed_io_time=exposed, energy=energy,
        )

    def run_epochs(self, n_epochs: int, compute_time: float = 0.0) -> List[EpochIO]:
        if n_epochs < 1:
            raise ValueError("n_epochs must be >= 1")
        return [self.epoch_io(e, compute_time) for e in range(n_epochs)]

    def total_exposed_time(self, n_epochs: int, compute_time: float = 0.0) -> float:
        return sum(e.exposed_io_time for e in self.run_epochs(n_epochs, compute_time))


def compare_policies(
    node: NodeSpec,
    dataset: DatasetSpec,
    n_epochs: int = 10,
    compute_time: float = 0.0,
) -> Dict[str, float]:
    """Total exposed I/O time per policy — the E11 table."""
    out = {}
    for policy in StagingSimulator.POLICIES:
        if policy != "pfs_direct" and not node.has_tier("nvram") and policy == "nvram_prefetch":
            continue
        sim = StagingSimulator(node, dataset, policy)
        out[policy] = sim.total_exposed_time(n_epochs, compute_time)
    return out
