"""SimCluster: the simulated machine every experiment runs against.

A cluster is N identical nodes (a :class:`~repro.hpc.hardware.NodeSpec`)
joined by a :class:`~repro.hpc.network.Network`.  Convenience constructors
build the 2017-era machines from the hardware catalog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .hardware import MACHINES, NodeSpec, get_machine
from .network import LinkSpec, Network
from .topology import Topology, make_topology


@dataclass
class SimCluster:
    """N nodes + fabric."""

    node: NodeSpec
    network: Network

    @property
    def n_nodes(self) -> int:
        return self.network.n_nodes

    @classmethod
    def build(
        cls,
        machine: str = "summit_era",
        n_nodes: int = 64,
        topology: str = "fat_tree",
        link_bandwidth: Optional[float] = None,
        link_alpha: Optional[float] = None,
    ) -> "SimCluster":
        """Construct a cluster from catalog names.

        ``link_bandwidth`` defaults to the node's NIC bandwidth (the fabric
        is injection-limited, the common case).
        """
        node = get_machine(machine)
        topo = make_topology(topology, n_nodes)
        bw = link_bandwidth if link_bandwidth is not None else node.nic_bandwidth
        alpha = link_alpha if link_alpha is not None else node.nic_latency
        link = LinkSpec.from_bandwidth(bw, alpha=alpha)
        return cls(node=node, network=Network(topo, link))

    def subcluster(self, n_nodes: int, topology: Optional[str] = None) -> "SimCluster":
        """A smaller cluster with the same node type and link parameters —
        used to model intra-group fabrics for hybrid parallelism."""
        if n_nodes < 1 or n_nodes > self.n_nodes:
            raise ValueError(f"subcluster size {n_nodes} out of range [1, {self.n_nodes}]")
        topo_kind = topology or type(self.network.topology).__name__.lower()
        # Normalize class names back to registry keys.
        aliases = {"fattree": "fat_tree", "torus": "torus3d"}
        topo_kind = aliases.get(topo_kind, topo_kind)
        topo = make_topology(topo_kind, n_nodes)
        return SimCluster(node=self.node, network=Network(topo, self.network.link))

    def with_link_bandwidth(self, bandwidth: float) -> "SimCluster":
        """Same cluster with a different fabric bandwidth (E3 sweeps this)."""
        link = LinkSpec(
            alpha=self.network.link.alpha,
            beta=1.0 / bandwidth,
            per_hop=self.network.link.per_hop,
            energy_per_byte=self.network.link.energy_per_byte,
        )
        return SimCluster(node=self.node, network=Network(self.network.topology, link))
