"""Analytic cost models for MPI-style collectives.

Standard results from the collective-communication literature
(Thakur/Rabenseifner/Chan et al.), expressed over the alpha-beta network
model.  For p ranks, message size n bytes, latency a, inverse bandwidth b,
and per-element reduction cost g (folded into b here):

======================  ========================================
ring allreduce          2(p-1)a/p' + 2n(p-1)/p * b   (bandwidth-optimal)
binomial-tree allreduce 2 ceil(log2 p) (a + n b)      (latency-friendly, no pipelining)
recursive doubling      log2(p) (a + n b)             (latency-optimal, full n each round)
Rabenseifner            2 log2(p) a + 2n(p-1)/p b     (reduce-scatter + allgather)
==========================================================================

These formulas drive experiment E10 (algorithm crossover vs message size)
and the allreduce term in every scaling experiment (E2/E3/E6).
"""

from __future__ import annotations

import math
from typing import Callable, Dict

from .network import Network


def _validate(n_ranks: int, nbytes: float) -> None:
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")


def _alpha_beta(net: Network) -> tuple:
    """Effective alpha (incl. average hop latency) and beta (incl. topology
    contention for bandwidth-heavy phases)."""
    link = net.link
    avg_hops = net.topology.average_hops(sample=1024) if net.n_nodes > 1 else 0.0
    alpha = link.alpha + avg_hops * link.per_hop
    beta = link.beta * net.contention_factor()
    return alpha, beta


def allreduce_ring(net: Network, n_ranks: int, nbytes: float) -> float:
    """Ring allreduce (reduce-scatter + allgather over a logical ring).

    Bandwidth-optimal: each rank sends 2n(p-1)/p bytes total, in 2(p-1)
    latency-bearing steps.  Logical-ring neighbours are 1 hop on a ring
    topology but average-distance apart on others.
    """
    _validate(n_ranks, nbytes)
    if n_ranks == 1 or nbytes == 0:
        return 0.0
    link = net.link
    # Neighbour distance: exact for ring topology, average otherwise.
    from .topology import Ring

    hop = 1.0 if isinstance(net.topology, Ring) else max(net.topology.average_hops(sample=1024), 1.0)
    alpha = link.alpha + hop * link.per_hop
    chunk = nbytes / n_ranks
    steps = 2 * (n_ranks - 1)
    return steps * (alpha + chunk * link.beta)


def allreduce_tree(net: Network, n_ranks: int, nbytes: float) -> float:
    """Binomial-tree reduce followed by binomial-tree broadcast."""
    _validate(n_ranks, nbytes)
    if n_ranks == 1 or nbytes == 0:
        return 0.0
    alpha, beta = _alpha_beta(net)
    rounds = math.ceil(math.log2(n_ranks))
    return 2 * rounds * (alpha + nbytes * beta)


def allreduce_recursive_doubling(net: Network, n_ranks: int, nbytes: float) -> float:
    """Recursive doubling: log2(p) rounds, full message each round.

    Latency-optimal; non-power-of-two rank counts pay one extra round.
    """
    _validate(n_ranks, nbytes)
    if n_ranks == 1 or nbytes == 0:
        return 0.0
    alpha, beta = _alpha_beta(net)
    rounds = math.ceil(math.log2(n_ranks))
    extra = 0 if (n_ranks & (n_ranks - 1)) == 0 else 1
    return (rounds + extra) * (alpha + nbytes * beta)


def allreduce_rabenseifner(net: Network, n_ranks: int, nbytes: float) -> float:
    """Rabenseifner: recursive-halving reduce-scatter + recursive-doubling
    allgather.  Near-bandwidth-optimal with log latency."""
    _validate(n_ranks, nbytes)
    if n_ranks == 1 or nbytes == 0:
        return 0.0
    alpha, beta = _alpha_beta(net)
    rounds = math.ceil(math.log2(n_ranks))
    bw_term = 2 * nbytes * (n_ranks - 1) / n_ranks * beta
    return 2 * rounds * alpha + bw_term


def broadcast_tree(net: Network, n_ranks: int, nbytes: float) -> float:
    """Binomial-tree broadcast."""
    _validate(n_ranks, nbytes)
    if n_ranks == 1 or nbytes == 0:
        return 0.0
    alpha, beta = _alpha_beta(net)
    return math.ceil(math.log2(n_ranks)) * (alpha + nbytes * beta)


def allgather_ring(net: Network, n_ranks: int, nbytes: float) -> float:
    """Ring allgather; ``nbytes`` is the per-rank contribution."""
    _validate(n_ranks, nbytes)
    if n_ranks == 1 or nbytes == 0:
        return 0.0
    alpha, beta = _alpha_beta(net)
    return (n_ranks - 1) * (alpha + nbytes * beta)


def reduce_scatter_ring(net: Network, n_ranks: int, nbytes: float) -> float:
    """Ring reduce-scatter; ``nbytes`` is the full buffer size."""
    _validate(n_ranks, nbytes)
    if n_ranks == 1 or nbytes == 0:
        return 0.0
    alpha, beta = _alpha_beta(net)
    return (n_ranks - 1) * (alpha + (nbytes / n_ranks) * beta)


def alltoall(net: Network, n_ranks: int, nbytes: float) -> float:
    """Pairwise-exchange all-to-all; ``nbytes`` is the per-pair block.

    Bandwidth-dominated: (p-1) rounds, heavily exposed to the topology's
    bisection limit (hence the raw contention factor).
    """
    _validate(n_ranks, nbytes)
    if n_ranks == 1 or nbytes == 0:
        return 0.0
    alpha, beta = _alpha_beta(net)
    return (n_ranks - 1) * (alpha + nbytes * beta)


ALLREDUCE_ALGORITHMS: Dict[str, Callable[[Network, int, float], float]] = {
    "ring": allreduce_ring,
    "tree": allreduce_tree,
    "recursive_doubling": allreduce_recursive_doubling,
    "rabenseifner": allreduce_rabenseifner,
}


def best_allreduce(net: Network, n_ranks: int, nbytes: float) -> tuple:
    """(algorithm name, time) of the fastest allreduce for this size —
    what a tuned MPI library's algorithm selection does."""
    best_name, best_time = None, math.inf
    for name, fn in ALLREDUCE_ALGORITHMS.items():
        t = fn(net, n_ranks, nbytes)
        if t < best_time:
            best_name, best_time = name, t
    return best_name, best_time


def allreduce_energy(net: Network, n_ranks: int, nbytes: float, algorithm: str = "ring") -> float:
    """Joules moved through the fabric by one allreduce.

    Ring moves 2n(p-1)/p bytes per rank; tree/doubling move n*log2(p).
    """
    _validate(n_ranks, nbytes)
    if n_ranks == 1 or nbytes == 0:
        return 0.0
    if algorithm in ("ring", "rabenseifner"):
        bytes_per_rank = 2 * nbytes * (n_ranks - 1) / n_ranks
    else:
        bytes_per_rank = nbytes * math.ceil(math.log2(n_ranks)) * 2
    total_bytes = bytes_per_rank * n_ranks
    return total_bytes * net.link.energy_per_byte * 1e-12
