"""Network performance model: alpha-beta links over a topology.

Point-to-point time follows the postal (alpha-beta) model extended with
per-hop latency and a contention factor derived from the topology's
bisection bandwidth — the standard first-order model the collective
cost formulas in :mod:`repro.hpc.collectives` build on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .topology import Topology


@dataclass(frozen=True)
class LinkSpec:
    """One fabric link.

    alpha: per-message software+injection latency (s).
    beta: inverse bandwidth (s per byte).
    per_hop: additional latency per switch hop (s).
    energy_per_byte: pJ per byte crossing the link.
    """

    alpha: float = 1.0e-6
    beta: float = 1.0 / 12.5e9  # 12.5 GB/s default
    per_hop: float = 1.0e-7
    energy_per_byte: float = 60.0  # pJ

    @property
    def bandwidth(self) -> float:
        return 1.0 / self.beta

    @staticmethod
    def from_bandwidth(bandwidth: float, alpha: float = 1.0e-6, per_hop: float = 1.0e-7) -> "LinkSpec":
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        return LinkSpec(alpha=alpha, beta=1.0 / bandwidth, per_hop=per_hop)


class Network:
    """Topology + link model."""

    def __init__(self, topology: Topology, link: LinkSpec) -> None:
        self.topology = topology
        self.link = link

    @property
    def n_nodes(self) -> int:
        return self.topology.n_nodes

    def ptp_time(self, nbytes: float, src: int = 0, dst: int = 1, hops: Optional[int] = None) -> float:
        """Point-to-point message time: alpha + hops*per_hop + bytes*beta."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self.n_nodes == 1 or src == dst:
            return 0.0
        h = self.topology.hops(src, dst) if hops is None else hops
        return self.link.alpha + h * self.link.per_hop + nbytes * self.link.beta

    def neighbor_time(self, nbytes: float) -> float:
        """Message time to a topological neighbour (1 hop)."""
        return self.ptp_time(nbytes, hops=1)

    def average_ptp_time(self, nbytes: float) -> float:
        """Message time at the topology's average hop distance."""
        return self.link.alpha + self.topology.average_hops(sample=2048) * self.link.per_hop + nbytes * self.link.beta

    def contention_factor(self) -> float:
        """Slowdown applied to bandwidth-bound all-to-all-like traffic:
        1 / bisection_factor, floored at 1 (full bisection = no slowdown)."""
        return max(1.0, 1.0 / self.topology.bisection_factor())

    def ptp_energy(self, nbytes: float, hops: int = 1) -> float:
        """Joules to move a message ``hops`` hops."""
        return nbytes * self.link.energy_per_byte * max(hops, 1) * 1e-12
