"""DNN training performance model: per-layer FLOP/byte accounting and a
roofline execution model.

Two entry points:

* :func:`profile_model` introspects an actual ``repro.nn`` model;
* :func:`mlp_profile` / :func:`conv1d_profile` build *synthetic* profiles
  for models far too large to instantiate (the scaling experiments sweep
  multi-billion-parameter configurations — claim C10 needs models that
  don't fit one node).

The roofline model (claim C6): an op's time is the max of its compute time
(flops / effective peak at the chosen precision) and its memory time
(bytes moved / device bandwidth).  GEMMs are compute-bound at high
arithmetic intensity; elementwise ops are always bandwidth-bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..nn.layers import (
    Activation,
    AvgPool1D,
    BatchNorm,
    Conv1D,
    Dense,
    Dropout,
    Embedding,
    Flatten,
    LayerNorm,
    MaxPool1D,
)
from ..nn.model import Model
from .hardware import DTYPE_BYTES, AcceleratorSpec, NodeSpec


@dataclass(frozen=True)
class LayerCost:
    """Resource counts for one layer at a given batch size.

    flops are multiply-add counted as 2 ops; activation_elems is the
    output element count (what must be stashed for backward).
    """

    name: str
    params: int
    flops_fwd: float
    flops_bwd: float
    activation_elems: int

    @property
    def flops_total(self) -> float:
        return self.flops_fwd + self.flops_bwd


@dataclass
class ModelProfile:
    """Aggregated cost profile of a model at a fixed batch size."""

    layers: List[LayerCost]
    batch_size: int
    name: str = "model"

    @property
    def params(self) -> int:
        return sum(l.params for l in self.layers)

    @property
    def flops_fwd(self) -> float:
        return sum(l.flops_fwd for l in self.layers)

    @property
    def flops_bwd(self) -> float:
        return sum(l.flops_bwd for l in self.layers)

    @property
    def flops_step(self) -> float:
        return self.flops_fwd + self.flops_bwd

    @property
    def activation_elems(self) -> int:
        return sum(l.activation_elems for l in self.layers)

    def weight_bytes(self, precision: str) -> float:
        return self.params * DTYPE_BYTES[precision]

    def gradient_bytes(self, precision: str) -> float:
        return self.params * DTYPE_BYTES[precision]

    def activation_bytes(self, precision: str) -> float:
        return self.activation_elems * DTYPE_BYTES[precision]

    def optimizer_state_bytes(self, precision: str = "fp32", moments: int = 2) -> float:
        """Adam keeps ``moments`` extra copies at (usually) fp32."""
        return moments * self.params * DTYPE_BYTES[precision]

    def training_memory_bytes(self, precision: str, master_precision: str = "fp32") -> float:
        """Total per-replica training footprint: weights + grads +
        activations + master copy + optimizer state."""
        return (
            self.weight_bytes(precision)
            + self.gradient_bytes(precision)
            + self.activation_bytes(precision)
            + self.params * DTYPE_BYTES[master_precision]  # master weights
            + self.optimizer_state_bytes(master_precision)
        )

    def with_batch_size(self, batch_size: int) -> "ModelProfile":
        """Rescale flops/activations linearly to a new batch size."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        ratio = batch_size / self.batch_size
        layers = [
            LayerCost(
                name=l.name,
                params=l.params,
                flops_fwd=l.flops_fwd * ratio,
                flops_bwd=l.flops_bwd * ratio,
                activation_elems=int(round(l.activation_elems * ratio)),
            )
            for l in self.layers
        ]
        return ModelProfile(layers=layers, batch_size=batch_size, name=self.name)


# ----------------------------------------------------------------------
# Profiling real models
# ----------------------------------------------------------------------
def profile_model(model: Model, input_shape: Tuple[int, ...], batch_size: int = 32) -> ModelProfile:
    """Walk a built (or buildable) model's layers and count flops/params.

    ``input_shape`` excludes the batch axis.
    """
    if not model.built:
        model.build(tuple(input_shape), np.random.default_rng(0))
    costs: List[LayerCost] = []
    shape = tuple(input_shape)
    for layer in model.layers:
        out_shape = layer.output_shape(shape)
        costs.append(_layer_cost(layer, shape, out_shape, batch_size))
        shape = out_shape
    return ModelProfile(layers=costs, batch_size=batch_size, name=type(model).__name__)


def _layer_cost(layer, in_shape: Tuple[int, ...], out_shape: Tuple[int, ...], b: int) -> LayerCost:
    out_elems = b * int(np.prod(out_shape))
    params = layer.param_count()
    if isinstance(layer, Dense):
        fan_in = in_shape[-1]
        rows = b * int(np.prod(in_shape[:-1])) if len(in_shape) > 1 else b
        flops_fwd = 2.0 * rows * fan_in * layer.units
        flops_bwd = 2.0 * flops_fwd  # dX and dW GEMMs
    elif isinstance(layer, Conv1D):
        c_out, l_out = out_shape
        c_in = in_shape[0]
        flops_fwd = 2.0 * b * c_out * l_out * c_in * layer.kernel_size
        flops_bwd = 2.0 * flops_fwd
    elif isinstance(layer, Embedding):
        flops_fwd = float(out_elems)  # gather
        flops_bwd = float(out_elems)
    elif isinstance(layer, (BatchNorm, LayerNorm)):
        flops_fwd = 5.0 * out_elems
        flops_bwd = 8.0 * out_elems
    elif isinstance(layer, (Activation, Dropout)):
        flops_fwd = float(out_elems)
        flops_bwd = float(out_elems)
    elif isinstance(layer, (MaxPool1D, AvgPool1D)):
        flops_fwd = float(b * int(np.prod(in_shape)))
        flops_bwd = float(out_elems)
    elif isinstance(layer, Flatten):
        flops_fwd = 0.0
        flops_bwd = 0.0
        out_elems = 0  # a view, nothing stashed
    else:
        flops_fwd = float(out_elems)
        flops_bwd = float(out_elems)
    return LayerCost(
        name=layer.name, params=params,
        flops_fwd=flops_fwd, flops_bwd=flops_bwd, activation_elems=out_elems,
    )


# ----------------------------------------------------------------------
# Synthetic profiles (for models too big to build)
# ----------------------------------------------------------------------
def mlp_profile(layer_dims: Sequence[int], batch_size: int = 32, name: str = "mlp") -> ModelProfile:
    """Profile of a fully-connected net with the given layer widths.

    ``layer_dims = [in, h1, h2, ..., out]``.
    """
    if len(layer_dims) < 2:
        raise ValueError("need at least input and output dims")
    costs = []
    for i in range(len(layer_dims) - 1):
        fan_in, units = layer_dims[i], layer_dims[i + 1]
        flops_fwd = 2.0 * batch_size * fan_in * units
        costs.append(
            LayerCost(
                name=f"dense{i}", params=fan_in * units + units,
                flops_fwd=flops_fwd, flops_bwd=2 * flops_fwd,
                activation_elems=batch_size * units,
            )
        )
    return ModelProfile(layers=costs, batch_size=batch_size, name=name)


def conv1d_profile(
    length: int,
    channels: Sequence[int],
    kernel_size: int = 7,
    pool: int = 2,
    dense: Sequence[int] = (256,),
    n_classes: int = 2,
    batch_size: int = 32,
    name: str = "conv1d",
) -> ModelProfile:
    """Profile of an NT3-style conv stack without building it."""
    costs = []
    c_prev, l = 1, length
    for i, c in enumerate(channels):
        l_out = l - kernel_size + 1
        flops_fwd = 2.0 * batch_size * c * l_out * c_prev * kernel_size
        costs.append(
            LayerCost(
                name=f"conv{i}", params=c * c_prev * kernel_size + c,
                flops_fwd=flops_fwd, flops_bwd=2 * flops_fwd,
                activation_elems=batch_size * c * l_out,
            )
        )
        l = l_out // pool
        c_prev = c
    flat = c_prev * l
    dims = [flat] + list(dense) + [n_classes]
    tail = mlp_profile(dims, batch_size=batch_size)
    costs.extend(tail.layers)
    return ModelProfile(layers=costs, batch_size=batch_size, name=name)


# ----------------------------------------------------------------------
# Roofline execution model
# ----------------------------------------------------------------------
def arithmetic_intensity(flops: float, bytes_moved: float) -> float:
    """FLOPs per byte; inf for zero traffic."""
    if bytes_moved <= 0:
        return float("inf")
    return flops / bytes_moved


def roofline_time(flops: float, bytes_moved: float, acc: AcceleratorSpec, precision: str) -> float:
    """max(compute time, memory time) for one kernel."""
    if flops < 0 or bytes_moved < 0:
        raise ValueError("flops and bytes must be non-negative")
    compute = flops / acc.effective_flops(precision) if flops else 0.0
    memory = bytes_moved / acc.mem_bandwidth if bytes_moved else 0.0
    return max(compute, memory)


def achieved_flops(flops: float, bytes_moved: float, acc: AcceleratorSpec, precision: str) -> float:
    """Achieved FLOP/s of a kernel under the roofline — the E9 measurement."""
    t = roofline_time(flops, bytes_moved, acc, precision)
    return flops / t if t > 0 else 0.0


def layer_step_time(cost: LayerCost, acc: AcceleratorSpec, precision: str) -> float:
    """Forward+backward time of one layer under the roofline.

    Bytes: read weights (fwd+bwd) + write/read activations (fwd write,
    bwd read) + gradient write.
    """
    elem = DTYPE_BYTES[precision]
    weight_bytes = cost.params * elem
    act_bytes = cost.activation_elems * elem
    fwd = roofline_time(cost.flops_fwd, weight_bytes + act_bytes, acc, precision)
    bwd = roofline_time(cost.flops_bwd, 2 * weight_bytes + 2 * act_bytes, acc, precision)
    return fwd + bwd


def compute_step_time(profile: ModelProfile, node: NodeSpec, precision: str) -> float:
    """Single-node forward+backward+update time for one mini-batch."""
    acc = node.accelerator
    t = sum(layer_step_time(l, acc, precision) for l in profile.layers)
    # Optimizer update: elementwise over parameters, bandwidth-bound
    # (read weight+grad+2 moments, write weight+2 moments ~ 7 copies).
    update_bytes = 7.0 * profile.params * DTYPE_BYTES["fp32"]
    t += update_bytes / acc.mem_bandwidth
    return t
