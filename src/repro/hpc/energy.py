"""Energy model for training steps (claim C8: data-motion cost).

Energy per step = compute energy (flops x pJ/op at the chosen precision)
+ on-node data motion (bytes through the near tier x pJ/byte)
+ fabric traffic (bytes injected x pJ/byte x hops)
+ idle/static energy (node power x step time).

The E12 bench uses this to show that at scale the *data motion* terms
dominate — the keynote's argument for HBM-near-compute and for
low-precision datapaths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .cluster import SimCluster
from .collectives import allreduce_energy
from .hardware import DTYPE_BYTES
from .parallelism import DataParallel, HybridParallel, ModelParallel, ParallelPlan, SingleNode
from .perfmodel import ModelProfile


@dataclass
class EnergyBreakdown:
    """Joules per training step, by component."""

    compute: float
    memory: float
    network: float
    static: float

    @property
    def total(self) -> float:
        return self.compute + self.memory + self.network + self.static

    def as_dict(self) -> Dict[str, float]:
        return {
            "compute": self.compute,
            "memory": self.memory,
            "network": self.network,
            "static": self.static,
            "total": self.total,
        }


def _compute_energy(profile: ModelProfile, cluster: SimCluster, precision: str) -> float:
    acc = cluster.node.accelerator
    pj = acc.energy_per_flop.get(precision)
    if pj is None:
        raise ValueError(f"no energy coefficient for precision {precision!r}")
    return profile.flops_step * pj * 1e-12


def _memory_energy(profile: ModelProfile, cluster: SimCluster, precision: str) -> float:
    """On-node traffic: weights read fwd+bwd, activations written+read,
    gradients written, update traffic — all through the near tier."""
    near = cluster.node.tiers[0]
    elem = DTYPE_BYTES[precision]
    weight_traffic = 3.0 * profile.params * elem  # fwd read, bwd read, grad write
    act_traffic = 2.0 * profile.activation_elems * elem  # write fwd, read bwd
    update_traffic = 7.0 * profile.params * DTYPE_BYTES["fp32"]
    return (weight_traffic + act_traffic + update_traffic) * near.energy_per_byte * 1e-12


def step_energy(
    plan: ParallelPlan,
    profile: ModelProfile,
    cluster: SimCluster,
    precision: str = "fp32",
) -> EnergyBreakdown:
    """Energy of one global training step under ``plan``.

    Compute/memory energy is work-proportional, so it is the same total
    regardless of how the work is spread — what changes across plans is
    the *network* term and the static term (more nodes idling longer).
    """
    n_nodes = getattr(plan, "n_nodes", 1)
    if isinstance(plan, DataParallel):
        # Each replica computes on its shard; totals equal the global batch.
        compute = _compute_energy(profile, cluster, precision)
        # Weights/optimizer traffic is replicated per node, activations are not.
        local = profile.with_batch_size(max(1, profile.batch_size // plan.n_nodes)) if plan.strong_scaling else profile
        mem_one = _memory_energy(local, cluster, precision)
        memory = mem_one * plan.n_nodes
        network = allreduce_energy(
            cluster.network, plan.n_nodes, profile.gradient_bytes(precision), plan.allreduce
        )
    elif isinstance(plan, (ModelParallel, HybridParallel, SingleNode)):
        compute = _compute_energy(profile, cluster, precision)
        memory = _memory_energy(profile, cluster, precision)
        network = (
            plan.comm_bytes_per_step(profile, precision)
            * n_nodes
            * cluster.network.link.energy_per_byte
            * 1e-12
        )
    else:
        compute = _compute_energy(profile, cluster, precision)
        memory = _memory_energy(profile, cluster, precision)
        network = plan.comm_bytes_per_step(profile, precision) * n_nodes * cluster.network.link.energy_per_byte * 1e-12

    t = plan.step_time(profile, cluster, precision)
    static = cluster.node.idle_power * t * n_nodes
    return EnergyBreakdown(compute=compute, memory=memory, network=network, static=static)


def energy_per_sample(
    plan: ParallelPlan, profile: ModelProfile, cluster: SimCluster, precision: str = "fp32"
) -> float:
    """Joules per training sample — the cross-plan comparison metric."""
    return step_energy(plan, profile, cluster, precision).total / profile.batch_size
