"""Checkpoint/restart resilience model for long training campaigns.

Training the keynote's workloads at machine scale means multi-day jobs on
systems whose *system* MTBF shrinks linearly with node count — the
classic resilience wall.  This module provides the standard first-order
analysis (Young 1974 / Daly 2006):

* :func:`system_mtbf` — per-node MTBF / n_nodes.
* :func:`young_interval` / :func:`daly_interval` — optimal checkpoint
  periods.
* :func:`expected_runtime` — expected wall-clock for a job of given
  useful work under periodic checkpointing with failures.
* :func:`checkpoint_time_for_training` — the checkpoint cost of a DNN
  training state written to a given storage tier (this is where the
  NVRAM/burst-buffer story meets resilience: cheap checkpoints change the
  optimal interval and the achievable efficiency).
"""

from __future__ import annotations

import math
from typing import Dict

from .hardware import DTYPE_BYTES, MemoryTier, NodeSpec
from .perfmodel import ModelProfile


def system_mtbf(node_mtbf: float, n_nodes: int) -> float:
    """System mean-time-between-failures with independent node failures."""
    if node_mtbf <= 0 or n_nodes < 1:
        raise ValueError("node_mtbf must be > 0 and n_nodes >= 1")
    return node_mtbf / n_nodes


def young_interval(checkpoint_time: float, mtbf: float) -> float:
    """Young's first-order optimal checkpoint period: sqrt(2 C M)."""
    if checkpoint_time <= 0 or mtbf <= 0:
        raise ValueError("checkpoint_time and mtbf must be positive")
    return math.sqrt(2.0 * checkpoint_time * mtbf)


def daly_interval(checkpoint_time: float, mtbf: float) -> float:
    """Daly's higher-order refinement of the optimal period.

    tau = sqrt(2CM) * [1 + 1/3 sqrt(C/2M) + (1/9)(C/2M)] - C   for C < 2M,
    clamped below at C (checkpointing can't be denser than its own cost).
    """
    if checkpoint_time <= 0 or mtbf <= 0:
        raise ValueError("checkpoint_time and mtbf must be positive")
    c, m = checkpoint_time, mtbf
    if c >= 2 * m:
        return c  # failure-dominated: checkpoint back-to-back
    ratio = math.sqrt(c / (2 * m))
    tau = math.sqrt(2 * c * m) * (1 + ratio / 3 + (c / (2 * m)) / 9) - c
    return max(tau, c)


def expected_runtime(
    work: float,
    checkpoint_time: float,
    restart_time: float,
    mtbf: float,
    interval: float,
) -> float:
    """Expected wall-clock for ``work`` seconds of useful compute.

    Exponential failures at rate 1/M; periodic checkpoints every
    ``interval`` of work; on failure, lose on average half a segment plus
    pay ``restart_time``.  Standard first-order expected-value model:

    T = (work/tau) * M * (e^{(tau+C)/M} - 1) ... simplified to the common
    closed form used in the resilience literature:
    """
    if work <= 0:
        raise ValueError("work must be positive")
    if interval <= 0:
        raise ValueError("interval must be positive")
    n_segments = work / interval
    # Time to complete one segment including checkpoint, accounting for
    # failures that force segment re-execution (memoryless retries).
    seg = interval + checkpoint_time
    # Survival probability of one attempt.  exp underflows to exactly 0.0
    # once seg/mtbf > ~745 (a segment hundreds of MTBFs long), which would
    # make the expected-attempts ratio divide by zero; clamp to the
    # smallest positive double so the deep failure-dominated regime
    # returns a finite (astronomically large) expectation instead.
    p_survive = max(math.exp(-seg / mtbf), 1e-300)
    p_fail = 1.0 - p_survive
    # Expected attempts per segment = 1/(1-p); each failed attempt costs on
    # average half the segment plus the restart.
    expected_per_segment = seg + (p_fail / p_survive) * (seg / 2.0 + restart_time)
    return n_segments * expected_per_segment


def efficiency(
    work: float,
    checkpoint_time: float,
    restart_time: float,
    mtbf: float,
    interval: float,
) -> float:
    """Useful-work fraction: work / expected runtime."""
    return work / expected_runtime(work, checkpoint_time, restart_time, mtbf, interval)


def checkpoint_time_for_training(
    profile: ModelProfile,
    tier: MemoryTier,
    precision: str = "fp32",
    include_optimizer: bool = True,
) -> float:
    """Seconds to write one training checkpoint to ``tier``.

    Checkpoint contents: weights (+ optimizer moments at fp32).  This is
    the coupling between the NVRAM claim (C12) and resilience: a
    node-local burst buffer makes checkpoints ~100x cheaper than the PFS,
    which shortens the optimal interval and raises achievable efficiency.
    """
    nbytes = profile.weight_bytes(precision)
    if include_optimizer:
        nbytes += profile.optimizer_state_bytes("fp32")
    return tier.access_time(nbytes)


def campaign_efficiency(
    profile: ModelProfile,
    node: NodeSpec,
    n_nodes: int,
    node_mtbf: float = 5.0 * 365 * 86400,  # 5 years/node
    tier_name: str = "pfs",
    work: float = 86400.0,  # a day of training
    precision: str = "fp32",
) -> Dict[str, float]:
    """End-to-end: optimal-interval checkpointing efficiency for a training
    campaign on ``n_nodes`` nodes, checkpointing to ``tier_name``."""
    mtbf = system_mtbf(node_mtbf, n_nodes)
    tier = node.tier(tier_name)
    c = checkpoint_time_for_training(profile, tier, precision)
    restart = c + 60.0  # read back + requeue overhead
    tau = daly_interval(c, mtbf)
    eff = efficiency(work, c, restart, mtbf, tau)
    return {
        "mtbf": mtbf,
        "checkpoint_time": c,
        "interval": tau,
        "efficiency": eff,
    }
