"""Minimal discrete-event simulation core.

Drives the asynchronous hyperparameter-search scheduler (experiment E6):
workers are resources whose job completions are events; the search
strategy reacts to each completion by scheduling the next trial.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class EventLoop:
    """A priority queue of timestamped callbacks."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()  # FIFO tie-break at equal times
        self._processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``now + delay``."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        heapq.heappush(self._queue, (self.now + delay, next(self._counter), callback))

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        heapq.heappush(self._queue, (time, next(self._counter), callback))

    def step(self) -> bool:
        """Process the next event; returns False when the queue is empty."""
        if not self._queue:
            return False
        time, _, callback = heapq.heappop(self._queue)
        self.now = time
        self._processed += 1
        callback()
        return True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Drain the queue (optionally stopping at time ``until``).

        Returns the final simulation time.
        """
        events = 0
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self.now = until
                break
            if events >= max_events:
                raise RuntimeError(f"event budget exceeded ({max_events}); runaway simulation?")
            self.step()
            events += 1
        return self.now

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def processed(self) -> int:
        return self._processed


class WorkerPool:
    """N identical workers consuming jobs from a queue inside an EventLoop.

    ``submit(duration, on_done)`` either starts the job on a free worker or
    enqueues it; completions fire ``on_done(worker_id)`` and immediately
    pull the next queued job — standard async task-farm semantics.
    """

    def __init__(self, loop: EventLoop, n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.loop = loop
        self.n_workers = n_workers
        self._free: List[int] = list(range(n_workers))
        self._backlog: List[Tuple[float, Callable[[int], None]]] = []
        self._dead: set = set()
        self.busy_time = 0.0

    def submit(self, duration: float, on_done: Callable[[int], None]) -> None:
        if duration < 0:
            raise ValueError("duration must be non-negative")
        if self._free:
            self._start(self._free.pop(), duration, on_done)
        else:
            self._backlog.append((duration, on_done))

    def _start(self, worker: int, duration: float, on_done: Callable[[int], None]) -> None:
        self.busy_time += duration

        def finish() -> None:
            on_done(worker)
            if worker in self._dead:
                return  # a failed worker neither drains the backlog nor idles
            if self._backlog:
                next_duration, next_done = self._backlog.pop(0)
                self._start(worker, next_duration, next_done)
            else:
                self._free.append(worker)

        self.loop.schedule(duration, finish)

    def fail_worker(self) -> Optional[int]:
        """Permanently remove one worker from the pool (node loss).

        An idle worker leaves immediately; otherwise a busy worker is
        marked and leaves when its current job completes (the job itself
        is not killed — job crashes are the scheduler's fault model).
        Refuses to kill the last live worker; returns the failed worker
        id, or None if the pool is already down to one.
        """
        if self.n_alive <= 1:
            return None
        if self._free:
            worker = self._free.pop()
            self._dead.add(worker)
            return worker
        busy = [w for w in range(self.n_workers) if w not in self._dead and w not in self._free]
        worker = busy[-1]
        self._dead.add(worker)
        return worker

    @property
    def n_alive(self) -> int:
        return self.n_workers - len(self._dead)

    @property
    def idle_workers(self) -> int:
        return len(self._free)

    @property
    def queued_jobs(self) -> int:
        return len(self._backlog)

    def utilization(self) -> float:
        """Busy-time fraction of total worker-time so far."""
        wall = self.loop.now
        if wall <= 0:
            return 0.0
        return min(self.busy_time / (wall * self.n_workers), 1.0)
