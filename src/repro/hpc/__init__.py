"""Simulated HPC architecture: hardware catalog, topologies, collectives,
roofline performance model, parallelism plans, storage staging, energy,
and a discrete-event core (claims C6, C8-C12)."""

from .cluster import SimCluster
from .collectives import (
    ALLREDUCE_ALGORITHMS,
    allgather_ring,
    allreduce_energy,
    allreduce_rabenseifner,
    allreduce_recursive_doubling,
    allreduce_ring,
    allreduce_tree,
    alltoall,
    best_allreduce,
    broadcast_tree,
    reduce_scatter_ring,
)
from .energy import EnergyBreakdown, energy_per_sample, step_energy
from .events import EventLoop, WorkerPool
from .hardware import (
    DTYPE_BYTES,
    FUTURE_DL,
    KNL_ERA,
    MACHINES,
    SUMMIT_ERA,
    TITAN_ERA,
    AcceleratorSpec,
    MemoryTier,
    NodeSpec,
    get_machine,
)
from .network import LinkSpec, Network
from .parallelism import (
    DataParallel,
    HybridParallel,
    ModelParallel,
    ParallelPlan,
    PipelineParallel,
    SingleNode,
    scaling_efficiency,
    throughput,
)
from .perfmodel import (
    LayerCost,
    ModelProfile,
    achieved_flops,
    arithmetic_intensity,
    compute_step_time,
    conv1d_profile,
    mlp_profile,
    profile_model,
    roofline_time,
)
from .resilience import (
    campaign_efficiency,
    checkpoint_time_for_training,
    daly_interval,
    efficiency,
    expected_runtime,
    system_mtbf,
    young_interval,
)
from .storage import DatasetSpec, EpochIO, StagingSimulator, compare_policies
from .topology import Dragonfly, FatTree, Ring, Topology, Torus, make_topology

__all__ = [
    "SimCluster", "EventLoop", "WorkerPool",
    "MemoryTier", "AcceleratorSpec", "NodeSpec", "MACHINES", "get_machine",
    "TITAN_ERA", "SUMMIT_ERA", "KNL_ERA", "FUTURE_DL", "DTYPE_BYTES",
    "Topology", "Ring", "Torus", "FatTree", "Dragonfly", "make_topology",
    "LinkSpec", "Network",
    "ALLREDUCE_ALGORITHMS", "allreduce_ring", "allreduce_tree",
    "allreduce_recursive_doubling", "allreduce_rabenseifner",
    "broadcast_tree", "allgather_ring", "reduce_scatter_ring", "alltoall",
    "best_allreduce", "allreduce_energy",
    "LayerCost", "ModelProfile", "profile_model", "mlp_profile",
    "conv1d_profile", "roofline_time", "achieved_flops",
    "arithmetic_intensity", "compute_step_time",
    "ParallelPlan", "SingleNode", "DataParallel", "ModelParallel",
    "PipelineParallel", "HybridParallel", "throughput", "scaling_efficiency",
    "DatasetSpec", "StagingSimulator", "EpochIO", "compare_policies",
    "EnergyBreakdown", "step_energy", "energy_per_sample",
    "system_mtbf", "young_interval", "daly_interval", "expected_runtime",
    "efficiency", "checkpoint_time_for_training", "campaign_efficiency",
]
