"""Hardware specifications: memory tiers, accelerators, nodes.

All constants are order-of-magnitude realistic for the 2017 machine
generation the keynote targets (Titan/Summit/Theta-era), plus a "future"
design point embodying the keynote's wishlist (HBM close to compute, fat
low-precision units, node-local NVRAM).  Absolute values don't matter for
the experiments — the *ratios* (flops:bytes, tier:tier bandwidth) drive
every crossover the benches measure.

Units: bytes, seconds, FLOP/s, bytes/s, joules (energy per op in pJ).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

GB = 1e9
TB = 1e12
GBPS = 1e9  # bytes/s
TFLOPS = 1e12

#: Bytes per element for each supported precision.
DTYPE_BYTES: Dict[str, int] = {"fp64": 8, "fp32": 4, "fp16": 2, "bf16": 2, "int8": 1}


@dataclass(frozen=True)
class MemoryTier:
    """One level of the memory/storage hierarchy.

    Attributes
    ----------
    name: tier label (hbm/dram/nvram/pfs).
    capacity: bytes available per node (PFS: per job, effectively huge).
    bandwidth: sustained bytes/s per node.
    latency: access latency in seconds (first byte).
    energy_per_byte: pJ moved per byte read or written.
    """

    name: str
    capacity: float
    bandwidth: float
    latency: float
    energy_per_byte: float  # picojoules

    def access_time(self, nbytes: float) -> float:
        """Latency + transfer time for ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.latency + nbytes / self.bandwidth

    def access_energy(self, nbytes: float) -> float:
        """Joules to move ``nbytes`` through this tier."""
        return nbytes * self.energy_per_byte * 1e-12


@dataclass(frozen=True)
class AcceleratorSpec:
    """Compute device: peak throughput per precision + on-device memory.

    ``peak_flops`` maps precision name -> FLOP/s.  ``efficiency`` is the
    fraction of peak achievable on large GEMMs (real kernels never hit
    100%); bandwidth-bound ops are limited by ``mem_bandwidth`` instead —
    the roofline model in :mod:`repro.hpc.perfmodel` combines the two.
    """

    name: str
    peak_flops: Dict[str, float]
    mem_bandwidth: float  # bytes/s to the closest tier (HBM/GDDR)
    mem_capacity: float  # bytes of device memory
    efficiency: float = 0.75
    energy_per_flop: Dict[str, float] = field(
        default_factory=lambda: {"fp64": 20.0, "fp32": 10.0, "fp16": 5.0, "bf16": 5.0, "int8": 2.5}
    )  # pJ per op

    def effective_flops(self, precision: str) -> float:
        try:
            return self.peak_flops[precision] * self.efficiency
        except KeyError:
            raise ValueError(
                f"{self.name} has no {precision!r} datapath; supports {sorted(self.peak_flops)}"
            )

    def supports(self, precision: str) -> bool:
        return precision in self.peak_flops


@dataclass(frozen=True)
class NodeSpec:
    """A compute node: accelerator + memory tier stack.

    ``tiers`` is ordered fastest-first; data placement experiments walk it.
    """

    name: str
    accelerator: AcceleratorSpec
    tiers: Tuple[MemoryTier, ...]
    nic_bandwidth: float = 12.5 * GBPS  # node injection bandwidth
    nic_latency: float = 1.5e-6
    idle_power: float = 200.0  # watts, for the energy model

    def tier(self, name: str) -> MemoryTier:
        for t in self.tiers:
            if t.name == name:
                return t
        raise ValueError(f"node {self.name} has no tier {name!r}; has {[t.name for t in self.tiers]}")

    def has_tier(self, name: str) -> bool:
        return any(t.name == name for t in self.tiers)


# ----------------------------------------------------------------------
# Catalog
# ----------------------------------------------------------------------
def _hbm(cap=16 * GB, bw=700 * GBPS) -> MemoryTier:
    return MemoryTier("hbm", cap, bw, 1e-7, 7.0)


def _dram(cap=256 * GB, bw=90 * GBPS) -> MemoryTier:
    return MemoryTier("dram", cap, bw, 1e-7, 20.0)


def _nvram(cap=1.6 * TB, bw=6 * GBPS) -> MemoryTier:
    return MemoryTier("nvram", cap, bw, 1e-5, 100.0)


def _pfs(bw=2 * GBPS) -> MemoryTier:
    # Per-node share of a parallel filesystem under full-machine load.
    return MemoryTier("pfs", 1e18, bw, 5e-3, 500.0)


#: 2012-era GPU node (Titan-like): strong fp64, no fast half precision.
TITAN_ERA = NodeSpec(
    name="titan_era",
    accelerator=AcceleratorSpec(
        name="k20x_like",
        peak_flops={"fp64": 1.3 * TFLOPS, "fp32": 3.9 * TFLOPS},
        mem_bandwidth=250 * GBPS,
        mem_capacity=6 * GB,
    ),
    tiers=(
        MemoryTier("hbm", 6 * GB, 250 * GBPS, 1e-7, 10.0),  # GDDR5, modelled as the near tier
        _dram(32 * GB, 50 * GBPS),
        _pfs(1 * GBPS),
    ),
    nic_bandwidth=8 * GBPS,
    nic_latency=2.5e-6,
)

#: 2017-era GPU node (Summit-like): HBM2 + NVLink + fp16 tensor units + NVRAM.
SUMMIT_ERA = NodeSpec(
    name="summit_era",
    accelerator=AcceleratorSpec(
        name="v100_like",
        peak_flops={"fp64": 7.8 * TFLOPS, "fp32": 15.7 * TFLOPS, "fp16": 125 * TFLOPS, "bf16": 125 * TFLOPS},
        mem_bandwidth=900 * GBPS,
        mem_capacity=16 * GB,
    ),
    tiers=(_hbm(16 * GB, 900 * GBPS), _dram(512 * GB, 135 * GBPS), _nvram(1.6 * TB, 6 * GBPS), _pfs(2.5 * GBPS)),
    nic_bandwidth=25 * GBPS,
    nic_latency=1.0e-6,
)

#: Many-core CPU node (Theta/KNL-like): MCDRAM as the near tier.
KNL_ERA = NodeSpec(
    name="knl_era",
    accelerator=AcceleratorSpec(
        name="knl_like",
        peak_flops={"fp64": 2.6 * TFLOPS, "fp32": 5.2 * TFLOPS},
        mem_bandwidth=450 * GBPS,
        mem_capacity=16 * GB,
        efficiency=0.6,
    ),
    tiers=(MemoryTier("hbm", 16 * GB, 450 * GBPS, 1.5e-7, 12.0), _dram(192 * GB, 90 * GBPS), _pfs(1.5 * GBPS)),
    nic_bandwidth=12.5 * GBPS,
    nic_latency=1.5e-6,
)

#: The keynote's wishlist node: fat low-precision units, HBM at the
#: arithmetic, big node-local NVRAM, high-bandwidth fabric.
FUTURE_DL = NodeSpec(
    name="future_dl",
    accelerator=AcceleratorSpec(
        name="dl_asic",
        peak_flops={
            "fp64": 10 * TFLOPS,
            "fp32": 40 * TFLOPS,
            "fp16": 320 * TFLOPS,
            "bf16": 320 * TFLOPS,
            "int8": 640 * TFLOPS,
        },
        mem_bandwidth=2000 * GBPS,
        mem_capacity=64 * GB,
        efficiency=0.8,
        energy_per_flop={"fp64": 15.0, "fp32": 6.0, "fp16": 2.0, "bf16": 2.0, "int8": 0.8},
    ),
    tiers=(_hbm(64 * GB, 2000 * GBPS), _dram(512 * GB, 200 * GBPS), _nvram(4 * TB, 12 * GBPS), _pfs(5 * GBPS)),
    nic_bandwidth=100 * GBPS,
    nic_latency=0.8e-6,
)

MACHINES: Dict[str, NodeSpec] = {
    "titan_era": TITAN_ERA,
    "summit_era": SUMMIT_ERA,
    "knl_era": KNL_ERA,
    "future_dl": FUTURE_DL,
}


def get_machine(name: str) -> NodeSpec:
    try:
        return MACHINES[name]
    except KeyError:
        raise ValueError(f"unknown machine {name!r}; choose from {sorted(MACHINES)}")
