"""Interconnect topologies.

Each topology answers two questions the communication model needs:
*how many hops* between two ranks, and *how much bisection bandwidth* the
fabric offers relative to full bisection.  Four classic families are
implemented: ring, 2-D/3-D torus, fat-tree, and dragonfly.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np


class Topology:
    """Base class.  ``n_nodes`` is the endpoint count."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.n_nodes = n_nodes

    def hops(self, src: int, dst: int) -> int:
        """Switch-to-switch hops on the shortest path (0 for src == dst)."""
        raise NotImplementedError

    def diameter(self) -> int:
        """Maximum hops over all pairs (closed-form per topology)."""
        raise NotImplementedError

    def bisection_factor(self) -> float:
        """Bisection bandwidth relative to a full (non-blocking) network,
        in units of (links crossing the cut) / (n_nodes / 2)."""
        raise NotImplementedError

    def average_hops(self, sample: int = 0, seed: int = 0) -> float:
        """Mean hop count over all (or ``sample`` random) pairs."""
        n = self.n_nodes
        if n == 1:
            return 0.0
        if sample and n * n > sample:
            rng = np.random.default_rng(seed)
            src = rng.integers(0, n, size=sample)
            dst = rng.integers(0, n, size=sample)
            pairs = [(int(s), int(d)) for s, d in zip(src, dst) if s != d]
        else:
            pairs = [(s, d) for s in range(n) for d in range(n) if s != d]
        return float(np.mean([self.hops(s, d) for s, d in pairs]))

    def _check(self, *ranks: int) -> None:
        for r in ranks:
            if not 0 <= r < self.n_nodes:
                raise ValueError(f"rank {r} out of range [0, {self.n_nodes})")


class Ring(Topology):
    """1-D ring: cheap, low bisection, hop count grows linearly."""

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        d = abs(src - dst)
        return min(d, self.n_nodes - d)

    def diameter(self) -> int:
        return self.n_nodes // 2

    def bisection_factor(self) -> float:
        # Two links cross any balanced cut.
        return 2.0 / max(self.n_nodes / 2.0, 1.0)


class Torus(Topology):
    """k-ary n-dimensional torus (Titan was a 3-D torus)."""

    def __init__(self, dims: Tuple[int, ...]) -> None:
        dims = tuple(int(d) for d in dims)
        if any(d < 1 for d in dims):
            raise ValueError("all torus dimensions must be >= 1")
        super().__init__(int(np.prod(dims)))
        self.dims = dims

    def _coords(self, rank: int) -> Tuple[int, ...]:
        coords = []
        for d in reversed(self.dims):
            coords.append(rank % d)
            rank //= d
        return tuple(reversed(coords))

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        a, b = self._coords(src), self._coords(dst)
        total = 0
        for x, y, d in zip(a, b, self.dims):
            delta = abs(x - y)
            total += min(delta, d - delta)
        return total

    def diameter(self) -> int:
        return sum(d // 2 for d in self.dims)

    def bisection_factor(self) -> float:
        # Cutting the longest dimension in half: 2 * (product of the other
        # dims) links cross the cut.
        longest = max(self.dims)
        others = self.n_nodes // longest
        crossing = 2 * others
        return crossing / max(self.n_nodes / 2.0, 1.0)


class FatTree(Topology):
    """Folded-Clos / fat-tree with configurable taper.

    ``radix`` leaves per edge switch; ``taper`` is the up/down bandwidth
    ratio (1.0 = full bisection, 0.5 = 2:1 taper...).  Hop counts: 2 within
    an edge switch, 4 within a pod (approximated as sqrt grouping), 6 at
    the core.
    """

    def __init__(self, n_nodes: int, radix: int = 16, taper: float = 1.0) -> None:
        super().__init__(n_nodes)
        if radix < 2:
            raise ValueError("radix must be >= 2")
        if not 0 < taper <= 1.0:
            raise ValueError("taper must be in (0, 1]")
        self.radix = radix
        self.taper = taper
        self.pod_size = radix * radix // 2 if n_nodes > radix else n_nodes

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        if src == dst:
            return 0
        if src // self.radix == dst // self.radix:
            return 2  # up to the edge switch and down
        if src // self.pod_size == dst // self.pod_size:
            return 4  # through an aggregation switch
        return 6  # through the core

    def diameter(self) -> int:
        if self.n_nodes <= self.radix:
            return 2
        if self.n_nodes <= self.pod_size:
            return 4
        return 6

    def bisection_factor(self) -> float:
        return self.taper


class Dragonfly(Topology):
    """Dragonfly: all-to-all groups of all-to-all routers (Aries/Slingshot).

    ``group_size`` endpoints per group.  Minimal routing: 1 hop within a
    router's peers, up to 3 (local-global-local) across groups; we model
    intra-group as 2 hops and inter-group as 4 (including injection).
    """

    def __init__(self, n_nodes: int, group_size: int = 32, global_taper: float = 0.5) -> None:
        super().__init__(n_nodes)
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        if not 0 < global_taper <= 1.0:
            raise ValueError("global_taper must be in (0, 1]")
        self.group_size = group_size
        self.global_taper = global_taper

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        if src == dst:
            return 0
        if src // self.group_size == dst // self.group_size:
            return 2
        return 4

    def diameter(self) -> int:
        return 2 if self.n_nodes <= self.group_size else 4

    def bisection_factor(self) -> float:
        return self.global_taper


TOPOLOGIES = {
    "ring": lambda n: Ring(n),
    "torus3d": lambda n: Torus(_torus_dims(n, 3)),
    "fat_tree": lambda n: FatTree(n),
    "dragonfly": lambda n: Dragonfly(n),
}


def _torus_dims(n: int, ndim: int) -> Tuple[int, ...]:
    """Near-cubic factorization of ``n`` into ``ndim`` dimensions."""
    dims: List[int] = []
    remaining = n
    for i in range(ndim, 1, -1):
        d = max(1, round(remaining ** (1.0 / i)))
        # Adjust to a divisor of remaining.
        while remaining % d != 0:
            d -= 1
        dims.append(d)
        remaining //= d
    dims.append(remaining)
    return tuple(dims)


def make_topology(kind: str, n_nodes: int) -> Topology:
    try:
        return TOPOLOGIES[kind](n_nodes)
    except KeyError:
        raise ValueError(f"unknown topology {kind!r}; choose from {sorted(TOPOLOGIES)}")
