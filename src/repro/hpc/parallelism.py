"""Parallel training plans and their time/memory models.

The keynote's central architectural claim (C10/C11): DNNs don't strong-
scale with data parallelism alone, so large machines must combine
**data**, **model**, and **search** parallelism.  This module models the
first two (search parallelism is :mod:`repro.hpo.scheduler`):

* :class:`DataParallel` — replicate the model, shard the batch, allreduce
  gradients every step.
* :class:`ModelParallel` — shard layers across nodes; activations cross
  the fabric at every layer boundary, twice per step.
* :class:`PipelineParallel` — stage-partitioned model with micro-batches
  (bubble overhead included).
* :class:`HybridParallel` — model-parallel groups, data parallelism across
  groups: the configuration the keynote argues future fabrics must serve.

Every plan exposes ``step_time``, ``memory_per_node``, ``feasible`` and
``comm_bytes_per_step`` so experiments can decompose where time goes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from .cluster import SimCluster
from .collectives import ALLREDUCE_ALGORITHMS, allgather_ring, allreduce_ring
from .hardware import DTYPE_BYTES
from .perfmodel import ModelProfile, compute_step_time


class ParallelPlan:
    """Base class for parallel execution plans."""

    name = "base"

    def step_time(self, profile: ModelProfile, cluster: SimCluster, precision: str = "fp32") -> float:
        """Wall-clock seconds for one global training step."""
        raise NotImplementedError

    def memory_per_node(self, profile: ModelProfile, precision: str = "fp32") -> float:
        """Training-state bytes each node must hold."""
        raise NotImplementedError

    def feasible(self, profile: ModelProfile, cluster: SimCluster, precision: str = "fp32") -> bool:
        """Does the per-node footprint fit the accelerator memory?"""
        return self.memory_per_node(profile, precision) <= cluster.node.accelerator.mem_capacity

    def comm_bytes_per_step(self, profile: ModelProfile, precision: str = "fp32") -> float:
        """Fabric bytes injected per node per step."""
        raise NotImplementedError


@dataclass
class SingleNode(ParallelPlan):
    """Reference: the whole model and batch on one node."""

    name: str = "single"

    def step_time(self, profile: ModelProfile, cluster: SimCluster, precision: str = "fp32") -> float:
        return compute_step_time(profile, cluster.node, precision)

    def memory_per_node(self, profile: ModelProfile, precision: str = "fp32") -> float:
        return profile.training_memory_bytes(precision)

    def comm_bytes_per_step(self, profile: ModelProfile, precision: str = "fp32") -> float:
        return 0.0


@dataclass
class DataParallel(ParallelPlan):
    """Synchronous data parallelism over ``n_nodes`` replicas.

    ``strong_scaling=True`` keeps the *global* batch fixed (local batch
    shrinks with node count — the regime where scaling dies); False is
    weak scaling (fixed local batch).
    """

    n_nodes: int
    allreduce: str = "ring"
    strong_scaling: bool = True
    overlap_fraction: float = 0.0  # fraction of allreduce hidden behind backward
    name: str = "data_parallel"

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.allreduce not in ALLREDUCE_ALGORITHMS:
            raise ValueError(f"unknown allreduce {self.allreduce!r}")
        if not 0.0 <= self.overlap_fraction <= 1.0:
            raise ValueError("overlap_fraction must be in [0, 1]")

    def _local_profile(self, profile: ModelProfile) -> ModelProfile:
        if not self.strong_scaling:
            return profile
        local_batch = max(1, profile.batch_size // self.n_nodes)
        return profile.with_batch_size(local_batch)

    def step_time(self, profile: ModelProfile, cluster: SimCluster, precision: str = "fp32") -> float:
        local = self._local_profile(profile)
        compute = compute_step_time(local, cluster.node, precision)
        grad_bytes = profile.gradient_bytes(precision)
        comm = ALLREDUCE_ALGORITHMS[self.allreduce](cluster.network, self.n_nodes, grad_bytes)
        return compute + (1.0 - self.overlap_fraction) * comm

    def memory_per_node(self, profile: ModelProfile, precision: str = "fp32") -> float:
        return self._local_profile(profile).training_memory_bytes(precision)

    def comm_bytes_per_step(self, profile: ModelProfile, precision: str = "fp32") -> float:
        g = profile.gradient_bytes(precision)
        if self.n_nodes == 1:
            return 0.0
        return 2.0 * g * (self.n_nodes - 1) / self.n_nodes  # ring volume per node


@dataclass
class ModelParallel(ParallelPlan):
    """Layer-sharded (tensor) model parallelism over ``n_nodes``.

    Weights, gradients and optimizer state divide by n; every layer
    boundary moves the full activation tensor across the fabric (allgather
    of partial outputs), forward and backward.  ``shard_efficiency``
    captures the GEMM-efficiency loss of narrow shards.
    """

    n_nodes: int
    shard_efficiency: float = 0.9
    name: str = "model_parallel"

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if not 0.0 < self.shard_efficiency <= 1.0:
            raise ValueError("shard_efficiency must be in (0, 1]")

    def step_time(self, profile: ModelProfile, cluster: SimCluster, precision: str = "fp32") -> float:
        # Compute divides across shards (imperfectly).
        full = compute_step_time(profile, cluster.node, precision)
        compute = full / (self.n_nodes * self.shard_efficiency ** math.log2(max(self.n_nodes, 2)))
        if self.n_nodes == 1:
            return full
        # Activation exchange at every layer boundary, fwd + bwd.
        elem = DTYPE_BYTES[precision]
        comm = 0.0
        for layer in profile.layers:
            act_bytes = layer.activation_elems * elem
            if act_bytes == 0:
                continue
            per_rank = act_bytes / self.n_nodes
            comm += 2.0 * allgather_ring(cluster.network, self.n_nodes, per_rank)
        return compute + comm

    def memory_per_node(self, profile: ModelProfile, precision: str = "fp32") -> float:
        state = profile.training_memory_bytes(precision) - profile.activation_bytes(precision)
        return state / self.n_nodes + profile.activation_bytes(precision)

    def comm_bytes_per_step(self, profile: ModelProfile, precision: str = "fp32") -> float:
        if self.n_nodes == 1:
            return 0.0
        elem = DTYPE_BYTES[precision]
        total = sum(l.activation_elems for l in profile.layers) * elem
        return 2.0 * total * (self.n_nodes - 1) / self.n_nodes


@dataclass
class PipelineParallel(ParallelPlan):
    """Stage-partitioned pipeline (GPipe-style) with micro-batching.

    ``n_stages`` nodes each hold a contiguous slice of layers; the batch is
    split into ``n_microbatches``; the bubble costs (stages-1) extra
    micro-steps.  Stage boundaries move one activation tensor per
    micro-batch, forward and backward.
    """

    n_stages: int
    n_microbatches: int = 8
    name: str = "pipeline"

    def __post_init__(self) -> None:
        if self.n_stages < 1:
            raise ValueError("n_stages must be >= 1")
        if self.n_microbatches < 1:
            raise ValueError("n_microbatches must be >= 1")

    def step_time(self, profile: ModelProfile, cluster: SimCluster, precision: str = "fp32") -> float:
        if self.n_stages == 1:
            return compute_step_time(profile, cluster.node, precision)
        micro = profile.with_batch_size(max(1, profile.batch_size // self.n_microbatches))
        from .hardware import DTYPE_BYTES as _DB
        from .perfmodel import layer_step_time

        # Per-micro-batch stage compute (no optimizer update here — the
        # update happens once per global step, after the last micro-batch).
        acc = cluster.node.accelerator
        micro_compute = sum(layer_step_time(l, acc, precision) for l in micro.layers)
        stage_compute = micro_compute / self.n_stages
        # Boundary activations: average layer activation of the micro-batch.
        elem = DTYPE_BYTES[precision]
        nonzero = [l.activation_elems for l in micro.layers if l.activation_elems > 0]
        boundary_bytes = (sum(nonzero) / len(nonzero)) * elem if nonzero else 0.0
        hop_time = cluster.network.neighbor_time(boundary_bytes)
        micro_step = stage_compute + 2.0 * hop_time  # fwd + bwd crossing
        n_steps = self.n_microbatches + self.n_stages - 1  # pipeline fill bubble
        # One optimizer update per global step, sharded across stages.
        update_bytes = 7.0 * profile.params * _DB["fp32"] / self.n_stages
        return n_steps * micro_step + update_bytes / cluster.node.accelerator.mem_bandwidth

    def memory_per_node(self, profile: ModelProfile, precision: str = "fp32") -> float:
        state = profile.training_memory_bytes(precision) - profile.activation_bytes(precision)
        # In-flight activations: up to n_stages micro-batches stashed.
        micro_act = profile.activation_bytes(precision) / max(self.n_microbatches, 1)
        return state / self.n_stages + micro_act * self.n_stages

    def comm_bytes_per_step(self, profile: ModelProfile, precision: str = "fp32") -> float:
        if self.n_stages == 1:
            return 0.0
        elem = DTYPE_BYTES[precision]
        nonzero = [l.activation_elems for l in profile.layers if l.activation_elems > 0]
        boundary = (sum(nonzero) / len(nonzero)) * elem / max(self.n_microbatches, 1) if nonzero else 0.0
        return 2.0 * boundary * self.n_microbatches

    @property
    def bubble_fraction(self) -> float:
        """Idle fraction from pipeline fill/drain."""
        return (self.n_stages - 1) / (self.n_microbatches + self.n_stages - 1)


@dataclass
class HybridParallel(ParallelPlan):
    """Model-parallel groups of ``group_size`` nodes, data parallelism
    across ``n_groups`` groups — the keynote's "modest scale groups of
    processors" with a fat intra-group fabric.

    ``intra_bandwidth`` optionally gives the group fabric a different
    (usually higher — NVLink-class) bandwidth than the global fabric.
    """

    group_size: int
    n_groups: int
    allreduce: str = "ring"
    intra_bandwidth: Optional[float] = None
    shard_efficiency: float = 0.9
    name: str = "hybrid"

    def __post_init__(self) -> None:
        if self.group_size < 1 or self.n_groups < 1:
            raise ValueError("group_size and n_groups must be >= 1")
        if self.allreduce not in ALLREDUCE_ALGORITHMS:
            raise ValueError(f"unknown allreduce {self.allreduce!r}")

    @property
    def n_nodes(self) -> int:
        return self.group_size * self.n_groups

    def _intra_cluster(self, cluster: SimCluster) -> SimCluster:
        sub = cluster.subcluster(self.group_size, topology="ring")
        if self.intra_bandwidth is not None:
            sub = sub.with_link_bandwidth(self.intra_bandwidth)
        return sub

    def step_time(self, profile: ModelProfile, cluster: SimCluster, precision: str = "fp32") -> float:
        # Each group runs model parallelism on its local batch shard.
        local_batch = max(1, profile.batch_size // self.n_groups)
        local = profile.with_batch_size(local_batch)
        intra = self._intra_cluster(cluster)
        mp = ModelParallel(self.group_size, shard_efficiency=self.shard_efficiency)
        group_time = mp.step_time(local, intra, precision)
        # Gradient allreduce across groups: each rank owns params/group_size.
        grad_bytes = profile.gradient_bytes(precision) / self.group_size
        comm = ALLREDUCE_ALGORITHMS[self.allreduce](cluster.network, self.n_groups, grad_bytes)
        return group_time + comm

    def memory_per_node(self, profile: ModelProfile, precision: str = "fp32") -> float:
        local = profile.with_batch_size(max(1, profile.batch_size // self.n_groups))
        return ModelParallel(self.group_size).memory_per_node(local, precision)

    def comm_bytes_per_step(self, profile: ModelProfile, precision: str = "fp32") -> float:
        local = profile.with_batch_size(max(1, profile.batch_size // self.n_groups))
        intra = ModelParallel(self.group_size).comm_bytes_per_step(local, precision)
        g = profile.gradient_bytes(precision) / self.group_size
        inter = 0.0 if self.n_groups == 1 else 2.0 * g * (self.n_groups - 1) / self.n_groups
        return intra + inter


def throughput(plan: ParallelPlan, profile: ModelProfile, cluster: SimCluster, precision: str = "fp32") -> float:
    """Samples/second the plan achieves on the global batch."""
    t = plan.step_time(profile, cluster, precision)
    return profile.batch_size / t if t > 0 else float("inf")


def scaling_efficiency(
    plan_small: ParallelPlan,
    plan_big: ParallelPlan,
    profile: ModelProfile,
    cluster_small: SimCluster,
    cluster_big: SimCluster,
    precision: str = "fp32",
    weak: bool = False,
) -> float:
    """Parallel efficiency of scaling from the small to the big plan.

    Strong: ideal is time_small / n_ratio.  Weak: profile scales with nodes.
    """
    n_small = getattr(plan_small, "n_nodes", 1)
    n_big = getattr(plan_big, "n_nodes", 1)
    ratio = n_big / n_small
    if weak:
        big_profile = profile.with_batch_size(int(profile.batch_size * ratio))
        t_small = plan_small.step_time(profile, cluster_small, precision)
        t_big = plan_big.step_time(big_profile, cluster_big, precision)
        return t_small / t_big  # ideal weak scaling: equal times
    t_small = plan_small.step_time(profile, cluster_small, precision)
    t_big = plan_big.step_time(profile, cluster_big, precision)
    return (t_small / ratio) / t_big
