"""Differentiable functional ops built on :class:`repro.nn.tensor.Tensor`.

Everything here is vectorized NumPy: convolutions use an im2col
(``sliding_window_view``) lowering so the inner loop is a single GEMM,
softmax and log-softmax use the log-sum-exp trick, and backward closures
avoid re-computing forward quantities.

Hot-path conventions (see ``repro.perf`` for the measurement side):

* im2col materializes its copy in a (C*K, N*L_out) "kn" layout whose inner
  runs are contiguous in the source image, then feeds one GEMM; the column
  buffer is cached in the closure and reused by backward for the weight
  gradient.
* conv/pool backward scatter through strided slice ``+=`` (index sets from
  a uniform stride never collide), never ``np.add.at``, except for
  overlapping pooling windows where collisions are real.
* ``conv1d``/``conv2d``/``linear_act`` optionally fuse a relu/tanh
  epilogue into the same tape node, applied in place on the GEMM output.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from . import amp as _amp
from .tensor import Tensor, unbroadcast


# Activation epilogues fusable into conv / linear nodes.  Each entry maps
# name -> (in-place forward on the pre-activation buffer,
#          in-place-safe backward factor from the *post*-activation output).
_FUSED_ACTS = {
    "relu": (
        lambda buf: np.maximum(buf, 0.0, out=buf),
        lambda out, g: g * (out > 0),
    ),
    "tanh": (
        lambda buf: np.tanh(buf, out=buf),
        lambda out, g: g * (1.0 - out * out),
    ),
}


def _fused_act(activation: Optional[str]):
    if activation is None:
        return None
    try:
        return _FUSED_ACTS[activation]
    except KeyError:
        raise ValueError(
            f"unsupported fused activation {activation!r}; choose from {sorted(_FUSED_ACTS)} or None"
        )


# Batch sizes repeat every step, so the row-gather index is worth caching
# (read-only: it is shared across every caller with the same n).
_ROW_INDEX: dict = {}


def _row_index(n: int) -> np.ndarray:
    rows = _ROW_INDEX.get(n)
    if rows is None:
        rows = np.arange(n)
        rows.flags.writeable = False
        _ROW_INDEX[n] = rows
    return rows


def _pad_nd(xd: np.ndarray, padding: int, spatial_axes: int) -> np.ndarray:
    """Zero-pad the trailing ``spatial_axes`` axes by ``padding`` on both
    sides.  Hand-rolled (zeros + slice assign) because ``np.pad`` spends
    most of its time in Python bookkeeping for this common case."""
    if padding <= 0:
        return xd
    shape = list(xd.shape)
    sl = [slice(None)] * xd.ndim
    for ax in range(xd.ndim - spatial_axes, xd.ndim):
        shape[ax] += 2 * padding
        sl[ax] = slice(padding, padding + xd.shape[ax])
    buf = np.zeros(tuple(shape), dtype=xd.dtype)
    buf[tuple(sl)] = xd
    return buf


# ----------------------------------------------------------------------
# Elementwise
# ----------------------------------------------------------------------
def exp(x: Tensor) -> Tensor:
    out = np.exp(x.data)

    def backward(g: np.ndarray):
        return (g * out,)

    return x._unary_out(out, backward)


def log(x: Tensor) -> Tensor:
    data = np.log(x.data)
    xd = x.data

    def backward(g: np.ndarray):
        return (g / xd,)

    return x._unary_out(data, backward)


def tanh(x: Tensor) -> Tensor:
    out = np.tanh(x.data)

    def backward(g: np.ndarray):
        return (g * (1.0 - out * out),)

    return x._unary_out(out, backward)


def sigmoid(x: Tensor) -> Tensor:
    # Numerically stable piecewise formulation (expit identity).
    xd = x.data
    out = np.empty_like(xd, dtype=np.result_type(xd.dtype, np.float32))
    pos = xd >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-xd[pos]))
    e = np.exp(xd[~pos])
    out[~pos] = e / (1.0 + e)
    out = out.astype(xd.dtype, copy=False)

    def backward(g: np.ndarray):
        return (g * out * (1.0 - out),)

    return x._unary_out(out, backward)


def relu(x: Tensor) -> Tensor:
    mask = x.data > 0
    data = np.where(mask, x.data, 0.0).astype(x.data.dtype, copy=False)

    def backward(g: np.ndarray):
        return (g * mask,)

    return x._unary_out(data, backward)


def leaky_relu(x: Tensor, alpha: float = 0.01) -> Tensor:
    mask = x.data > 0
    data = np.where(mask, x.data, alpha * x.data).astype(x.data.dtype, copy=False)

    def backward(g: np.ndarray):
        return (g * np.where(mask, 1.0, alpha).astype(g.dtype),)

    return x._unary_out(data, backward)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    mask = x.data > 0
    expm1 = np.expm1(np.minimum(x.data, 0.0))
    data = np.where(mask, x.data, alpha * expm1).astype(x.data.dtype, copy=False)

    def backward(g: np.ndarray):
        return (g * np.where(mask, 1.0, alpha * (expm1 + 1.0)).astype(g.dtype),)

    return x._unary_out(data, backward)


def gelu(x: Tensor) -> Tensor:
    """Tanh approximation of GELU (Hendrycks & Gimpel)."""
    xd = x.data
    # Python float, not np.sqrt's float64 scalar: NumPy 2 treats np.float64
    # scalars as strong types, so the latter silently upcasts float32
    # activations to float64 for the whole op (round-tripped back only at
    # the final astype).
    c = float(np.sqrt(2.0 / np.pi))
    inner = c * (xd + 0.044715 * xd ** 3)
    t = np.tanh(inner)
    data = 0.5 * xd * (1.0 + t)

    def backward(g: np.ndarray):
        dinner = c * (1.0 + 3 * 0.044715 * xd ** 2)
        dt = (1.0 - t * t) * dinner
        return (g * (0.5 * (1.0 + t) + 0.5 * xd * dt),)

    return x._unary_out(data.astype(xd.dtype, copy=False), backward)


def softplus(x: Tensor) -> Tensor:
    xd = x.data
    data = np.logaddexp(0.0, xd).astype(xd.dtype, copy=False)

    def backward(g: np.ndarray):
        s = np.empty_like(xd)
        pos = xd >= 0
        s[pos] = 1.0 / (1.0 + np.exp(-xd[pos]))
        e = np.exp(xd[~pos])
        s[~pos] = e / (1.0 + e)
        return (g * s,)

    return x._unary_out(data, backward)


def abs(x: Tensor) -> Tensor:  # noqa: A001 - mirrors np.abs
    sign = np.sign(x.data)
    data = np.abs(x.data)

    def backward(g: np.ndarray):
        return (g * sign,)

    return x._unary_out(data, backward)


def clip(x: Tensor, lo: float, hi: float) -> Tensor:
    mask = (x.data >= lo) & (x.data <= hi)
    data = np.clip(x.data, lo, hi)

    def backward(g: np.ndarray):
        return (g * mask,)

    return x._unary_out(data, backward)


def where(cond: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable select; ``cond`` is a boolean array (non-diff)."""
    cond = np.asarray(cond, dtype=bool)
    data = np.where(cond, a.data, b.data)

    def backward(g: np.ndarray):
        return (
            unbroadcast(np.where(cond, g, 0.0), a.shape),
            unbroadcast(np.where(cond, 0.0, g), b.shape),
        )

    req = a.requires_grad or b.requires_grad
    return Tensor(data, requires_grad=req, parents=(a, b), backward_fn=backward)


# ----------------------------------------------------------------------
# Softmax family
# ----------------------------------------------------------------------
def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    xd = x.data
    m = xd.max(axis=axis, keepdims=True)
    shifted = xd - m
    s = np.exp(shifted).sum(axis=axis, keepdims=True)
    out_keep = m + np.log(s)
    data = out_keep if keepdims else np.squeeze(out_keep, axis=axis)
    softmax_vals = np.exp(shifted) / s

    def backward(g: np.ndarray):
        g_exp = g if keepdims else np.expand_dims(g, axis)
        return (g_exp * softmax_vals,)

    return x._unary_out(data, backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    xd = x.data
    shifted = xd - xd.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray):
        dot = (g * out).sum(axis=axis, keepdims=True)
        return (out * (g - dot),)

    return x._unary_out(out, backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    xd = x.data
    shifted = xd - xd.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - lse
    sm = np.exp(data)

    def backward(g: np.ndarray):
        return (g - sm * g.sum(axis=axis, keepdims=True),)

    return x._unary_out(data, backward)


# ----------------------------------------------------------------------
# Linear algebra helpers
# ----------------------------------------------------------------------
def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """``x @ weight + bias`` with weight of shape (in, out)."""
    out = x @ weight
    if bias is not None:
        out = out + bias
    return out


def linear_act(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    activation: Optional[str] = None,
) -> Tensor:
    """Fused ``act(x @ weight + bias)`` as a single tape node.

    The bias add and the relu/tanh epilogue run in place on the GEMM
    output, and backward applies the activation derivative to the incoming
    gradient before the two grad GEMMs — one node where the unfused
    composition records three.  Falls back to the unfused ops for inputs
    that are not 2-D (the Dense hot path is (N, F)).
    """
    act = _fused_act(activation)
    if x.data.ndim != 2:
        out = linear(x, weight, bias)
        if activation == "relu":
            return relu(out)
        if activation == "tanh":
            return tanh(out)
        return out
    ac = _amp.active()
    if ac is not None:
        return _linear_act_amp(x, weight, bias, act, ac)

    xd, wd = x.data, weight.data
    out = xd @ wd  # (N, units)
    if bias is not None:
        out += bias.data
    if act is not None:
        act[0](out)

    def backward(g: np.ndarray):
        if act is not None:
            g = act[1](out, g)
        grad_x = g @ wd.T
        grad_w = xd.T @ g
        if bias is None:
            return (grad_x, grad_w, None)
        # g is (N, units) here; a 1-D bias reduces over the batch axis
        # directly, skipping the generic unbroadcast machinery.
        grad_b = g.sum(axis=0) if bias.data.ndim == 1 else unbroadcast(g, bias.shape)
        return (grad_x, grad_w, grad_b)

    parents = (x, weight) if bias is None else (x, weight, bias)
    req = any(p.requires_grad for p in parents)
    return Tensor(out, requires_grad=req, parents=parents, backward_fn=backward)


def _linear_act_amp(x: Tensor, weight: Tensor, bias, act, ac) -> Tensor:
    """Narrow-storage ``linear_act``: inputs and weights are snapped to the
    active plan's storage grid, the GEMM accumulates in fp32, and the
    output is stored narrow.  Backward mirrors real mixed-precision
    hardware: activation gradients return narrow, weight/bias gradients
    return fp32 (master precision) for the optimizer.
    """
    xd = ac.cast_in(x.data)  # narrow-grid values, fp32 compute layout
    wd = ac.cast_in(weight.data)
    out = xd @ wd  # fp32 accumulate
    if bias is not None:
        out += ac.to_compute(bias.data)
    if act is not None:
        act[0](out)
    out = ac.snap_out(out)  # narrow storage (in place for bf16)

    def backward(g: np.ndarray):
        g = ac.to_compute(g)
        if act is not None:
            g = act[1](ac.to_compute(out), g)
        grad_x = ac.snap_out(g @ wd.T)
        grad_w = xd.T @ g  # fp32 — applied to fp32 master weights
        if bias is None:
            return (grad_x, grad_w, None)
        grad_b = g.sum(axis=0) if bias.data.ndim == 1 else unbroadcast(g, bias.shape)
        return (grad_x, grad_w, grad_b)

    parents = (x, weight) if bias is None else (x, weight, bias)
    req = any(p.requires_grad for p in parents)
    return Tensor(out, requires_grad=req, parents=parents, backward_fn=backward)


def softmax_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Fused softmax + cross-entropy as one tape node with the stable
    ``(p - y) / n`` backward.

    ``labels`` may be integer class ids (N,) or one-hot / soft labels
    (N, C).  Equivalent to ``-mean(log_softmax(logits)[y])`` but skips the
    intermediate log-prob node and the fancy-index gather node whose
    backward is an ``np.add.at`` scatter.
    """
    labels = np.asarray(labels)
    zd = logits.data
    ac = _amp.active()
    if ac is not None and zd.dtype != np.float32:
        # Loss math runs in fp32 under autocast (softmax of fp16 logits
        # both underflows and crawls); the (p - y)/n gradient returns fp32
        # and the upstream fused kernels re-narrow it on entry.
        zd = zd.astype(np.float32)
    if zd.ndim != 2:
        raise ValueError(f"softmax_cross_entropy expects (N, C) logits, got {zd.shape}")
    n = zd.shape[0]
    shifted = zd - zd.max(axis=1, keepdims=True)
    if labels.ndim == 1:
        idx = labels.astype(np.int64)
        rows = _row_index(n)
        picked = shifted[rows, idx]  # (N,) gather before exp clobbers it
        np.exp(shifted, out=shifted)
        denom = shifted.sum(axis=1, keepdims=True)
        p = shifted
        p /= denom  # softmax, saved for backward
        # -mean(logp[y]) = (sum(log denom) - sum(shifted[y])) / n, all
        # pre-exp quantities, so no log-of-underflowed-softmax
        # instability.  denom is dead after the divide, so log lands in
        # it; .sum() skips the np.mean wrapper's per-call overhead.
        np.log(denom, out=denom)
        loss = float((denom.sum() - picked.sum()) / n)
    else:
        soft = labels.astype(zd.dtype, copy=False)
        denom = np.exp(shifted).sum(axis=1, keepdims=True)
        logp = shifted
        logp -= np.log(denom)
        loss = -float(np.sum(soft * logp)) / n
        p = np.exp(logp)  # saved for backward

    def backward(g: np.ndarray):
        # d loss / d z = (p - y) / n, computed in place on the saved
        # softmax buffer (this node is the graph root in training loops,
        # so the buffer is not referenced anywhere else afterwards).
        if labels.ndim == 1:
            p[rows, idx] -= 1.0
        else:
            # General soft labels: d(-sum(y*logp)/n)/dz = (p*sum_c(y) - y)/n;
            # the row sums collapse to 1 for proper one-hot/soft targets.
            np.multiply(p, soft.sum(axis=1, keepdims=True), out=p)
            np.subtract(p, soft, out=p)
        scale = np.asarray(g).reshape(()) / n
        np.multiply(p, scale, out=p)
        return (p,)

    return Tensor(
        np.asarray(loss, dtype=zd.dtype),
        requires_grad=logits.requires_grad,
        parents=(logits,),
        backward_fn=backward,
    )


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: scales at train time so eval is identity."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    keep = 1.0 - p
    dt = x.data.dtype
    # Draw uniforms directly in the input dtype (float32 inputs never touch
    # float64), then overwrite the same buffer with the scaled 0/(1/keep)
    # mask — one allocation total, reused again by backward.
    if dt == np.float64 or dt == np.float32:
        mask = rng.random(x.shape, dtype=dt)
    else:
        mask = rng.random(x.shape).astype(dt)
    kept = mask < keep
    np.multiply(kept, dt.type(1.0 / keep), out=mask)
    data = x.data * mask

    def backward(g: np.ndarray):
        return (g * mask,)

    return x._unary_out(data, backward)


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup: out[i] = weight[indices[i]]."""
    indices = np.asarray(indices)
    data = weight.data[indices]
    vocab, dim = weight.shape

    def backward(g: np.ndarray):
        grad = np.zeros((vocab, dim), dtype=g.dtype)
        np.add.at(grad, indices.reshape(-1), g.reshape(-1, dim))
        return (grad,)

    return weight._unary_out(data, backward)


# ----------------------------------------------------------------------
# 1-D convolution via im2col (the CANDLE NT3 workload is Conv1D-heavy)
# ----------------------------------------------------------------------
def _im2col_1d(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """(N, C, L) -> (C*kernel, N*L_out) patch matrix ("kn" layout).

    The windowed view stays zero-copy until the reshape at the GEMM
    boundary; putting (C, K) on the rows keeps each copied run contiguous
    along L in the source, which is what makes the copy fast.
    """
    n, c, length = x.shape
    l_out = (length - kernel) // stride + 1
    # (N, C, L_out_full, K) view; subsample for stride, then move (C, K)
    # to the front.  Only the final reshape copies.
    win = sliding_window_view(x, kernel, axis=2)
    if stride > 1:
        win = win[:, :, ::stride]
    return win.transpose(1, 3, 0, 2).reshape(c * kernel, n * l_out)


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
    activation: Optional[str] = None,
) -> Tensor:
    """1-D convolution, optionally fused with a relu/tanh epilogue.

    Shapes: x (N, C_in, L), weight (C_out, C_in, K), bias (C_out,).
    Returns (N, C_out, L_out) with L_out = (L + 2*padding - K)//stride + 1.
    """
    act = _fused_act(activation)
    ac = _amp.active()
    xd_src = x.data if ac is None else ac.cast_in(x.data)
    wd_src = weight.data if ac is None else ac.cast_in(weight.data)
    xd_pad = _pad_nd(xd_src, padding, 1)
    n, c_in, length = xd_pad.shape
    c_out, c_in_w, k = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"conv1d channel mismatch: input {c_in} vs weight {c_in_w}")
    l_out = (length - k) // stride + 1
    if l_out <= 0:
        raise ValueError(f"conv1d output length {l_out} <= 0 (L={length}, K={k})")

    cols = _im2col_1d(xd_pad, k, stride)  # (C_in*K, N*L_out), cached for backward
    w2 = wd_src.reshape(c_out, c_in * k)
    out2d = w2 @ cols  # (C_out, N*L_out) — one GEMM (fp32 accumulate under amp)
    if bias is not None:
        out2d += bias.data[:, None] if ac is None else ac.to_compute(bias.data)[:, None]
    if act is not None:
        act[0](out2d)
    if ac is not None:
        out2d = ac.snap_out(out2d)  # narrow storage
    out = out2d.reshape(c_out, n, l_out).transpose(1, 0, 2)  # view

    x_shape = x.shape

    def backward(g: np.ndarray):
        if ac is not None:
            g = ac.to_compute(g)
        if act is not None:
            g = act[1](out if ac is None else ac.to_compute(out), g)
        g2d = g.transpose(1, 0, 2).reshape(c_out, n * l_out)  # copy once
        grad_w = (g2d @ cols.T).reshape(c_out, c_in, k)
        grad_cols = (w2.T @ g2d).reshape(c_in, k, n, l_out)
        grad_x_pad = np.zeros((n, c_in, length), dtype=g.dtype)
        # One strided slice += per kernel tap: within a tap the target
        # indices kk + stride*[0, l_out) are distinct, so no np.add.at.
        span = (l_out - 1) * stride + 1
        for kk in range(k):
            grad_x_pad[:, :, kk : kk + span : stride] += grad_cols[:, kk].transpose(1, 0, 2)
        grad_x = grad_x_pad[:, :, padding : length - padding] if padding > 0 else grad_x_pad
        grad_b = g.sum(axis=(0, 2)) if bias is not None else None
        if ac is not None:
            grad_x = ac.snap(grad_x)  # activation grads narrow; w/b stay fp32
        return (grad_x.reshape(x_shape), grad_w, grad_b)

    parents = (x, weight) if bias is None else (x, weight, bias)
    req = any(p.requires_grad for p in parents)
    return Tensor(out, requires_grad=req, parents=parents, backward_fn=backward)


def maxpool1d(x: Tensor, pool: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over the last axis of (N, C, L)."""
    stride = stride or pool
    xd = x.data
    n, c, length = xd.shape
    l_out = (length - pool) // stride + 1
    s_n, s_c, s_l = xd.strides
    windows = np.lib.stride_tricks.as_strided(
        xd,
        shape=(n, c, l_out, pool),
        strides=(s_n, s_c, s_l * stride, s_l),
        writeable=False,
    )
    out = windows.max(axis=3)
    arg = windows.argmax(axis=3)  # (N, C, L_out)

    def backward(g: np.ndarray):
        # np.zeros (not zeros_like): xd may be a non-contiguous view from
        # an upstream op, and the flat scatter below needs the reshape to
        # be a view, which only a C-contiguous buffer guarantees.
        grad = np.zeros(xd.shape, dtype=xd.dtype)
        pos = arg + np.arange(l_out)[None, None, :] * stride  # absolute index into L
        g2 = grad.reshape(n * c, length)
        rows = np.arange(n * c)[:, None]
        if stride >= pool:
            # Disjoint windows: every (row, pos) target is unique, so a
            # plain fancy-index assignment works — no np.add.at scatter.
            g2[rows, pos.reshape(n * c, l_out)] = g.reshape(n * c, l_out)
        else:
            np.add.at(g2, (rows, pos.reshape(n * c, l_out)), g.reshape(n * c, l_out))
        return (grad,)

    return x._unary_out(out, backward)


def avgpool1d(x: Tensor, pool: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling over the last axis of (N, C, L)."""
    stride = stride or pool
    xd = x.data
    n, c, length = xd.shape
    l_out = (length - pool) // stride + 1
    s_n, s_c, s_l = xd.strides
    windows = np.lib.stride_tricks.as_strided(
        xd,
        shape=(n, c, l_out, pool),
        strides=(s_n, s_c, s_l * stride, s_l),
        writeable=False,
    )
    out = windows.mean(axis=3)

    def backward(g: np.ndarray):
        grad = np.zeros_like(xd)
        share = g / pool
        # Strided slice += per tap — indices within a tap never collide.
        span = (l_out - 1) * stride + 1
        for kk in range(pool):
            grad[:, :, kk : kk + span : stride] += share
        return (grad,)

    return x._unary_out(out, backward)


def global_avgpool1d(x: Tensor) -> Tensor:
    """Mean over the length axis of (N, C, L) -> (N, C)."""
    return x.mean(axis=2)


def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    momentum: float = 0.1,
    eps: float = 1e-5,
    training: bool = True,
    axis: Tuple[int, ...] = (0,),
) -> Tensor:
    """Batch normalization over ``axis`` (the reduction axes).

    For (N, F) inputs use axis=(0,); for (N, C, L) use axis=(0, 2).
    Running stats are updated in place when training.
    """
    xd = x.data
    if training:
        mean = xd.mean(axis=axis, keepdims=True)
        var = xd.var(axis=axis, keepdims=True)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean.squeeze()
        running_var *= 1.0 - momentum
        running_var += momentum * var.squeeze()
    else:
        shape = [1] * xd.ndim
        feat_axes = [i for i in range(xd.ndim) if i not in axis]
        for i, a in enumerate(feat_axes):
            shape[a] = -1 if i == 0 else shape[a]
        # Reshape running stats to broadcast against x.
        bshape = [1] * xd.ndim
        for a in range(xd.ndim):
            if a not in axis:
                bshape[a] = xd.shape[a]
        mean = running_mean.reshape(bshape)
        var = running_var.reshape(bshape)

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (xd - mean) * inv_std

    bshape = [1] * xd.ndim
    for a in range(xd.ndim):
        if a not in axis:
            bshape[a] = xd.shape[a]
    gamma_b = gamma.data.reshape(bshape)
    out = x_hat * gamma_b + beta.data.reshape(bshape)

    m = 1
    for a in axis:
        m *= xd.shape[a]

    def backward(g: np.ndarray):
        grad_beta = g.sum(axis=axis).reshape(beta.shape)
        grad_gamma = (g * x_hat).sum(axis=axis).reshape(gamma.shape)
        if training:
            gxh = g * gamma_b
            grad_x = (
                inv_std
                / m
                * (m * gxh - gxh.sum(axis=axis, keepdims=True) - x_hat * (gxh * x_hat).sum(axis=axis, keepdims=True))
            )
        else:
            grad_x = g * gamma_b * inv_std
        return (grad_x, grad_gamma, grad_beta)

    req = x.requires_grad or gamma.requires_grad or beta.requires_grad
    return Tensor(out, requires_grad=req, parents=(x, gamma, beta), backward_fn=backward)


def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last axis."""
    xd = x.data
    mean = xd.mean(axis=-1, keepdims=True)
    var = xd.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (xd - mean) * inv_std
    out = x_hat * gamma.data + beta.data
    d = xd.shape[-1]

    def backward(g: np.ndarray):
        grad_beta = unbroadcast(g, beta.shape)
        grad_gamma = unbroadcast(g * x_hat, gamma.shape)
        gxh = g * gamma.data
        grad_x = (
            inv_std
            / d
            * (d * gxh - gxh.sum(axis=-1, keepdims=True) - x_hat * (gxh * x_hat).sum(axis=-1, keepdims=True))
        )
        return (grad_x, grad_gamma, grad_beta)

    req = x.requires_grad or gamma.requires_grad or beta.requires_grad
    return Tensor(out, requires_grad=req, parents=(x, gamma, beta), backward_fn=backward)


# ----------------------------------------------------------------------
# 2-D convolution (tumor-imaging workloads) via im2col
# ----------------------------------------------------------------------
def _im2col_2d(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """(N, C, H, W) -> (C*kh*kw, N*H_out*W_out) patch matrix ("kn" layout).

    Same contract as :func:`_im2col_1d`: zero-copy window view, one copy at
    the reshape, rows ordered (C, KH, KW) to match ``weight.reshape``.
    """
    n, c, h, w = x.shape
    h_out = (h - kh) // stride + 1
    w_out = (w - kw) // stride + 1
    win = sliding_window_view(x, (kh, kw), axis=(2, 3))  # (N, C, Ho_f, Wo_f, kh, kw)
    if stride > 1:
        win = win[:, :, ::stride, ::stride]
    return win.transpose(1, 4, 5, 0, 2, 3).reshape(c * kh * kw, n * h_out * w_out)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
    activation: Optional[str] = None,
) -> Tensor:
    """2-D convolution, optionally fused with a relu/tanh epilogue.

    Shapes: x (N, C_in, H, W), weight (C_out, C_in, KH, KW), bias (C_out,).
    Returns (N, C_out, H_out, W_out).
    """
    act = _fused_act(activation)
    ac = _amp.active()
    xd_src = x.data if ac is None else ac.cast_in(x.data)
    wd_src = weight.data if ac is None else ac.cast_in(weight.data)
    xd_pad = _pad_nd(xd_src, padding, 2)
    n, c_in, h, w = xd_pad.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"conv2d channel mismatch: input {c_in} vs weight {c_in_w}")
    h_out = (h - kh) // stride + 1
    w_out = (w - kw) // stride + 1
    if h_out <= 0 or w_out <= 0:
        raise ValueError(f"conv2d output {h_out}x{w_out} <= 0 (input {h}x{w}, kernel {kh}x{kw})")

    cols = _im2col_2d(xd_pad, kh, kw, stride)  # (C*kh*kw, N*Ho*Wo), cached for backward
    w2 = wd_src.reshape(c_out, c_in * kh * kw)
    out2d = w2 @ cols  # (C_out, N*Ho*Wo) — one GEMM (fp32 accumulate under amp)
    if bias is not None:
        out2d += bias.data[:, None] if ac is None else ac.to_compute(bias.data)[:, None]
    if act is not None:
        act[0](out2d)
    if ac is not None:
        out2d = ac.snap_out(out2d)  # narrow storage
    out = out2d.reshape(c_out, n, h_out, w_out).transpose(1, 0, 2, 3)  # view

    x_shape = x.shape

    def backward(g: np.ndarray):
        if ac is not None:
            g = ac.to_compute(g)
        if act is not None:
            g = act[1](out if ac is None else ac.to_compute(out), g)
        g2d = g.transpose(1, 0, 2, 3).reshape(c_out, n * h_out * w_out)  # copy once
        grad_w = (g2d @ cols.T).reshape(c_out, c_in, kh, kw)
        grad_cols = (w2.T @ g2d).reshape(c_in, kh, kw, n, h_out, w_out)
        grad_x_pad = np.zeros((n, c_in, h, w), dtype=g.dtype)
        # One strided slice += per kernel tap; stride-uniform targets
        # within a tap never collide, so no np.add.at scatter.
        h_span = (h_out - 1) * stride + 1
        w_span = (w_out - 1) * stride + 1
        for dh in range(kh):
            for dw in range(kw):
                grad_x_pad[
                    :, :, dh : dh + h_span : stride, dw : dw + w_span : stride
                ] += grad_cols[:, dh, dw].transpose(1, 0, 2, 3)
        if padding > 0:
            grad_x = grad_x_pad[:, :, padding : h - padding, padding : w - padding]
        else:
            grad_x = grad_x_pad
        grad_b = g.sum(axis=(0, 2, 3)) if bias is not None else None
        if ac is not None:
            grad_x = ac.snap(grad_x)  # activation grads narrow; w/b stay fp32
        return (grad_x.reshape(x_shape), grad_w, grad_b)

    parents = (x, weight) if bias is None else (x, weight, bias)
    req = any(p.requires_grad for p in parents)
    return Tensor(out, requires_grad=req, parents=parents, backward_fn=backward)


def maxpool2d(x: Tensor, pool: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over the last two axes of (N, C, H, W)."""
    stride = stride or pool
    xd = x.data
    n, c, h, w = xd.shape
    h_out = (h - pool) // stride + 1
    w_out = (w - pool) // stride + 1
    s_n, s_c, s_h, s_w = xd.strides
    windows = np.lib.stride_tricks.as_strided(
        xd,
        shape=(n, c, h_out, w_out, pool, pool),
        strides=(s_n, s_c, s_h * stride, s_w * stride, s_h, s_w),
        writeable=False,
    )
    flat = windows.reshape(n, c, h_out, w_out, pool * pool)
    out = flat.max(axis=4)
    arg = flat.argmax(axis=4)  # flat index within the window

    def backward(g: np.ndarray):
        # C-contiguous zeros so the flat reshape below is a view (xd may
        # be a non-contiguous transpose from conv2d).
        grad = np.zeros(xd.shape, dtype=xd.dtype)
        dh, dw = np.divmod(arg, pool)
        hh = dh + np.arange(h_out)[None, None, :, None] * stride
        ww = dw + np.arange(w_out)[None, None, None, :] * stride
        # Flatten (H, W) so the scatter is a single 2-D fancy index.
        pos = (hh * w + ww).reshape(n * c, h_out * w_out)
        g2 = grad.reshape(n * c, h * w)
        rows = np.arange(n * c)[:, None]
        if stride >= pool:
            # Disjoint windows: unique targets, plain assignment suffices.
            g2[rows, pos] = g.reshape(n * c, h_out * w_out)
        else:
            np.add.at(g2, (rows, pos), g.reshape(n * c, h_out * w_out))
        return (grad,)

    return x._unary_out(out, backward)


def global_avgpool2d(x: Tensor) -> Tensor:
    """Mean over (H, W) of (N, C, H, W) -> (N, C)."""
    return x.mean(axis=(2, 3))


# ----------------------------------------------------------------------
# Op-level instrumentation (see repro.perf)
# ----------------------------------------------------------------------
# Wrap the public ops so an attached OpProfiler sees every call.  With no
# profiler active the wrapper is one global read + branch.  This runs at
# the end of module init, so layers.py (imported after us) binds the
# instrumented functions.
from ..perf.hooks import instrument as _instrument  # noqa: E402

_INSTRUMENTED_OPS = (
    "relu", "tanh", "sigmoid", "leaky_relu", "elu", "gelu", "softplus",
    "softmax", "log_softmax", "logsumexp",
    "linear", "linear_act", "softmax_cross_entropy",
    "dropout", "embedding", "batch_norm", "layer_norm",
    "conv1d", "conv2d",
    "maxpool1d", "avgpool1d", "maxpool2d",
)
for _name in _INSTRUMENTED_OPS:
    globals()[_name] = _instrument(_name, globals()[_name])
del _name
