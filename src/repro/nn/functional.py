"""Differentiable functional ops built on :class:`repro.nn.tensor.Tensor`.

Everything here is vectorized NumPy: convolutions use an im2col
(stride-tricks) lowering so the inner loop is a single GEMM, softmax and
log-softmax use the log-sum-exp trick, and backward closures avoid
re-computing forward quantities.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor, unbroadcast


# ----------------------------------------------------------------------
# Elementwise
# ----------------------------------------------------------------------
def exp(x: Tensor) -> Tensor:
    out = np.exp(x.data)

    def backward(g: np.ndarray):
        return (g * out,)

    return x._unary_out(out, backward)


def log(x: Tensor) -> Tensor:
    data = np.log(x.data)
    xd = x.data

    def backward(g: np.ndarray):
        return (g / xd,)

    return x._unary_out(data, backward)


def tanh(x: Tensor) -> Tensor:
    out = np.tanh(x.data)

    def backward(g: np.ndarray):
        return (g * (1.0 - out * out),)

    return x._unary_out(out, backward)


def sigmoid(x: Tensor) -> Tensor:
    # Numerically stable piecewise formulation (expit identity).
    xd = x.data
    out = np.empty_like(xd, dtype=np.result_type(xd.dtype, np.float32))
    pos = xd >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-xd[pos]))
    e = np.exp(xd[~pos])
    out[~pos] = e / (1.0 + e)
    out = out.astype(xd.dtype, copy=False)

    def backward(g: np.ndarray):
        return (g * out * (1.0 - out),)

    return x._unary_out(out, backward)


def relu(x: Tensor) -> Tensor:
    mask = x.data > 0
    data = np.where(mask, x.data, 0.0).astype(x.data.dtype, copy=False)

    def backward(g: np.ndarray):
        return (g * mask,)

    return x._unary_out(data, backward)


def leaky_relu(x: Tensor, alpha: float = 0.01) -> Tensor:
    mask = x.data > 0
    data = np.where(mask, x.data, alpha * x.data).astype(x.data.dtype, copy=False)

    def backward(g: np.ndarray):
        return (g * np.where(mask, 1.0, alpha).astype(g.dtype),)

    return x._unary_out(data, backward)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    mask = x.data > 0
    expm1 = np.expm1(np.minimum(x.data, 0.0))
    data = np.where(mask, x.data, alpha * expm1).astype(x.data.dtype, copy=False)

    def backward(g: np.ndarray):
        return (g * np.where(mask, 1.0, alpha * (expm1 + 1.0)).astype(g.dtype),)

    return x._unary_out(data, backward)


def gelu(x: Tensor) -> Tensor:
    """Tanh approximation of GELU (Hendrycks & Gimpel)."""
    xd = x.data
    c = np.sqrt(2.0 / np.pi)
    inner = c * (xd + 0.044715 * xd ** 3)
    t = np.tanh(inner)
    data = 0.5 * xd * (1.0 + t)

    def backward(g: np.ndarray):
        dinner = c * (1.0 + 3 * 0.044715 * xd ** 2)
        dt = (1.0 - t * t) * dinner
        return (g * (0.5 * (1.0 + t) + 0.5 * xd * dt),)

    return x._unary_out(data.astype(xd.dtype, copy=False), backward)


def softplus(x: Tensor) -> Tensor:
    xd = x.data
    data = np.logaddexp(0.0, xd).astype(xd.dtype, copy=False)

    def backward(g: np.ndarray):
        s = np.empty_like(xd)
        pos = xd >= 0
        s[pos] = 1.0 / (1.0 + np.exp(-xd[pos]))
        e = np.exp(xd[~pos])
        s[~pos] = e / (1.0 + e)
        return (g * s,)

    return x._unary_out(data, backward)


def abs(x: Tensor) -> Tensor:  # noqa: A001 - mirrors np.abs
    sign = np.sign(x.data)
    data = np.abs(x.data)

    def backward(g: np.ndarray):
        return (g * sign,)

    return x._unary_out(data, backward)


def clip(x: Tensor, lo: float, hi: float) -> Tensor:
    mask = (x.data >= lo) & (x.data <= hi)
    data = np.clip(x.data, lo, hi)

    def backward(g: np.ndarray):
        return (g * mask,)

    return x._unary_out(data, backward)


def where(cond: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable select; ``cond`` is a boolean array (non-diff)."""
    cond = np.asarray(cond, dtype=bool)
    data = np.where(cond, a.data, b.data)

    def backward(g: np.ndarray):
        return (
            unbroadcast(np.where(cond, g, 0.0), a.shape),
            unbroadcast(np.where(cond, 0.0, g), b.shape),
        )

    req = a.requires_grad or b.requires_grad
    return Tensor(data, requires_grad=req, parents=(a, b), backward_fn=backward)


# ----------------------------------------------------------------------
# Softmax family
# ----------------------------------------------------------------------
def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    xd = x.data
    m = xd.max(axis=axis, keepdims=True)
    shifted = xd - m
    s = np.exp(shifted).sum(axis=axis, keepdims=True)
    out_keep = m + np.log(s)
    data = out_keep if keepdims else np.squeeze(out_keep, axis=axis)
    softmax_vals = np.exp(shifted) / s

    def backward(g: np.ndarray):
        g_exp = g if keepdims else np.expand_dims(g, axis)
        return (g_exp * softmax_vals,)

    return x._unary_out(data, backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    xd = x.data
    shifted = xd - xd.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray):
        dot = (g * out).sum(axis=axis, keepdims=True)
        return (out * (g - dot),)

    return x._unary_out(out, backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    xd = x.data
    shifted = xd - xd.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - lse
    sm = np.exp(data)

    def backward(g: np.ndarray):
        return (g - sm * g.sum(axis=axis, keepdims=True),)

    return x._unary_out(data, backward)


# ----------------------------------------------------------------------
# Linear algebra helpers
# ----------------------------------------------------------------------
def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """``x @ weight + bias`` with weight of shape (in, out)."""
    out = x @ weight
    if bias is not None:
        out = out + bias
    return out


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: scales at train time so eval is identity."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.data.dtype) / keep
    data = x.data * mask

    def backward(g: np.ndarray):
        return (g * mask,)

    return x._unary_out(data, backward)


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup: out[i] = weight[indices[i]]."""
    indices = np.asarray(indices)
    data = weight.data[indices]
    vocab, dim = weight.shape

    def backward(g: np.ndarray):
        grad = np.zeros((vocab, dim), dtype=g.dtype)
        np.add.at(grad, indices.reshape(-1), g.reshape(-1, dim))
        return (grad,)

    return weight._unary_out(data, backward)


# ----------------------------------------------------------------------
# 1-D convolution via im2col (the CANDLE NT3 workload is Conv1D-heavy)
# ----------------------------------------------------------------------
def _im2col_1d(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """(N, C, L) -> (N, L_out, C*kernel) view-based patch matrix."""
    n, c, length = x.shape
    l_out = (length - kernel) // stride + 1
    s_n, s_c, s_l = x.strides
    patches = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, l_out, c, kernel),
        strides=(s_n, s_l * stride, s_c, s_l),
        writeable=False,
    )
    return patches.reshape(n, l_out, c * kernel)


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """1-D convolution.

    Shapes: x (N, C_in, L), weight (C_out, C_in, K), bias (C_out,).
    Returns (N, C_out, L_out) with L_out = (L + 2*padding - K)//stride + 1.
    """
    xd = x.data
    if padding > 0:
        xd_pad = np.pad(xd, ((0, 0), (0, 0), (padding, padding)))
    else:
        xd_pad = xd
    n, c_in, length = xd_pad.shape
    c_out, c_in_w, k = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"conv1d channel mismatch: input {c_in} vs weight {c_in_w}")
    l_out = (length - k) // stride + 1
    if l_out <= 0:
        raise ValueError(f"conv1d output length {l_out} <= 0 (L={length}, K={k})")

    cols = _im2col_1d(xd_pad, k, stride)  # (N, L_out, C_in*K)
    w2 = weight.data.reshape(c_out, c_in * k)  # (C_out, C_in*K)
    out = cols @ w2.T  # (N, L_out, C_out)
    out = out.transpose(0, 2, 1)  # (N, C_out, L_out)
    if bias is not None:
        out = out + bias.data[None, :, None]

    x_shape = x.shape
    cols_saved = cols

    def backward(g: np.ndarray):
        # g: (N, C_out, L_out)
        g_t = g.transpose(0, 2, 1)  # (N, L_out, C_out)
        grad_w = np.tensordot(g_t, cols_saved, axes=([0, 1], [0, 1]))  # (C_out, C_in*K)
        grad_w = grad_w.reshape(c_out, c_in, k)
        grad_cols = g_t @ w2  # (N, L_out, C_in*K)
        grad_cols = grad_cols.reshape(n, l_out, c_in, k)
        grad_x_pad = np.zeros((n, c_in, length), dtype=g.dtype)
        # Scatter-add each kernel tap back (K iterations, vectorized over N, L_out).
        for kk in range(k):
            idx = np.arange(l_out) * stride + kk
            np.add.at(grad_x_pad, (slice(None), slice(None), idx), grad_cols[:, :, :, kk].transpose(0, 2, 1))
        grad_x = grad_x_pad[:, :, padding: length - padding] if padding > 0 else grad_x_pad
        grad_b = g.sum(axis=(0, 2)) if bias is not None else None
        return (grad_x.reshape(x_shape), grad_w, grad_b)

    parents = (x, weight) if bias is None else (x, weight, bias)
    req = any(p.requires_grad for p in parents)
    return Tensor(out, requires_grad=req, parents=parents, backward_fn=backward)


def maxpool1d(x: Tensor, pool: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over the last axis of (N, C, L)."""
    stride = stride or pool
    xd = x.data
    n, c, length = xd.shape
    l_out = (length - pool) // stride + 1
    s_n, s_c, s_l = xd.strides
    windows = np.lib.stride_tricks.as_strided(
        xd,
        shape=(n, c, l_out, pool),
        strides=(s_n, s_c, s_l * stride, s_l),
        writeable=False,
    )
    out = windows.max(axis=3)
    arg = windows.argmax(axis=3)  # (N, C, L_out)

    def backward(g: np.ndarray):
        grad = np.zeros_like(xd)
        pos = arg + np.arange(l_out)[None, None, :] * stride  # absolute index into L
        nn_idx, cc_idx = np.meshgrid(np.arange(n), np.arange(c), indexing="ij")
        nn_idx = np.repeat(nn_idx[:, :, None], l_out, axis=2)
        cc_idx = np.repeat(cc_idx[:, :, None], l_out, axis=2)
        np.add.at(grad, (nn_idx, cc_idx, pos), g)
        return (grad,)

    return x._unary_out(out, backward)


def avgpool1d(x: Tensor, pool: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling over the last axis of (N, C, L)."""
    stride = stride or pool
    xd = x.data
    n, c, length = xd.shape
    l_out = (length - pool) // stride + 1
    s_n, s_c, s_l = xd.strides
    windows = np.lib.stride_tricks.as_strided(
        xd,
        shape=(n, c, l_out, pool),
        strides=(s_n, s_c, s_l * stride, s_l),
        writeable=False,
    )
    out = windows.mean(axis=3)

    def backward(g: np.ndarray):
        grad = np.zeros_like(xd)
        share = g / pool
        for kk in range(pool):
            idx = np.arange(l_out) * stride + kk
            np.add.at(grad, (slice(None), slice(None), idx), share)
        return (grad,)

    return x._unary_out(out, backward)


def global_avgpool1d(x: Tensor) -> Tensor:
    """Mean over the length axis of (N, C, L) -> (N, C)."""
    return x.mean(axis=2)


def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    momentum: float = 0.1,
    eps: float = 1e-5,
    training: bool = True,
    axis: Tuple[int, ...] = (0,),
) -> Tensor:
    """Batch normalization over ``axis`` (the reduction axes).

    For (N, F) inputs use axis=(0,); for (N, C, L) use axis=(0, 2).
    Running stats are updated in place when training.
    """
    xd = x.data
    if training:
        mean = xd.mean(axis=axis, keepdims=True)
        var = xd.var(axis=axis, keepdims=True)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean.squeeze()
        running_var *= 1.0 - momentum
        running_var += momentum * var.squeeze()
    else:
        shape = [1] * xd.ndim
        feat_axes = [i for i in range(xd.ndim) if i not in axis]
        for i, a in enumerate(feat_axes):
            shape[a] = -1 if i == 0 else shape[a]
        # Reshape running stats to broadcast against x.
        bshape = [1] * xd.ndim
        for a in range(xd.ndim):
            if a not in axis:
                bshape[a] = xd.shape[a]
        mean = running_mean.reshape(bshape)
        var = running_var.reshape(bshape)

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (xd - mean) * inv_std

    bshape = [1] * xd.ndim
    for a in range(xd.ndim):
        if a not in axis:
            bshape[a] = xd.shape[a]
    gamma_b = gamma.data.reshape(bshape)
    out = x_hat * gamma_b + beta.data.reshape(bshape)

    m = 1
    for a in axis:
        m *= xd.shape[a]

    def backward(g: np.ndarray):
        grad_beta = g.sum(axis=axis).reshape(beta.shape)
        grad_gamma = (g * x_hat).sum(axis=axis).reshape(gamma.shape)
        if training:
            gxh = g * gamma_b
            grad_x = (
                inv_std
                / m
                * (m * gxh - gxh.sum(axis=axis, keepdims=True) - x_hat * (gxh * x_hat).sum(axis=axis, keepdims=True))
            )
        else:
            grad_x = g * gamma_b * inv_std
        return (grad_x, grad_gamma, grad_beta)

    req = x.requires_grad or gamma.requires_grad or beta.requires_grad
    return Tensor(out, requires_grad=req, parents=(x, gamma, beta), backward_fn=backward)


def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last axis."""
    xd = x.data
    mean = xd.mean(axis=-1, keepdims=True)
    var = xd.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (xd - mean) * inv_std
    out = x_hat * gamma.data + beta.data
    d = xd.shape[-1]

    def backward(g: np.ndarray):
        grad_beta = unbroadcast(g, beta.shape)
        grad_gamma = unbroadcast(g * x_hat, gamma.shape)
        gxh = g * gamma.data
        grad_x = (
            inv_std
            / d
            * (d * gxh - gxh.sum(axis=-1, keepdims=True) - x_hat * (gxh * x_hat).sum(axis=-1, keepdims=True))
        )
        return (grad_x, grad_gamma, grad_beta)

    req = x.requires_grad or gamma.requires_grad or beta.requires_grad
    return Tensor(out, requires_grad=req, parents=(x, gamma, beta), backward_fn=backward)


# ----------------------------------------------------------------------
# 2-D convolution (tumor-imaging workloads) via im2col
# ----------------------------------------------------------------------
def _im2col_2d(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """(N, C, H, W) -> (N, H_out, W_out, C*kh*kw) strided patch matrix."""
    n, c, h, w = x.shape
    h_out = (h - kh) // stride + 1
    w_out = (w - kw) // stride + 1
    s_n, s_c, s_h, s_w = x.strides
    patches = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, h_out, w_out, c, kh, kw),
        strides=(s_n, s_h * stride, s_w * stride, s_c, s_h, s_w),
        writeable=False,
    )
    return patches.reshape(n, h_out, w_out, c * kh * kw)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution.

    Shapes: x (N, C_in, H, W), weight (C_out, C_in, KH, KW), bias (C_out,).
    Returns (N, C_out, H_out, W_out).
    """
    xd = x.data
    if padding > 0:
        xd_pad = np.pad(xd, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    else:
        xd_pad = xd
    n, c_in, h, w = xd_pad.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"conv2d channel mismatch: input {c_in} vs weight {c_in_w}")
    h_out = (h - kh) // stride + 1
    w_out = (w - kw) // stride + 1
    if h_out <= 0 or w_out <= 0:
        raise ValueError(f"conv2d output {h_out}x{w_out} <= 0 (input {h}x{w}, kernel {kh}x{kw})")

    cols = _im2col_2d(xd_pad, kh, kw, stride)  # (N, Ho, Wo, C*kh*kw)
    w2 = weight.data.reshape(c_out, c_in * kh * kw)
    out = cols @ w2.T  # (N, Ho, Wo, C_out)
    out = out.transpose(0, 3, 1, 2)
    if bias is not None:
        out = out + bias.data[None, :, None, None]

    x_shape = x.shape
    cols_saved = cols

    def backward(g: np.ndarray):
        g_t = g.transpose(0, 2, 3, 1)  # (N, Ho, Wo, C_out)
        grad_w = np.tensordot(g_t, cols_saved, axes=([0, 1, 2], [0, 1, 2]))
        grad_w = grad_w.reshape(c_out, c_in, kh, kw)
        grad_cols = g_t @ w2  # (N, Ho, Wo, C*kh*kw)
        grad_cols = grad_cols.reshape(n, h_out, w_out, c_in, kh, kw)
        grad_x_pad = np.zeros((n, c_in, h, w), dtype=g.dtype)
        # Scatter-add per kernel tap (kh*kw iterations, vectorized elsewhere).
        hi = np.arange(h_out) * stride
        wi = np.arange(w_out) * stride
        for dh in range(kh):
            for dw in range(kw):
                grad_x_pad[:, :, hi[:, None] + dh, wi[None, :] + dw] += grad_cols[
                    :, :, :, :, dh, dw
                ].transpose(0, 3, 1, 2)
        if padding > 0:
            grad_x = grad_x_pad[:, :, padding : h - padding, padding : w - padding]
        else:
            grad_x = grad_x_pad
        grad_b = g.sum(axis=(0, 2, 3)) if bias is not None else None
        return (grad_x.reshape(x_shape), grad_w, grad_b)

    parents = (x, weight) if bias is None else (x, weight, bias)
    req = any(p.requires_grad for p in parents)
    return Tensor(out, requires_grad=req, parents=parents, backward_fn=backward)


def maxpool2d(x: Tensor, pool: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over the last two axes of (N, C, H, W)."""
    stride = stride or pool
    xd = x.data
    n, c, h, w = xd.shape
    h_out = (h - pool) // stride + 1
    w_out = (w - pool) // stride + 1
    s_n, s_c, s_h, s_w = xd.strides
    windows = np.lib.stride_tricks.as_strided(
        xd,
        shape=(n, c, h_out, w_out, pool, pool),
        strides=(s_n, s_c, s_h * stride, s_w * stride, s_h, s_w),
        writeable=False,
    )
    flat = windows.reshape(n, c, h_out, w_out, pool * pool)
    out = flat.max(axis=4)
    arg = flat.argmax(axis=4)  # flat index within the window

    def backward(g: np.ndarray):
        grad = np.zeros_like(xd)
        dh, dw = np.divmod(arg, pool)
        hh = dh + np.arange(h_out)[None, None, :, None] * stride
        ww = dw + np.arange(w_out)[None, None, None, :] * stride
        nn_idx = np.arange(n)[:, None, None, None]
        cc_idx = np.arange(c)[None, :, None, None]
        np.add.at(grad, (np.broadcast_to(nn_idx, arg.shape), np.broadcast_to(cc_idx, arg.shape), hh, ww), g)
        return (grad,)

    return x._unary_out(out, backward)


def global_avgpool2d(x: Tensor) -> Tensor:
    """Mean over (H, W) of (N, C, H, W) -> (N, C)."""
    return x.mean(axis=(2, 3))
