"""Numerical gradient verification, exported for downstream users.

Any custom layer or loss built on :mod:`repro.nn` can be validated with
:func:`gradient_check` before it goes anywhere near a training run — the
same machinery the library's own test suite uses.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from .tensor import Tensor


def numerical_gradient(fn: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    x = np.asarray(x, dtype=np.float64).copy()
    grad = np.zeros_like(x)
    flat, gflat = x.reshape(-1), grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = fn(x)
        flat[i] = orig - eps
        f_minus = fn(x)
        flat[i] = orig
        gflat[i] = (f_plus - f_minus) / (2 * eps)
    return grad


def gradient_check(
    op: Callable[[Tensor], Tensor],
    x: np.ndarray,
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> Tuple[bool, float]:
    """Compare autograd of ``op(x).sum()`` against finite differences.

    Returns (passed, max absolute error).  ``op`` must be differentiable
    at ``x`` (keep inputs away from kinks like relu(0)).
    """
    x = np.asarray(x, dtype=np.float64)
    t = Tensor(x.copy(), requires_grad=True)
    op(t).sum().backward()
    analytic = t.grad

    numeric = numerical_gradient(lambda arr: float(op(Tensor(arr)).sum().item()), x, eps=eps)
    err = float(np.max(np.abs(analytic - numeric)))
    tol = atol + rtol * float(np.max(np.abs(numeric)) if numeric.size else 0.0)
    return err <= tol, err
