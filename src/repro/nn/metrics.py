"""Evaluation metrics (pure NumPy; never differentiable)."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def accuracy(logits_or_probs: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy; labels are integer ids or one-hot."""
    labels = np.asarray(labels)
    if labels.ndim == 2:
        labels = labels.argmax(axis=-1)
    preds = np.asarray(logits_or_probs).argmax(axis=-1)
    return float((preds == labels).mean())


def balanced_accuracy(logits_or_probs: np.ndarray, labels: np.ndarray) -> float:
    """Mean per-class recall — robust to class imbalance (tumor typing)."""
    labels = np.asarray(labels)
    if labels.ndim == 2:
        labels = labels.argmax(axis=-1)
    preds = np.asarray(logits_or_probs).argmax(axis=-1)
    recalls = []
    for cls in np.unique(labels):
        mask = labels == cls
        recalls.append(float((preds[mask] == cls).mean()))
    return float(np.mean(recalls))


def r2_score(pred: np.ndarray, target: np.ndarray) -> float:
    """Coefficient of determination."""
    pred = np.asarray(pred).ravel()
    target = np.asarray(target).ravel()
    ss_res = float(((pred - target) ** 2).sum())
    ss_tot = float(((target - target.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot


def rmse(pred: np.ndarray, target: np.ndarray) -> float:
    pred = np.asarray(pred).ravel()
    target = np.asarray(target).ravel()
    return float(np.sqrt(((pred - target) ** 2).mean()))


def mae_score(pred: np.ndarray, target: np.ndarray) -> float:
    pred = np.asarray(pred).ravel()
    target = np.asarray(target).ravel()
    return float(np.abs(pred - target).mean())


def pearson_r(pred: np.ndarray, target: np.ndarray) -> float:
    pred = np.asarray(pred).ravel()
    target = np.asarray(target).ravel()
    pc = pred - pred.mean()
    tc = target - target.mean()
    denom = np.sqrt((pc ** 2).sum() * (tc ** 2).sum())
    if denom == 0:
        return 0.0
    return float((pc * tc).sum() / denom)


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Binary AUC via the rank statistic (handles ties by midranks)."""
    scores = np.asarray(scores).ravel()
    labels = np.asarray(labels).ravel().astype(bool)
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc requires both classes present")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty_like(order, dtype=np.float64)
    sorted_scores = scores[order]
    # Midranks for ties.
    i = 0
    rank = 1
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        mid = 0.5 * (rank + rank + (j - i))
        ranks[order[i : j + 1]] = mid
        rank += j - i + 1
        i = j + 1
    sum_pos = ranks[labels].sum()
    return float((sum_pos - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def f1_score(preds: np.ndarray, labels: np.ndarray) -> float:
    """Binary F1 on 0/1 predictions."""
    preds = np.asarray(preds).ravel().astype(bool)
    labels = np.asarray(labels).ravel().astype(bool)
    tp = int((preds & labels).sum())
    fp = int((preds & ~labels).sum())
    fn = int((~preds & labels).sum())
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2 * precision * recall / (precision + recall)


def confusion_matrix(preds: np.ndarray, labels: np.ndarray, n_classes: int) -> np.ndarray:
    """(n_classes, n_classes) count matrix, rows=true, cols=pred."""
    preds = np.asarray(preds).ravel().astype(np.int64)
    labels = np.asarray(labels).ravel().astype(np.int64)
    cm = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(cm, (labels, preds), 1)
    return cm


METRICS = {
    "accuracy": accuracy,
    "balanced_accuracy": balanced_accuracy,
    "r2": r2_score,
    "rmse": rmse,
    "mae": mae_score,
    "pearson_r": pearson_r,
    "roc_auc": roc_auc,
}


def get(name: str):
    try:
        return METRICS[name]
    except KeyError:
        raise ValueError(f"unknown metric {name!r}; choose from {sorted(METRICS)}")


def average_precision(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the precision-recall curve (step interpolation).

    The imbalanced-screening companion to ROC AUC: sensitive to how many
    of the *top-ranked* compounds are real hits.  Computed over distinct
    score thresholds, so tied scores form one PR point and the result is
    invariant to the input ordering of ties.
    """
    scores = np.asarray(scores).ravel()
    labels = np.asarray(labels).ravel().astype(bool)
    n_pos = int(labels.sum())
    if n_pos == 0:
        raise ValueError("average_precision requires at least one positive")
    order = np.argsort(-scores, kind="mergesort")
    sorted_scores = scores[order]
    hits = labels[order].astype(np.float64)
    cum_tp = np.cumsum(hits)
    # Last index of each run of equal scores = one PR point per threshold.
    block_end = np.nonzero(np.r_[sorted_scores[1:] != sorted_scores[:-1], True])[0]
    tp = cum_tp[block_end]
    precision = tp / (block_end + 1.0)
    delta_tp = np.diff(np.r_[0.0, tp])
    return float((precision * delta_tp).sum() / n_pos)


def enrichment_factor(scores: np.ndarray, labels: np.ndarray, fraction: float = 0.01) -> float:
    """Virtual-screening enrichment: hit rate in the top ``fraction`` of
    ranked compounds divided by the overall hit rate (1.0 = no better
    than random selection).

    Items strictly above the cutoff score count fully; a tie block
    straddling the cutoff contributes its mean hit rate for the
    remaining slots, so the result does not depend on how a sort broke
    ties.
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    scores = np.asarray(scores).ravel()
    labels = np.asarray(labels).ravel().astype(bool)
    base_rate = labels.mean()
    if base_rate == 0:
        raise ValueError("enrichment requires at least one positive")
    k = max(1, int(round(len(scores) * fraction)))
    cutoff = np.sort(scores)[::-1][k - 1]
    above = scores > cutoff
    tie = scores == cutoff
    hits_above = float(labels[above].sum())
    slots_left = k - int(above.sum())
    expected_hits = hits_above + slots_left * float(labels[tie].sum()) / int(tie.sum())
    return float((expected_hits / k) / base_rate)


METRICS["average_precision"] = average_precision
