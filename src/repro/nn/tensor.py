"""Reverse-mode automatic differentiation on NumPy arrays.

This module provides the :class:`Tensor` class, the computational substrate
for every model in :mod:`repro`.  A ``Tensor`` wraps an ``np.ndarray`` and
records the operations applied to it on a tape (a DAG of parent links plus
per-node backward closures).  Calling :meth:`Tensor.backward` walks the DAG
in reverse topological order and accumulates gradients into ``.grad``.

Design notes
------------
* Gradients are plain ``np.ndarray`` objects (not Tensors): we never need
  higher-order derivatives for the paper's workloads, and keeping grads as
  raw arrays keeps the backward pass allocation-light.
* Broadcasting is handled once, in :func:`unbroadcast`, so each op's
  backward closure can be written as if shapes matched exactly.
* All computation stays in the array's own dtype.  The precision-emulation
  layer (:mod:`repro.precision`) wraps ops with rounding hooks rather than
  forking this engine.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

# Grad mode: a module-level switch (cheaper than threading a context object
# through every op).  ``no_grad`` is used by evaluation loops.
_GRAD_ENABLED = True

# Count of tape (non-leaf) nodes created since process start.  The
# inference fast path is verified against this: a forward pass under
# ``no_grad`` must not grow it.
_TAPE_NODES = 0

# Cached all-ones seed gradients for scalar losses, keyed by (dtype, shape).
# Scalar outputs only, so the cache stays a handful of 1-element arrays.
_SEED_ONES: dict = {}


class no_grad:
    """Context manager disabling graph construction (like torch.no_grad)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


def tape_node_count() -> int:
    """Number of graph (non-leaf) nodes created so far.

    Unchanged across a ``no_grad`` forward pass — the assertion the
    inference fast path is held to.
    """
    return _TAPE_NODES


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (shape produced by broadcasting) back to ``shape``.

    NumPy broadcasting either prepends axes or stretches length-1 axes;
    the adjoint of broadcasting is summation over exactly those axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched (originally length-1) axes.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value)
    if dtype is not None and arr.dtype != dtype:
        arr = arr.astype(dtype)
    elif arr.dtype == np.float64 and dtype is None:
        # Default compute dtype is float64 for reproducibility; callers that
        # want float32 pass explicit dtypes.
        pass
    return arr


class Tensor:
    """A NumPy array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array (or nested sequence / scalar) holding the values.
    requires_grad:
        If True, operations on this tensor are recorded and ``backward``
        will populate ``.grad``.
    parents:
        Internal — tensors this one was computed from.
    backward_fn:
        Internal — closure mapping the output gradient to a tuple of
        gradients, one per parent (entries may be None).
    name:
        Optional label used in error messages and graph dumps.
    """

    __slots__ = ("data", "requires_grad", "grad", "_parents", "_backward_fn", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward_fn: Optional[Callable[[np.ndarray], Tuple[Optional[np.ndarray], ...]]] = None,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        if self.data.dtype.kind not in "fc" and requires_grad:
            raise TypeError(
                f"requires_grad=True needs a floating dtype, got {self.data.dtype}"
            )
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._parents: Tuple[Tensor, ...] = tuple(parents) if self.requires_grad else ()
        self._backward_fn = backward_fn if self.requires_grad else None
        self.name = name
        if self._parents:
            global _TAPE_NODES
            _TAPE_NODES += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """A tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def astype(self, dtype) -> "Tensor":
        dtype = np.dtype(dtype)
        out_data = self.data.astype(dtype)

        def backward(g: np.ndarray):
            return (g.astype(self.data.dtype),)

        return self._unary_out(out_data, backward)

    # ------------------------------------------------------------------
    # Graph bookkeeping
    # ------------------------------------------------------------------
    def _unary_out(self, data: np.ndarray, backward) -> "Tensor":
        return Tensor(data, requires_grad=self.requires_grad, parents=(self,), backward_fn=backward)

    def zero_grad(self) -> None:
        self.grad = None

    def backward(
        self,
        grad: Optional[np.ndarray] = None,
        grad_ready_hook: Optional[Callable[["Tensor"], None]] = None,
    ) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (appropriate for scalar losses).  Grads
        accumulate into ``.grad`` on every reachable tensor that has
        ``requires_grad`` set.

        ``grad_ready_hook(leaf)`` fires on each leaf tensor (no backward
        fn — i.e. a parameter) the moment its ``.grad`` is final for this
        pass: a per-tensor consumer-edge count tracks how many graph
        edges can still contribute, and the hook fires when the last one
        delivers — mid-backward, in the order backward actually finishes
        parameters.  This is the attachment point for overlapped
        gradient communication (``repro.parallel.ddp``): buckets of
        parameters can start their allreduce while the rest of backward
        is still running.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    f"backward() without an explicit gradient requires a scalar output, "
                    f"got shape {self.shape}"
                )
            # Preallocated-seed fast path: scalar losses reuse a cached
            # all-ones array instead of allocating one per step.  The seed
            # is never mutated (accumulation below copies before writing).
            key = (self.data.dtype.str, self.data.shape)
            grad = _SEED_ONES.get(key)
            if grad is None:
                grad = np.ones_like(self.data)
                # Read-only: the cached seed may end up stored as a .grad;
                # freezing it turns accidental in-place writes into errors
                # instead of silently corrupting every later backward().
                grad.flags.writeable = False
                _SEED_ONES[key] = grad
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)

        topo: List[Tensor] = []
        visited = set()
        # Consumer-edge counts for every reachable requires-grad tensor.
        # A leaf's gradient is final the moment its *last* consumer edge
        # has delivered (or skipped) its contribution — that is when the
        # grad-ready hook must fire.  The leaf's own position in the
        # reversed topo order is far too late: DFS appends a layer's
        # params before descending the rest of the chain, so last-layer
        # params (whose grads backward finishes first) pop last.
        pending: Dict[int, int] = {}
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        # Iterative DFS (deep MLPs would blow the recursion limit).
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if p.requires_grad:
                    pending[id(p)] = pending.get(id(p), 0) + 1
                    if id(p) not in visited:
                        stack.append((p, False))

        # ``owned`` marks accumulation buffers this pass allocated itself and
        # may therefore mutate with in-place adds.  First contributions are
        # stored as-is (they can alias closure internals or the seed), so
        # the second contribution pays the one allocation and every further
        # one is an in-place ``np.add``.
        grads = {id(self): grad}
        owned = set()

        def _finalize_leaf(leaf: "Tensor", g: np.ndarray) -> None:
            if leaf.grad is None:
                # Leaves (params) get an owned copy so cross-step
                # accumulation below can run in place; an owned buffer can
                # be adopted as-is.
                leaf.grad = g if id(leaf) in owned else g.copy()
            else:
                # Accumulate into the existing (owned) leaf buffer without
                # reallocating — the grad-accumulation hot path.
                np.add(leaf.grad, g, out=leaf.grad)
            if grad_ready_hook is not None:
                grad_ready_hook(leaf)

        for node in reversed(topo):
            g = grads.pop(id(node), None)
            if g is not None:
                if node._backward_fn is None:
                    # Only the root itself can reach its pop while still
                    # carrying a buffer — every other leaf was finalized
                    # below when its last consumer edge cleared.
                    _finalize_leaf(node, g)
                elif node.grad is None:
                    # Non-leaf grads may share (same semantics as storing
                    # the closure output).
                    node.grad = g
                else:
                    node.grad = node.grad + g
            if node._backward_fn is None:
                continue
            parent_grads = node._backward_fn(g) if g is not None else None
            for i, p in enumerate(node._parents):
                if not p.requires_grad:
                    continue
                key = id(p)
                pg = None if parent_grads is None else parent_grads[i]
                if pg is not None:
                    buf = grads.get(key)
                    if buf is None:
                        grads[key] = pg
                    elif key in owned:
                        np.add(buf, pg, out=buf)
                    else:
                        grads[key] = buf + pg
                        owned.add(key)
                # This consumer edge has now delivered (or skipped) its
                # contribution; a leaf whose last edge clears is final.
                pending[key] -= 1
                if pending[key] == 0 and p._backward_fn is None:
                    buf = grads.pop(key, None)
                    if buf is not None:
                        _finalize_leaf(p, buf)
        # Leaf-only .grad semantics would drop intermediate grads; we keep
        # them all (useful for attribution studies in the AMR workload).

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: ArrayLike) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(np.asarray(other, dtype=self.data.dtype))

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data + other.data

        def backward(g: np.ndarray):
            return (unbroadcast(g, self.shape), unbroadcast(g, other.shape))

        return _binary_out(self, other, data, backward)

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data - other.data

        def backward(g: np.ndarray):
            return (unbroadcast(g, self.shape), unbroadcast(-g, other.shape))

        return _binary_out(self, other, data, backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data * other.data
        a_data, b_data = self.data, other.data

        def backward(g: np.ndarray):
            return (
                unbroadcast(g * b_data, self.shape),
                unbroadcast(g * a_data, other.shape),
            )

        return _binary_out(self, other, data, backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data / other.data
        a_data, b_data = self.data, other.data

        def backward(g: np.ndarray):
            return (
                unbroadcast(g / b_data, self.shape),
                unbroadcast(-g * a_data / (b_data * b_data), other.shape),
            )

        return _binary_out(self, other, data, backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray):
            return (-g,)

        return self._unary_out(-self.data, backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp(b*log(a))")
        data = self.data ** exponent
        x = self.data

        def backward(g: np.ndarray):
            return (g * exponent * x ** (exponent - 1),)

        return self._unary_out(data, backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        a, b = self.data, other.data
        data = a @ b

        def backward(g: np.ndarray):
            if a.ndim == 1 and b.ndim == 1:  # inner product
                return (g * b, g * a)
            if a.ndim == 1:  # (k,) @ (k, n) -> (n,)
                return (g @ b.T, np.outer(a, g))
            if b.ndim == 1:  # (m, k) @ (k,) -> (m,)
                return (np.outer(g, b), a.T @ g)
            ga = g @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ g
            return (unbroadcast(ga, a.shape), unbroadcast(gb, b.shape))

        return _binary_out(self, other, data, backward)

    # Comparisons produce detached boolean tensors (non-differentiable).
    def __gt__(self, other: ArrayLike) -> "Tensor":
        return Tensor(self.data > _as_array(other))

    def __lt__(self, other: ArrayLike) -> "Tensor":
        return Tensor(self.data < _as_array(other))

    def __ge__(self, other: ArrayLike) -> "Tensor":
        return Tensor(self.data >= _as_array(other))

    def __le__(self, other: ArrayLike) -> "Tensor":
        return Tensor(self.data <= _as_array(other))

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        old_shape = self.shape
        data = self.data.reshape(shape)

        def backward(g: np.ndarray):
            return (g.reshape(old_shape),)

        return self._unary_out(data, backward)

    def flatten(self) -> "Tensor":
        """Flatten all axes after the first (batch) axis."""
        n = self.shape[0] if self.ndim > 0 else 1
        return self.reshape(n, -1)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        data = self.data.transpose(axes)

        def backward(g: np.ndarray):
            return (g.transpose(inverse),)

        return self._unary_out(data, backward)

    def __getitem__(self, idx) -> "Tensor":
        data = self.data[idx]
        shape = self.shape
        dtype = self.data.dtype

        def backward(g: np.ndarray):
            full = np.zeros(shape, dtype=dtype)
            np.add.at(full, idx, g)
            return (full,)

        return self._unary_out(data, backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def backward(g: np.ndarray):
            if axis is None:
                return (np.broadcast_to(g, shape).copy() if np.ndim(g) == 0 else np.full(shape, g, dtype=g.dtype),)
            g_exp = g
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % len(shape) for a in axes)
                for a in sorted(axes):
                    g_exp = np.expand_dims(g_exp, a)
            return (np.broadcast_to(g_exp, shape).astype(g.dtype, copy=True),)

        return self._unary_out(data, backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        n = self.size if axis is None else _axis_size(self.shape, axis)
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / n)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return out

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        x = self.data

        def backward(g: np.ndarray):
            if axis is None:
                mask = (x == x.max()).astype(x.dtype)
                mask /= mask.sum()
                return (mask * g,)
            d = data if keepdims else np.expand_dims(data, axis)
            g_exp = g if keepdims else np.expand_dims(g, axis)
            mask = (x == d).astype(x.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            return (mask * g_exp,)

        return self._unary_out(data, backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    def argmax(self, axis=None) -> np.ndarray:
        return self.data.argmax(axis=axis)

    # Convenience elementwise wrappers (implemented in functional.py but
    # mirrored as methods for fluent model code).
    def exp(self) -> "Tensor":
        from . import functional as F

        return F.exp(self)

    def log(self) -> "Tensor":
        from . import functional as F

        return F.log(self)

    def tanh(self) -> "Tensor":
        from . import functional as F

        return F.tanh(self)

    def sigmoid(self) -> "Tensor":
        from . import functional as F

        return F.sigmoid(self)

    def relu(self) -> "Tensor":
        from . import functional as F

        return F.relu(self)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def abs(self) -> "Tensor":
        from . import functional as F

        return F.abs(self)


def _binary_out(a: Tensor, b: Tensor, data: np.ndarray, backward) -> Tensor:
    req = a.requires_grad or b.requires_grad
    return Tensor(data, requires_grad=req, parents=(a, b), backward_fn=backward)


def _axis_size(shape: Tuple[int, ...], axis) -> int:
    if isinstance(axis, tuple):
        n = 1
        for a in axis:
            n *= shape[a % len(shape)]
        return n
    return shape[axis % len(shape)]


def tensor(data: ArrayLike, requires_grad: bool = False, dtype=None) -> Tensor:
    """Create a Tensor, optionally casting to ``dtype``."""
    arr = _as_array(data, dtype=dtype)
    return Tensor(arr, requires_grad=requires_grad)


def zeros(shape, dtype=np.float64, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)


def ones(shape, dtype=np.float64, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray):
        grads = []
        for i in range(len(tensors)):
            sl = [slice(None)] * g.ndim
            sl[axis] = slice(offsets[i], offsets[i + 1])
            grads.append(g[tuple(sl)])
        return tuple(grads)

    req = any(t.requires_grad for t in tensors)
    return Tensor(data, requires_grad=req, parents=tuple(tensors), backward_fn=backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new axis."""
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray):
        moved = np.moveaxis(g, axis, 0)
        return tuple(moved[i] for i in range(len(tensors)))

    req = any(t.requires_grad for t in tensors)
    return Tensor(data, requires_grad=req, parents=tuple(tensors), backward_fn=backward)
