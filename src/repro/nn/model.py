"""Model containers and the training loop.

:class:`Sequential` mirrors the Keras idiom the original CANDLE benchmark
definitions use (stacked layers, deferred build, ``fit``/``evaluate``),
while :class:`Model` is the escape hatch for custom topologies (multitask
heads, VAEs).
"""

from __future__ import annotations

import contextlib
import math
import time
from typing import Callable, ContextManager, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import losses as losses_mod
from . import metrics as metrics_mod
from ..obs.context import get_recorder
from .dataloader import DataLoader, train_val_split
from .layers import Layer
from .optim import Adam, Optimizer
from .tensor import Tensor, no_grad


class History:
    """Per-epoch training record returned by :meth:`Model.fit`."""

    def __init__(self) -> None:
        self.epochs: List[Dict[str, float]] = []

    def append(self, **kwargs: float) -> None:
        self.epochs.append(dict(kwargs))

    def series(self, key: str) -> List[float]:
        return [e[key] for e in self.epochs if key in e]

    def best(self, key: str, mode: str = "min") -> float:
        values = self.series(key)
        if not values:
            raise KeyError(f"no values recorded for {key!r}")
        return min(values) if mode == "min" else max(values)

    def __len__(self) -> int:
        return len(self.epochs)


class Model:
    """Base class: override :meth:`forward`; parameters are discovered from
    ``self.layers`` (a list) or by overriding :meth:`parameters`."""

    def __init__(self) -> None:
        self.layers: List[Layer] = []
        self.built = False
        self._int8_plan = None

    # -- construction ---------------------------------------------------
    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        shape = tuple(input_shape)
        for layer in self.layers:
            if not layer.built:
                layer.build(shape, rng)
            shape = layer.output_shape(shape)
        self.built = True

    def parameters(self) -> Iterator[Tensor]:
        for layer in self.layers:
            yield from layer.parameters()

    def param_count(self) -> int:
        return sum(p.size for p in self.parameters())

    def get_weights(self) -> List[np.ndarray]:
        return [p.data.copy() for p in self.parameters()]

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        params = list(self.parameters())
        if len(params) != len(weights):
            raise ValueError(f"weight count mismatch: model has {len(params)}, got {len(weights)}")
        for p, w in zip(params, weights):
            if p.data.shape != w.shape:
                raise ValueError(f"shape mismatch for {p.name or 'param'}: {p.data.shape} vs {w.shape}")
            p.data[...] = w

    # -- forward ----------------------------------------------------------
    def forward(self, x: Tensor, training: bool = True) -> Tensor:
        out = x
        for layer in self.layers:
            out = layer(out, training=training)
        return out

    def __call__(self, x, training: bool = True) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(np.asarray(x))
        return self.forward(x, training=training)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Per-sample output shape for a given per-sample input shape.

        Follows the layer chain's ``output_shape`` declarations; custom
        models without a ``self.layers`` stack must override this (or
        support zero-length batches in ``forward``).
        """
        shape = tuple(input_shape)
        if not self.layers:
            raise NotImplementedError("override output_shape for custom topologies")
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    def _empty_output(self, x: np.ndarray) -> np.ndarray:
        """Correctly-shaped empty prediction for a zero-length input.

        Shape comes from the layer chain when possible; strided kernels
        (conv im2col) reject zero-length batches, so an empty forward
        pass is only the fallback for custom topologies.
        """
        try:
            shape = self.output_shape(np.asarray(x).shape[1:])
        except NotImplementedError:
            with no_grad():
                return self.forward(Tensor(np.asarray(x)), training=False).data
        return np.zeros((0,) + shape)

    def astype(self, dtype) -> "Model":
        """Cast all parameters (and layer buffers) to ``dtype`` in place.

        The deployment cast: train in fp64/fp32, then ``astype(np.float32)``
        before publishing.  Drops gradients and any attached int8 plan
        (quantization scales are computed from specific weight values).
        """
        dtype = np.dtype(dtype)
        for p in self.parameters():
            p.data = p.data.astype(dtype)
            p.grad = None
        for layer in self.layers:
            if getattr(layer, "dtype", None) is not None:
                layer.dtype = dtype
            for attr in ("running_mean", "running_var"):
                buf = getattr(layer, attr, None)
                if isinstance(buf, np.ndarray):
                    setattr(layer, attr, buf.astype(dtype))
        self._int8_plan = None
        return self

    def quantize_int8(
        self, x_calib: np.ndarray, method: str = "percentile", percentile: float = 99.9
    ):
        """Calibrate an int8 inference plan from sample inputs.

        Attaches the plan (used by ``predict(precision="int8")`` and the
        serving tier) and returns it.  Requires a Dense/activation
        topology — see :class:`repro.precision.int8.Int8Plan`.
        """
        from ..precision.int8 import quantize_model  # lazy: precision imports nn

        self._int8_plan = quantize_model(self, x_calib, method=method, percentile=percentile)
        return self._int8_plan

    def predict(
        self, x: np.ndarray, batch_size: int = 256, precision: Optional[str] = None
    ) -> np.ndarray:
        """Batched, grad-free forward pass.

        ``precision`` selects the inference datapath: ``None``/"fp64" runs
        in the weights' native dtype; ``"fp32"`` requires float32 weights
        (cast once via :meth:`astype`) and float32-casts the input;
        ``"int8"`` runs the calibrated quantized plan from
        :meth:`quantize_int8`.  A zero-length input returns a
        correctly-shaped empty array (the serving layer drains queues
        that may be empty).
        """
        if precision == "int8":
            plan = getattr(self, "_int8_plan", None)
            if plan is None:
                raise RuntimeError(
                    "predict(precision='int8') needs a calibrated plan; "
                    "call model.quantize_int8(x_calib) first"
                )
            if len(x) == 0:
                return self._empty_output(x).astype(np.float32)
            return plan.predict(np.asarray(x), batch_size=batch_size)
        if precision == "fp32":
            p0 = next(iter(self.parameters()), None)
            if p0 is not None and p0.data.dtype != np.float32:
                raise ValueError(
                    "predict(precision='fp32') requires float32 weights; cast once "
                    "with model.astype(np.float32) (fit(precision=...) already "
                    "leaves fp32 master weights)"
                )
            x = np.asarray(x)
            if x.dtype != np.float32:
                x = x.astype(np.float32)
        elif precision not in (None, "fp64"):
            raise ValueError(
                f"unknown predict precision {precision!r}; choose None/'fp64', 'fp32' or 'int8'"
            )
        if len(x) == 0:
            return self._empty_output(x)
        outs = []
        with no_grad():
            for start in range(0, len(x), batch_size):
                xb = Tensor(np.asarray(x[start : start + batch_size]))
                outs.append(self.forward(xb, training=False).data)
        return np.concatenate(outs, axis=0)

    # -- training ---------------------------------------------------------
    def fit(
        self,
        x: np.ndarray,
        y: Optional[np.ndarray],
        epochs: int = 10,
        batch_size: int = 32,
        loss: str | Callable = "mse",
        optimizer: Optional[Optimizer] = None,
        lr: float = 1e-3,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        validation_split: float = 0.0,
        metrics: Sequence[str] = (),
        seed: int = 0,
        verbose: bool = False,
        early_stopping_patience: Optional[int] = None,
        clip_norm: Optional[float] = None,
        step_hook: Optional[Callable[[int, float], None]] = None,
        grad_accumulation: int = 1,
        profiler: Optional[ContextManager] = None,
        prefetch: bool = False,
        precision: Optional[str] = None,
        grad_ready_hook: Optional[Callable] = None,
    ) -> History:
        """Train the model; returns a :class:`History`.

        ``loss`` is a name from :mod:`repro.nn.losses` or a callable
        ``(pred, target) -> scalar Tensor``.  For autoencoder-style models
        pass ``y=None`` and the input batch is used as the target.

        ``grad_accumulation > 1`` applies the optimizer only every k
        mini-batches, averaging the k gradients first — the standard way
        to train with an effective batch k times larger than fits in
        memory (equivalent in expectation to a k-times-larger batch).
        When the epoch's batch count is not a multiple of k, the trailing
        window is shorter; its gradients are averaged over the *actual*
        window length, so tail batches carry full weight.

        ``profiler`` is any context manager — typically a
        :class:`repro.perf.OpProfiler` — entered for the duration of
        training, so every instrumented op (including validation passes)
        is attributed to it.

        ``prefetch=True`` wraps the batch loader in a
        :class:`repro.parallel.PrefetchLoader` (background-thread double
        buffering) so batch assembly overlaps compute; batch order and
        values are unchanged, so training stays bit-identical.

        ``precision`` selects the training datapath: ``None``/"fp64" is
        the unchanged full-precision path; ``"fp32"``, ``"bf16"`` and
        ``"fp16"`` run the real reduced-precision datapath — fp32 master
        weights, narrow-storage fused kernels with fp32 accumulation
        (bf16/fp16 via :mod:`repro.nn.amp`), and automatic loss scaling
        for fp16 through :class:`repro.precision.LossScaler`.  Parameters
        are cast to fp32 in place; the controller's stats land on
        ``history.precision``.

        ``grad_ready_hook(param)`` is forwarded to every backward pass
        (see :meth:`Tensor.backward`): it fires per parameter the moment
        that parameter's gradient is final, enabling overlapped gradient
        communication in :func:`repro.parallel.fit_data_parallel`.
        """
        if grad_accumulation < 1:
            raise ValueError("grad_accumulation must be >= 1")
        rng = np.random.default_rng(seed)
        x = np.asarray(x)
        if validation_split > 0.0 and validation_data is None:
            x, y, x_val, y_val = train_val_split(x, y, val_frac=validation_split, rng=rng)
            validation_data = (x_val, y_val)

        if not self.built:
            self.build(x.shape[1:], rng)
        loss_fn = losses_mod.get(loss) if isinstance(loss, str) else loss
        amp_state = None
        if precision is not None and precision != "fp64":
            # Lazy import: repro.precision imports repro.nn at module scope.
            from ..precision.autocast import FitPrecision

            amp_state = FitPrecision(precision, self.parameters())
            x = amp_state.cast_array(x)
            if y is not None:
                y = amp_state.cast_array(y)
            if validation_data is not None:
                vx, vy = validation_data
                validation_data = (
                    amp_state.cast_array(vx),
                    None if vy is None else amp_state.cast_array(vy),
                )
        # The optimizer is built after any precision cast so its scratch
        # buffers (Adam moments) match the fp32 master weights.
        opt = optimizer or Adam(self.parameters(), lr=lr)
        metric_fns = {m: metrics_mod.get(m) for m in metrics}
        loader = DataLoader(x, y, batch_size=batch_size, shuffle=True, rng=rng)
        if prefetch:
            # Lazy import: repro.parallel imports repro.nn, so importing
            # it at module scope here would cycle.
            from ..parallel.prefetch import PrefetchLoader

            loader = PrefetchLoader(loader)

        history = History()
        best_val = np.inf
        best_weights: Optional[List[np.ndarray]] = None
        patience_left = early_stopping_patience

        # Window lengths for gradient averaging: every full window has
        # grad_accumulation batches; the last window of the epoch may be
        # shorter and must average over its own length, not k.
        batches_per_epoch = len(loader)
        full_window_batches = (batches_per_epoch // grad_accumulation) * grad_accumulation
        trailing_window = batches_per_epoch - full_window_batches

        # Observability (repro.obs): one module-global read when detached;
        # when a recorder is attached, fit/epoch/step spans plus loss and
        # grad-norm gauges (gated <5% step overhead by bench_obs_overhead).
        rec = get_recorder()
        if rec is not None:
            obs_params = list(self.parameters())
            # Resolved once: the registry lookups stay off the step path.
            obs_steps = rec.metrics.counter("fit.steps")
            obs_loss = rec.metrics.gauge("fit.loss")
            obs_grad_norm = rec.metrics.gauge("fit.grad_norm")
            fit_id = rec.begin(
                "fit", kind="fit",
                epochs=epochs, batch_size=batch_size, n_samples=len(x),
            )

        with profiler if profiler is not None else contextlib.nullcontext():
            for epoch in range(epochs):
                t0 = time.perf_counter()
                epoch_loss = 0.0
                n_batches = 0
                accum = 0
                opt.zero_grad()
                if rec is not None:
                    epoch_id = rec.begin("epoch", kind="fit.epoch", epoch=epoch)
                for xb, yb in loader:
                    if rec is not None:
                        step_id = rec.begin("step", kind="fit.step")
                    xt = Tensor(xb)
                    target = xb if yb is None else yb
                    window = (
                        trailing_window
                        if trailing_window and n_batches >= full_window_batches
                        else grad_accumulation
                    )
                    if amp_state is not None:
                        with amp_state.cast():
                            pred = self.forward(xt, training=True)
                            batch_loss = loss_fn(pred, target)
                            # One seed folds loss scale and window average;
                            # grads are unscaled at the window boundary.
                            batch_loss.backward(
                                amp_state.seed(window, batch_loss.data.dtype),
                                grad_ready_hook=grad_ready_hook,
                            )
                    else:
                        pred = self.forward(xt, training=True)
                        batch_loss = loss_fn(pred, target)
                        if window > 1:
                            # Average (not sum) over the accumulation window.
                            (batch_loss * (1.0 / window)).backward(
                                grad_ready_hook=grad_ready_hook
                            )
                        else:
                            batch_loss.backward(grad_ready_hook=grad_ready_hook)
                    loss_val = batch_loss.item()
                    if rec is not None:
                        # Grad norm must be read here: the window boundary
                        # below may step-and-zero the gradients.
                        grad_norm = math.sqrt(sum(
                            np.vdot(p.grad, p.grad)
                            for p in obs_params if p.grad is not None
                        )) / (amp_state.scale if amp_state is not None else 1.0)
                    accum += 1
                    if accum >= grad_accumulation:
                        self._apply_step(opt, amp_state, clip_norm)
                        accum = 0
                    epoch_loss += loss_val
                    n_batches += 1
                    if rec is not None:
                        obs_steps.inc()
                        obs_loss.set(loss_val)
                        obs_grad_norm.set(grad_norm)
                        rec.end(step_id, loss=loss_val, grad_norm=grad_norm)
                    if step_hook is not None:
                        step_hook(getattr(opt, "step_count", n_batches), loss_val)
                if accum > 0:  # flush a trailing partial window
                    self._apply_step(opt, amp_state, clip_norm)
                record: Dict[str, float] = {
                    "loss": epoch_loss / max(n_batches, 1),
                    "time": time.perf_counter() - t0,
                }

                if validation_data is not None:
                    x_val, y_val = validation_data
                    val_metrics = self.evaluate(x_val, y_val, loss=loss_fn, metrics=metrics, batch_size=batch_size)
                    record.update({f"val_{k}": v for k, v in val_metrics.items()})
                    val_loss = record["val_loss"]
                    if early_stopping_patience is not None:
                        if val_loss < best_val - 1e-12:
                            best_val = val_loss
                            best_weights = self.get_weights()
                            patience_left = early_stopping_patience
                        else:
                            patience_left -= 1
                            if patience_left <= 0:
                                if rec is not None:
                                    rec.end(epoch_id, early_stopped=True, **record)
                                history.append(**record)
                                break
                if rec is not None:
                    rec.end(epoch_id, **record)
                history.append(**record)
                if verbose:
                    parts = " ".join(f"{k}={v:.4g}" for k, v in record.items())
                    print(f"epoch {epoch + 1}/{epochs}: {parts}")

        if best_weights is not None and early_stopping_patience is not None:
            self.set_weights(best_weights)
        if rec is not None:
            rec.end(fit_id, epochs_run=len(history))
        if amp_state is not None:
            history.precision = amp_state.stats()
        return history

    @staticmethod
    def _apply_step(opt: Optimizer, amp_state, clip_norm: Optional[float]) -> None:
        """Close one accumulation window: unscale/check (mixed precision),
        clip, step, zero.  A non-finite window is dropped whole — the
        scaler has already halved, so the retry lands in range."""
        if amp_state is not None and not amp_state.unscale_and_check():
            opt.zero_grad()
            return
        if clip_norm is not None:
            opt.clip_grad_norm(clip_norm)
        opt.step()
        opt.zero_grad()

    def evaluate(
        self,
        x: np.ndarray,
        y: Optional[np.ndarray],
        loss: str | Callable = "mse",
        metrics: Sequence[str] = (),
        batch_size: int = 256,
    ) -> Dict[str, float]:
        """Grad-free loss (+ metrics) over a dataset.

        A zero-length dataset reports zero loss and NaN metrics rather
        than crashing on an empty concatenate.
        """
        loss_fn = losses_mod.get(loss) if isinstance(loss, str) else loss
        if len(x) == 0:
            out = {"loss": 0.0}
            out.update({name: float("nan") for name in metrics})
            return out
        total = 0.0
        count = 0
        preds = []
        with no_grad():
            for start in range(0, len(x), batch_size):
                xb = np.asarray(x[start : start + batch_size])
                target = xb if y is None else y[start : start + batch_size]
                pred = self.forward(Tensor(xb), training=False)
                total += loss_fn(pred, target).item() * len(xb)
                count += len(xb)
                preds.append(pred.data)
        out = {"loss": total / max(count, 1)}
        if metrics:
            pred_all = np.concatenate(preds, axis=0)
            target_all = x if y is None else y
            for name in metrics:
                out[name] = metrics_mod.get(name)(pred_all, np.asarray(target_all))
        return out

    def summary(self) -> str:
        """Human-readable layer table."""
        lines = [f"{type(self).__name__}: {self.param_count():,} parameters"]
        for layer in self.layers:
            lines.append(f"  {layer.name:<24} params={layer.param_count():,}")
        return "\n".join(lines)


class Sequential(Model):
    """Keras-style linear stack of layers."""

    def __init__(self, layers: Sequence[Layer] = ()) -> None:
        super().__init__()
        self.layers = list(layers)

    def add(self, layer: Layer) -> "Sequential":
        if self.built:
            raise RuntimeError("cannot add layers after the model is built")
        self.layers.append(layer)
        return self
