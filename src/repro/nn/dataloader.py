"""Mini-batch iteration over in-memory arrays.

The loader models the per-node data pipeline the keynote describes: each
"node" holds (or stages, see :mod:`repro.hpc.storage`) its shard of the
training set and iterates shuffled mini-batches from it.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np


class DataLoader:
    """Iterate (x_batch, y_batch) pairs with optional shuffling.

    Parameters
    ----------
    x, y:
        Arrays whose first axis is the sample axis.  ``y`` may be None for
        unsupervised workloads (the P1B1 autoencoder).
    batch_size:
        Mini-batch size; the last batch may be smaller unless
        ``drop_last`` is set.
    shuffle:
        Reshuffle indices at the start of every epoch.
    rng:
        Generator used for shuffling (reproducible pipelines).  Mutually
        exclusive with ``seed``.
    seed:
        Convenience for ``rng=np.random.default_rng(seed)``.
    dtype:
        Optional cast applied **once at construction** to ``x`` (and to a
        float ``y``; integer labels pass through).  Batches then slice
        the pre-cast arrays, so a reduced-precision fit pays zero
        per-batch cast cost and no batch ever round-trips through
        float64.  Without ``dtype`` the loader is dtype-transparent:
        slicing and fancy indexing both preserve the input dtype.

    Reproducibility contract: when neither ``rng`` nor ``seed`` is
    given, each loader gets its own fresh ``default_rng(0)`` — so two
    loaders built without an explicit generator produce *identical*
    permutation sequences.  That default keeps pipelines reproducible
    by construction; pass distinct ``seed`` values (or share one
    ``rng``) when you want decorrelated shuffles.
    """

    def __init__(
        self,
        x: np.ndarray,
        y: Optional[np.ndarray] = None,
        batch_size: int = 32,
        shuffle: bool = True,
        drop_last: bool = False,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
        dtype=None,
    ) -> None:
        self.x = np.asarray(x)
        self.y = None if y is None else np.asarray(y)
        if dtype is not None:
            dtype = np.dtype(dtype)
            if self.x.dtype != dtype:
                self.x = self.x.astype(dtype)
            if self.y is not None and self.y.dtype.kind == "f" and self.y.dtype != dtype:
                self.y = self.y.astype(dtype)
        if self.y is not None and len(self.x) != len(self.y):
            raise ValueError(f"x and y length mismatch: {len(self.x)} vs {len(self.y)}")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if rng is not None and seed is not None:
            raise ValueError("pass rng or seed, not both")
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = rng if rng is not None else np.random.default_rng(0 if seed is None else seed)

    def __len__(self) -> int:
        n = len(self.x)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    @property
    def n_samples(self) -> int:
        return len(self.x)

    def __iter__(self) -> Iterator[Tuple[np.ndarray, Optional[np.ndarray]]]:
        n = len(self.x)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        if not self.shuffle:
            # Sequential epochs take contiguous basic slices — views into
            # the dataset, zero bytes copied per batch.
            for start in range(0, stop, self.batch_size):
                sl = slice(start, min(start + self.batch_size, stop))
                yield self.x[sl], (None if self.y is None else self.y[sl])
            return
        idx = self.rng.permutation(n)
        for start in range(0, stop, self.batch_size):
            batch_idx = idx[start : start + self.batch_size]
            xb = self.x[batch_idx]
            yb = None if self.y is None else self.y[batch_idx]
            yield xb, yb


def shard(x: np.ndarray, y: Optional[np.ndarray], rank: int, world: int) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Contiguous shard of a dataset for data-parallel rank ``rank`` of
    ``world`` — mirrors how CANDLE distributes training data per node."""
    if not 0 <= rank < world:
        raise ValueError(f"rank {rank} out of range for world size {world}")
    n = len(x)
    per = n // world
    lo = rank * per
    hi = n if rank == world - 1 else lo + per
    return x[lo:hi], (None if y is None else y[lo:hi])


def train_val_split(
    x: np.ndarray,
    y: Optional[np.ndarray],
    val_frac: float = 0.2,
    rng: Optional[np.random.Generator] = None,
):
    """Shuffled train/validation split; returns (x_tr, y_tr, x_va, y_va)."""
    if not 0.0 < val_frac < 1.0:
        raise ValueError("val_frac must be in (0, 1)")
    rng = rng or np.random.default_rng(0)
    n = len(x)
    idx = rng.permutation(n)
    n_val = max(1, int(round(n * val_frac)))
    val_idx, tr_idx = idx[:n_val], idx[n_val:]
    y_tr = None if y is None else y[tr_idx]
    y_va = None if y is None else y[val_idx]
    return x[tr_idx], y_tr, x[val_idx], y_va
