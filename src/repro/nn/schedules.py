"""Learning-rate schedules.

A schedule is a callable ``step -> lr`` attached to an optimizer via
:class:`ScheduledOptimizer` or used directly inside the fit loop.
"""

from __future__ import annotations

import math
from typing import Optional

from .optim import Optimizer


class Schedule:
    def __call__(self, step: int) -> float:
        raise NotImplementedError


class Constant(Schedule):
    def __init__(self, lr: float) -> None:
        self.lr = lr

    def __call__(self, step: int) -> float:
        return self.lr


class StepDecay(Schedule):
    """Multiply the lr by ``gamma`` every ``step_size`` steps."""

    def __init__(self, lr: float, step_size: int, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.lr, self.step_size, self.gamma = lr, step_size, gamma

    def __call__(self, step: int) -> float:
        return self.lr * self.gamma ** (step // self.step_size)


class ExponentialDecay(Schedule):
    def __init__(self, lr: float, decay_rate: float, decay_steps: int) -> None:
        self.lr, self.decay_rate, self.decay_steps = lr, decay_rate, decay_steps

    def __call__(self, step: int) -> float:
        return self.lr * self.decay_rate ** (step / self.decay_steps)


class CosineAnnealing(Schedule):
    """Cosine decay from ``lr`` to ``min_lr`` over ``total_steps``."""

    def __init__(self, lr: float, total_steps: int, min_lr: float = 0.0) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.lr, self.total_steps, self.min_lr = lr, total_steps, min_lr

    def __call__(self, step: int) -> float:
        frac = min(step / self.total_steps, 1.0)
        return self.min_lr + 0.5 * (self.lr - self.min_lr) * (1 + math.cos(math.pi * frac))


class WarmupCosine(Schedule):
    """Linear warmup for ``warmup_steps`` then cosine decay — the schedule
    large-batch data-parallel training uses (Goyal et al. style), relevant
    to the scaling experiments E2/E3."""

    def __init__(self, lr: float, warmup_steps: int, total_steps: int, min_lr: float = 0.0) -> None:
        if warmup_steps < 0 or total_steps <= warmup_steps:
            raise ValueError("need 0 <= warmup_steps < total_steps")
        self.lr, self.warmup_steps, self.total_steps, self.min_lr = lr, warmup_steps, total_steps, min_lr

    def __call__(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.lr * (step + 1) / max(self.warmup_steps, 1)
        frac = (step - self.warmup_steps) / (self.total_steps - self.warmup_steps)
        frac = min(frac, 1.0)
        return self.min_lr + 0.5 * (self.lr - self.min_lr) * (1 + math.cos(math.pi * frac))


class ScheduledOptimizer:
    """Wrap an optimizer so every ``step`` first updates its lr.

    The wrapper is state-transparent: ``step_count`` (and any other
    optimizer attribute — ``weight_decay``, moment dicts, ...) reads and
    writes through to the wrapped optimizer, so the fit loop's
    ``step_hook`` and the resilience checkpointing see the true step
    state instead of falling back to a batch counter.
    """

    def __init__(self, optimizer: Optimizer, schedule: Schedule) -> None:
        self.optimizer = optimizer
        self.schedule = schedule

    def zero_grad(self) -> None:
        self.optimizer.zero_grad()

    def step(self) -> None:
        self.optimizer.lr = self.schedule(self.optimizer.step_count)
        self.optimizer.step()

    @property
    def lr(self) -> float:
        return self.optimizer.lr

    @property
    def params(self):
        return self.optimizer.params

    @property
    def step_count(self) -> int:
        return self.optimizer.step_count

    @step_count.setter
    def step_count(self, value: int) -> None:
        self.optimizer.step_count = value

    def clip_grad_norm(self, max_norm: float) -> float:
        return self.optimizer.clip_grad_norm(max_norm)

    def grad_norm(self) -> float:
        return self.optimizer.grad_norm()

    def __getattr__(self, name: str):
        # Anything not defined on the wrapper (weight_decay, moment
        # dicts, scratch buffers) resolves against the inner optimizer.
        opt = self.__dict__.get("optimizer")
        if opt is None:
            raise AttributeError(name)
        return getattr(opt, name)
