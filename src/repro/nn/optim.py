"""Optimizers.

State (momentum buffers, Adam moments) lives in the optimizer, keyed by
parameter identity, so the same parameter list can be re-optimized after a
checkpoint restore.  All updates are in-place on ``param.data``.

Update arithmetic runs through preallocated per-parameter scratch buffers
(``out=`` ufunc forms) so ``step()`` allocates nothing after the first
call.  The in-place sequences replicate the reference expressions
factor-for-factor — IEEE-754 ``+``/``*`` are commutative (though not
associative), so reordering commutative pairs keeps results bit-identical
while reassociation would not.  ``p.grad`` itself is never written.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, params: Iterable[Tensor], lr: float, weight_decay: float = 0.0) -> None:
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.weight_decay = weight_decay
        self.step_count = 0
        # Pure scratch (never serialized): per-param work buffers for the
        # out= update arithmetic, plus a weight-decay staging buffer.
        self._scratch: Dict[int, tuple] = {}
        self._wd: Dict[int, np.ndarray] = {}

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def _scratch_pair(self, p: Tensor) -> tuple:
        pair = self._scratch.get(id(p))
        if pair is None or pair[0].shape != p.data.shape:
            pair = (np.empty_like(p.data), np.empty_like(p.data))
            self._scratch[id(p)] = pair
        return pair

    def step(self) -> None:
        self.step_count += 1
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                if grad.dtype == p.data.dtype:
                    buf = self._wd.get(id(p))
                    if buf is None or buf.shape != p.data.shape:
                        buf = self._wd[id(p)] = np.empty_like(p.data)
                    # grad + wd*p.data, staged so p.grad stays untouched.
                    np.multiply(p.data, self.weight_decay, out=buf)
                    np.add(buf, grad, out=buf)
                    grad = buf
                else:
                    grad = grad + self.weight_decay * p.data
            self._update(p, grad)

    def _update(self, p: Tensor, grad: np.ndarray) -> None:
        raise NotImplementedError

    def grad_norm(self) -> float:
        """Global L2 norm of all gradients (diagnostics / clipping)."""
        sq = 0.0
        for p in self.params:
            if p.grad is not None:
                sq += float(np.sum(p.grad.astype(np.float64) ** 2))
        return float(np.sqrt(sq))

    def clip_grad_norm(self, max_norm: float) -> float:
        """Scale all grads so the global norm is at most ``max_norm``."""
        norm = self.grad_norm()
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for p in self.params:
                if p.grad is not None:
                    p.grad *= scale
        return norm


class SGD(Optimizer):
    """SGD with optional (Nesterov) momentum."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr, weight_decay)
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov requires momentum > 0")
        self.momentum = momentum
        self.nesterov = nesterov
        self._velocity: Dict[int, np.ndarray] = {}

    def _update(self, p: Tensor, grad: np.ndarray) -> None:
        if grad.dtype != p.data.dtype:  # mixed-dtype fallback (rare)
            if self.momentum:
                v = self._velocity.get(id(p))
                if v is None:
                    v = self._velocity[id(p)] = np.zeros_like(p.data)
                v *= self.momentum
                v += grad
                step = grad + self.momentum * v if self.nesterov else v
            else:
                step = grad
            p.data -= self.lr * step
            return
        s, _ = self._scratch_pair(p)
        if self.momentum:
            v = self._velocity.get(id(p))
            if v is None:
                v = np.zeros_like(p.data)
                self._velocity[id(p)] = v
            v *= self.momentum
            v += grad
            if self.nesterov:
                np.multiply(v, self.momentum, out=s)  # momentum * v
                np.add(s, grad, out=s)                # grad + momentum * v
                step = s
            else:
                step = v
        else:
            step = grad
        # p.data -= lr * step, staged through scratch so ``grad`` (possibly
        # p.grad itself) is never written.
        np.multiply(step, self.lr, out=s)
        p.data -= s


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr, weight_decay)
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def _update(self, p: Tensor, grad: np.ndarray) -> None:
        # .get + fill on miss, not setdefault: setdefault evaluates its
        # zeros_like default on every call, allocating two dead buffers
        # per parameter per step.
        m = self._m.get(id(p))
        if m is None:
            m = self._m[id(p)] = np.zeros_like(p.data)
        v = self._v.get(id(p))
        if v is None:
            v = self._v[id(p)] = np.zeros_like(p.data)
        t = self.step_count
        if grad.dtype != p.data.dtype:  # mixed-dtype fallback (rare)
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad * grad
            m_hat = m / (1 - self.beta1 ** t)
            v_hat = v / (1 - self.beta2 ** t)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            return
        s1, s2 = self._scratch_pair(p)
        m *= self.beta1
        np.multiply(grad, 1 - self.beta1, out=s1)  # (1-b1) * grad
        m += s1
        v *= self.beta2
        np.multiply(grad, 1 - self.beta2, out=s2)  # ((1-b2) * grad) * grad,
        np.multiply(s2, grad, out=s2)              # same factor order as ref
        v += s2
        np.divide(m, 1 - self.beta1 ** t, out=s1)  # m_hat
        np.divide(v, 1 - self.beta2 ** t, out=s2)  # v_hat
        np.multiply(s1, self.lr, out=s1)           # lr * m_hat
        np.sqrt(s2, out=s2)
        s2 += self.eps
        np.divide(s1, s2, out=s1)
        p.data -= s1


class RMSProp(Optimizer):
    """RMSProp (Tieleman & Hinton)."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        rho: float = 0.9,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr, weight_decay)
        self.rho, self.eps = rho, eps
        self._sq: Dict[int, np.ndarray] = {}

    def _update(self, p: Tensor, grad: np.ndarray) -> None:
        sq = self._sq.get(id(p))
        if sq is None:  # avoid setdefault's per-call zeros_like
            sq = self._sq[id(p)] = np.zeros_like(p.data)
        if grad.dtype != p.data.dtype:  # mixed-dtype fallback (rare)
            sq *= self.rho
            sq += (1 - self.rho) * grad * grad
            p.data -= self.lr * grad / (np.sqrt(sq) + self.eps)
            return
        s1, s2 = self._scratch_pair(p)
        sq *= self.rho
        np.multiply(grad, 1 - self.rho, out=s1)  # ((1-rho) * grad) * grad
        np.multiply(s1, grad, out=s1)
        sq += s1
        np.multiply(grad, self.lr, out=s1)       # lr * grad
        np.sqrt(sq, out=s2)
        s2 += self.eps
        np.divide(s1, s2, out=s1)
        p.data -= s1


class AdaGrad(Optimizer):
    """AdaGrad — included for the HPO search-space experiments."""

    def __init__(self, params: Iterable[Tensor], lr: float = 0.01, eps: float = 1e-10, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr, weight_decay)
        self.eps = eps
        self._acc: Dict[int, np.ndarray] = {}

    def _update(self, p: Tensor, grad: np.ndarray) -> None:
        acc = self._acc.get(id(p))
        if acc is None:  # avoid setdefault's per-call zeros_like
            acc = self._acc[id(p)] = np.zeros_like(p.data)
        if grad.dtype != p.data.dtype:  # mixed-dtype fallback (rare)
            acc += grad * grad
            p.data -= self.lr * grad / (np.sqrt(acc) + self.eps)
            return
        s1, s2 = self._scratch_pair(p)
        np.multiply(grad, grad, out=s1)
        acc += s1
        np.multiply(grad, self.lr, out=s1)  # lr * grad
        np.sqrt(acc, out=s2)
        s2 += self.eps
        np.divide(s1, s2, out=s1)
        p.data -= s1


OPTIMIZERS = {
    "sgd": SGD,
    "adam": Adam,
    "rmsprop": RMSProp,
    "adagrad": AdaGrad,
}


def get(name: str):
    try:
        return OPTIMIZERS[name]
    except KeyError:
        raise ValueError(f"unknown optimizer {name!r}; choose from {sorted(OPTIMIZERS)}")
