"""Optimizers.

State (momentum buffers, Adam moments) lives in the optimizer, keyed by
parameter identity, so the same parameter list can be re-optimized after a
checkpoint restore.  All updates are in-place on ``param.data``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, params: Iterable[Tensor], lr: float, weight_decay: float = 0.0) -> None:
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.weight_decay = weight_decay
        self.step_count = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        self.step_count += 1
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            self._update(p, grad)

    def _update(self, p: Tensor, grad: np.ndarray) -> None:
        raise NotImplementedError

    def grad_norm(self) -> float:
        """Global L2 norm of all gradients (diagnostics / clipping)."""
        sq = 0.0
        for p in self.params:
            if p.grad is not None:
                sq += float(np.sum(p.grad.astype(np.float64) ** 2))
        return float(np.sqrt(sq))

    def clip_grad_norm(self, max_norm: float) -> float:
        """Scale all grads so the global norm is at most ``max_norm``."""
        norm = self.grad_norm()
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for p in self.params:
                if p.grad is not None:
                    p.grad *= scale
        return norm


class SGD(Optimizer):
    """SGD with optional (Nesterov) momentum."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr, weight_decay)
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov requires momentum > 0")
        self.momentum = momentum
        self.nesterov = nesterov
        self._velocity: Dict[int, np.ndarray] = {}

    def _update(self, p: Tensor, grad: np.ndarray) -> None:
        if self.momentum:
            v = self._velocity.get(id(p))
            if v is None:
                v = np.zeros_like(p.data)
                self._velocity[id(p)] = v
            v *= self.momentum
            v += grad
            step = grad + self.momentum * v if self.nesterov else v
        else:
            step = grad
        p.data -= self.lr * step


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr, weight_decay)
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def _update(self, p: Tensor, grad: np.ndarray) -> None:
        m = self._m.setdefault(id(p), np.zeros_like(p.data))
        v = self._v.setdefault(id(p), np.zeros_like(p.data))
        m *= self.beta1
        m += (1 - self.beta1) * grad
        v *= self.beta2
        v += (1 - self.beta2) * grad * grad
        t = self.step_count
        m_hat = m / (1 - self.beta1 ** t)
        v_hat = v / (1 - self.beta2 ** t)
        p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class RMSProp(Optimizer):
    """RMSProp (Tieleman & Hinton)."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        rho: float = 0.9,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr, weight_decay)
        self.rho, self.eps = rho, eps
        self._sq: Dict[int, np.ndarray] = {}

    def _update(self, p: Tensor, grad: np.ndarray) -> None:
        sq = self._sq.setdefault(id(p), np.zeros_like(p.data))
        sq *= self.rho
        sq += (1 - self.rho) * grad * grad
        p.data -= self.lr * grad / (np.sqrt(sq) + self.eps)


class AdaGrad(Optimizer):
    """AdaGrad — included for the HPO search-space experiments."""

    def __init__(self, params: Iterable[Tensor], lr: float = 0.01, eps: float = 1e-10, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr, weight_decay)
        self.eps = eps
        self._acc: Dict[int, np.ndarray] = {}

    def _update(self, p: Tensor, grad: np.ndarray) -> None:
        acc = self._acc.setdefault(id(p), np.zeros_like(p.data))
        acc += grad * grad
        p.data -= self.lr * grad / (np.sqrt(acc) + self.eps)


OPTIMIZERS = {
    "sgd": SGD,
    "adam": Adam,
    "rmsprop": RMSProp,
    "adagrad": AdaGrad,
}


def get(name: str):
    try:
        return OPTIMIZERS[name]
    except KeyError:
        raise ValueError(f"unknown optimizer {name!r}; choose from {sorted(OPTIMIZERS)}")
