"""Layer classes: stateful modules over the functional ops.

Layers follow a small protocol:

* ``__call__(x, training=...)`` runs the forward pass;
* ``parameters()`` yields trainable :class:`~repro.nn.tensor.Tensor` s;
* ``build(input_shape, rng)`` lazily materializes weights the first time
  the layer sees data, mirroring Keras' deferred-build semantics that the
  CANDLE benchmark definitions rely on.

Shapes are channels-first for convolutional layers: (N, C, L).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import functional as F
from . import init as initializers
from .tensor import Tensor


class Layer:
    """Base class for all layers."""

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name or type(self).__name__
        self.built = False

    # -- protocol ------------------------------------------------------
    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        self.built = True

    def forward(self, x: Tensor, training: bool = True) -> Tensor:
        raise NotImplementedError

    def __call__(self, x: Tensor, training: bool = True) -> Tensor:
        return self.forward(x, training=training)

    def parameters(self) -> Iterator[Tensor]:
        return iter(())

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Shape (excluding batch axis) this layer produces for ``input_shape``."""
        return input_shape

    def param_count(self) -> int:
        return sum(p.size for p in self.parameters())

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``."""

    def __init__(
        self,
        units: int,
        activation: Optional[str] = None,
        use_bias: bool = True,
        kernel_init: str = "glorot_uniform",
        name: Optional[str] = None,
        dtype=np.float64,
    ) -> None:
        super().__init__(name)
        if units <= 0:
            raise ValueError(f"units must be positive, got {units}")
        self.units = units
        self.activation = Activation(activation) if activation else None
        self.use_bias = use_bias
        self.kernel_init = kernel_init
        self.dtype = dtype
        self.weight: Optional[Tensor] = None
        self.bias: Optional[Tensor] = None

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        in_dim = input_shape[-1]
        init_fn = initializers.get(self.kernel_init)
        self.weight = Tensor(init_fn((in_dim, self.units), rng, dtype=self.dtype), requires_grad=True, name=f"{self.name}.W")
        if self.use_bias:
            self.bias = Tensor(np.zeros(self.units, dtype=self.dtype), requires_grad=True, name=f"{self.name}.b")
        self.built = True

    def forward(self, x: Tensor, training: bool = True) -> Tensor:
        kind = self.activation.kind if self.activation is not None else None
        if kind in (None, "relu", "tanh"):
            # Fused GEMM + bias + activation epilogue: one tape node.
            return F.linear_act(x, self.weight, self.bias, activation=kind)
        out = F.linear_act(x, self.weight, self.bias)
        return self.activation(out, training=training)

    def parameters(self) -> Iterator[Tensor]:
        yield self.weight
        if self.bias is not None:
            yield self.bias

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return input_shape[:-1] + (self.units,)


class Activation(Layer):
    """Named activation layer. Supported: relu, tanh, sigmoid, softmax,
    leaky_relu, elu, gelu, softplus, linear/None."""

    _FUNCS = {
        "relu": F.relu,
        "tanh": F.tanh,
        "sigmoid": F.sigmoid,
        "softmax": F.softmax,
        "leaky_relu": F.leaky_relu,
        "elu": F.elu,
        "gelu": F.gelu,
        "softplus": F.softplus,
        "linear": lambda x: x,
    }

    def __init__(self, kind: Optional[str], name: Optional[str] = None) -> None:
        super().__init__(name or f"Activation[{kind}]")
        kind = kind or "linear"
        if kind not in self._FUNCS:
            raise ValueError(f"unknown activation {kind!r}; choose from {sorted(self._FUNCS)}")
        self.kind = kind
        self.built = True

    def forward(self, x: Tensor, training: bool = True) -> Tensor:
        return self._FUNCS[self.kind](x)


class Dropout(Layer):
    """Inverted dropout; a no-op at eval time."""

    def __init__(self, rate: float, name: Optional[str] = None) -> None:
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng: Optional[np.random.Generator] = None

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        # Child generator so dropout masks don't perturb weight-init streams.
        self._rng = np.random.default_rng(rng.integers(2**63))
        self.built = True

    def forward(self, x: Tensor, training: bool = True) -> Tensor:
        if self._rng is None:
            self._rng = np.random.default_rng(0)
        return F.dropout(x, self.rate, self._rng, training=training)


class BatchNorm(Layer):
    """Batch normalization for (N, F) or (N, C, L) inputs."""

    def __init__(self, momentum: float = 0.1, eps: float = 1e-5, name: Optional[str] = None, dtype=np.float64) -> None:
        super().__init__(name)
        self.momentum = momentum
        self.eps = eps
        self.dtype = dtype
        self.gamma: Optional[Tensor] = None
        self.beta: Optional[Tensor] = None
        self.running_mean: Optional[np.ndarray] = None
        self.running_var: Optional[np.ndarray] = None
        self._axis: Tuple[int, ...] = (0,)

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        # input_shape excludes batch: (F,) dense, (C, L) conv1d, (C, H, W) conv2d.
        if len(input_shape) == 1:
            feat = input_shape[0]
            self._axis = (0,)
        elif len(input_shape) == 2:
            feat = input_shape[0]  # channels
            self._axis = (0, 2)
        elif len(input_shape) == 3:
            feat = input_shape[0]
            self._axis = (0, 2, 3)
        else:
            raise ValueError(f"BatchNorm supports 1-D..3-D feature shapes, got {input_shape}")
        self.gamma = Tensor(np.ones(feat, dtype=self.dtype), requires_grad=True, name=f"{self.name}.gamma")
        self.beta = Tensor(np.zeros(feat, dtype=self.dtype), requires_grad=True, name=f"{self.name}.beta")
        self.running_mean = np.zeros(feat, dtype=self.dtype)
        self.running_var = np.ones(feat, dtype=self.dtype)
        self.built = True

    def forward(self, x: Tensor, training: bool = True) -> Tensor:
        return F.batch_norm(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            momentum=self.momentum,
            eps=self.eps,
            training=training,
            axis=self._axis,
        )

    def parameters(self) -> Iterator[Tensor]:
        yield self.gamma
        yield self.beta


class LayerNorm(Layer):
    """Layer normalization over the last axis."""

    def __init__(self, eps: float = 1e-5, name: Optional[str] = None, dtype=np.float64) -> None:
        super().__init__(name)
        self.eps = eps
        self.dtype = dtype
        self.gamma: Optional[Tensor] = None
        self.beta: Optional[Tensor] = None

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        feat = input_shape[-1]
        self.gamma = Tensor(np.ones(feat, dtype=self.dtype), requires_grad=True, name=f"{self.name}.gamma")
        self.beta = Tensor(np.zeros(feat, dtype=self.dtype), requires_grad=True, name=f"{self.name}.beta")
        self.built = True

    def forward(self, x: Tensor, training: bool = True) -> Tensor:
        return F.layer_norm(x, self.gamma, self.beta, eps=self.eps)

    def parameters(self) -> Iterator[Tensor]:
        yield self.gamma
        yield self.beta


class Conv1D(Layer):
    """1-D convolution over (N, C, L) inputs."""

    def __init__(
        self,
        filters: int,
        kernel_size: int,
        stride: int = 1,
        padding: str = "valid",
        activation: Optional[str] = None,
        kernel_init: str = "he_uniform",
        name: Optional[str] = None,
        dtype=np.float64,
    ) -> None:
        super().__init__(name)
        if padding not in ("valid", "same"):
            raise ValueError(f"padding must be 'valid' or 'same', got {padding!r}")
        if padding == "same" and stride != 1:
            raise ValueError("padding='same' requires stride=1")
        self.filters = filters
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.activation = Activation(activation) if activation else None
        self.kernel_init = kernel_init
        self.dtype = dtype
        self.weight: Optional[Tensor] = None
        self.bias: Optional[Tensor] = None

    def _pad_amount(self) -> int:
        return (self.kernel_size - 1) // 2 if self.padding == "same" else 0

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        c_in = input_shape[0]
        init_fn = initializers.get(self.kernel_init)
        self.weight = Tensor(
            init_fn((self.filters, c_in, self.kernel_size), rng, dtype=self.dtype),
            requires_grad=True,
            name=f"{self.name}.W",
        )
        self.bias = Tensor(np.zeros(self.filters, dtype=self.dtype), requires_grad=True, name=f"{self.name}.b")
        self.built = True

    def forward(self, x: Tensor, training: bool = True) -> Tensor:
        kind = self.activation.kind if self.activation is not None else None
        if kind in ("relu", "tanh"):
            # Fuse the activation epilogue into the conv node.
            return F.conv1d(
                x, self.weight, self.bias,
                stride=self.stride, padding=self._pad_amount(), activation=kind,
            )
        out = F.conv1d(x, self.weight, self.bias, stride=self.stride, padding=self._pad_amount())
        if self.activation is not None:
            out = self.activation(out, training=training)
        return out

    def parameters(self) -> Iterator[Tensor]:
        yield self.weight
        yield self.bias

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        _, length = input_shape
        pad = self._pad_amount()
        l_out = (length + 2 * pad - self.kernel_size) // self.stride + 1
        if self.padding == "same" and self.kernel_size % 2 == 1:
            l_out = length
        return (self.filters, l_out)


class MaxPool1D(Layer):
    def __init__(self, pool_size: int, stride: Optional[int] = None, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.pool_size = pool_size
        self.stride = stride or pool_size
        self.built = True

    def forward(self, x: Tensor, training: bool = True) -> Tensor:
        return F.maxpool1d(x, self.pool_size, self.stride)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, length = input_shape
        return (c, (length - self.pool_size) // self.stride + 1)


class AvgPool1D(Layer):
    def __init__(self, pool_size: int, stride: Optional[int] = None, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.pool_size = pool_size
        self.stride = stride or pool_size
        self.built = True

    def forward(self, x: Tensor, training: bool = True) -> Tensor:
        return F.avgpool1d(x, self.pool_size, self.stride)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, length = input_shape
        return (c, (length - self.pool_size) // self.stride + 1)


class Flatten(Layer):
    """Collapse all non-batch axes."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.built = True

    def forward(self, x: Tensor, training: bool = True) -> Tensor:
        return x.flatten()

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (int(np.prod(input_shape)),)


class Embedding(Layer):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, vocab_size: int, dim: int, name: Optional[str] = None, dtype=np.float64) -> None:
        super().__init__(name)
        self.vocab_size = vocab_size
        self.dim = dim
        self.dtype = dtype
        self.weight: Optional[Tensor] = None

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        self.weight = Tensor(
            (rng.standard_normal((self.vocab_size, self.dim)) * 0.05).astype(self.dtype),
            requires_grad=True,
            name=f"{self.name}.E",
        )
        self.built = True

    def forward(self, x, training: bool = True) -> Tensor:
        indices = x.data if isinstance(x, Tensor) else np.asarray(x)
        return F.embedding(self.weight, indices.astype(np.int64))

    def parameters(self) -> Iterator[Tensor]:
        yield self.weight

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return input_shape + (self.dim,)


class Conv2D(Layer):
    """2-D convolution over (N, C, H, W) inputs (tumor-imaging workloads)."""

    def __init__(
        self,
        filters: int,
        kernel_size: int,
        stride: int = 1,
        padding: str = "valid",
        activation: Optional[str] = None,
        kernel_init: str = "he_uniform",
        name: Optional[str] = None,
        dtype=np.float64,
    ) -> None:
        super().__init__(name)
        if padding not in ("valid", "same"):
            raise ValueError(f"padding must be 'valid' or 'same', got {padding!r}")
        if padding == "same" and stride != 1:
            raise ValueError("padding='same' requires stride=1")
        self.filters = filters
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.activation = Activation(activation) if activation else None
        self.kernel_init = kernel_init
        self.dtype = dtype
        self.weight: Optional[Tensor] = None
        self.bias: Optional[Tensor] = None

    def _pad_amount(self) -> int:
        return (self.kernel_size - 1) // 2 if self.padding == "same" else 0

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        c_in = input_shape[0]
        init_fn = initializers.get(self.kernel_init)
        # _fans treats trailing axes as receptive field; flatten kh*kw.
        w = init_fn((self.filters, c_in, self.kernel_size * self.kernel_size), rng, dtype=self.dtype)
        self.weight = Tensor(
            w.reshape(self.filters, c_in, self.kernel_size, self.kernel_size),
            requires_grad=True,
            name=f"{self.name}.W",
        )
        self.bias = Tensor(np.zeros(self.filters, dtype=self.dtype), requires_grad=True, name=f"{self.name}.b")
        self.built = True

    def forward(self, x: Tensor, training: bool = True) -> Tensor:
        kind = self.activation.kind if self.activation is not None else None
        if kind in ("relu", "tanh"):
            # Fuse the activation epilogue into the conv node.
            return F.conv2d(
                x, self.weight, self.bias,
                stride=self.stride, padding=self._pad_amount(), activation=kind,
            )
        out = F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self._pad_amount())
        if self.activation is not None:
            out = self.activation(out, training=training)
        return out

    def parameters(self) -> Iterator[Tensor]:
        yield self.weight
        yield self.bias

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        _, h, w = input_shape
        pad = self._pad_amount()
        h_out = (h + 2 * pad - self.kernel_size) // self.stride + 1
        w_out = (w + 2 * pad - self.kernel_size) // self.stride + 1
        if self.padding == "same" and self.kernel_size % 2 == 1:
            h_out, w_out = h, w
        return (self.filters, h_out, w_out)


class MaxPool2D(Layer):
    def __init__(self, pool_size: int, stride: Optional[int] = None, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.pool_size = pool_size
        self.stride = stride or pool_size
        self.built = True

    def forward(self, x: Tensor, training: bool = True) -> Tensor:
        return F.maxpool2d(x, self.pool_size, self.stride)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        return (
            c,
            (h - self.pool_size) // self.stride + 1,
            (w - self.pool_size) // self.stride + 1,
        )


class GlobalAvgPool2D(Layer):
    """(N, C, H, W) -> (N, C), the standard conv-net head reducer."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.built = True

    def forward(self, x: Tensor, training: bool = True) -> Tensor:
        return F.global_avgpool2d(x)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (input_shape[0],)
