"""Autocast state for dtype-aware fused kernels (reduced precision).

This module is the *mechanism* half of ``repro.precision.autocast``: a
module-global cast plan that the fused kernels in
:mod:`repro.nn.functional` consult on every call.  It lives under
``repro.nn`` (not ``repro.precision``) so ``functional.py`` can import it
without a package cycle — ``repro.precision`` imports ``repro.nn.model``,
which imports ``layers``, which imports ``functional``.

Design (the standard mixed-precision recipe, emulated on NumPy):

* **Storage dtype** is the narrow format: native ``np.float16`` for fp16;
  for bf16 (which NumPy has no dtype for) storage is ``float32`` arrays
  whose values are snapped to the bf16-representable grid — exactly the
  values a bf16 register file would hold, at float32 speed.
* **Compute dtype** is ``float32``: every GEMM upcasts its narrow inputs
  and accumulates in fp32, mirroring real mixed-precision hardware
  (fp16/bf16 multiplies, fp32 accumulators).
* **Weight gradients stay fp32** (master precision) so the optimizer
  updates full-precision master weights; *activation* gradients are
  snapped back to the narrow grid, keeping the backward datapath narrow.

With no plan active (`_ACTIVE is None`) every kernel takes one global
read and an ``is None`` branch — the fp64 path is unchanged.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def snap_bf16_(a: np.ndarray) -> np.ndarray:
    """Round a C-contiguous float32 array to the bf16 grid *in place*.

    Round-to-nearest-even on the float32 bit pattern (same semantics as
    :func:`repro.precision.rounding.round_bf16`, without the float64
    round-trip): add ``0x7FFF`` plus the LSB of the kept half, truncate.
    ±inf and NaN are fixed points of this update.
    """
    bits = a.view(np.uint32)
    lsb = (bits >> 16) & np.uint32(1)
    bits += np.uint32(0x7FFF) + lsb
    bits &= np.uint32(0xFFFF0000)
    return a


def snap_bf16(a: np.ndarray) -> np.ndarray:
    """Copying variant of :func:`snap_bf16_` accepting any float array."""
    buf = np.ascontiguousarray(a, dtype=np.float32)
    if buf is a:  # never snap the caller's buffer
        buf = buf.copy()
    return snap_bf16_(buf)


class CastPlan:
    """How one narrow format maps onto NumPy storage + fp32 compute.

    ``snap`` casts an array to narrow *storage*; ``to_compute`` lifts
    storage to the fp32 compute dtype; ``cast_in`` fuses both for kernel
    inputs (snap-to-grid, then widen).  ``snap_out`` converts a freshly
    allocated fp32 GEMM output to storage, destroying its buffer when
    that is free (bf16 snaps in place).
    """

    compute_dtype = np.float32

    def __init__(self, name: str) -> None:
        self.name = name

    def snap(self, a: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def to_compute(self, a: np.ndarray) -> np.ndarray:
        return a.astype(np.float32) if a.dtype != np.float32 else a

    def cast_in(self, a: np.ndarray) -> np.ndarray:
        return self.to_compute(self.snap(a))

    def snap_out(self, fresh_f32: np.ndarray) -> np.ndarray:
        return self.snap(fresh_f32)


class _Bf16Plan(CastPlan):
    def __init__(self) -> None:
        super().__init__("bf16")

    def snap(self, a: np.ndarray) -> np.ndarray:
        return snap_bf16(a)

    def cast_in(self, a: np.ndarray) -> np.ndarray:
        return snap_bf16(a)  # grid values are float32: already compute-ready

    def snap_out(self, fresh_f32: np.ndarray) -> np.ndarray:
        # The GEMM output is a fresh contiguous fp32 buffer nobody else
        # references — snap it in place instead of copying.
        return snap_bf16_(fresh_f32)


class _Fp16Plan(CastPlan):
    def __init__(self) -> None:
        super().__init__("fp16")

    def snap(self, a: np.ndarray) -> np.ndarray:
        if a.dtype == np.float16:
            return a
        with np.errstate(over="ignore"):  # saturate to ±inf like the rounder
            return a.astype(np.float16)

    def cast_in(self, a: np.ndarray) -> np.ndarray:
        if a.dtype == np.float16:
            return a.astype(np.float32)
        with np.errstate(over="ignore"):
            return a.astype(np.float16).astype(np.float32)


_PLANS = {"bf16": _Bf16Plan(), "fp16": _Fp16Plan()}

_ACTIVE: Optional[CastPlan] = None


def get_plan(fmt: str) -> CastPlan:
    try:
        return _PLANS[fmt]
    except KeyError:
        raise ValueError(f"unknown autocast format {fmt!r}; choose from {sorted(_PLANS)}")


def active() -> Optional[CastPlan]:
    """The cast plan the fused kernels should apply, or None (full path)."""
    return _ACTIVE


class autocast:
    """Context manager enabling the narrow datapath for fused kernels.

    Reentrant (plans nest/restore); the kernels it affects are
    ``linear_act``, ``conv1d``, ``conv2d``, and ``softmax_cross_entropy``
    — the GEMM-bearing ops.  Everything else runs in whatever dtype its
    inputs carry (fp32 under :meth:`repro.nn.Model.fit` with
    ``precision=``), which is exactly the mixed-precision contract.
    """

    def __init__(self, fmt: str) -> None:
        self.plan = get_plan(fmt) if isinstance(fmt, str) else fmt
        self._prev: Optional[CastPlan] = None

    def __enter__(self) -> "autocast":
        global _ACTIVE
        self._prev = _ACTIVE
        _ACTIVE = self.plan
        return self

    def __exit__(self, *exc) -> None:
        global _ACTIVE
        _ACTIVE = self._prev
