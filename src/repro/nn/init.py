"""Weight initializers.

Every initializer takes an ``np.random.Generator`` so model construction is
fully reproducible from a single seed (see :mod:`repro.utils.rng`).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """(fan_in, fan_out) following the Keras convention.

    Dense (in, out): fan_in=in, fan_out=out.
    Conv1D (out_ch, in_ch, k): fan_in=in_ch*k, fan_out=out_ch*k.
    """
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 3:
        receptive = shape[2]
        return shape[1] * receptive, shape[0] * receptive
    n = int(np.prod(shape))
    return n, n


def glorot_uniform(shape, rng: np.random.Generator, dtype=np.float64) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = sqrt(6/(fan_in+fan_out))."""
    fan_in, fan_out = _fans(tuple(shape))
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(dtype)


def glorot_normal(shape, rng: np.random.Generator, dtype=np.float64) -> np.ndarray:
    fan_in, fan_out = _fans(tuple(shape))
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return (rng.standard_normal(shape) * std).astype(dtype)


def he_uniform(shape, rng: np.random.Generator, dtype=np.float64) -> np.ndarray:
    """He uniform, the right choice ahead of ReLU nonlinearities."""
    fan_in, _ = _fans(tuple(shape))
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape).astype(dtype)


def he_normal(shape, rng: np.random.Generator, dtype=np.float64) -> np.ndarray:
    fan_in, _ = _fans(tuple(shape))
    std = np.sqrt(2.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(dtype)


def lecun_normal(shape, rng: np.random.Generator, dtype=np.float64) -> np.ndarray:
    fan_in, _ = _fans(tuple(shape))
    std = np.sqrt(1.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(dtype)


def zeros(shape, rng: np.random.Generator = None, dtype=np.float64) -> np.ndarray:
    return np.zeros(shape, dtype=dtype)


def ones(shape, rng: np.random.Generator = None, dtype=np.float64) -> np.ndarray:
    return np.ones(shape, dtype=dtype)


INITIALIZERS = {
    "glorot_uniform": glorot_uniform,
    "glorot_normal": glorot_normal,
    "he_uniform": he_uniform,
    "he_normal": he_normal,
    "lecun_normal": lecun_normal,
    "zeros": zeros,
    "ones": ones,
}


def get(name: str):
    """Look up an initializer by name."""
    try:
        return INITIALIZERS[name]
    except KeyError:
        raise ValueError(f"unknown initializer {name!r}; choose from {sorted(INITIALIZERS)}")
