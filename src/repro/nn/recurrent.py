"""Recurrent layers: SimpleRNN and GRU (backprop-through-time via the tape).

The CANDLE pilot-3 family includes sequence models over clinical text
(P3B2); these layers provide that capability.  Inputs are (N, T, F);
the layer returns the final hidden state (N, H) or, with
``return_sequences=True``, all states (N, T, H).

The autograd tape unrolls naturally over time steps — no special BPTT
machinery is needed (the engine's iterative topological sort handles the
long chains).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from . import init as initializers
from .layers import Layer
from .tensor import Tensor, concatenate, stack


class SimpleRNN(Layer):
    """Elman RNN: h_t = tanh(x_t @ Wx + h_{t-1} @ Wh + b)."""

    def __init__(
        self,
        units: int,
        return_sequences: bool = False,
        kernel_init: str = "glorot_uniform",
        name: Optional[str] = None,
        dtype=np.float64,
    ) -> None:
        super().__init__(name)
        if units <= 0:
            raise ValueError("units must be positive")
        self.units = units
        self.return_sequences = return_sequences
        self.kernel_init = kernel_init
        self.dtype = dtype
        self.wx: Optional[Tensor] = None
        self.wh: Optional[Tensor] = None
        self.bias: Optional[Tensor] = None

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        # input_shape = (T, F)
        if len(input_shape) != 2:
            raise ValueError(f"recurrent layers need (T, F) features, got {input_shape}")
        f = input_shape[-1]
        init_fn = initializers.get(self.kernel_init)
        self.wx = Tensor(init_fn((f, self.units), rng, dtype=self.dtype), requires_grad=True, name=f"{self.name}.Wx")
        # Orthogonal-ish recurrent init: QR of a Gaussian.
        q, _ = np.linalg.qr(rng.standard_normal((self.units, self.units)))
        self.wh = Tensor(q.astype(self.dtype), requires_grad=True, name=f"{self.name}.Wh")
        self.bias = Tensor(np.zeros(self.units, dtype=self.dtype), requires_grad=True, name=f"{self.name}.b")
        self.built = True

    def forward(self, x: Tensor, training: bool = True) -> Tensor:
        n, t, _ = x.shape
        h = Tensor(np.zeros((n, self.units), dtype=self.dtype))
        states: List[Tensor] = []
        for step in range(t):
            xt = x[:, step, :]
            h = F.tanh(xt @ self.wx + h @ self.wh + self.bias)
            if self.return_sequences:
                states.append(h)
        if self.return_sequences:
            return stack(states, axis=1)
        return h

    def parameters(self) -> Iterator[Tensor]:
        yield self.wx
        yield self.wh
        yield self.bias

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        t, _ = input_shape
        return (t, self.units) if self.return_sequences else (self.units,)


class GRU(Layer):
    """Gated recurrent unit (Cho et al. 2014).

    z_t = sigmoid(x Wxz + h Whz + bz)         (update gate)
    r_t = sigmoid(x Wxr + h Whr + br)         (reset gate)
    n_t = tanh(x Wxn + (r * h) Whn + bn)      (candidate)
    h_t = (1 - z) * n + z * h
    """

    def __init__(
        self,
        units: int,
        return_sequences: bool = False,
        kernel_init: str = "glorot_uniform",
        name: Optional[str] = None,
        dtype=np.float64,
    ) -> None:
        super().__init__(name)
        if units <= 0:
            raise ValueError("units must be positive")
        self.units = units
        self.return_sequences = return_sequences
        self.kernel_init = kernel_init
        self.dtype = dtype
        self._params: List[Tensor] = []

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 2:
            raise ValueError(f"recurrent layers need (T, F) features, got {input_shape}")
        f = input_shape[-1]
        u = self.units
        init_fn = initializers.get(self.kernel_init)

        def make(shape, label):
            t = Tensor(init_fn(shape, rng, dtype=self.dtype), requires_grad=True, name=f"{self.name}.{label}")
            self._params.append(t)
            return t

        def make_rec(label):
            q, _ = np.linalg.qr(rng.standard_normal((u, u)))
            t = Tensor(q.astype(self.dtype), requires_grad=True, name=f"{self.name}.{label}")
            self._params.append(t)
            return t

        def make_bias(label):
            t = Tensor(np.zeros(u, dtype=self.dtype), requires_grad=True, name=f"{self.name}.{label}")
            self._params.append(t)
            return t

        self.wxz, self.whz, self.bz = make((f, u), "Wxz"), make_rec("Whz"), make_bias("bz")
        self.wxr, self.whr, self.br = make((f, u), "Wxr"), make_rec("Whr"), make_bias("br")
        self.wxn, self.whn, self.bn = make((f, u), "Wxn"), make_rec("Whn"), make_bias("bn")
        self.built = True

    def forward(self, x: Tensor, training: bool = True) -> Tensor:
        n, t, _ = x.shape
        h = Tensor(np.zeros((n, self.units), dtype=self.dtype))
        states: List[Tensor] = []
        for step in range(t):
            xt = x[:, step, :]
            z = F.sigmoid(xt @ self.wxz + h @ self.whz + self.bz)
            r = F.sigmoid(xt @ self.wxr + h @ self.whr + self.br)
            cand = F.tanh(xt @ self.wxn + (r * h) @ self.whn + self.bn)
            h = (1.0 - z) * cand + z * h
            if self.return_sequences:
                states.append(h)
        if self.return_sequences:
            return stack(states, axis=1)
        return h

    def parameters(self) -> Iterator[Tensor]:
        return iter(self._params)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        t, _ = input_shape
        return (t, self.units) if self.return_sequences else (self.units,)


class LSTM(Layer):
    """Long short-term memory (Hochreiter & Schmidhuber).

    i, f, o = sigmoid(x Wx* + h Wh* + b*);  g = tanh(x Wxg + h Whg + bg)
    c_t = f * c + i * g;  h_t = o * tanh(c_t)

    Forget-gate bias initialized to 1 (the standard trick that keeps the
    cell state alive early in training).
    """

    def __init__(
        self,
        units: int,
        return_sequences: bool = False,
        kernel_init: str = "glorot_uniform",
        name: Optional[str] = None,
        dtype=np.float64,
    ) -> None:
        super().__init__(name)
        if units <= 0:
            raise ValueError("units must be positive")
        self.units = units
        self.return_sequences = return_sequences
        self.kernel_init = kernel_init
        self.dtype = dtype
        self._params: List[Tensor] = []

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 2:
            raise ValueError(f"recurrent layers need (T, F) features, got {input_shape}")
        f = input_shape[-1]
        u = self.units
        init_fn = initializers.get(self.kernel_init)

        def make(shape, label):
            t = Tensor(init_fn(shape, rng, dtype=self.dtype), requires_grad=True, name=f"{self.name}.{label}")
            self._params.append(t)
            return t

        def make_rec(label):
            q, _ = np.linalg.qr(rng.standard_normal((u, u)))
            t = Tensor(q.astype(self.dtype), requires_grad=True, name=f"{self.name}.{label}")
            self._params.append(t)
            return t

        def make_bias(label, value=0.0):
            t = Tensor(np.full(u, value, dtype=self.dtype), requires_grad=True, name=f"{self.name}.{label}")
            self._params.append(t)
            return t

        self.wxi, self.whi, self.bi = make((f, u), "Wxi"), make_rec("Whi"), make_bias("bi")
        self.wxf, self.whf, self.bf = make((f, u), "Wxf"), make_rec("Whf"), make_bias("bf", 1.0)
        self.wxo, self.who, self.bo = make((f, u), "Wxo"), make_rec("Who"), make_bias("bo")
        self.wxg, self.whg, self.bg = make((f, u), "Wxg"), make_rec("Whg"), make_bias("bg")
        self.built = True

    def forward(self, x: Tensor, training: bool = True) -> Tensor:
        n, t, _ = x.shape
        h = Tensor(np.zeros((n, self.units), dtype=self.dtype))
        c = Tensor(np.zeros((n, self.units), dtype=self.dtype))
        states: List[Tensor] = []
        for step in range(t):
            xt = x[:, step, :]
            i = F.sigmoid(xt @ self.wxi + h @ self.whi + self.bi)
            f_gate = F.sigmoid(xt @ self.wxf + h @ self.whf + self.bf)
            o = F.sigmoid(xt @ self.wxo + h @ self.who + self.bo)
            g = F.tanh(xt @ self.wxg + h @ self.whg + self.bg)
            c = f_gate * c + i * g
            h = o * F.tanh(c)
            if self.return_sequences:
                states.append(h)
        if self.return_sequences:
            return stack(states, axis=1)
        return h

    def parameters(self) -> Iterator[Tensor]:
        return iter(self._params)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        t, _ = input_shape
        return (t, self.units) if self.return_sequences else (self.units,)
