"""From-scratch NumPy deep-learning framework.

The substrate every CANDLE-style benchmark in :mod:`repro.candle` runs on:
reverse-mode autograd (:mod:`repro.nn.tensor`), differentiable ops
(:mod:`repro.nn.functional`), Keras-style layers and models, optimizers,
schedules, losses and metrics.
"""

from . import functional
from . import init
from . import losses
from . import metrics
from . import optim
from . import schedules
from . import serialization
from .serialization import (
    atomic_savez,
    load_checkpoint,
    load_training_state,
    load_weights,
    restore_rng,
    rng_state,
    save_checkpoint,
    save_training_state,
    save_weights,
)
from .dataloader import DataLoader, shard, train_val_split
from .layers import (
    Activation,
    AvgPool1D,
    BatchNorm,
    Conv1D,
    Conv2D,
    Dense,
    Dropout,
    Embedding,
    Flatten,
    GlobalAvgPool2D,
    Layer,
    LayerNorm,
    MaxPool1D,
    MaxPool2D,
)
from .model import History, Model, Sequential
from .gradcheck import gradient_check, numerical_gradient
from .recurrent import GRU, LSTM, SimpleRNN
from .optim import SGD, AdaGrad, Adam, Optimizer, RMSProp
from .schedules import (
    Constant,
    CosineAnnealing,
    ExponentialDecay,
    ScheduledOptimizer,
    StepDecay,
    WarmupCosine,
)
from .tensor import (
    Tensor,
    concatenate,
    no_grad,
    ones,
    stack,
    tape_node_count,
    tensor,
    zeros,
)

__all__ = [
    "Tensor", "tensor", "zeros", "ones", "concatenate", "stack", "no_grad",
    "tape_node_count",
    "functional", "init", "losses", "metrics", "optim", "schedules",
    "Layer", "Dense", "Activation", "Dropout", "BatchNorm", "LayerNorm",
    "Conv1D", "MaxPool1D", "AvgPool1D", "Flatten", "Embedding",
    "Conv2D", "MaxPool2D", "GlobalAvgPool2D", "SimpleRNN", "GRU", "LSTM",
    "gradient_check", "numerical_gradient",
    "Model", "Sequential", "History",
    "Optimizer", "SGD", "Adam", "RMSProp", "AdaGrad",
    "Constant", "StepDecay", "ExponentialDecay", "CosineAnnealing",
    "WarmupCosine", "ScheduledOptimizer",
    "DataLoader", "shard", "train_val_split",
    "serialization", "save_weights", "load_weights", "save_checkpoint", "load_checkpoint",
    "save_training_state", "load_training_state", "atomic_savez", "rng_state", "restore_rng",
]
