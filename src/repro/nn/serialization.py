"""Model checkpointing: save/load weights (and optimizer state) as .npz.

Long CANDLE-style campaigns checkpoint between hyperparameter-search
rungs (Hyperband promotions resume training) and across job boundaries;
this module provides that persistence for any :class:`repro.nn.Model`.

:func:`save_training_state` / :func:`load_training_state` extend the
basic checkpoint with everything a *resumable* training loop needs —
epoch/step cursor, data-order RNG state, epoch permutation, history —
written atomically (write-tmp-then-rename) so a crash mid-write can
never leave a truncated checkpoint behind (the resilience runtime in
:mod:`repro.resilience` restarts from these).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from .model import Model
from .optim import Adam, Optimizer, RMSProp, SGD


def save_weights(model: Model, path: Union[str, Path], metadata: Optional[Dict] = None) -> None:
    """Write all model parameters (ordered) plus optional JSON metadata."""
    path = Path(path)
    weights = model.get_weights()
    arrays = {f"param_{i:04d}": w for i, w in enumerate(weights)}
    arrays["_meta"] = np.frombuffer(
        json.dumps({"n_params": len(weights), "metadata": metadata or {}}).encode(), dtype=np.uint8
    )
    np.savez(path, **arrays)


def load_weights(model: Model, path: Union[str, Path]) -> Dict:
    """Restore parameters saved by :func:`save_weights`; returns metadata.

    The model must already be built with matching shapes.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as data:
        meta = json.loads(bytes(data["_meta"]).decode())
        n = meta["n_params"]
        weights = [data[f"param_{i:04d}"] for i in range(n)]
    model.set_weights(weights)
    return meta["metadata"]


def unwrap_optimizer(optimizer):
    """Follow ``.optimizer`` links (e.g. :class:`ScheduledOptimizer`)
    down to the base :class:`Optimizer` that owns the moment state."""
    seen = set()
    while optimizer is not None and not isinstance(optimizer, Optimizer):
        inner = getattr(optimizer, "optimizer", None)
        if inner is None or id(optimizer) in seen:
            break
        seen.add(id(optimizer))
        optimizer = inner
    return optimizer


def _pack_optimizer(optimizer: Optional[Optimizer], arrays: Dict[str, np.ndarray]) -> Dict:
    """Append optimizer moment arrays to ``arrays``; return the JSON header."""
    optimizer = unwrap_optimizer(optimizer)
    opt_state: Dict = {"type": None}
    if optimizer is not None:
        opt_state["type"] = type(optimizer).__name__
        opt_state["lr"] = optimizer.lr
        opt_state["step_count"] = optimizer.step_count
        params = optimizer.params
        if isinstance(optimizer, Adam):
            for i, p in enumerate(params):
                if id(p) in optimizer._m:
                    arrays[f"adam_m_{i:04d}"] = optimizer._m[id(p)]
                    arrays[f"adam_v_{i:04d}"] = optimizer._v[id(p)]
        elif isinstance(optimizer, RMSProp):
            for i, p in enumerate(params):
                if id(p) in optimizer._sq:
                    arrays[f"rms_sq_{i:04d}"] = optimizer._sq[id(p)]
        elif isinstance(optimizer, SGD) and optimizer.momentum:
            for i, p in enumerate(params):
                if id(p) in optimizer._velocity:
                    arrays[f"sgd_v_{i:04d}"] = optimizer._velocity[id(p)]
    return opt_state


def _unpack_optimizer(optimizer: Optional[Optimizer], opt_state: Dict, data) -> None:
    """Restore optimizer moments saved by :func:`_pack_optimizer`.

    The restore is *exact*: moments absent from the snapshot are cleared,
    not kept — a run restored to a pre-first-step snapshot must not carry
    stale moments from the incarnation that died.
    """
    optimizer = unwrap_optimizer(optimizer)
    if optimizer is None or opt_state.get("type") != type(optimizer).__name__:
        return
    optimizer.lr = opt_state["lr"]
    optimizer.step_count = opt_state["step_count"]
    params = optimizer.params
    if isinstance(optimizer, Adam):
        optimizer._m.clear()
        optimizer._v.clear()
        for i, p in enumerate(params):
            key = f"adam_m_{i:04d}"
            if key in data:
                optimizer._m[id(p)] = data[key].copy()
                optimizer._v[id(p)] = data[f"adam_v_{i:04d}"].copy()
    elif isinstance(optimizer, RMSProp):
        optimizer._sq.clear()
        for i, p in enumerate(params):
            key = f"rms_sq_{i:04d}"
            if key in data:
                optimizer._sq[id(p)] = data[key].copy()
    elif isinstance(optimizer, SGD):
        optimizer._velocity.clear()
        for i, p in enumerate(params):
            key = f"sgd_v_{i:04d}"
            if key in data:
                optimizer._velocity[id(p)] = data[key].copy()


def atomic_savez(path: Union[str, Path], arrays: Dict[str, np.ndarray]) -> Path:
    """Write an .npz atomically: savez to a temp file, then rename.

    ``os.replace`` is atomic on POSIX, so readers either see the previous
    complete checkpoint or the new complete one — never a torn write.
    Returns the final path (with the ``.npz`` suffix ``np.savez`` adds).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    fd, tmp_name = tempfile.mkstemp(suffix=".npz", dir=path.parent, prefix=".tmp_ckpt_")
    os.close(fd)
    try:
        with open(tmp_name, "wb") as fh:
            np.savez(fh, **arrays)
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise
    return path


def save_checkpoint(
    model: Model,
    optimizer: Optional[Optimizer],
    path: Union[str, Path],
    epoch: int = 0,
    metadata: Optional[Dict] = None,
) -> None:
    """Full training checkpoint: weights + optimizer moments + epoch."""
    path = Path(path)
    arrays: Dict[str, np.ndarray] = {}
    weights = model.get_weights()
    for i, w in enumerate(weights):
        arrays[f"param_{i:04d}"] = w
    opt_state = _pack_optimizer(optimizer, arrays)
    header = {
        "n_params": len(weights),
        "epoch": epoch,
        "optimizer": opt_state,
        "metadata": metadata or {},
    }
    arrays["_meta"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
    np.savez(path, **arrays)


def load_checkpoint(model: Model, optimizer: Optional[Optimizer], path: Union[str, Path]) -> Dict:
    """Restore a checkpoint written by :func:`save_checkpoint`.

    Returns the header dict (epoch, metadata...).  Optimizer state is
    restored when the optimizer type matches what was saved.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as data:
        header = json.loads(bytes(data["_meta"]).decode())
        n = header["n_params"]
        model.set_weights([data[f"param_{i:04d}"] for i in range(n)])
        _unpack_optimizer(optimizer, header.get("optimizer", {}), data)
    return header


def rng_state(rng: np.random.Generator) -> Dict:
    """JSON-serializable snapshot of a Generator's bit-generator state."""
    return rng.bit_generator.state


def restore_rng(state: Dict) -> np.random.Generator:
    """Reconstruct a Generator bit-identical to the one snapshotted."""
    bit_gen_cls = getattr(np.random, state["bit_generator"])
    gen = np.random.Generator(bit_gen_cls())
    gen.bit_generator.state = state
    return gen


def save_training_state(
    model: Model,
    optimizer: Optional[Optimizer],
    path: Union[str, Path],
    *,
    epoch: int = 0,
    step: int = 0,
    global_step: int = 0,
    rng: Optional[np.random.Generator] = None,
    extra_arrays: Optional[Dict[str, np.ndarray]] = None,
    history: Optional[List[Dict[str, float]]] = None,
    metadata: Optional[Dict] = None,
) -> Path:
    """Atomic, fully-resumable training snapshot.

    Beyond :func:`save_checkpoint` this captures the position *inside*
    training — (epoch, step-in-epoch, global step), the shuffle RNG's
    exact bit-generator state, arbitrary extra arrays (e.g. the current
    epoch's permutation), and the per-epoch history so a resumed run
    replays nothing and reports a seamless record.  Written with
    :func:`atomic_savez`; returns the final checkpoint path.
    """
    arrays: Dict[str, np.ndarray] = {}
    weights = model.get_weights()
    for i, w in enumerate(weights):
        arrays[f"param_{i:04d}"] = w
    opt_state = _pack_optimizer(optimizer, arrays)
    for key, arr in (extra_arrays or {}).items():
        arrays[f"extra_{key}"] = np.asarray(arr)
    header = {
        "n_params": len(weights),
        "epoch": epoch,
        "step": step,
        "global_step": global_step,
        "optimizer": opt_state,
        "rng": rng_state(rng) if rng is not None else None,
        "history": history or [],
        "extra_keys": sorted((extra_arrays or {}).keys()),
        "metadata": metadata or {},
    }
    arrays["_meta"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
    return atomic_savez(path, arrays)


def load_training_state(
    model: Model,
    optimizer: Optional[Optimizer],
    path: Union[str, Path],
) -> Dict:
    """Restore a snapshot written by :func:`save_training_state`.

    Returns the header with two additions: ``"rng"`` is replaced by a
    restored ``np.random.Generator`` (or None) and ``"extra"`` maps the
    saved extra-array names to their arrays.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as data:
        header = json.loads(bytes(data["_meta"]).decode())
        n = header["n_params"]
        model.set_weights([data[f"param_{i:04d}"] for i in range(n)])
        _unpack_optimizer(optimizer, header.get("optimizer", {}), data)
        header["extra"] = {key: data[f"extra_{key}"].copy() for key in header.get("extra_keys", [])}
    header["rng"] = restore_rng(header["rng"]) if header.get("rng") else None
    return header
