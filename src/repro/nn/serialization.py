"""Model checkpointing: save/load weights (and optimizer state) as .npz.

Long CANDLE-style campaigns checkpoint between hyperparameter-search
rungs (Hyperband promotions resume training) and across job boundaries;
this module provides that persistence for any :class:`repro.nn.Model`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from .model import Model
from .optim import Adam, Optimizer, RMSProp, SGD


def save_weights(model: Model, path: Union[str, Path], metadata: Optional[Dict] = None) -> None:
    """Write all model parameters (ordered) plus optional JSON metadata."""
    path = Path(path)
    weights = model.get_weights()
    arrays = {f"param_{i:04d}": w for i, w in enumerate(weights)}
    arrays["_meta"] = np.frombuffer(
        json.dumps({"n_params": len(weights), "metadata": metadata or {}}).encode(), dtype=np.uint8
    )
    np.savez(path, **arrays)


def load_weights(model: Model, path: Union[str, Path]) -> Dict:
    """Restore parameters saved by :func:`save_weights`; returns metadata.

    The model must already be built with matching shapes.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as data:
        meta = json.loads(bytes(data["_meta"]).decode())
        n = meta["n_params"]
        weights = [data[f"param_{i:04d}"] for i in range(n)]
    model.set_weights(weights)
    return meta["metadata"]


def save_checkpoint(
    model: Model,
    optimizer: Optional[Optimizer],
    path: Union[str, Path],
    epoch: int = 0,
    metadata: Optional[Dict] = None,
) -> None:
    """Full training checkpoint: weights + optimizer moments + epoch."""
    path = Path(path)
    arrays: Dict[str, np.ndarray] = {}
    weights = model.get_weights()
    for i, w in enumerate(weights):
        arrays[f"param_{i:04d}"] = w
    opt_state: Dict = {"type": None}
    if optimizer is not None:
        opt_state["type"] = type(optimizer).__name__
        opt_state["lr"] = optimizer.lr
        opt_state["step_count"] = optimizer.step_count
        params = optimizer.params
        if isinstance(optimizer, Adam):
            for i, p in enumerate(params):
                if id(p) in optimizer._m:
                    arrays[f"adam_m_{i:04d}"] = optimizer._m[id(p)]
                    arrays[f"adam_v_{i:04d}"] = optimizer._v[id(p)]
        elif isinstance(optimizer, SGD) and optimizer.momentum:
            for i, p in enumerate(params):
                if id(p) in optimizer._velocity:
                    arrays[f"sgd_v_{i:04d}"] = optimizer._velocity[id(p)]
    header = {
        "n_params": len(weights),
        "epoch": epoch,
        "optimizer": opt_state,
        "metadata": metadata or {},
    }
    arrays["_meta"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
    np.savez(path, **arrays)


def load_checkpoint(model: Model, optimizer: Optional[Optimizer], path: Union[str, Path]) -> Dict:
    """Restore a checkpoint written by :func:`save_checkpoint`.

    Returns the header dict (epoch, metadata...).  Optimizer state is
    restored when the optimizer type matches what was saved.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as data:
        header = json.loads(bytes(data["_meta"]).decode())
        n = header["n_params"]
        model.set_weights([data[f"param_{i:04d}"] for i in range(n)])
        opt_state = header.get("optimizer", {})
        if optimizer is not None and opt_state.get("type") == type(optimizer).__name__:
            optimizer.lr = opt_state["lr"]
            optimizer.step_count = opt_state["step_count"]
            params = optimizer.params
            if isinstance(optimizer, Adam):
                for i, p in enumerate(params):
                    key = f"adam_m_{i:04d}"
                    if key in data:
                        optimizer._m[id(p)] = data[key].copy()
                        optimizer._v[id(p)] = data[f"adam_v_{i:04d}"].copy()
            elif isinstance(optimizer, SGD):
                for i, p in enumerate(params):
                    key = f"sgd_v_{i:04d}"
                    if key in data:
                        optimizer._velocity[id(p)] = data[key].copy()
    return header
