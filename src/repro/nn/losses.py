"""Loss functions.

Each loss maps (prediction Tensor, target array) -> scalar Tensor.
Targets are plain NumPy arrays: they never require gradients.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .tensor import Tensor


def mse(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error over all elements."""
    target = np.asarray(target, dtype=pred.dtype)
    diff = pred - Tensor(target)
    return (diff * diff).mean()


def mae(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean absolute error."""
    target = np.asarray(target, dtype=pred.dtype)
    return F.abs(pred - Tensor(target)).mean()


def huber(pred: Tensor, target: np.ndarray, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic near zero, linear in the tails."""
    target = np.asarray(target, dtype=pred.dtype)
    diff = pred - Tensor(target)
    abs_diff = F.abs(diff)
    quad = diff * diff * 0.5
    lin = abs_diff * delta - 0.5 * delta * delta
    return F.where(abs_diff.data <= delta, quad, lin).mean()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Softmax cross-entropy from raw logits.

    ``labels`` may be integer class ids (N,) or one-hot / soft labels (N, C).
    Routed through the fused :func:`repro.nn.functional.softmax_cross_entropy`
    (one tape node, ``(p - y)/n`` backward) when the logits are 2-D; see
    :func:`cross_entropy_unfused` for the composed reference.
    """
    if logits.ndim == 2:
        return F.softmax_cross_entropy(logits, labels)
    return cross_entropy_unfused(logits, labels)


def cross_entropy_unfused(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Reference composition: log-softmax node + gather node + mean.

    Kept for gradcheck parity tests against the fused op and for logits
    with more than two dimensions.
    """
    labels = np.asarray(labels)
    log_probs = F.log_softmax(logits, axis=-1)
    n = logits.shape[0]
    if labels.ndim == 1:
        picked = log_probs[np.arange(n), labels.astype(np.int64)]
        return -picked.mean()
    soft = Tensor(labels.astype(logits.dtype))
    return -(soft * log_probs).sum(axis=-1).mean()


def binary_cross_entropy_with_logits(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Numerically-stable BCE on raw logits: max(x,0) - x*y + log(1+e^-|x|)."""
    labels = np.asarray(labels, dtype=logits.dtype)
    y = Tensor(labels)
    relu_x = F.relu(logits)
    return (relu_x - logits * y + F.softplus(-F.abs(logits))).mean()


def kl_divergence_gaussian(mu: Tensor, log_var: Tensor) -> Tensor:
    """KL(q || N(0, I)) for a diagonal Gaussian — the VAE regularizer.

    Returns the mean over the batch of 0.5 * sum(mu^2 + exp(lv) - lv - 1).
    """
    term = mu * mu + F.exp(log_var) - log_var - 1.0
    return term.sum(axis=-1).mean() * 0.5


def r2_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """1 - R^2, differentiable (useful as a drug-response objective)."""
    target = np.asarray(target, dtype=pred.dtype)
    t = Tensor(target)
    resid = pred - t
    ss_res = (resid * resid).sum()
    centered = target - target.mean()
    ss_tot = float((centered * centered).sum()) + 1e-12
    return ss_res * (1.0 / ss_tot)


LOSSES = {
    "mse": mse,
    "mae": mae,
    "huber": huber,
    "cross_entropy": cross_entropy,
    "bce_logits": binary_cross_entropy_with_logits,
    "r2": r2_loss,
}


def get(name: str):
    try:
        return LOSSES[name]
    except KeyError:
        raise ValueError(f"unknown loss {name!r}; choose from {sorted(LOSSES)}")


def focal_loss_with_logits(logits: Tensor, labels: np.ndarray, gamma: float = 2.0, alpha: float = 0.25) -> Tensor:
    """Focal loss (Lin et al.) on binary logits — down-weights easy
    negatives, the standard fix for the extreme class imbalance of
    virtual compound screens (hit rates of a few percent).

    FL = -alpha_t (1 - p_t)^gamma log(p_t), with p_t the probability of
    the true class.
    """
    if gamma < 0:
        raise ValueError("gamma must be >= 0")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    labels = np.asarray(labels, dtype=logits.dtype)
    y = Tensor(labels)
    p = F.sigmoid(logits)
    p_t = p * y + (1.0 - p) * (1.0 - y)
    # np.where with Python-float branches yields float64; pin the input
    # dtype so a float32 pipeline stays float32 end to end.
    alpha_t = Tensor(np.where(labels > 0.5, alpha, 1.0 - alpha).astype(labels.dtype))
    # Stable log(p_t) via the BCE identity: log p_t = -bce(logits, y) per-elem.
    bce_elem = F.relu(logits) - logits * y + F.softplus(-F.abs(logits))
    modulator = (1.0 - p_t) ** gamma
    return (alpha_t * modulator * bce_elem).mean()


LOSSES["focal"] = focal_loss_with_logits
