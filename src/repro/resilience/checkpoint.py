"""Atomic checkpoint management for resumable training jobs.

A :class:`CheckpointManager` owns a directory of numbered snapshots
(``ckpt-<global_step>.npz``).  Writes go through
:func:`repro.nn.serialization.atomic_savez` (write-tmp-then-rename), so
a crash — real or injected — during a write can never corrupt the
latest durable checkpoint: restart always finds either the previous
complete snapshot or the new complete one.

Injected storage faults (:class:`repro.resilience.FaultInjector`) make
a write *fail cleanly*: the manager reports the failure, leaves the
previous checkpoint in place, and the training loop simply tries again
at the next interval — exactly the graceful-degradation contract a
parallel filesystem hiccup demands.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..nn.model import Model
from ..nn.optim import Optimizer
from ..nn.serialization import load_training_state, save_training_state
from .faults import FaultInjector

_PREFIX = "ckpt-"


class CheckpointManager:
    """Numbered atomic snapshots with retention.

    Parameters
    ----------
    directory:
        Where snapshots live; created if missing.
    keep:
        How many most-recent snapshots to retain (older ones pruned).
        The step-0 baseline snapshot is always kept: it anchors restarts
        that happen before the first periodic checkpoint succeeds.
    injector:
        Optional fault injector consulted before every write.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        keep: int = 3,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.injector = injector
        self.writes_attempted = 0
        self.writes_failed = 0

    def _path_for(self, global_step: int) -> Path:
        return self.directory / f"{_PREFIX}{global_step:08d}.npz"

    def snapshots(self) -> List[Path]:
        """All snapshot paths, oldest first."""
        return sorted(self.directory.glob(f"{_PREFIX}*.npz"))

    def latest(self) -> Optional[Path]:
        snaps = self.snapshots()
        return snaps[-1] if snaps else None

    def save(
        self,
        model: Model,
        optimizer: Optional[Optimizer],
        *,
        epoch: int,
        step: int,
        global_step: int,
        rng: Optional[np.random.Generator] = None,
        extra_arrays: Optional[Dict[str, np.ndarray]] = None,
        history: Optional[List[Dict[str, float]]] = None,
        metadata: Optional[Dict] = None,
        force: bool = False,
    ) -> Optional[Path]:
        """Write one snapshot; returns its path, or None on an injected
        storage failure (the previous snapshot stays valid).  ``force``
        bypasses fault injection (baseline snapshots must land)."""
        self.writes_attempted += 1
        if (
            not force
            and self.injector is not None
            and self.injector.storage_write_fails(self.writes_attempted)
        ):
            self.writes_failed += 1
            return None
        path = save_training_state(
            model, optimizer, self._path_for(global_step),
            epoch=epoch, step=step, global_step=global_step,
            rng=rng, extra_arrays=extra_arrays, history=history, metadata=metadata,
        )
        self._prune()
        return path

    def restore(self, model: Model, optimizer: Optional[Optimizer]) -> Optional[Dict]:
        """Load the newest snapshot into model/optimizer; returns its
        header (see :func:`load_training_state`) or None if empty."""
        path = self.latest()
        if path is None:
            return None
        return load_training_state(model, optimizer, path)

    def _prune(self) -> None:
        snaps = self.snapshots()
        # Keep the baseline (first) snapshot plus the newest `keep`.
        baseline = snaps[0] if snaps else None
        for old in snaps[:-self.keep]:
            if old != baseline:
                old.unlink()
