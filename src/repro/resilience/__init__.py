"""Fault-tolerant campaign runtime (the lived-in half of E15).

:mod:`repro.hpc.resilience` *analyzes* failures (Young/Daly); this
package *survives* them.  It provides:

* :class:`FaultInjector` / :class:`FaultSpec` — a seeded, deterministic
  fault schedule (node crashes, stragglers, NaN/corrupted gradients,
  storage write failures, permanent worker loss) pluggable into the
  training loop, the distributed-SGD simulators, the HPO schedulers,
  and the campaign driver.
* :class:`CheckpointManager` — periodic atomic (write-tmp-then-rename)
  training snapshots including optimizer moments, epoch/step cursor and
  RNG state, with Daly-optimal interval planning.
* :func:`run_resilient_training` — a checkpoint/restart training loop
  whose killed-and-resumed runs are bit-identical to uninterrupted ones.
* :class:`ResilienceReport` — what happened: faults injected, retries,
  restarts, checkpoint overhead, recovered work, measured efficiency.
"""

from .checkpoint import CheckpointManager
from .faults import (
    CORRUPT_RESPONSE,
    CRASH,
    FAULT_KINDS,
    HANG_REPLICA,
    KILL_REPLICA,
    NAN,
    SERVING_FAULT_KINDS,
    SLOW_REPLICA,
    STORAGE,
    STRAGGLER,
    WORKER_LOSS,
    FaultInjector,
    FaultSpec,
    as_injector,
)
from .runtime import (
    ResilienceReport,
    SimulatedCrash,
    plan_checkpoint_interval,
    run_resilient_training,
)

__all__ = [
    "FaultSpec", "FaultInjector", "as_injector", "FAULT_KINDS",
    "CRASH", "STRAGGLER", "NAN", "STORAGE", "WORKER_LOSS",
    "SERVING_FAULT_KINDS",
    "KILL_REPLICA", "HANG_REPLICA", "SLOW_REPLICA", "CORRUPT_RESPONSE",
    "CheckpointManager",
    "ResilienceReport", "SimulatedCrash",
    "run_resilient_training", "plan_checkpoint_interval",
]
