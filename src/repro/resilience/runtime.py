"""Checkpoint/restart training: the analytic model, lived.

:func:`run_resilient_training` is a fit loop that expects to die.  It
snapshots atomically on a periodic step interval (pick it with
:func:`plan_checkpoint_interval`, which applies Daly's formula to the
simulated machine), and when an injected fault kills the job it
restores the newest snapshot — weights, optimizer moments, epoch/step
cursor, shuffle-RNG state, per-layer dropout RNG states, partial-epoch
loss accumulators — and replays forward.  Because every stochastic
input is part of the snapshot, a killed-and-resumed run is
**bit-identical** to an uninterrupted one (property-tested).

The :class:`ResilienceReport` it returns is the measured counterpart of
:func:`repro.hpc.resilience.expected_runtime`: E15 compares the two.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..hpc.cluster import SimCluster
from ..hpc.perfmodel import ModelProfile
from ..nn import losses as losses_mod
from ..nn.model import History, Model
from ..obs.context import get_recorder
from ..nn.optim import Adam, Optimizer
from ..nn.tensor import Tensor
from .checkpoint import CheckpointManager
from .faults import FaultInjector
from ..nn.serialization import restore_rng, rng_state


class SimulatedCrash(RuntimeError):
    """Raised inside the training loop when an injected node crash fires."""


@dataclass
class ResilienceReport:
    """What a fault-tolerant execution actually went through.

    Simulated-time fields are populated when the caller provides per-step
    / per-checkpoint / per-restart costs (usually priced on a
    :class:`~repro.hpc.cluster.SimCluster`); step counts are always
    tracked, so :attr:`measured_efficiency` is meaningful either way.
    """

    faults: Dict[str, int] = field(default_factory=dict)
    restarts: int = 0
    retries: int = 0
    quarantined: int = 0
    workers_lost: int = 0
    nan_updates_skipped: int = 0
    checkpoints_written: int = 0
    checkpoint_write_failures: int = 0
    useful_steps: int = 0
    steps_replayed: int = 0
    sim_useful_time: float = 0.0
    sim_lost_time: float = 0.0
    sim_checkpoint_time: float = 0.0
    sim_restart_time: float = 0.0

    @property
    def sim_total_time(self) -> float:
        return (self.sim_useful_time + self.sim_lost_time
                + self.sim_checkpoint_time + self.sim_restart_time)

    @property
    def measured_efficiency(self) -> float:
        """Useful fraction of the run — the measured column of E15."""
        total = self.sim_total_time
        if total > 0.0:
            return self.sim_useful_time / total
        executed = self.useful_steps + self.steps_replayed
        if executed == 0:
            return 1.0
        return self.useful_steps / executed

    def total_faults(self) -> int:
        return sum(self.faults.values())

    def summary(self) -> str:
        faults = " ".join(f"{k}={v}" for k, v in sorted(self.faults.items()) if v) or "none"
        return (
            f"resilience[faults: {faults}] restarts={self.restarts} "
            f"retries={self.retries} quarantined={self.quarantined} "
            f"workers_lost={self.workers_lost} ckpts={self.checkpoints_written} "
            f"(+{self.checkpoint_write_failures} failed) "
            f"replayed={self.steps_replayed} steps "
            f"efficiency={self.measured_efficiency:.3f}"
        )


def _layer_rng_states(model: Model) -> Dict[str, Dict]:
    """Bit-generator states of per-layer RNGs (dropout masks etc.)."""
    states: Dict[str, Dict] = {}
    for i, layer in enumerate(model.layers):
        gen = getattr(layer, "_rng", None)
        if isinstance(gen, np.random.Generator):
            states[str(i)] = rng_state(gen)
    return states


def _restore_layer_rngs(model: Model, states: Dict[str, Dict]) -> None:
    for i, state in states.items():
        layer = model.layers[int(i)]
        if state is not None:
            layer._rng = restore_rng(state)


def run_resilient_training(
    model: Model,
    x: np.ndarray,
    y: Optional[np.ndarray],
    *,
    checkpoint_dir,
    epochs: int = 5,
    batch_size: int = 32,
    loss: str = "mse",
    lr: float = 1e-3,
    optimizer: Optional[Optimizer] = None,
    seed: int = 0,
    shuffle: bool = True,
    checkpoint_every: Optional[int] = 50,
    keep_checkpoints: int = 3,
    injector: Optional[FaultInjector] = None,
    max_restarts: int = 50,
    step_time_s: float = 0.0,
    checkpoint_time_s: float = 0.0,
    restart_time_s: float = 0.0,
    report: Optional[ResilienceReport] = None,
) -> Tuple[History, ResilienceReport]:
    """Train under failures; survive them; account for them.

    ``checkpoint_every`` is in optimizer steps (None disables periodic
    snapshots; epoch boundaries still snapshot).  ``step_time_s`` /
    ``checkpoint_time_s`` / ``restart_time_s`` are the simulated costs
    used for the report's time ledger; leave them at 0 to account in
    steps only.  An existing checkpoint directory resumes — which is
    exactly how a killed-and-rescheduled campaign job picks up its work.
    """
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    if checkpoint_every is not None and checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1 (or None)")
    x = np.asarray(x)
    y_arr = None if y is None else np.asarray(y)
    rng = np.random.default_rng(seed)
    if not model.built:
        model.build(x.shape[1:], rng)
    loss_fn = losses_mod.get(loss) if isinstance(loss, str) else loss
    opt = optimizer or Adam(model.parameters(), lr=lr)
    params = list(model.parameters())

    report = report or ResilienceReport()
    manager = CheckpointManager(checkpoint_dir, keep=keep_checkpoints, injector=injector)

    n = len(x)
    n_batches = int(math.ceil(n / batch_size))
    records: List[Dict[str, float]] = []
    furthest = 0  # distinct optimizer steps completed at least once

    # Mutable loop state shared with the checkpoint helper.
    state = {"perm": np.arange(n), "epoch_sum": 0.0, "epoch_count": 0}

    def snapshot(epoch: int, step: int, global_step: int, force: bool = False) -> None:
        meta = {
            "epoch_sum": state["epoch_sum"],
            "epoch_count": state["epoch_count"],
            "layer_rngs": _layer_rng_states(model),
        }
        extra = {"perm": state["perm"]} if step > 0 else None
        path = manager.save(
            model, opt, epoch=epoch, step=step, global_step=global_step,
            rng=rng, extra_arrays=extra, history=records, metadata=meta,
            force=force,
        )
        if path is not None:
            report.checkpoints_written += 1
            report.sim_checkpoint_time += checkpoint_time_s
        else:
            report.checkpoint_write_failures += 1
        rec = get_recorder()
        if rec is not None:
            rec.event(
                "checkpoint", kind="resilience.checkpoint",
                epoch=epoch, global_step=global_step, ok=path is not None,
            )

    if manager.latest() is None:
        # Baseline snapshot: anchors restarts that beat the first periodic
        # checkpoint.  Written force=True — job staging is assumed durable.
        snapshot(0, 0, 0, force=True)

    def run_incarnation(incarnation: int) -> None:
        nonlocal rng, furthest
        header = manager.restore(model, opt)
        assert header is not None  # the baseline snapshot always exists
        if header["rng"] is not None:
            rng = header["rng"]
        meta = header.get("metadata", {})
        _restore_layer_rngs(model, meta.get("layer_rngs", {}))
        start_epoch = int(header["epoch"])
        start_step = int(header.get("step", 0))
        g = int(header.get("global_step", 0))
        records[:] = header.get("history", [])
        state["epoch_sum"] = float(meta.get("epoch_sum", 0.0))
        state["epoch_count"] = int(meta.get("epoch_count", 0))

        for epoch in range(start_epoch, epochs):
            if epoch == start_epoch and start_step > 0:
                state["perm"] = header["extra"]["perm"].astype(np.int64)
                s0 = start_step
            else:
                state["perm"] = rng.permutation(n) if shuffle else np.arange(n)
                s0 = 0
                if epoch != start_epoch:
                    state["epoch_sum"], state["epoch_count"] = 0.0, 0
            perm = state["perm"]

            for s in range(s0, n_batches):
                if injector is not None and injector.crash_now(g, incarnation):
                    raise SimulatedCrash(f"injected crash at step {g}")
                idx = perm[s * batch_size : (s + 1) * batch_size]
                xb = x[idx]
                target = xb if y_arr is None else y_arr[idx]
                for p in params:
                    p.grad = None
                batch_loss = loss_fn(model.forward(Tensor(xb), training=True), target)
                batch_loss.backward()
                grads = [p.grad for p in params if p.grad is not None]
                corrupted = (
                    injector.corrupt_gradients(g, grads) if injector is not None else False
                )
                loss_val = float(batch_loss.item())
                healthy = (
                    not corrupted
                    and np.isfinite(loss_val)
                    and all(np.isfinite(gr).all() for gr in grads)
                )
                if healthy:
                    opt.step()
                else:
                    # Quarantine: drop the poisoned update, keep training.
                    report.nan_updates_skipped += 1
                if np.isfinite(loss_val) and not corrupted:
                    state["epoch_sum"] += loss_val
                    state["epoch_count"] += 1
                if g < furthest:
                    report.steps_replayed += 1
                    report.sim_lost_time += step_time_s
                else:
                    report.useful_steps += 1
                    report.sim_useful_time += step_time_s
                    furthest = g + 1
                g += 1
                if checkpoint_every is not None and g % checkpoint_every == 0:
                    snapshot(epoch, s + 1, g)

            records.append({"loss": state["epoch_sum"] / max(state["epoch_count"], 1)})
            state["epoch_sum"], state["epoch_count"] = 0.0, 0
            snapshot(epoch + 1, 0, g)
            start_step = 0  # any later epoch starts clean

    incarnation = 0
    rec = get_recorder()
    while True:
        try:
            if rec is not None:
                # The span ctx closes (marked aborted) when an injected
                # crash unwinds the incarnation, so the trace stays
                # balanced across restarts.
                with rec.span("resilient_fit", kind="fit", incarnation=incarnation):
                    run_incarnation(incarnation)
            else:
                run_incarnation(incarnation)
            break
        except SimulatedCrash:
            report.restarts += 1
            report.sim_restart_time += restart_time_s
            incarnation += 1
            if rec is not None:
                rec.event("restart", kind="resilience.restart", incarnation=incarnation)
            if report.restarts > max_restarts:
                raise RuntimeError(
                    f"gave up after {max_restarts} restarts — raise max_restarts "
                    "or lower the injected crash rate"
                )

    if injector is not None:
        report.faults = dict(injector.counts)
    history = History()
    for row in records:
        history.append(**row)
    return history, report


def plan_checkpoint_interval(
    profile: ModelProfile,
    cluster: SimCluster,
    *,
    precision: str = "fp32",
    n_nodes: Optional[int] = None,
    node_mtbf: float = 5.0 * 365 * 86400,
    tier_name: str = "nvram",
    step_time_s: Optional[float] = None,
) -> Dict[str, float]:
    """Daly-optimal checkpoint cadence for a training job on ``cluster``.

    Returns mtbf, checkpoint write time, the optimal interval in
    simulated seconds, and (when ``step_time_s`` is given) the same
    interval converted to optimizer steps — the value to pass as
    ``checkpoint_every``.
    """
    from ..hpc.resilience import checkpoint_time_for_training, daly_interval, system_mtbf

    nodes = n_nodes if n_nodes is not None else cluster.n_nodes
    mtbf = system_mtbf(node_mtbf, nodes)
    ckpt = checkpoint_time_for_training(profile, cluster.node.tier(tier_name), precision)
    tau = daly_interval(ckpt, mtbf)
    out: Dict[str, float] = {
        "mtbf": mtbf,
        "checkpoint_time": ckpt,
        "interval_s": tau,
    }
    if step_time_s is not None and step_time_s > 0:
        out["interval_steps"] = float(max(1, int(round(tau / step_time_s))))
    return out
