"""Seeded, deterministic fault injection.

One :class:`FaultInjector` drives every fault-tolerant execution path in
the library: the resilient training loop, the distributed-SGD
simulators, the sync/async HPO schedulers, and the campaign driver.

Determinism is by construction, not by call order: every decision draws
from a child generator keyed on ``(seed, context, ids...)``, so the same
(seed, trial, attempt) or (seed, incarnation, step) always produces the
same fault regardless of how the event loop interleaved the queries.
This is what makes injected-failure experiments reproducible and lets a
killed-and-resumed training run replay its own fault history exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.context import get_recorder

#: Fault kinds (also the keys of :attr:`FaultInjector.counts`).
CRASH = "crash"          # node dies mid-work; the work is lost and retried
STRAGGLER = "straggler"  # the work completes, `straggler_factor` times slower
NAN = "nan"              # corrupted gradient / NaN objective value
STORAGE = "storage"      # a checkpoint write fails (the old one survives)
WORKER_LOSS = "worker_loss"  # a worker leaves the pool permanently

#: Serving fault kinds (the chaos harness's vocabulary, drawn per
#: (request index, replica) during a traffic replay).
KILL_REPLICA = "kill_replica"          # replica process dies abruptly
HANG_REPLICA = "hang_replica"          # replica wedges and stops answering
SLOW_REPLICA = "slow_replica"          # replica answers, but slow_factor late
CORRUPT_RESPONSE = "corrupt_response"  # replica answers with wrong bytes

SERVING_FAULT_KINDS = (KILL_REPLICA, HANG_REPLICA, SLOW_REPLICA, CORRUPT_RESPONSE)
FAULT_KINDS = (CRASH, STRAGGLER, NAN, STORAGE, WORKER_LOSS) + SERVING_FAULT_KINDS

# Context tags for the keyed RNG streams (never reuse across contexts).
_CTX_TRIAL = 1
_CTX_STEP = 2
_CTX_STORAGE = 3
_CTX_GRAD = 4
_CTX_WORKER = 5
_CTX_SERVE = 6


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault model.

    Probabilities are per *unit of work*: per trial attempt for the
    schedulers, per optimizer step for the training loop, per write for
    checkpoint storage.  Explicit schedules (``crash_steps`` /
    ``nan_steps``) fire exactly once each, at the named global training
    step — the deterministic hammer the property tests use.
    """

    crash_prob: float = 0.0
    straggler_prob: float = 0.0
    straggler_factor: float = 4.0
    nan_prob: float = 0.0
    storage_fail_prob: float = 0.0
    worker_loss_times: Tuple[float, ...] = ()
    crash_steps: Tuple[int, ...] = ()
    nan_steps: Tuple[int, ...] = ()
    kill_replica_prob: float = 0.0
    hang_replica_prob: float = 0.0
    slow_replica_prob: float = 0.0
    corrupt_response_prob: float = 0.0
    slow_factor: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "crash_prob", "straggler_prob", "nan_prob", "storage_fail_prob",
            "kill_replica_prob", "hang_replica_prob", "slow_replica_prob",
            "corrupt_response_prob",
        ):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {p}")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")
        if self.slow_factor < 1.0:
            raise ValueError("slow_factor must be >= 1")
        if self.crash_prob + self.nan_prob + self.straggler_prob >= 1.0:
            raise ValueError("fault probabilities must sum to < 1")
        serve_sum = (self.kill_replica_prob + self.hang_replica_prob
                     + self.slow_replica_prob + self.corrupt_response_prob)
        if serve_sum >= 1.0:
            raise ValueError("serving fault probabilities must sum to < 1")
        if any(t < 0 for t in self.worker_loss_times):
            raise ValueError("worker_loss_times must be non-negative")
        if any(s < 0 for s in self.crash_steps) or any(s < 0 for s in self.nan_steps):
            raise ValueError("fault steps must be non-negative")


class FaultInjector:
    """Stateful oracle over a :class:`FaultSpec`.

    The only mutable state is bookkeeping: ``counts`` (injections by
    kind, feeding :class:`repro.resilience.ResilienceReport`) and the
    consumed-once explicit step schedules.  All probabilistic decisions
    are pure functions of (seed, context ids).
    """

    def __init__(self, spec: Optional[FaultSpec] = None, **kwargs) -> None:
        if spec is not None and kwargs:
            raise ValueError("pass either a FaultSpec or keyword fields, not both")
        self.spec = spec if spec is not None else FaultSpec(**kwargs)
        self.counts: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self._pending_crash_steps = set(self.spec.crash_steps)
        self._pending_nan_steps = set(self.spec.nan_steps)

    def _draw(self, *key: int) -> float:
        seed = [self.spec.seed & 0xFFFFFFFF] + [int(k) & 0xFFFFFFFF for k in key]
        return float(np.random.default_rng(seed).random())

    def record(self, kind: str, n: int = 1) -> None:
        self.counts[kind] += n
        # Every injection in the library funnels through here, so this
        # one hook puts all fault events on the shared obs timeline.
        rec = get_recorder()
        if rec is not None:
            rec.event(f"fault.{kind}", kind="fault", fault=kind, n=n)
            rec.metrics.counter(f"faults.{kind}").inc(n)

    @property
    def total_injected(self) -> int:
        return sum(self.counts.values())

    # -- scheduler-facing (per trial attempt) ---------------------------
    def trial_fault(self, trial_id: int, attempt: int) -> Optional[str]:
        """Fault (if any) for one execution attempt of one trial.

        A single uniform draw is partitioned crash | nan | straggler so
        at most one fault fires per attempt.  Deterministic in
        (seed, trial_id, attempt).
        """
        s = self.spec
        if s.crash_prob == s.nan_prob == s.straggler_prob == 0.0:
            return None
        u = self._draw(_CTX_TRIAL, trial_id, attempt)
        if u < s.crash_prob:
            self.record(CRASH)
            return CRASH
        if u < s.crash_prob + s.nan_prob:
            self.record(NAN)
            return NAN
        if u < s.crash_prob + s.nan_prob + s.straggler_prob:
            self.record(STRAGGLER)
            return STRAGGLER
        return None

    # -- training-loop-facing (per optimizer step) ----------------------
    def crash_now(self, global_step: int, incarnation: int = 0) -> bool:
        """Should the job die before executing ``global_step``?

        Explicit ``crash_steps`` fire once each (the restarted
        incarnation replays past the same step unharmed); rate-based
        crashes are keyed on (incarnation, step) so a restart redraws.
        """
        if global_step in self._pending_crash_steps:
            self._pending_crash_steps.discard(global_step)
            self.record(CRASH)
            return True
        if self.spec.crash_prob > 0.0 and (
            self._draw(_CTX_STEP, incarnation, global_step) < self.spec.crash_prob
        ):
            self.record(CRASH)
            return True
        return False

    def corrupt_gradients(self, global_step: int, grads: Sequence[np.ndarray]) -> bool:
        """Poison this step's gradients (in place) if a NaN fault fires.

        Returns True when corrupted; the training loop's non-finite
        guard then skips the update and quarantines the step.
        """
        due = False
        if global_step in self._pending_nan_steps:
            self._pending_nan_steps.discard(global_step)
            due = True
        elif self.spec.nan_prob > 0.0 and (
            self._draw(_CTX_GRAD, global_step) < self.spec.nan_prob
        ):
            due = True
        if due and len(grads) > 0:
            grads[0][...] = np.nan
            self.record(NAN)
            return True
        return False

    # -- distributed-SGD-facing (per worker per update) -----------------
    def worker_fault(self, update: int, worker: int) -> Optional[str]:
        """Fault for one worker's contribution to one distributed update.

        CRASH means the worker is lost permanently (the caller shrinks
        its replica set); NAN means this worker's gradient for this
        update is poisoned and must be dropped.  Deterministic in
        (seed, update, worker).
        """
        s = self.spec
        if s.crash_prob == s.nan_prob == 0.0:
            return None
        u = self._draw(_CTX_WORKER, update, worker)
        if u < s.crash_prob:
            self.record(WORKER_LOSS)
            return CRASH
        if u < s.crash_prob + s.nan_prob:
            self.record(NAN)
            return NAN
        return None

    # -- serving-facing (per request per replica) -----------------------
    def serving_fault(self, request_index: int, replica: int) -> Optional[str]:
        """Fault (if any) to inject while ``replica`` handles the
        ``request_index``-th replayed request.

        A single uniform draw partitioned kill | hang | slow | corrupt,
        so at most one serving fault fires per (request, replica) pair;
        deterministic in (seed, request_index, replica) regardless of
        how the router interleaved dispatches.  The *caller* (the chaos
        harness) performs the actual sabotage — this is just the oracle.
        """
        s = self.spec
        if (s.kill_replica_prob == s.hang_replica_prob
                == s.slow_replica_prob == s.corrupt_response_prob == 0.0):
            return None
        u = self._draw(_CTX_SERVE, request_index, replica)
        edge = s.kill_replica_prob
        if u < edge:
            self.record(KILL_REPLICA)
            return KILL_REPLICA
        edge += s.hang_replica_prob
        if u < edge:
            self.record(HANG_REPLICA)
            return HANG_REPLICA
        edge += s.slow_replica_prob
        if u < edge:
            self.record(SLOW_REPLICA)
            return SLOW_REPLICA
        edge += s.corrupt_response_prob
        if u < edge:
            self.record(CORRUPT_RESPONSE)
            return CORRUPT_RESPONSE
        return None

    # -- storage-facing (per checkpoint write) --------------------------
    def storage_write_fails(self, write_index: int) -> bool:
        if self.spec.storage_fail_prob > 0.0 and (
            self._draw(_CTX_STORAGE, write_index) < self.spec.storage_fail_prob
        ):
            self.record(STORAGE)
            return True
        return False

    # -- pool-facing ----------------------------------------------------
    @property
    def worker_loss_times(self) -> Tuple[float, ...]:
        return self.spec.worker_loss_times


def as_injector(faults) -> Optional[FaultInjector]:
    """Coerce None | FaultSpec | FaultInjector into an injector."""
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, FaultSpec):
        return FaultInjector(faults)
    raise TypeError(f"faults must be a FaultSpec or FaultInjector, got {type(faults).__name__}")
