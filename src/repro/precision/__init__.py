"""Reduced precision: emulation (rounding/policies), the real narrow
datapath (autocast + fp32-accumulate fused kernels), and calibrated int8
inference (claim C7 / experiment E1).

The emulation half (:class:`PrecisionPolicy`, rounders) answers *"is this
format numerically sufficient?"* on a float64 datapath; the autocast/int8
half (:class:`FitPrecision`, :class:`Int8Plan`) makes the sufficient
formats *faster* in measured wall-clock — see
``benchmarks/bench_precision_e2e.py``.
"""

from .autocast import TRAIN_FORMATS, FitPrecision, autocast, snap_bf16, snap_bf16_
from .int8 import (
    INT8_GEMM_EXACT_MAX_K,
    Int8Plan,
    QuantizedDense,
    int8_linear,
    plan_from_spec,
    quantize_activations,
    quantize_model,
)
from .policy import LayerwisePolicy, LossScaler, PrecisionPolicy, train_with_policy
from .quantize import (
    INT8_LEVELS,
    QuantParams,
    calibrate,
    min_size_for_percentile,
    quantization_mse,
    quantize_weights,
)
from .rounding import (
    FORMAT_INFO,
    get_rounder,
    quantization_noise_std,
    round_bf16,
    round_fp8_e4m3,
    round_fp16,
    round_fp32,
    stochastic_round_fp16,
)

__all__ = [
    "PrecisionPolicy", "LayerwisePolicy", "LossScaler", "train_with_policy",
    "QuantParams", "calibrate", "quantize_weights", "quantization_mse", "INT8_LEVELS",
    "min_size_for_percentile",
    "FORMAT_INFO", "get_rounder", "round_fp32", "round_fp16", "round_bf16",
    "round_fp8_e4m3", "stochastic_round_fp16", "quantization_noise_std",
    "autocast", "FitPrecision", "TRAIN_FORMATS", "snap_bf16", "snap_bf16_",
    "Int8Plan", "QuantizedDense", "int8_linear", "quantize_activations",
    "quantize_model", "plan_from_spec", "INT8_GEMM_EXACT_MAX_K",
]
