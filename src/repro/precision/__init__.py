"""Reduced-precision emulation: rounding, int8 quantization, and
mixed-precision training policies (claim C7 / experiment E1)."""

from .policy import LayerwisePolicy, LossScaler, PrecisionPolicy, train_with_policy
from .quantize import INT8_LEVELS, QuantParams, calibrate, quantization_mse, quantize_weights
from .rounding import (
    FORMAT_INFO,
    get_rounder,
    quantization_noise_std,
    round_bf16,
    round_fp8_e4m3,
    round_fp16,
    round_fp32,
    stochastic_round_fp16,
)

__all__ = [
    "PrecisionPolicy", "LayerwisePolicy", "LossScaler", "train_with_policy",
    "QuantParams", "calibrate", "quantize_weights", "quantization_mse", "INT8_LEVELS",
    "FORMAT_INFO", "get_rounder", "round_fp32", "round_fp16", "round_bf16",
    "round_fp8_e4m3", "stochastic_round_fp16", "quantization_noise_std",
]
