"""Calibrated int8 inference: the serving half of claim C7.

Post-training static quantization for the Dense/MLP topologies the serving
tier hosts (the CANDLE type-classifiers): per-tensor symmetric scales from
:func:`repro.precision.quantize.calibrate`, int8 weights, activations
quantized on the fly, and an int8×int8→int32-accumulate fused linear that
rescales straight into a float32 epilogue (bias + activation).

Two GEMM paths compute the *same exact integer accumulator*:

* the int32 reference path — ``int8.astype(int32) @ int8.astype(int32)``,
  always exact, but NumPy has no tuned integer GEMM so it is slow;
* the f32-exact fast path — int8 values held in float32 and fed to the
  BLAS sgemm.  Every product is an integer ≤ 127² = 16129 and every
  partial sum stays an exactly-representable integer while
  ``K·127² < 2²⁴``, i.e. ``K ≤ 1040`` (:data:`INT8_GEMM_EXACT_MAX_K`);
  within that bound the two paths are bit-identical and the fast path
  runs at full sgemm speed — this is what makes int8 serving *faster*
  than fp32 instead of a simulation.

Plans are split into a picklable :meth:`Int8Plan.spec` (structure +
scales) and the weight arrays themselves, so the distributed serving tier
can ship int8 weights through :class:`repro.parallel.shm.SharedArrayStore`
(one byte per parameter — a quarter of fp32 segments) and rebuild the
plan replica-side, and the model registry can re-quantize
deterministically from an fp32 checkpoint plus recorded scales.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn.layers import Activation, Dense, Dropout, Flatten
from .quantize import INT8_LEVELS, QuantParams, calibrate, min_size_for_percentile

#: Largest inner dimension for which the f32-held int8 GEMM is exact:
#: partial sums reach at most K·127², which must stay below 2²⁴ (the
#: float32 integer-exactness bound).
INT8_GEMM_EXACT_MAX_K = (1 << 24) // (INT8_LEVELS * INT8_LEVELS)


def _relu_(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0, out=z)


def _tanh_(z: np.ndarray) -> np.ndarray:
    return np.tanh(z, out=z)


def _sigmoid_(z: np.ndarray) -> np.ndarray:
    with np.errstate(over="ignore"):  # exp overflow -> inf -> 1/inf == 0
        np.negative(z, out=z)
        np.exp(z, out=z)
        z += 1.0
        return np.reciprocal(z, out=z)


def _softmax_(z: np.ndarray) -> np.ndarray:
    z -= z.max(axis=-1, keepdims=True)
    np.exp(z, out=z)
    z /= z.sum(axis=-1, keepdims=True)
    return z


def _linear_(z: np.ndarray) -> np.ndarray:
    return z


_ACTS = {
    "relu": _relu_,
    "tanh": _tanh_,
    "sigmoid": _sigmoid_,
    "softmax": _softmax_,
    "linear": _linear_,
    None: _linear_,
}


def quantize_activations(a: np.ndarray, scale: float) -> np.ndarray:
    """float -> int8 grid, returned as integer-valued float32 (sgemm-ready)."""
    q = np.rint(np.asarray(a, dtype=np.float32) * (1.0 / scale))
    np.clip(q, -float(INT8_LEVELS), float(INT8_LEVELS), out=q)
    return q


def int8_linear(
    qx: np.ndarray,
    qw: np.ndarray,
    x_scale: float,
    w_scale: float,
    bias: Optional[np.ndarray] = None,
    act: Optional[str] = None,
    exact_f32: Optional[bool] = None,
) -> np.ndarray:
    """Fused quantized linear: int8×int8 → int32 accumulate → rescale.

    ``qx``/``qw`` hold int8-grid values (dtype int8, or integer-valued
    float32 for the fast path).  ``exact_f32`` forces a GEMM path; by
    default the f32-exact path is used iff the inner dimension admits it.
    Returns float32 ``(qx @ qw) · x_scale·w_scale + bias`` with ``act``
    applied in place.
    """
    k = qw.shape[0]
    if exact_f32 is None:
        exact_f32 = k <= INT8_GEMM_EXACT_MAX_K
    if exact_f32:
        if k > INT8_GEMM_EXACT_MAX_K:
            raise ValueError(
                f"f32-exact int8 GEMM requires K <= {INT8_GEMM_EXACT_MAX_K}, got {k}"
            )
        acc = np.asarray(qx, dtype=np.float32) @ np.asarray(qw, dtype=np.float32)
    else:
        acc = qx.astype(np.int32) @ qw.astype(np.int32)
        acc = acc.astype(np.float32)
    out = acc * (float(x_scale) * float(w_scale))
    if bias is not None:
        out += bias
    return _ACTS[act](out)


@dataclass
class QuantizedDense:
    """One quantized Dense layer: int8 weights + the scales to run it."""

    layer_index: int
    qweight: np.ndarray  # int8, (in_dim, units)
    w_scale: float
    x_scale: float
    bias: Optional[np.ndarray]  # float32 or None
    act: Optional[str]  # fused epilogue activation
    _qw_f32: Optional[np.ndarray] = field(default=None, repr=False, compare=False)

    @property
    def exact(self) -> bool:
        return self.qweight.shape[0] <= INT8_GEMM_EXACT_MAX_K

    @property
    def qw_f32(self) -> np.ndarray:
        if self._qw_f32 is None:
            self._qw_f32 = np.ascontiguousarray(self.qweight, dtype=np.float32)
        return self._qw_f32

    def __call__(self, a_f32: np.ndarray) -> np.ndarray:
        qx = quantize_activations(a_f32, self.x_scale)
        if self.exact:
            return int8_linear(
                qx, self.qw_f32, self.x_scale, self.w_scale, self.bias, self.act,
                exact_f32=True,
            )
        return int8_linear(
            qx.astype(np.int8), self.qweight, self.x_scale, self.w_scale,
            self.bias, self.act, exact_f32=False,
        )


class Int8Plan:
    """Executable int8 inference program for a Dense/activation stack.

    ``steps`` is a list of ``("dense", QuantizedDense)``,
    ``("act", name)`` and ``("flatten",)`` tuples, in layer order.
    """

    def __init__(self, steps: List[tuple], method: str, percentile: float) -> None:
        self.steps = steps
        self.method = method
        self.percentile = percentile

    # -- execution -------------------------------------------------------
    def _forward(self, a: np.ndarray) -> np.ndarray:
        src = a
        a = np.ascontiguousarray(a, dtype=np.float32)
        if a is src:
            a = a.copy()  # activations run in place; never mutate caller data
        for step in self.steps:
            kind = step[0]
            if kind == "dense":
                a = step[1](a)
            elif kind == "act":
                a = _ACTS[step[1]](a)
            else:  # flatten
                a = a.reshape(len(a), -1)
        return a

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        outs = [
            self._forward(x[start : start + batch_size])
            for start in range(0, len(x), batch_size)
        ]
        return np.concatenate(outs, axis=0)

    # -- structure accounting --------------------------------------------
    def weight_bytes(self) -> int:
        total = 0
        for step in self.steps:
            if step[0] == "dense":
                qd = step[1]
                total += qd.qweight.nbytes + (qd.bias.nbytes if qd.bias is not None else 0)
        return total

    def spec(self) -> Dict:
        """Picklable/JSON-able structure + scales (no weight arrays).

        Scales round-trip exactly through JSON (shortest-repr floats), so
        a plan rebuilt from an fp32 checkpoint plus this spec is
        bit-identical to the original.
        """
        steps = []
        for step in self.steps:
            if step[0] == "dense":
                qd = step[1]
                steps.append({
                    "kind": "dense",
                    "layer_index": qd.layer_index,
                    "w_scale": qd.w_scale,
                    "x_scale": qd.x_scale,
                    "has_bias": qd.bias is not None,
                    "act": qd.act,
                })
            elif step[0] == "act":
                steps.append({"kind": "act", "act": step[1]})
            else:
                steps.append({"kind": "flatten"})
        return {
            "format": "int8",
            "method": self.method,
            "percentile": self.percentile,
            "steps": steps,
        }

    def arrays(self) -> Dict[str, np.ndarray]:
        """Named weight arrays for shared-memory publishing (int8 qweights,
        f32 biases) keyed ``q{i}.w`` / ``q{i}.b`` by step position."""
        out: Dict[str, np.ndarray] = {}
        for i, step in enumerate(self.steps):
            if step[0] == "dense":
                out[f"q{i}.w"] = step[1].qweight
                if step[1].bias is not None:
                    out[f"q{i}.b"] = step[1].bias
        return out

    @classmethod
    def from_arrays(cls, spec: Dict, arrays: Dict[str, np.ndarray]) -> "Int8Plan":
        """Rebuild a plan from :meth:`spec` + :meth:`arrays` (shm attach)."""
        steps: List[tuple] = []
        for i, s in enumerate(spec["steps"]):
            if s["kind"] == "dense":
                steps.append(("dense", QuantizedDense(
                    layer_index=s["layer_index"],
                    qweight=arrays[f"q{i}.w"],
                    w_scale=s["w_scale"],
                    x_scale=s["x_scale"],
                    bias=arrays.get(f"q{i}.b"),
                    act=s["act"],
                )))
            elif s["kind"] == "act":
                steps.append(("act", s["act"]))
            else:
                steps.append(("flatten",))
        return cls(steps, spec["method"], spec["percentile"])


def _calibrate(t: np.ndarray, method: str, percentile: float, what: str) -> QuantParams:
    """Calibrate one tensor, naming it in any error.

    Tensors too small to resolve the requested percentile tail (e.g. a
    narrow output head's weight matrix) fall back to minmax — for them
    the percentile *is* the max, minus interpolation noise.
    """
    if method == "percentile" and t.size < min_size_for_percentile(percentile):
        method = "minmax"
    try:
        return calibrate(t, method=method, percentile=percentile)
    except ValueError as exc:
        raise ValueError(
            f"int8 calibration failed for {what}: {exc} "
            f"(try a larger/more varied calibration batch or method='minmax')"
        ) from exc


def _float_reference_dense(a: np.ndarray, layer: Dense) -> np.ndarray:
    """fp32 reference forward through one Dense (calibration statistics)."""
    out = a @ layer.weight.data.astype(np.float32)
    if layer.bias is not None:
        out += layer.bias.data.astype(np.float32)
    act = layer.activation.kind if layer.activation is not None else None
    return _ACTS[act](out) if act in _ACTS else _ACTS[None](out)


def quantize_model(
    model, x_calib: np.ndarray, method: str = "percentile", percentile: float = 99.9
) -> Int8Plan:
    """Calibrate an :class:`Int8Plan` for ``model`` from sample inputs.

    Runs an fp32 reference forward pass over ``x_calib``, calibrating a
    per-layer activation scale at each Dense input and a per-tensor
    weight scale (standard post-training static quantization).  Supports
    Dense / Activation / Dropout / Flatten stacks — the serving-tier
    topologies; anything else raises rather than silently degrading.
    """
    if not model.built:
        raise RuntimeError("build (or fit) the model before quantizing")
    src = np.asarray(x_calib)
    a = np.ascontiguousarray(src, dtype=np.float32)
    if a is src:
        a = a.copy()  # reference forward mutates activations in place
    if len(a) == 0:
        raise ValueError("cannot calibrate from an empty batch")
    steps: List[tuple] = []
    for i, layer in enumerate(model.layers):
        if isinstance(layer, Dense):
            act = layer.activation.kind if layer.activation is not None else None
            if act not in _ACTS:
                raise ValueError(
                    f"int8 plan does not support fused activation {act!r} "
                    f"(layer {i}); supported: {sorted(k for k in _ACTS if k)}"
                )
            x_qp = _calibrate(a, method, percentile, f"layer {i} input activations")
            w = layer.weight.data
            w_qp = _calibrate(w, method, percentile, f"layer {i} weights")
            steps.append(("dense", QuantizedDense(
                layer_index=i,
                qweight=w_qp.quantize(w),
                w_scale=w_qp.scale,
                x_scale=x_qp.scale,
                bias=None if layer.bias is None else layer.bias.data.astype(np.float32),
                act=act,
            )))
            a = _float_reference_dense(a, layer)
        elif isinstance(layer, Activation):
            if layer.kind not in _ACTS:
                raise ValueError(
                    f"int8 plan does not support activation {layer.kind!r} (layer {i})"
                )
            steps.append(("act", layer.kind))
            a = _ACTS[layer.kind](a)
        elif isinstance(layer, Dropout):
            continue  # identity at inference time
        elif isinstance(layer, Flatten):
            steps.append(("flatten",))
            a = a.reshape(len(a), -1)
        else:
            raise ValueError(
                f"int8 plan supports Dense/Activation/Dropout/Flatten stacks; "
                f"got {type(layer).__name__} at layer {i}"
            )
    return Int8Plan(steps, method, percentile)


def plan_from_spec(model, spec: Dict) -> Int8Plan:
    """Rebuild a plan from a checkpoint's quantization metadata.

    Re-quantizes the model's (fp32) weights with the *recorded* scales —
    deterministic, so the rebuilt plan predicts bit-identically to the
    plan the spec was saved from.
    """
    layers = model.layers
    steps: List[tuple] = []
    for s in spec["steps"]:
        if s["kind"] == "dense":
            layer = layers[s["layer_index"]]
            w_qp = QuantParams(scale=s["w_scale"])
            steps.append(("dense", QuantizedDense(
                layer_index=s["layer_index"],
                qweight=w_qp.quantize(layer.weight.data),
                w_scale=s["w_scale"],
                x_scale=s["x_scale"],
                bias=None if layer.bias is None else layer.bias.data.astype(np.float32),
                act=s["act"],
            )))
        elif s["kind"] == "act":
            steps.append(("act", s["act"]))
        else:
            steps.append(("flatten",))
    return Int8Plan(steps, spec.get("method", "percentile"), spec.get("percentile", 99.9))
