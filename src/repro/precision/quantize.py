"""Symmetric int8 quantization with scale calibration.

Supports the E1 precision-ablation experiment's int8 rows: weights and
activations are snapped to an int8 grid whose scale is calibrated either
from the max absolute value ("minmax") or from a high percentile
("percentile", robust to outliers — the difference between the two is one
of the ablation's findings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

INT8_LEVELS = 127  # symmetric: [-127, 127], -128 unused


@dataclass
class QuantParams:
    """Per-tensor symmetric quantization parameters."""

    scale: float

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Real -> int8 grid (returned as int8)."""
        q = np.round(np.asarray(x, dtype=np.float64) / self.scale)
        return np.clip(q, -INT8_LEVELS, INT8_LEVELS).astype(np.int8)

    def dequantize(self, q: np.ndarray) -> np.ndarray:
        """int8 grid -> real."""
        return q.astype(np.float64) * self.scale

    def fake_quantize(self, x: np.ndarray) -> np.ndarray:
        """Round-trip through the int8 grid, staying in float64 — the
        standard "fake quant" used for quantization-aware evaluation."""
        return self.dequantize(self.quantize(x))


def calibrate(x: np.ndarray, method: str = "minmax", percentile: float = 99.9) -> QuantParams:
    """Choose a quantization scale for tensor ``x``.

    ``minmax`` maps max|x| to the top level; ``percentile`` clips outliers
    so the bulk of the distribution gets finer resolution.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        raise ValueError("cannot calibrate an empty tensor")
    if method == "minmax":
        amax = float(np.abs(x).max())
    elif method == "percentile":
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        amax = float(np.percentile(np.abs(x), percentile))
    else:
        raise ValueError(f"unknown calibration method {method!r}")
    if amax == 0.0:
        amax = 1e-8  # all-zero tensor: any scale works
    return QuantParams(scale=amax / INT8_LEVELS)


def quantize_weights(weights, method: str = "minmax") -> list:
    """Fake-quantize a list of weight arrays (per-tensor scales)."""
    return [calibrate(w, method=method).fake_quantize(w) for w in weights]


def quantization_mse(x: np.ndarray, method: str = "minmax") -> float:
    """Mean squared error introduced by int8 fake quantization of ``x``."""
    qp = calibrate(x, method=method)
    return float(((qp.fake_quantize(x) - x) ** 2).mean())
