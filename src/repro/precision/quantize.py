"""Symmetric int8 quantization with scale calibration.

Supports the E1 precision-ablation experiment's int8 rows: weights and
activations are snapped to an int8 grid whose scale is calibrated either
from the max absolute value ("minmax") or from a high percentile
("percentile", robust to outliers — the difference between the two is one
of the ablation's findings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

INT8_LEVELS = 127  # symmetric: [-127, 127], -128 unused


@dataclass
class QuantParams:
    """Per-tensor symmetric quantization parameters."""

    scale: float

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Real -> int8 grid (returned as int8)."""
        q = np.round(np.asarray(x, dtype=np.float64) / self.scale)
        return np.clip(q, -INT8_LEVELS, INT8_LEVELS).astype(np.int8)

    def dequantize(self, q: np.ndarray) -> np.ndarray:
        """int8 grid -> real."""
        return q.astype(np.float64) * self.scale

    def fake_quantize(self, x: np.ndarray) -> np.ndarray:
        """Round-trip through the int8 grid, staying in float64 — the
        standard "fake quant" used for quantization-aware evaluation."""
        return self.dequantize(self.quantize(x))


def min_size_for_percentile(percentile: float) -> int:
    """Smallest element count at which the ``(100 - percentile)%`` tail is
    resolvable — below it, ``np.percentile`` just interpolates between the
    two largest values and the "outlier clipping" the method promises is
    fictitious."""
    if percentile >= 100.0:
        return 1
    return int(np.ceil(100.0 / (100.0 - percentile)))


def calibrate(x: np.ndarray, method: str = "minmax", percentile: float = 99.9) -> QuantParams:
    """Choose a quantization scale for tensor ``x``.

    ``minmax`` maps max|x| to the top level; ``percentile`` clips outliers
    so the bulk of the distribution gets finer resolution.

    Degenerate inputs raise instead of returning a junk scale: an
    all-zero tensor has no meaningful scale (callers that want to pass
    zeros through untouched should skip quantization — zeros are exactly
    representable at *any* scale); a percentile whose tail the tensor is
    too small to resolve silently degrades to minmax, so it is rejected;
    a percentile that lands on zero while the tensor has signal would
    saturate everything to ±127.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        raise ValueError("cannot calibrate an empty tensor")
    if not np.any(x):
        raise ValueError(
            "cannot calibrate an all-zero tensor (any scale is degenerate); "
            "skip quantization for this tensor — zeros are exactly representable"
        )
    if method == "minmax":
        amax = float(np.abs(x).max())
    elif method == "percentile":
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        need = min_size_for_percentile(percentile)
        if x.size < need:
            raise ValueError(
                f"tensor of {x.size} elements cannot resolve the {percentile} "
                f"percentile (needs >= {need}); use method='minmax' or a "
                f"coarser percentile"
            )
        amax = float(np.percentile(np.abs(x), percentile))
        if amax == 0.0:
            raise ValueError(
                f"the {percentile} percentile of |x| is 0 while max|x| > 0: "
                f"quantizing at this scale would saturate all signal; use "
                f"method='minmax' or a higher percentile"
            )
    else:
        raise ValueError(f"unknown calibration method {method!r}")
    return QuantParams(scale=amax / INT8_LEVELS)


def quantize_weights(weights, method: str = "minmax") -> list:
    """Fake-quantize a list of weight arrays (per-tensor scales).

    All-zero arrays (fresh biases) pass through as copies: zeros are
    exactly representable at any scale, and :func:`calibrate` rejects
    them by design.
    """
    out = []
    for w in weights:
        w = np.asarray(w, dtype=np.float64)
        if not np.any(w):
            out.append(w.copy())
        else:
            out.append(calibrate(w, method=method).fake_quantize(w))
    return out


def quantization_mse(x: np.ndarray, method: str = "minmax") -> float:
    """Mean squared error introduced by int8 fake quantization of ``x``."""
    qp = calibrate(x, method=method)
    return float(((qp.fake_quantize(x) - x) ** 2).mean())
