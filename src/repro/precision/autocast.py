"""Real reduced-precision training datapath (the measured half of C7).

:class:`repro.precision.PrecisionPolicy` *emulates* narrow formats on
float64 storage — numerically faithful, but slower than fp64, so claim C7
("rarely require 64bit or even 32bits") never paid off in wall-clock.
This module is the datapath that does pay off:

* ``autocast`` (re-exported from :mod:`repro.nn.amp`) switches the fused
  kernels — ``linear_act``, ``conv1d``, ``conv2d``,
  ``softmax_cross_entropy`` — to narrow-storage compute with fp32
  accumulation;
* :class:`FitPrecision` is the controller ``Model.fit(precision=...)``
  drives: fp32 master weights, the autocast context around
  forward/backward, loss scaling through the existing
  :class:`~repro.precision.policy.LossScaler`, and the
  unscale-check-skip step boundary.

Formats: ``fp32`` (native float32, no autocast needed), ``bf16`` and
``fp16`` (narrow storage + fp32 accumulate).  ``fp64`` / ``None`` mean
the unchanged default path.
"""

from __future__ import annotations

import contextlib
from typing import Iterable, Optional

import numpy as np

from ..nn import amp
from ..nn.amp import autocast, snap_bf16, snap_bf16_  # noqa: F401 - public API
from ..nn.tensor import Tensor
from .policy import LossScaler

#: Formats Model.fit(precision=...) accepts (beyond None/"fp64").
TRAIN_FORMATS = ("fp32", "bf16", "fp16")


class FitPrecision:
    """Mixed-precision state for one :meth:`repro.nn.Model.fit` run.

    Construction casts every parameter to fp32 **in place** — those fp32
    tensors are the master weights for the whole fit (and remain the
    model's weights afterwards; deployment casts further down as needed).
    Per step the fused kernels snap weights/activations to the narrow
    grid on entry, so no separate working copy is materialized.

    ``loss_scaling`` defaults to on for fp16 (whose tiny exponent range
    underflows gradients) and off for bf16/fp32 (fp32-range exponents).
    """

    def __init__(
        self,
        fmt: str,
        params: Iterable[Tensor],
        loss_scaling: Optional[bool] = None,
        scaler: Optional[LossScaler] = None,
    ) -> None:
        if fmt not in TRAIN_FORMATS:
            raise ValueError(
                f"unsupported training precision {fmt!r}; choose from "
                f"{TRAIN_FORMATS} (or None/'fp64' for the full-precision path)"
            )
        self.fmt = fmt
        self.params = list(params)
        for p in self.params:
            if p.data.dtype != np.float32:
                p.data = p.data.astype(np.float32)
            p.grad = None
        self.plan = amp.get_plan(fmt) if fmt in ("bf16", "fp16") else None
        use_scaling = (fmt == "fp16") if loss_scaling is None else loss_scaling
        self.scaler = scaler if scaler is not None else (LossScaler() if use_scaling else None)
        self.skipped_steps = 0
        self.steps = 0

    # -- data casts -----------------------------------------------------
    def cast_array(self, a: np.ndarray) -> np.ndarray:
        """Float arrays to fp32 (labels/int arrays pass through)."""
        a = np.asarray(a)
        if a.dtype.kind == "f" and a.dtype != np.float32:
            return a.astype(np.float32)
        return a

    # -- forward/backward context ---------------------------------------
    def cast(self):
        """Context manager for the forward+backward of one batch."""
        if self.plan is None:
            return contextlib.nullcontext()
        return amp.autocast(self.plan)

    @property
    def scale(self) -> float:
        return self.scaler.scale if self.scaler is not None else 1.0

    def seed(self, window: int, dtype) -> np.ndarray:
        """Backward seed folding loss scale and accumulation-window
        averaging into one scalar (bit-identical to the unscaled
        ``(loss * (1/window)).backward()`` composition when scale==1)."""
        return np.asarray(self.scale / window, dtype=dtype)

    # -- step boundary ---------------------------------------------------
    def unscale_and_check(self) -> bool:
        """Divide accumulated grads by the loss scale; True iff the step
        should apply (finite grads).  Updates the scaler either way."""
        self.steps += 1
        scale = self.scale
        if scale != 1.0:
            inv = 1.0 / scale
            for p in self.params:
                if p.grad is not None:
                    p.grad *= inv
        if self.scaler is not None:
            ok = self.scaler.check_and_update([p.grad for p in self.params])
            if not ok:
                self.skipped_steps += 1
            return ok
        return True

    def stats(self) -> dict:
        return {
            "format": self.fmt,
            "steps": self.steps,
            "skipped_steps": self.skipped_steps,
            "final_loss_scale": self.scale,
        }
