"""Software emulation of reduced-precision arithmetic.

The keynote's claim C7 is that DNN training "rarely require[s] 64bit or even
32bits of precision".  We test that claim by *emulating* reduced formats on
top of float64 storage: values are rounded to the target format's
representable set after every optimizer update (and optionally after every
forward op).  This reproduces the numerical effect of low-precision hardware
without needing that hardware.

Supported formats
-----------------
- ``fp64``: IEEE double (identity — the reference).
- ``fp32``: IEEE single.
- ``fp16``: IEEE half (5 exponent bits, 10 mantissa bits) — NumPy native.
- ``bf16``: bfloat16 (8 exponent bits, 7 mantissa bits) — emulated by
  truncating/rounding the low 16 bits of the float32 pattern.
- ``fp8_e4m3``: 8-bit float, 4 exponent / 3 mantissa bits (the format later
  standardized for DL inference) — emulated via value snapping.
- ``int8``: symmetric fixed-point with a per-tensor scale (see
  :mod:`repro.precision.quantize`).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

#: Formats whose dynamic range / epsilon we expose for documentation and for
#: the loss-scaling heuristics in :mod:`repro.precision.policy`.
FORMAT_INFO: Dict[str, Dict[str, float]] = {
    "fp64": {"max": float(np.finfo(np.float64).max), "eps": float(np.finfo(np.float64).eps)},
    "fp32": {"max": float(np.finfo(np.float32).max), "eps": float(np.finfo(np.float32).eps)},
    "fp16": {"max": 65504.0, "eps": 2.0 ** -10},
    "bf16": {"max": float(np.finfo(np.float32).max), "eps": 2.0 ** -7},
    "fp8_e4m3": {"max": 448.0, "eps": 2.0 ** -3},
}


def round_fp32(x: np.ndarray) -> np.ndarray:
    """Round to float32 representable values (storage stays float64)."""
    return x.astype(np.float32).astype(np.float64)


def round_fp16(x: np.ndarray) -> np.ndarray:
    """Round to IEEE half; overflow saturates to ±inf exactly as np.float16."""
    with np.errstate(over="ignore"):
        return x.astype(np.float16).astype(np.float64)


def round_bf16(x: np.ndarray) -> np.ndarray:
    """Round to bfloat16 via round-to-nearest-even on the float32 bit pattern."""
    f32 = x.astype(np.float32)
    bits = f32.view(np.uint32)
    # Round-to-nearest-even: add 0x7FFF + LSB of the kept part, then truncate.
    lsb = (bits >> 16) & 1
    rounded = (bits + 0x7FFF + lsb) & 0xFFFF0000
    return rounded.view(np.float32).astype(np.float64)


def round_fp8_e4m3(x: np.ndarray) -> np.ndarray:
    """Round to the e4m3 8-bit float grid (saturating at ±448).

    Implemented by snapping the mantissa to 3 bits at the value's binade.
    Subnormals (|x| < 2^-6) snap to multiples of 2^-9.
    """
    x = np.asarray(x, dtype=np.float64)
    out = np.zeros_like(x)
    finite = np.isfinite(x)
    ax = np.abs(x)
    sign = np.sign(x)

    normal = finite & (ax >= 2.0 ** -6)
    sub = finite & (ax < 2.0 ** -6) & (ax > 0)

    # Normal range: mantissa step is 2^(e-3) at binade e.
    e = np.floor(np.log2(np.where(normal, ax, 1.0)))
    step = 2.0 ** (e - 3)
    out[normal] = (sign * np.round(ax / step) * step)[normal]
    # Subnormal range.
    out[sub] = (sign * np.round(ax / 2.0 ** -9) * 2.0 ** -9)[sub]
    # Saturate.
    np.clip(out, -448.0, 448.0, out=out)
    out[~finite] = x[~finite]
    return out


def stochastic_round_fp16(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Stochastic rounding to fp16: round up with probability proportional
    to the distance to the lower neighbour.  Unbiased in expectation, which
    rescues tiny-gradient accumulation that round-to-nearest kills."""
    x = np.asarray(x, dtype=np.float64)
    lo = x.astype(np.float16).astype(np.float64)
    # Where rounding went up, the "low" neighbour is one ulp down, and vice versa.
    hi = np.nextafter(lo.astype(np.float16), np.float16(np.inf)).astype(np.float64)
    lo2 = np.nextafter(lo.astype(np.float16), np.float16(-np.inf)).astype(np.float64)
    lower = np.where(lo <= x, lo, lo2)
    upper = np.where(lo <= x, hi, lo)
    gap = upper - lower
    with np.errstate(divide="ignore", invalid="ignore"):
        p_up = np.where(gap > 0, (x - lower) / gap, 0.0)
    up = rng.random(x.shape) < p_up
    out = np.where(up, upper, lower)
    # Exact representables stay exact.
    exact = lo == x
    return np.where(exact, x, out)


ROUNDERS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "fp64": lambda x: np.asarray(x, dtype=np.float64),
    "fp32": round_fp32,
    "fp16": round_fp16,
    "bf16": round_bf16,
    "fp8_e4m3": round_fp8_e4m3,
}


def get_rounder(fmt: str) -> Callable[[np.ndarray], np.ndarray]:
    """Look up the rounding function for a named format."""
    try:
        return ROUNDERS[fmt]
    except KeyError:
        raise ValueError(f"unknown precision format {fmt!r}; choose from {sorted(ROUNDERS)}")


def quantization_noise_std(fmt: str, scale: float = 1.0) -> float:
    """Rough RMS rounding error for values of magnitude ``scale`` — used by
    tests and by the precision-aware performance model."""
    eps = FORMAT_INFO[fmt]["eps"]
    # Uniform rounding error in [-ulp/2, ulp/2] has std ulp/sqrt(12).
    return scale * eps / np.sqrt(12.0)
