"""Mixed-precision training policies.

A :class:`PrecisionPolicy` plugs into the standard fit loop and reproduces
the numerics of low-precision training:

* **master weights** are kept at full precision;
* the *working copy* used by forward/backward is rounded to the target
  format before every step (emulating a half-precision compute datapath);
* gradients are rounded to the target format after backward;
* for narrow-range formats (fp16, fp8) a **dynamic loss scale** multiplies
  the loss before backward and divides gradients after, preventing
  underflow of small gradients — the standard mixed-precision recipe.

This is the mechanism behind experiment E1: the same model trained under
different policies, with only the rounding changing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..nn.model import Model
from ..nn.optim import Optimizer
from ..nn.tensor import Tensor
from . import quantize as quantize_mod
from .rounding import FORMAT_INFO, get_rounder


@dataclass
class LossScaler:
    """Dynamic loss scaling (NVIDIA-style).

    Doubles the scale every ``growth_interval`` good steps; on overflow
    (non-finite gradients) skips the step and halves the scale.
    """

    scale: float = 2.0 ** 12
    growth_factor: float = 2.0
    backoff_factor: float = 0.5
    growth_interval: int = 200
    max_scale: float = 2.0 ** 24
    min_scale: float = 1.0
    _good_steps: int = field(default=0, repr=False)
    overflows: int = field(default=0, repr=False)

    def check_and_update(self, grads: Sequence[np.ndarray]) -> bool:
        """Inspect unscaled-check of grads; returns True if the step should
        be applied (grads finite) and updates the scale either way."""
        finite = all(np.all(np.isfinite(g)) for g in grads if g is not None)
        if finite:
            self._good_steps += 1
            if self._good_steps >= self.growth_interval:
                self.scale = min(self.scale * self.growth_factor, self.max_scale)
                self._good_steps = 0
            return True
        self.overflows += 1
        self.scale = max(self.scale * self.backoff_factor, self.min_scale)
        self._good_steps = 0
        return False


class PrecisionPolicy:
    """Rounding policy applied around each optimizer step.

    Parameters
    ----------
    fmt:
        One of ``fp64 | fp32 | fp16 | bf16 | fp8_e4m3 | int8``.
    loss_scaling:
        Enable dynamic loss scaling (default: on for fp16/fp8, off otherwise).
    stochastic:
        Use stochastic rounding for the weight update (fp16 only) —
        the keynote's "new design points to accelerate training".
    int8_calibration:
        Calibration method when ``fmt == 'int8'``.
    """

    def __init__(
        self,
        fmt: str = "fp32",
        loss_scaling: Optional[bool] = None,
        stochastic: bool = False,
        int8_calibration: str = "minmax",
        seed: int = 0,
    ) -> None:
        if fmt != "int8":
            self._round = get_rounder(fmt)  # validates fmt
        else:
            self._round = None
        self.fmt = fmt
        narrow = fmt in ("fp16", "fp8_e4m3")
        self.loss_scaling = narrow if loss_scaling is None else loss_scaling
        self.scaler = LossScaler() if self.loss_scaling else None
        self.stochastic = stochastic
        self.int8_calibration = int8_calibration
        self._rng = np.random.default_rng(seed)
        self.skipped_steps = 0

    # -- rounding primitives -------------------------------------------
    def round_array(self, x: np.ndarray) -> np.ndarray:
        if self.fmt == "int8":
            if not np.any(x):
                # Zeros (fresh biases) are exactly representable at any
                # scale; calibrate() rejects all-zero tensors by design.
                return np.array(x, dtype=np.float64, copy=True)
            return quantize_mod.calibrate(x, method=self.int8_calibration).fake_quantize(x)
        return self._round(x)

    def round_params(self, params: Sequence[Tensor]) -> None:
        """Round parameter values in place (the working copy)."""
        for p in params:
            p.data[...] = self.round_array(p.data)

    def round_grads(self, params: Sequence[Tensor]) -> None:
        for p in params:
            if p.grad is not None:
                p.grad[...] = self.round_array(p.grad)

    # -- training step --------------------------------------------------
    def loss_scale(self) -> float:
        return self.scaler.scale if self.scaler is not None else 1.0

    def train_step(
        self,
        model: Model,
        optimizer: Optimizer,
        xb: np.ndarray,
        target,
        loss_fn: Callable,
    ) -> float:
        """One mixed-precision training step; returns the (unscaled) loss.

        Master weights live in ``self._master``; the model's tensors hold
        the rounded working copy during forward/backward.
        """
        params = optimizer.params
        if not hasattr(self, "_master"):
            self._master: List[np.ndarray] = [p.data.copy() for p in params]

        # Working copy = rounded master weights.
        for p, m in zip(params, self._master):
            p.data[...] = self.round_array(m)

        pred = model.forward(Tensor(xb), training=True)
        loss = loss_fn(pred, target)
        loss_value = loss.item()

        scale = self.loss_scale()
        optimizer.zero_grad()
        loss.backward(np.asarray(scale, dtype=loss.data.dtype))

        # Emulate a low-precision backward datapath.
        self.round_grads(params)

        # Unscale.
        if scale != 1.0:
            for p in params:
                if p.grad is not None:
                    p.grad = p.grad / scale

        if self.scaler is not None:
            ok = self.scaler.check_and_update([p.grad for p in params])
            if not ok:
                self.skipped_steps += 1
                return loss_value

        # Guard: even without scaling, never apply a non-finite update.
        if any(p.grad is not None and not np.all(np.isfinite(p.grad)) for p in params):
            self.skipped_steps += 1
            return loss_value

        # Apply the update to *master* weights at full precision.
        for p, m in zip(params, self._master):
            p.data[...] = m
        optimizer.step()
        for i, p in enumerate(params):
            if self.stochastic and self.fmt == "fp16":
                from .rounding import stochastic_round_fp16

                self._master[i] = p.data.copy()
                p.data[...] = stochastic_round_fp16(p.data, self._rng)
            else:
                self._master[i] = p.data.copy()
        return loss_value


def train_with_policy(
    model: Model,
    x: np.ndarray,
    y,
    policy: PrecisionPolicy,
    epochs: int = 10,
    batch_size: int = 32,
    loss: str = "mse",
    optimizer: Optional[Optimizer] = None,
    lr: float = 1e-3,
    seed: int = 0,
) -> List[float]:
    """Train ``model`` under ``policy``; returns per-epoch mean losses.

    The companion of :meth:`Model.fit` for experiment E1: identical loop
    structure, with the policy wrapped around every step.
    """
    from ..nn import losses as losses_mod
    from ..nn.dataloader import DataLoader
    from ..nn.optim import Adam

    rng = np.random.default_rng(seed)
    x = np.asarray(x)
    if not model.built:
        model.build(x.shape[1:], rng)
    loss_fn = losses_mod.get(loss) if isinstance(loss, str) else loss
    opt = optimizer or Adam(model.parameters(), lr=lr)
    loader = DataLoader(x, y, batch_size=batch_size, shuffle=True, rng=rng)

    epoch_losses: List[float] = []
    for _ in range(epochs):
        total, count = 0.0, 0
        for xb, yb in loader:
            target = xb if yb is None else yb
            total += policy.train_step(model, opt, xb, target, loss_fn)
            count += 1
        epoch_losses.append(total / max(count, 1))
    # Leave the rounded working copy in the model (inference at the target
    # precision, as deployed low-precision models would run).
    policy.round_params(opt.params)
    return epoch_losses


class LayerwisePolicy(PrecisionPolicy):
    """Mixed precision with per-parameter format overrides.

    The production AMP recipe: matmul-heavy weights run at the narrow
    format while numerically-sensitive parameters (normalization gains and
    biases, typically small and variance-critical) stay at fp32.

    ``overrides`` maps a substring of the parameter's ``name`` to a format;
    the first matching substring wins, everything else uses ``fmt``.
    """

    def __init__(
        self,
        fmt: str = "fp16",
        overrides: Optional[dict] = None,
        loss_scaling: Optional[bool] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(fmt=fmt, loss_scaling=loss_scaling, seed=seed)
        self.overrides = dict(overrides or {"gamma": "fp32", "beta": "fp32", ".b": "fp32"})
        # Validate every override format eagerly.
        self._rounders = {f: get_rounder(f) for f in set(self.overrides.values())}

    def _format_for(self, name: str) -> str:
        for key, f in self.overrides.items():
            if key in (name or ""):
                return f
        return self.fmt

    def _round_named(self, name: str, x):
        f = self._format_for(name)
        if f == self.fmt:
            return self.round_array(x)
        return self._rounders[f](x)

    def round_params(self, params) -> None:
        for p in params:
            p.data[...] = self._round_named(p.name, p.data)

    def round_grads(self, params) -> None:
        for p in params:
            if p.grad is not None:
                p.grad[...] = self._round_named(p.name, p.grad)

    def train_step(self, model, optimizer, xb, target, loss_fn) -> float:
        # Same master-weight loop as the base policy, but the working-copy
        # rounding respects the per-parameter map.
        params = optimizer.params
        if not hasattr(self, "_master"):
            self._master = [p.data.copy() for p in params]
        for p, m in zip(params, self._master):
            p.data[...] = self._round_named(p.name, m)
        from ..nn.tensor import Tensor as _T

        pred = model.forward(_T(xb), training=True)
        loss = loss_fn(pred, target)
        loss_value = loss.item()
        scale = self.loss_scale()
        optimizer.zero_grad()
        import numpy as _np

        loss.backward(_np.asarray(scale, dtype=loss.data.dtype))
        self.round_grads(params)
        if scale != 1.0:
            for p in params:
                if p.grad is not None:
                    p.grad = p.grad / scale
        if self.scaler is not None and not self.scaler.check_and_update([p.grad for p in params]):
            self.skipped_steps += 1
            return loss_value
        if any(p.grad is not None and not _np.all(_np.isfinite(p.grad)) for p in params):
            self.skipped_steps += 1
            return loss_value
        for p, m in zip(params, self._master):
            p.data[...] = m
        optimizer.step()
        for i, p in enumerate(params):
            self._master[i] = p.data.copy()
        return loss_value
