"""Synthetic drug-response data: single-drug dose response and drug pairs
with synergy (the Combo workload).

Substitutes for the NCI-60/GDSC/CCLE screens.  The generative model follows
the pharmacology the CANDLE drug-response benchmarks learn:

* each **cell line** has latent biology ``u`` (observable through a noisy
  gene-expression readout);
* each **drug** has latent mechanism ``v`` (observable through noisy
  molecular descriptors);
* drug potency on a cell line is a nonlinear interaction
  ``pIC50 = f(u, v)``;
* measured growth at dose ``d`` follows a Hill curve around that IC50;
* for drug *pairs*, a Bliss-style synergy term depending on the mechanism
  pair shifts the combined effect (this is what makes Combo harder than
  additivity and what the DL model must capture).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


def hill_response(dose: np.ndarray, ic50: np.ndarray, slope: float = 1.0) -> np.ndarray:
    """Fractional growth inhibition in [0, 1] at ``dose`` (both in log10 M
    space internally linearized): classic Hill equation."""
    # dose and ic50 are in log10 concentration units.
    return 1.0 / (1.0 + 10.0 ** (slope * (ic50 - dose)))


@dataclass
class DrugResponseDataset:
    """Single-drug dose-response screen.

    x: (n, n_cell_features + n_drug_features + 1) — expression readout,
       drug descriptors, and log-dose.
    y: (n,) growth fraction in [0, 1] (1 = unaffected, 0 = fully inhibited).
    """

    x: np.ndarray
    y: np.ndarray
    n_cell_features: int
    n_drug_features: int
    true_ic50: np.ndarray


@dataclass
class ComboDataset:
    """Two-drug combination screen with planted synergy.

    x: (n, n_cell_features + 2*n_drug_features + 2) — expression, both
       drugs' descriptors, both log-doses.
    y: (n,) combined growth fraction.
    synergy: (n,) the planted synergy contribution (ground truth, for tests).
    cells, drugs1, drugs2: (n,) the underlying entity indices of each row
       (metadata for pair-level analyses; models never see these).
    """

    x: np.ndarray
    y: np.ndarray
    n_cell_features: int
    n_drug_features: int
    synergy: np.ndarray
    cells: np.ndarray = None
    drugs1: np.ndarray = None
    drugs2: np.ndarray = None


class _Screen:
    """Shared latent world for the drug-response generators."""

    def __init__(
        self,
        n_cells: int,
        n_drugs: int,
        latent_dim: int,
        n_cell_features: int,
        n_drug_features: int,
        rng: np.random.Generator,
    ) -> None:
        self.rng = rng
        self.latent_dim = latent_dim
        self.cell_latent = rng.standard_normal((n_cells, latent_dim))
        self.drug_latent = rng.standard_normal((n_drugs, latent_dim))
        # Observation maps (what the model actually sees).
        self.cell_readout = rng.standard_normal((latent_dim, n_cell_features)) / np.sqrt(latent_dim)
        self.drug_readout = rng.standard_normal((latent_dim, n_drug_features)) / np.sqrt(latent_dim)
        # Interaction tensor for potency: bilinear + elementwise nonlinearity.
        self.interaction = rng.standard_normal((latent_dim, latent_dim)) / np.sqrt(latent_dim)

    def cell_features(self, idx: np.ndarray, noise: float) -> np.ndarray:
        clean = self.cell_latent[idx] @ self.cell_readout
        return clean + noise * self.rng.standard_normal(clean.shape)

    def drug_features(self, idx: np.ndarray, noise: float) -> np.ndarray:
        clean = self.drug_latent[idx] @ self.drug_readout
        return clean + noise * self.rng.standard_normal(clean.shape)

    def pic50(self, cell_idx: np.ndarray, drug_idx: np.ndarray) -> np.ndarray:
        """Potency (log10 IC50, centered near -6 i.e. ~1 uM) with a
        nonlinear cell x drug interaction."""
        u = self.cell_latent[cell_idx]
        v = self.drug_latent[drug_idx]
        bilinear = np.einsum("nd,de,ne->n", u, self.interaction, v) / np.sqrt(self.latent_dim)
        return -6.0 + 1.5 * np.tanh(bilinear)


def make_single_drug_response(
    n_samples: int = 2000,
    n_cells: int = 60,
    n_drugs: int = 100,
    latent_dim: int = 8,
    n_cell_features: int = 60,
    n_drug_features: int = 30,
    feature_noise: float = 0.3,
    response_noise: float = 0.05,
    seed: int = 0,
) -> DrugResponseDataset:
    """Single-drug screen: random (cell, drug, dose) triples."""
    rng = np.random.default_rng(seed)
    screen = _Screen(n_cells, n_drugs, latent_dim, n_cell_features, n_drug_features, rng)

    cells = rng.integers(0, n_cells, size=n_samples)
    drugs = rng.integers(0, n_drugs, size=n_samples)
    doses = rng.uniform(-8.0, -4.0, size=n_samples)  # log10 M

    ic50 = screen.pic50(cells, drugs)
    inhibition = hill_response(doses, ic50, slope=1.2)
    growth = 1.0 - inhibition + response_noise * rng.standard_normal(n_samples)
    growth = np.clip(growth, 0.0, 1.0)

    x = np.concatenate(
        [
            screen.cell_features(cells, feature_noise),
            screen.drug_features(drugs, feature_noise),
            doses[:, None],
        ],
        axis=1,
    )
    return DrugResponseDataset(
        x=x, y=growth,
        n_cell_features=n_cell_features, n_drug_features=n_drug_features,
        true_ic50=ic50,
    )


def make_combo_response(
    n_samples: int = 3000,
    n_cells: int = 60,
    n_drugs: int = 50,
    latent_dim: int = 8,
    n_cell_features: int = 60,
    n_drug_features: int = 30,
    feature_noise: float = 0.3,
    response_noise: float = 0.05,
    synergy_strength: float = 1.0,
    seed: int = 0,
) -> ComboDataset:
    """Two-drug combination screen (the Combo benchmark's data shape).

    The combined inhibition is the Bliss-independence baseline
    ``1 - (1-e1)(1-e2)`` shifted by a planted synergy term that depends on
    the *pair* of mechanisms — invisible to any model that treats the two
    drugs independently.
    """
    rng = np.random.default_rng(seed)
    screen = _Screen(n_cells, n_drugs, latent_dim, n_cell_features, n_drug_features, rng)
    # Pair-synergy map: antisymmetric-free random bilinear form over drug latents.
    syn_map = rng.standard_normal((latent_dim, latent_dim)) / np.sqrt(latent_dim)

    cells = rng.integers(0, n_cells, size=n_samples)
    d1 = rng.integers(0, n_drugs, size=n_samples)
    d2 = rng.integers(0, n_drugs, size=n_samples)
    dose1 = rng.uniform(-8.0, -4.0, size=n_samples)
    dose2 = rng.uniform(-8.0, -4.0, size=n_samples)

    e1 = hill_response(dose1, screen.pic50(cells, d1), slope=1.2)
    e2 = hill_response(dose2, screen.pic50(cells, d2), slope=1.2)
    bliss = 1.0 - (1.0 - e1) * (1.0 - e2)

    v1, v2 = screen.drug_latent[d1], screen.drug_latent[d2]
    syn_raw = np.einsum("nd,de,ne->n", v1, syn_map, v2) / np.sqrt(latent_dim)
    # Symmetrize (synergy can't depend on drug order) and gate by both doses
    # being near-effective (synergy needs both drugs active).
    syn_raw = 0.5 * (syn_raw + np.einsum("nd,de,ne->n", v2, syn_map, v1) / np.sqrt(latent_dim))
    gate = e1 * e2 * 4.0 * (1.0 - e1) * (1.0 - e2)  # peaks at intermediate effect
    synergy = synergy_strength * 0.3 * np.tanh(syn_raw) * gate

    inhibition = np.clip(bliss + synergy, 0.0, 1.0)
    growth = 1.0 - inhibition + response_noise * rng.standard_normal(n_samples)
    growth = np.clip(growth, 0.0, 1.0)

    x = np.concatenate(
        [
            screen.cell_features(cells, feature_noise),
            screen.drug_features(d1, feature_noise),
            screen.drug_features(d2, feature_noise),
            dose1[:, None],
            dose2[:, None],
        ],
        axis=1,
    )
    return ComboDataset(
        x=x, y=growth,
        n_cell_features=n_cell_features, n_drug_features=n_drug_features,
        synergy=synergy, cells=cells, drugs1=d1, drugs2=d2,
    )


def make_compound_screen(
    n_compounds: int = 5000,
    n_drug_features: int = 40,
    latent_dim: int = 6,
    active_fraction: float = 0.05,
    feature_noise: float = 0.2,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Virtual compound-screening dataset (binary active/inactive).

    Models the keynote's "screen for new anti-cancer compounds": activity
    is a narrow nonlinear region of mechanism space, so the positive class
    is rare and nonlinearly separable.  Returns (descriptors, labels).
    """
    if not 0 < active_fraction < 1:
        raise ValueError("active_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    v = rng.standard_normal((n_compounds, latent_dim))
    # Activity = proximity to any of 3 planted pharmacophore centers.
    centers = rng.standard_normal((3, latent_dim)) * 1.5
    d2 = ((v[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2).min(axis=1)
    # Threshold chosen to hit the requested active fraction.
    thresh = np.quantile(d2, active_fraction)
    labels = (d2 <= thresh).astype(np.int64)
    readout = rng.standard_normal((latent_dim, n_drug_features)) / np.sqrt(latent_dim)
    x = v @ readout + feature_noise * rng.standard_normal((n_compounds, n_drug_features))
    return x, labels
