"""Pharmacology utilities: Hill-curve fitting and potency estimation.

The drug-response workloads predict growth at arbitrary doses; turning
those predictions into the numbers pharmacologists use (IC50, AUC of the
dose-response curve) needs curve fitting.  Fitting the planted Hill
model back out of noisy measurements also serves as an end-to-end check
that :func:`repro.datasets.make_single_drug_response` generates what it
claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.optimize import least_squares

from .drug_response import hill_response


@dataclass(frozen=True)
class HillFit:
    """Fitted Hill parameters for one dose-response series."""

    ic50: float  # log10 concentration of half-maximal inhibition
    slope: float
    residual: float  # RMS of the fit

    def inhibition(self, dose: np.ndarray) -> np.ndarray:
        return hill_response(np.asarray(dose, dtype=np.float64), np.full(np.shape(dose), self.ic50), self.slope)

    def growth(self, dose: np.ndarray) -> np.ndarray:
        return 1.0 - self.inhibition(dose)


def fit_hill(
    doses: np.ndarray,
    growth: np.ndarray,
    ic50_bounds: Tuple[float, float] = (-10.0, -2.0),
    slope_bounds: Tuple[float, float] = (0.2, 5.0),
) -> HillFit:
    """Least-squares fit of a Hill curve to (log-dose, growth) points.

    Growth is modelled as 1 - hill(dose; ic50, slope).  Requires at least
    three points spanning some dose range.
    """
    doses = np.asarray(doses, dtype=np.float64).ravel()
    growth = np.asarray(growth, dtype=np.float64).ravel()
    if doses.size != growth.size:
        raise ValueError("doses and growth must have equal length")
    if doses.size < 3:
        raise ValueError("need at least 3 dose points")

    def residuals(params):
        ic50, slope = params
        return (1.0 - hill_response(doses, np.full_like(doses, ic50), slope)) - growth

    x0 = np.array([np.median(doses), 1.0])
    x0[0] = np.clip(x0[0], *ic50_bounds)
    result = least_squares(
        residuals, x0,
        bounds=([ic50_bounds[0], slope_bounds[0]], [ic50_bounds[1], slope_bounds[1]]),
    )
    rms = float(np.sqrt(np.mean(result.fun ** 2)))
    return HillFit(ic50=float(result.x[0]), slope=float(result.x[1]), residual=rms)


def dose_response_auc(doses: np.ndarray, growth: np.ndarray) -> float:
    """Normalized area under the growth curve over the tested dose range.

    1.0 = completely insensitive (growth 1 everywhere); 0.0 = fully
    inhibited at all doses.  The standard screening summary statistic.
    """
    doses = np.asarray(doses, dtype=np.float64).ravel()
    growth = np.asarray(growth, dtype=np.float64).ravel()
    if doses.size != growth.size or doses.size < 2:
        raise ValueError("need matching arrays with at least 2 points")
    order = np.argsort(doses)
    d, g = doses[order], np.clip(growth[order], 0.0, 1.0)
    span = d[-1] - d[0]
    if span <= 0:
        raise ValueError("doses must span a nonzero range")
    return float(np.trapezoid(g, d) / span)


def estimate_ic50_from_model(
    predict_growth,
    cell_features: np.ndarray,
    drug_features: np.ndarray,
    dose_grid: Optional[np.ndarray] = None,
) -> HillFit:
    """Virtual dose-response: query a trained response model over a dose
    grid for one (cell, drug) pair and fit the Hill curve to its output.

    ``predict_growth`` maps an (n, features) matrix laid out as
    ``[cell | drug | dose]`` to growth predictions.
    """
    dose_grid = np.linspace(-8.0, -4.0, 9) if dose_grid is None else np.asarray(dose_grid)
    n = dose_grid.size
    x = np.concatenate(
        [
            np.tile(cell_features, (n, 1)),
            np.tile(drug_features, (n, 1)),
            dose_grid[:, None],
        ],
        axis=1,
    )
    growth = np.asarray(predict_growth(x)).ravel()
    return fit_hill(dose_grid, growth)
