"""Synthetic histopathology-like tumor images.

Substitutes for the digital-pathology slides behind the keynote's
"automated systems routinely out-performing human expertise" at tumor
diagnosis.  Images are small grayscale patches with class-dependent
*texture* and *structure*:

* class 0 ("normal"): smooth low-frequency background with round,
  regular nuclei at low density;
* class 1 ("tumor"): high nucleus density, irregular (elongated) nuclei,
  and high-frequency texture;
* optional intermediate grades interpolate density/irregularity.

The discriminative signal is deliberately *local and translation-
invariant* (counts, shapes, textures anywhere in the patch) so that a
conv net genuinely beats a pixel-space linear model — the property the
imaging claim rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class ImagingDataset:
    """Image patches with grade labels.

    x: (n, 1, size, size) float images in roughly [0, 1].
    y: (n,) integer grade labels (0 = normal ... n_grades-1).
    """

    x: np.ndarray
    y: np.ndarray
    n_grades: int

    @property
    def image_size(self) -> int:
        return self.x.shape[-1]


def _render_patch(
    rng: np.random.Generator,
    size: int,
    n_nuclei: int,
    irregularity: float,
    texture_amp: float,
) -> np.ndarray:
    """One grayscale patch: background + nuclei blobs + texture noise."""
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float64)
    # Smooth background illumination.
    bg = 0.65 + 0.1 * np.sin(2 * np.pi * (xx * rng.uniform(0.2, 0.8) / size)) * np.sin(
        2 * np.pi * (yy * rng.uniform(0.2, 0.8) / size)
    )
    img = bg
    for _ in range(n_nuclei):
        cx, cy = rng.uniform(2, size - 2, size=2)
        # Elliptical nucleus: irregularity stretches one axis and rotates.
        a = rng.uniform(1.2, 2.2)
        b = a * (1.0 + irregularity * rng.uniform(0.5, 2.0))
        theta = rng.uniform(0, np.pi)
        dx, dy = xx - cx, yy - cy
        u = dx * np.cos(theta) + dy * np.sin(theta)
        v = -dx * np.sin(theta) + dy * np.cos(theta)
        blob = np.exp(-((u / a) ** 2 + (v / b) ** 2))
        img = img - 0.5 * blob  # nuclei are dark (hematoxylin)
    # High-frequency chromatin texture.
    img = img + texture_amp * rng.standard_normal((size, size))
    return np.clip(img, 0.0, 1.0)


def make_tumor_images(
    n_samples: int = 400,
    size: int = 24,
    n_grades: int = 2,
    density_range: Tuple[int, int] = (4, 16),
    noise: float = 0.04,
    equal_density: bool = False,
    standardize: bool = False,
    seed: int = 0,
) -> ImagingDataset:
    """Generate graded tumor image patches.

    Grade g in [0, n_grades) linearly interpolates nucleus density from
    ``density_range[0]`` to ``density_range[1]`` and irregularity from
    0 to 1; texture amplitude rises with grade too.

    ``equal_density=True`` gives every grade the same nucleus count and
    ``standardize=True`` z-scores each patch: together they remove the
    global-intensity shortcut, leaving only *local* shape/texture signal —
    the regime where conv nets beat pixel-space linear models (E7's
    imaging row uses this hard variant).
    """
    if n_grades < 2:
        raise ValueError("need at least 2 grades")
    if size < 8:
        raise ValueError("size must be >= 8")
    rng = np.random.default_rng(seed)
    y = rng.integers(0, n_grades, size=n_samples)
    x = np.empty((n_samples, 1, size, size))
    lo, hi = density_range
    for i in range(n_samples):
        frac = y[i] / (n_grades - 1)
        if equal_density:
            n_nuclei = (lo + hi) // 2
        else:
            n_nuclei = max(1, int(round(lo + frac * (hi - lo) + rng.integers(-1, 2))))
        irregularity = frac * rng.uniform(0.7, 1.3)
        texture = noise * (1.0 + 1.5 * frac)
        img = _render_patch(rng, size, n_nuclei, irregularity, texture)
        if standardize:
            img = (img - img.mean()) / (img.std() + 1e-9)
        x[i, 0] = img
    return ImagingDataset(x=x, y=y, n_grades=n_grades)
