"""K-mer featurization of DNA sequences.

The feature pipeline for the antimicrobial-resistance workload: genomes
become fixed-length vectors of k-mer counts (optionally feature-hashed to a
manageable dimension, as large-scale AMR pipelines do).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

BASES = "ACGT"
_BASE_TO_INT = {b: i for i, b in enumerate(BASES)}


def encode_sequence(seq: str) -> np.ndarray:
    """DNA string -> int array in {0..3}; raises on non-ACGT characters."""
    try:
        return np.fromiter((_BASE_TO_INT[c] for c in seq), dtype=np.int64, count=len(seq))
    except KeyError as e:
        raise ValueError(f"invalid base {e.args[0]!r} in sequence") from None


def kmer_indices(encoded: np.ndarray, k: int) -> np.ndarray:
    """Rolling base-4 index of every k-mer in an encoded sequence.

    Vectorized: a strided window view dotted with powers of 4.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    n = encoded.size
    if n < k:
        return np.empty(0, dtype=np.int64)
    powers = 4 ** np.arange(k - 1, -1, -1, dtype=np.int64)
    windows = np.lib.stride_tricks.sliding_window_view(encoded, k)
    return windows @ powers


def kmer_count_vector(seq: str, k: int, n_features: int = 0) -> np.ndarray:
    """Count k-mers of ``seq``.

    With ``n_features == 0`` the vector has length 4**k (exact counts);
    otherwise counts are feature-hashed into ``n_features`` buckets
    (modular hashing with a multiplicative mix to decorrelate buckets).
    """
    idx = kmer_indices(encode_sequence(seq), k)
    if n_features <= 0:
        out = np.zeros(4 ** k, dtype=np.float64)
        np.add.at(out, idx, 1.0)
        return out
    # Multiplicative hashing (Knuth) before the modulus.
    hashed = (idx * np.int64(2654435761)) % np.int64(n_features)
    out = np.zeros(n_features, dtype=np.float64)
    np.add.at(out, hashed, 1.0)
    return out


def featurize_genomes(
    genomes: Sequence[str],
    k: int = 6,
    n_features: int = 512,
    normalize: bool = True,
) -> np.ndarray:
    """K-mer count matrix for a genome collection.

    ``normalize`` scales each row to unit L2 norm so genome length doesn't
    leak into the features.
    """
    rows = [kmer_count_vector(g, k, n_features) for g in genomes]
    x = np.stack(rows)
    if normalize:
        norms = np.linalg.norm(x, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        x = x / norms
    return x


def kmer_of_bucket(bucket: int, k: int, n_features: int, max_enumerate: int = 4 ** 10) -> List[str]:
    """Inverse lookup used by mechanism discovery: which k-mers hash into a
    bucket.  Enumerates all 4**k k-mers, so only feasible for small k."""
    total = 4 ** k
    if total > max_enumerate:
        raise ValueError(f"4**{k} k-mers is too many to enumerate")
    idx = np.arange(total, dtype=np.int64)
    hashed = (idx * np.int64(2654435761)) % np.int64(n_features)
    hits = np.nonzero(hashed == bucket)[0]
    out = []
    for h in hits:
        chars = []
        v = int(h)
        for _ in range(k):
            chars.append(BASES[v % 4])
            v //= 4
        out.append("".join(reversed(chars)))
    return out
