"""Synthetic clinical-report data for the multitask P3B1-style workload.

Substitutes for the SEER cancer-registry pathology reports ("interpret
millions of medical records").  Documents are generated from a latent-topic
model; three classification tasks (primary site, laterality, histology
grade) each depend on an overlapping subset of topics, so a shared
representation genuinely helps — the architectural property the multitask
benchmark exists to exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

TASK_NAMES = ("site", "laterality", "histology")


@dataclass
class MedicalRecordsDataset:
    """Bag-of-terms features with three per-document labels.

    x: (n_docs, vocab_size) tf-like counts, log-scaled.
    labels: dict task-name -> (n_docs,) integer labels.
    n_classes: dict task-name -> class count.
    """

    x: np.ndarray
    labels: Dict[str, np.ndarray]
    n_classes: Dict[str, int]

    @property
    def tasks(self) -> Tuple[str, ...]:
        return tuple(self.labels.keys())


def make_medical_records(
    n_docs: int = 1500,
    vocab_size: int = 300,
    n_topics: int = 12,
    doc_length: int = 120,
    n_sites: int = 6,
    n_laterality: int = 2,
    n_histology: int = 3,
    label_noise: float = 0.05,
    seed: int = 0,
) -> MedicalRecordsDataset:
    """Generate the multitask clinical-records dataset.

    Each document draws a topic mixture from a Dirichlet whose
    concentration is shifted by its three labels; words are multinomial
    draws from topic-word distributions.  ``label_noise`` flips that
    fraction of labels uniformly (annotation noise in real registries).
    """
    rng = np.random.default_rng(seed)

    # Topic-word distributions (sparse-ish Dirichlet).
    topic_word = rng.dirichlet(np.full(vocab_size, 0.05), size=n_topics)

    # Each task's classes bias a characteristic subset of topics.
    def class_topic_bias(n_classes: int, strength: float) -> np.ndarray:
        bias = np.zeros((n_classes, n_topics))
        for c in range(n_classes):
            chosen = rng.choice(n_topics, size=3, replace=False)
            bias[c, chosen] = strength
        return bias

    biases = {
        "site": class_topic_bias(n_sites, 4.0),
        "laterality": class_topic_bias(n_laterality, 2.0),
        "histology": class_topic_bias(n_histology, 3.0),
    }
    n_classes = {"site": n_sites, "laterality": n_laterality, "histology": n_histology}

    labels = {t: rng.integers(0, n_classes[t], size=n_docs) for t in TASK_NAMES}

    base_conc = np.full(n_topics, 0.3)
    x = np.zeros((n_docs, vocab_size))
    for i in range(n_docs):
        conc = base_conc.copy()
        for t in TASK_NAMES:
            conc = conc + biases[t][labels[t][i]]
        mixture = rng.dirichlet(conc)
        word_dist = mixture @ topic_word
        counts = rng.multinomial(doc_length, word_dist)
        x[i] = counts
    # log(1 + tf) scaling, standard for text-count features.
    x = np.log1p(x)

    # Label noise.
    if label_noise > 0:
        for t in TASK_NAMES:
            flip = rng.random(n_docs) < label_noise
            labels[t][flip] = rng.integers(0, n_classes[t], size=int(flip.sum()))

    return MedicalRecordsDataset(x=x, labels=dict(labels), n_classes=n_classes)
