"""Synthetic tumor gene-expression data with planted pathway structure.

Substitutes for the TCGA/GDC expression matrices the keynote's projects use
(real patient data is not redistributable).  The generative model plants
exactly the structure the DL-vs-baseline comparison (experiment E7) needs:

* genes are grouped into latent **pathways**;
* each tumor type activates a characteristic subset of pathways;
* expression is a *nonlinear* (saturating) function of pathway activity
  plus gene-level noise — so linear baselines underfit but are not hopeless;
* genes are laid out so co-pathway genes are adjacent, giving 1-D
  convolutions (the NT3 benchmark) local structure to exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np


@dataclass
class ExpressionDataset:
    """Gene-expression matrix with tumor-type labels.

    Attributes
    ----------
    x: (n_samples, n_genes) float array, z-scored per gene.
    y: (n_samples,) integer tumor-type labels.
    n_classes: number of tumor types.
    pathway_of_gene: (n_genes,) pathway index of each gene (ground truth).
    class_pathways: (n_classes, n_pathways) planted activation pattern.
    """

    x: np.ndarray
    y: np.ndarray
    n_classes: int
    pathway_of_gene: np.ndarray
    class_pathways: np.ndarray

    @property
    def n_genes(self) -> int:
        return self.x.shape[1]

    def as_conv_input(self) -> np.ndarray:
        """Reshape to (n_samples, 1 channel, n_genes) for Conv1D models."""
        return self.x[:, None, :]


def make_tumor_expression(
    n_samples: int = 600,
    n_genes: int = 400,
    n_classes: int = 4,
    n_pathways: int = 20,
    noise: float = 0.5,
    nonlinearity: str = "tanh",
    class_balance: Optional[np.ndarray] = None,
    seed: int = 0,
) -> ExpressionDataset:
    """Generate a tumor-typing dataset.

    Parameters
    ----------
    noise:
        Gene-level Gaussian noise std (higher = harder problem).
    nonlinearity:
        'tanh' (saturating, default) or 'linear' (ablation: with 'linear'
        the logistic baseline should match the DL model).
    class_balance:
        Optional per-class sampling probabilities.
    """
    if n_pathways > n_genes:
        raise ValueError("need at least one gene per pathway")
    if n_classes < 2:
        raise ValueError("need at least two tumor types")
    rng = np.random.default_rng(seed)

    # Class-specific pathway activation patterns: each class turns a random
    # ~40% of pathways strongly on, the rest near zero, plus a shared basal set.
    class_pathways = rng.normal(0.0, 0.3, size=(n_classes, n_pathways))
    for c in range(n_classes):
        active = rng.choice(n_pathways, size=max(2, int(0.4 * n_pathways)), replace=False)
        class_pathways[c, active] += rng.choice([-2.0, 2.0], size=active.size)

    # Contiguous gene->pathway layout (co-pathway genes adjacent).
    sizes = np.full(n_pathways, n_genes // n_pathways)
    sizes[: n_genes % n_pathways] += 1
    pathway_of_gene = np.repeat(np.arange(n_pathways), sizes)

    # Gene loadings: how strongly each gene reads out its pathway.
    loadings = rng.normal(1.0, 0.3, size=n_genes) * rng.choice([1.0, -1.0], size=n_genes, p=[0.8, 0.2])

    probs = class_balance if class_balance is not None else np.full(n_classes, 1.0 / n_classes)
    probs = np.asarray(probs, dtype=np.float64)
    probs = probs / probs.sum()
    y = rng.choice(n_classes, size=n_samples, p=probs)

    # Per-sample pathway activity = class pattern + biological variability.
    activity = class_pathways[y] + rng.normal(0.0, 0.4, size=(n_samples, n_pathways))
    gene_activity = activity[:, pathway_of_gene] * loadings[None, :]
    if nonlinearity == "tanh":
        signal = np.tanh(gene_activity)
    elif nonlinearity == "linear":
        signal = gene_activity
    else:
        raise ValueError(f"unknown nonlinearity {nonlinearity!r}")
    x = signal + rng.normal(0.0, noise, size=(n_samples, n_genes))

    # z-score per gene, like standard expression preprocessing.
    x = (x - x.mean(axis=0)) / (x.std(axis=0) + 1e-9)
    return ExpressionDataset(
        x=x, y=y, n_classes=n_classes,
        pathway_of_gene=pathway_of_gene, class_pathways=class_pathways,
    )


def make_autoencoder_expression(
    n_samples: int = 800,
    n_genes: int = 400,
    latent_dim: int = 10,
    noise: float = 0.3,
    saturation: float = 1.0,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Expression data on a low-dimensional nonlinear manifold, for the
    P1B1 autoencoder benchmark.  Returns (x, latent) where ``latent`` is the
    ground-truth coordinate — an autoencoder with bottleneck >= latent_dim
    should reconstruct well; smaller bottlenecks should degrade.

    ``saturation`` scales the pre-tanh activations: at 1.0 the manifold is
    mildly nonlinear (linear PCA nearly matches an autoencoder); at 3+ the
    tanh saturates and the manifold's *linear* rank far exceeds
    ``latent_dim``, so a nonlinear bottleneck genuinely wins.
    """
    rng = np.random.default_rng(seed)
    z = rng.standard_normal((n_samples, latent_dim))
    # Two random nonlinear decoding layers: z -> hidden -> genes.
    w1 = rng.standard_normal((latent_dim, 3 * latent_dim)) / np.sqrt(latent_dim)
    w2 = rng.standard_normal((3 * latent_dim, n_genes)) / np.sqrt(3 * latent_dim)
    x = np.tanh(saturation * (z @ w1)) @ w2 + noise * rng.standard_normal((n_samples, n_genes))
    x = (x - x.mean(axis=0)) / (x.std(axis=0) + 1e-9)
    return x, z
