"""Synthetic biomedical datasets with planted, verifiable structure.

Substitutes for the restricted/proprietary data the keynote's projects use
(TCGA expression, NCI drug screens, SEER registries, PATRIC genomes, MD
trajectories).  Each generator plants ground-truth structure so tests can
verify that models recover real signal.  See DESIGN.md for the
substitution rationale.
"""

from .amr import AMRDataset, attribution_hit_rate, make_amr_genomes, motif_buckets
from .drug_response import (
    ComboDataset,
    DrugResponseDataset,
    hill_response,
    make_combo_response,
    make_compound_screen,
    make_single_drug_response,
)
from .imaging import ImagingDataset, make_tumor_images
from .sequences import EventSequenceDataset, make_event_sequences
from .gene_expression import (
    ExpressionDataset,
    make_autoencoder_expression,
    make_tumor_expression,
)
from .pharmacology import HillFit, dose_response_auc, estimate_ic50_from_model, fit_hill
from .kmers import encode_sequence, featurize_genomes, kmer_count_vector, kmer_indices
from .md import (
    GaussianWellsPotential,
    basin_coverage,
    langevin_trajectory,
    make_rugged_landscape,
    visited_basins,
)
from .medical_records import TASK_NAMES, MedicalRecordsDataset, make_medical_records

__all__ = [
    "ExpressionDataset", "make_tumor_expression", "make_autoencoder_expression",
    "DrugResponseDataset", "ComboDataset", "make_single_drug_response",
    "make_combo_response", "make_compound_screen", "hill_response",
    "MedicalRecordsDataset", "make_medical_records", "TASK_NAMES",
    "AMRDataset", "make_amr_genomes", "motif_buckets", "attribution_hit_rate",
    "encode_sequence", "kmer_indices", "kmer_count_vector", "featurize_genomes",
    "HillFit", "fit_hill", "dose_response_auc", "estimate_ic50_from_model",
    "ImagingDataset", "make_tumor_images",
    "EventSequenceDataset", "make_event_sequences",
    "GaussianWellsPotential", "make_rugged_landscape", "langevin_trajectory",
    "basin_coverage", "visited_basins",
]
