"""Toy molecular-dynamics engine: overdamped Langevin dynamics on rugged
2-D potential-energy landscapes.

Substitutes for the "large-scale multi-resolution molecular dynamics
simulations used to explore cancer gene signaling pathways" (claim C3).
The substitution preserves the *workflow* property that matters: the
landscape has many metastable basins separated by barriers, so which
starting points you simulate from determines which basins you discover —
exactly the decision the DL supervisor in
:mod:`repro.workflow.md_supervision` learns to make.

Using a known analytic landscape means basin coverage is exactly
measurable, which a real MD code would not allow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class GaussianWellsPotential:
    """Sum of inverted Gaussian wells plus a confining quadratic bowl.

    V(x) = 0.5 * confine * |x|^2 - sum_i depth_i * exp(-|x - c_i|^2 / (2 w_i^2))

    Attributes
    ----------
    centers: (n_wells, dim) well centers.
    depths:  (n_wells,) well depths (positive).
    widths:  (n_wells,) Gaussian widths.
    confine: curvature of the confining bowl.
    """

    centers: np.ndarray
    depths: np.ndarray
    widths: np.ndarray
    confine: float = 0.05

    def __post_init__(self) -> None:
        self.centers = np.atleast_2d(np.asarray(self.centers, dtype=np.float64))
        self.depths = np.asarray(self.depths, dtype=np.float64)
        self.widths = np.asarray(self.widths, dtype=np.float64)
        if not (len(self.centers) == len(self.depths) == len(self.widths)):
            raise ValueError("centers, depths, widths must have equal length")
        if np.any(self.depths <= 0) or np.any(self.widths <= 0):
            raise ValueError("depths and widths must be positive")

    @property
    def n_wells(self) -> int:
        return len(self.centers)

    @property
    def dim(self) -> int:
        return self.centers.shape[1]

    def energy(self, x: np.ndarray) -> np.ndarray:
        """Potential energy at points ``x`` of shape (..., dim)."""
        x = np.asarray(x, dtype=np.float64)
        diff = x[..., None, :] - self.centers  # (..., n_wells, dim)
        d2 = (diff ** 2).sum(axis=-1)
        wells = (self.depths * np.exp(-d2 / (2 * self.widths ** 2))).sum(axis=-1)
        bowl = 0.5 * self.confine * (x ** 2).sum(axis=-1)
        return bowl - wells

    def gradient(self, x: np.ndarray) -> np.ndarray:
        """Analytic gradient dV/dx, shape matching ``x``."""
        x = np.asarray(x, dtype=np.float64)
        diff = x[..., None, :] - self.centers  # (..., n_wells, dim)
        d2 = (diff ** 2).sum(axis=-1, keepdims=True)
        gauss = self.depths[..., :, None] * np.exp(-d2 / (2 * self.widths[..., :, None] ** 2))
        well_grad = (gauss * diff / self.widths[..., :, None] ** 2).sum(axis=-2)
        return self.confine * x + well_grad

    def basin_of(self, x: np.ndarray, cutoff_factor: float = 2.0) -> np.ndarray:
        """Index of the well whose basin contains each point, or -1.

        A point belongs to the nearest center if within
        ``cutoff_factor * width`` of it — a geometric proxy for the true
        basin of attraction that is exact for well-separated wells.
        """
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        diff = x[:, None, :] - self.centers
        dist = np.sqrt((diff ** 2).sum(axis=-1))
        nearest = dist.argmin(axis=1)
        within = dist[np.arange(len(x)), nearest] <= cutoff_factor * self.widths[nearest]
        out = np.where(within, nearest, -1)
        return out


def make_rugged_landscape(
    n_wells: int = 12,
    dim: int = 2,
    extent: float = 6.0,
    depth_range: Tuple[float, float] = (1.0, 3.0),
    width_range: Tuple[float, float] = (0.4, 0.8),
    min_separation: float = 1.5,
    seed: int = 0,
) -> GaussianWellsPotential:
    """Random multi-well landscape with minimum well separation.

    Wells are placed by rejection sampling so basins don't merge; depths
    are drawn so some basins are much harder to reach (rare states — the
    interesting discoveries for the adaptive sampler).
    """
    rng = np.random.default_rng(seed)
    centers: List[np.ndarray] = []
    attempts = 0
    while len(centers) < n_wells:
        attempts += 1
        if attempts > 10000:
            raise RuntimeError("could not place wells; lower n_wells or min_separation")
        c = rng.uniform(-extent, extent, size=dim)
        if all(np.linalg.norm(c - e) >= min_separation for e in centers):
            centers.append(c)
    depths = rng.uniform(*depth_range, size=n_wells)
    widths = rng.uniform(*width_range, size=n_wells)
    return GaussianWellsPotential(np.array(centers), depths, widths)


def langevin_trajectory(
    potential: GaussianWellsPotential,
    x0: np.ndarray,
    n_steps: int = 500,
    dt: float = 0.01,
    temperature: float = 0.3,
    rng: Optional[np.random.Generator] = None,
    record_every: int = 10,
) -> np.ndarray:
    """Overdamped Langevin dynamics from ``x0``.

    dx = -grad V dt + sqrt(2 T dt) dW.  Returns recorded positions of shape
    (n_recorded, dim); the walker is the 'simulation' whose compute budget
    the supervised-MD experiment allocates.
    """
    if n_steps < 1:
        raise ValueError("n_steps must be >= 1")
    rng = rng or np.random.default_rng(0)
    x = np.asarray(x0, dtype=np.float64).copy()
    sigma = np.sqrt(2.0 * temperature * dt)
    recorded = []
    for step in range(n_steps):
        x = x - potential.gradient(x) * dt + sigma * rng.standard_normal(x.shape)
        if (step + 1) % record_every == 0:
            recorded.append(x.copy())
    if not recorded:
        recorded.append(x.copy())
    return np.array(recorded)


def basin_coverage(potential: GaussianWellsPotential, samples: np.ndarray) -> float:
    """Fraction of the landscape's basins visited by ``samples``."""
    basins = potential.basin_of(samples)
    found = set(int(b) for b in basins if b >= 0)
    return len(found) / potential.n_wells


def visited_basins(potential: GaussianWellsPotential, samples: np.ndarray) -> np.ndarray:
    """Sorted array of distinct basin indices visited (excluding -1)."""
    basins = potential.basin_of(samples)
    return np.unique(basins[basins >= 0])
