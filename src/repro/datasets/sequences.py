"""Synthetic clinical event sequences where *order matters*.

The P3B2-style sequence workload: each patient is a timeline of coded
events (diagnoses, treatments, labs).  The planted outcome rule depends on
event **order** — e.g., outcome 1 iff a treatment event occurs *after* the
triggering diagnosis — so bag-of-events models hit a ceiling that a
recurrent model can pass.  That gap is the test of the sequence-model
capability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class EventSequenceDataset:
    """One-hot event sequences with order-dependent labels.

    x: (n, T, n_codes) one-hot event timelines.
    y: (n,) binary outcome.
    codes: (n, T) the raw integer event codes.
    trigger, response: the two planted event codes whose order decides y.
    """

    x: np.ndarray
    y: np.ndarray
    codes: np.ndarray
    trigger: int
    response: int

    @property
    def seq_length(self) -> int:
        return self.x.shape[1]

    @property
    def n_codes(self) -> int:
        return self.x.shape[2]

    def bag_of_events(self) -> np.ndarray:
        """Order-free count features (the baseline's view of the data)."""
        return self.x.sum(axis=1)


def make_event_sequences(
    n_samples: int = 400,
    seq_length: int = 20,
    n_codes: int = 12,
    label_noise: float = 0.0,
    seed: int = 0,
) -> EventSequenceDataset:
    """Generate order-sensitive patient timelines.

    Every sequence contains exactly one ``trigger`` event (the diagnosis)
    and one ``response`` event (the treatment) at random distinct
    positions, plus background events.  Label = 1 iff the response comes
    *after* the trigger.  Because both classes have identical event
    *counts*, an order-free model can do no better than chance from the
    planted signal alone.
    """
    if seq_length < 4:
        raise ValueError("seq_length must be >= 4")
    if n_codes < 3:
        raise ValueError("n_codes must be >= 3")
    rng = np.random.default_rng(seed)
    trigger, response = 0, 1  # reserved codes; background uses 2..n_codes-1

    codes = rng.integers(2, n_codes, size=(n_samples, seq_length))
    y = np.zeros(n_samples, dtype=np.int64)
    for i in range(n_samples):
        pos = rng.choice(seq_length, size=2, replace=False)
        first, second = int(pos.min()), int(pos.max())
        if rng.random() < 0.5:
            codes[i, first], codes[i, second] = trigger, response
            y[i] = 1  # response after trigger
        else:
            codes[i, first], codes[i, second] = response, trigger
            y[i] = 0

    if label_noise > 0:
        flip = rng.random(n_samples) < label_noise
        y[flip] = 1 - y[flip]

    x = np.zeros((n_samples, seq_length, n_codes))
    rows = np.arange(n_samples)[:, None]
    cols = np.arange(seq_length)[None, :]
    x[rows, cols, codes] = 1.0
    return EventSequenceDataset(x=x, y=y, codes=codes, trigger=trigger, response=response)
