"""Synthetic antimicrobial-resistance (AMR) genomes with planted
resistance genes.

Substitutes for the PATRIC genome collections the keynote's infectious-
disease project uses.  Each genome is random background DNA; resistant
genomes carry one or more of a small set of **resistance gene motifs**
(inserted with point mutations).  Because the ground-truth motifs are
known, the "identify novel antibiotic resistance mechanisms" claim (C5)
becomes testable: feature attribution on the trained classifier should
rank motif k-mers above background k-mers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .kmers import BASES, featurize_genomes


@dataclass
class AMRDataset:
    """Genomes, labels, features, and planted ground truth."""

    genomes: List[str]
    y: np.ndarray  # (n,) 0 = susceptible, 1 = resistant
    x: np.ndarray  # (n, n_features) hashed k-mer counts
    resistance_motifs: List[str]
    k: int
    n_features: int


def _random_dna(rng: np.random.Generator, length: int) -> str:
    return "".join(BASES[i] for i in rng.integers(0, 4, size=length))


def _mutate(rng: np.random.Generator, seq: str, rate: float) -> str:
    """Point-mutate each base independently with probability ``rate``."""
    chars = list(seq)
    for i in range(len(chars)):
        if rng.random() < rate:
            chars[i] = BASES[rng.integers(0, 4)]
    return "".join(chars)


def make_amr_genomes(
    n_genomes: int = 400,
    genome_length: int = 3000,
    n_motifs: int = 3,
    motif_length: int = 40,
    mutation_rate: float = 0.02,
    resistant_fraction: float = 0.5,
    k: int = 6,
    n_features: int = 512,
    seed: int = 0,
) -> AMRDataset:
    """Generate the AMR classification dataset.

    Resistant genomes receive 1–2 copies of a randomly-chosen resistance
    motif at random positions, each copy independently point-mutated
    (variant alleles).  Susceptible genomes are pure background.
    """
    if motif_length >= genome_length:
        raise ValueError("motif must be shorter than the genome")
    rng = np.random.default_rng(seed)
    motifs = [_random_dna(rng, motif_length) for _ in range(n_motifs)]

    genomes: List[str] = []
    y = np.zeros(n_genomes, dtype=np.int64)
    for i in range(n_genomes):
        g = _random_dna(rng, genome_length)
        if rng.random() < resistant_fraction:
            y[i] = 1
            copies = int(rng.integers(1, 3))
            for _ in range(copies):
                motif = _mutate(rng, motifs[rng.integers(0, n_motifs)], mutation_rate)
                pos = int(rng.integers(0, genome_length - motif_length))
                g = g[:pos] + motif + g[pos + motif_length:]
        genomes.append(g)

    x = featurize_genomes(genomes, k=k, n_features=n_features)
    return AMRDataset(
        genomes=genomes, y=y, x=x,
        resistance_motifs=motifs, k=k, n_features=n_features,
    )


def motif_buckets(dataset: AMRDataset) -> np.ndarray:
    """Feature buckets the planted motifs' k-mers hash into — the ground
    truth that mechanism-discovery attribution should recover."""
    from .kmers import encode_sequence, kmer_indices

    buckets = set()
    for motif in dataset.resistance_motifs:
        idx = kmer_indices(encode_sequence(motif), dataset.k)
        hashed = (idx * np.int64(2654435761)) % np.int64(dataset.n_features)
        buckets.update(int(h) for h in hashed)
    return np.array(sorted(buckets), dtype=np.int64)


def attribution_hit_rate(importance: np.ndarray, dataset: AMRDataset, top_n: int = 30) -> float:
    """Fraction of the top-``top_n`` most-important features that belong to
    a planted motif — the mechanism-discovery score used in E7/E8 analyses."""
    truth = set(motif_buckets(dataset).tolist())
    top = np.argsort(importance)[::-1][:top_n]
    hits = sum(1 for b in top if int(b) in truth)
    return hits / top_n
