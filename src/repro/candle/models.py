"""CANDLE-style benchmark model builders.

Each builder mirrors the architecture family of the corresponding ECP
CANDLE pilot benchmark (the open-source realization of the workloads this
keynote describes), scaled to run on the NumPy framework:

* **P1B1** — gene-expression autoencoder (dimensionality reduction).
* **P1B2** — sparse-data MLP classifier (tumor typing from expression).
* **NT3**  — 1-D convolutional tumor/normal classifier.
* **Combo**— drug-pair response regressor with per-input towers.
* **P3B1** — multitask clinical-records classifier (shared trunk).
* **AMR**  — k-mer MLP for antibiotic-resistance prediction.

Builders take hyperparameters the HPO experiments sweep (layer widths,
dropout, activation) and return un-built models; ``Model.fit`` builds them
lazily from the data shape.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..nn import (
    Activation,
    BatchNorm,
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    MaxPool1D,
    Model,
    Sequential,
    Tensor,
)
from ..nn import functional as F
from ..nn import losses as losses_mod
from ..nn.dataloader import DataLoader
from ..nn.optim import Adam


def build_p1b1_autoencoder(
    input_dim: int,
    latent_dim: int = 20,
    hidden: Sequence[int] = (200, 80),
    activation: str = "relu",
    dropout: float = 0.0,
) -> Sequential:
    """P1B1: symmetric dense autoencoder with a ``latent_dim`` bottleneck."""
    layers: List = []
    for h in hidden:
        layers.append(Dense(h, activation=activation))
        if dropout > 0:
            layers.append(Dropout(dropout))
    layers.append(Dense(latent_dim, activation=activation, name="bottleneck"))
    for h in reversed(hidden):
        layers.append(Dense(h, activation=activation))
    layers.append(Dense(input_dim))
    return Sequential(layers)


def encode_p1b1(model: Sequential, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
    """Run only the encoder half (through the bottleneck layer)."""
    from ..nn.tensor import no_grad

    cut = next(i for i, l in enumerate(model.layers) if l.name == "bottleneck") + 1
    outs = []
    with no_grad():
        for start in range(0, len(x), batch_size):
            h = Tensor(np.asarray(x[start : start + batch_size]))
            for layer in model.layers[:cut]:
                h = layer(h, training=False)
            outs.append(h.data)
    return np.concatenate(outs, axis=0)


def build_p1b2_classifier(
    n_classes: int,
    hidden: Sequence[int] = (256, 128, 64),
    activation: str = "relu",
    dropout: float = 0.1,
    batch_norm: bool = False,
) -> Sequential:
    """P1B2: deep MLP over (sparse-ish) expression features -> tumor type."""
    layers: List = []
    for h in hidden:
        if batch_norm:
            # Norm sits between the affine map and the nonlinearity, so
            # the activation must stay a separate layer here.
            layers.append(Dense(h, activation=None))
            layers.append(BatchNorm())
            layers.append(Activation(activation))
        else:
            # Same computation, but expressed so Dense can take the fused
            # GEMM + bias + activation path.
            layers.append(Dense(h, activation=activation))
        if dropout > 0:
            layers.append(Dropout(dropout))
    layers.append(Dense(n_classes))
    return Sequential(layers)


def build_nt3_classifier(
    n_classes: int,
    conv_filters: Sequence[int] = (16, 32),
    kernel_size: int = 7,
    pool_size: int = 2,
    dense_units: Sequence[int] = (64,),
    dropout: float = 0.1,
    activation: str = "relu",
) -> Sequential:
    """NT3: 1-D CNN over gene-expression profiles laid out along the genome.

    Input shape: (N, 1, n_genes).
    """
    layers: List = []
    for f in conv_filters:
        layers.append(Conv1D(f, kernel_size, activation=activation))
        layers.append(MaxPool1D(pool_size))
    layers.append(Flatten())
    for u in dense_units:
        layers.append(Dense(u, activation=activation))
        if dropout > 0:
            layers.append(Dropout(dropout))
    layers.append(Dense(n_classes))
    return Sequential(layers)


class ComboModel(Model):
    """Combo: separate feature towers for the cell line and each drug,
    merged into a response head — the CANDLE Combo topology.

    Input layout must match :func:`repro.datasets.make_combo_response`:
    ``[cell_features | drug1_features | drug2_features | dose1 | dose2]``.
    The two drug towers share weights (drug order must not matter).
    """

    def __init__(
        self,
        n_cell_features: int,
        n_drug_features: int,
        tower_units: Sequence[int] = (64, 32),
        head_units: Sequence[int] = (64, 32),
        activation: str = "relu",
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        self.n_cell = n_cell_features
        self.n_drug = n_drug_features
        self.cell_tower = [Dense(u, activation=activation, name=f"cell{u}") for u in tower_units]
        self.drug_tower = [Dense(u, activation=activation, name=f"drug{u}") for u in tower_units]
        self.head: List = []
        for u in head_units:
            self.head.append(Dense(u, activation=activation))
            if dropout > 0:
                self.head.append(Dropout(dropout))
        self.head.append(Dense(1))
        # Registered for parameter discovery.
        self.layers = self.cell_tower + self.drug_tower + self.head

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        expected = self.n_cell + 2 * self.n_drug + 2
        if input_shape[-1] != expected:
            raise ValueError(f"combo input must have {expected} features, got {input_shape[-1]}")
        shape = (self.n_cell,)
        for layer in self.cell_tower:
            layer.build(shape, rng)
            shape = layer.output_shape(shape)
        cell_out = shape[0]
        shape = (self.n_drug + 1,)  # drug features + its dose
        for layer in self.drug_tower:
            layer.build(shape, rng)
            shape = layer.output_shape(shape)
        drug_out = shape[0]
        shape = (cell_out + 2 * drug_out,)
        for layer in self.head:
            layer.build(shape, rng)
            shape = layer.output_shape(shape)
        self.built = True

    def forward(self, x: Tensor, training: bool = True) -> Tensor:
        nc, nd = self.n_cell, self.n_drug
        cell = x[:, :nc]
        drug1 = x[:, nc : nc + nd]
        drug2 = x[:, nc + nd : nc + 2 * nd]
        dose1 = x[:, nc + 2 * nd : nc + 2 * nd + 1]
        dose2 = x[:, nc + 2 * nd + 1 :]

        from ..nn.tensor import concatenate

        h_cell = cell
        for layer in self.cell_tower:
            h_cell = layer(h_cell, training=training)
        h_d1 = concatenate([drug1, dose1], axis=1)
        h_d2 = concatenate([drug2, dose2], axis=1)
        for layer in self.drug_tower:  # shared weights across both drugs
            h_d1 = layer(h_d1, training=training)
            h_d2 = layer(h_d2, training=training)
        # Symmetric merge (sum + product): response to (A, B) must equal
        # the response to (B, A), and the product term carries the pairwise
        # interaction the synergy signal lives in.
        h = concatenate([h_cell, h_d1 + h_d2, h_d1 * h_d2], axis=1)
        for layer in self.head:
            h = layer(h, training=training)
        return h


def build_combo_mlp(
    hidden: Sequence[int] = (128, 64, 32),
    activation: str = "relu",
    dropout: float = 0.0,
) -> Sequential:
    """Flat-MLP variant of the Combo regressor (the HPO search compares the
    flat and tower topologies)."""
    layers: List = []
    for h in hidden:
        layers.append(Dense(h, activation=activation))
        if dropout > 0:
            layers.append(Dropout(dropout))
    layers.append(Dense(1))
    return Sequential(layers)


class MultitaskModel(Model):
    """P3B1: shared trunk + one classification head per task."""

    def __init__(
        self,
        task_classes: Dict[str, int],
        shared_units: Sequence[int] = (128, 64),
        head_units: Sequence[int] = (32,),
        activation: str = "relu",
        dropout: float = 0.1,
    ) -> None:
        super().__init__()
        self.task_names = tuple(task_classes.keys())
        self.trunk: List = []
        for u in shared_units:
            self.trunk.append(Dense(u, activation=activation))
            if dropout > 0:
                self.trunk.append(Dropout(dropout))
        self.heads: Dict[str, List] = {}
        for task, n_cls in task_classes.items():
            head: List = []
            for u in head_units:
                head.append(Dense(u, activation=activation, name=f"{task}_h{u}"))
            head.append(Dense(n_cls, name=f"{task}_out"))
            self.heads[task] = head
        self.layers = self.trunk + [l for head in self.heads.values() for l in head]

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        shape = tuple(input_shape)
        for layer in self.trunk:
            layer.build(shape, rng)
            shape = layer.output_shape(shape)
        trunk_shape = shape
        for head in self.heads.values():
            shape = trunk_shape
            for layer in head:
                layer.build(shape, rng)
                shape = layer.output_shape(shape)
        self.built = True

    def forward_all(self, x: Tensor, training: bool = True) -> Dict[str, Tensor]:
        """Logits for every task."""
        h = x
        for layer in self.trunk:
            h = layer(h, training=training)
        out = {}
        for task, head in self.heads.items():
            t = h
            for layer in head:
                t = layer(t, training=training)
            out[task] = t
        return out

    def forward(self, x: Tensor, training: bool = True) -> Tensor:
        # Single-output protocol: return the first task (used by generic
        # tooling); multitask training goes through fit_multitask.
        return self.forward_all(x, training=training)[self.task_names[0]]

    def predict_all(self, x: np.ndarray, batch_size: int = 256) -> Dict[str, np.ndarray]:
        from ..nn.tensor import no_grad

        outs: Dict[str, List[np.ndarray]] = {t: [] for t in self.task_names}
        with no_grad():
            for start in range(0, len(x), batch_size):
                logits = self.forward_all(Tensor(np.asarray(x[start : start + batch_size])), training=False)
                for t in self.task_names:
                    outs[t].append(logits[t].data)
        return {t: np.concatenate(v, axis=0) for t, v in outs.items()}


def fit_multitask(
    model: MultitaskModel,
    x: np.ndarray,
    labels: Dict[str, np.ndarray],
    epochs: int = 20,
    batch_size: int = 32,
    lr: float = 1e-3,
    task_weights: Optional[Dict[str, float]] = None,
    seed: int = 0,
) -> List[float]:
    """Joint training: summed (weighted) cross-entropy over all tasks.

    Returns per-epoch mean total losses.
    """
    rng = np.random.default_rng(seed)
    x = np.asarray(x)
    if not model.built:
        model.build(x.shape[1:], rng)
    opt = Adam(model.parameters(), lr=lr)
    weights = task_weights or {t: 1.0 for t in model.task_names}
    # Stack labels so the loader shuffles them together.
    label_matrix = np.stack([labels[t] for t in model.task_names], axis=1)
    loader = DataLoader(x, label_matrix, batch_size=batch_size, shuffle=True, rng=rng)

    epoch_losses: List[float] = []
    for _ in range(epochs):
        total, count = 0.0, 0
        for xb, yb in loader:
            logits = model.forward_all(Tensor(xb), training=True)
            loss = None
            for i, task in enumerate(model.task_names):
                task_loss = losses_mod.cross_entropy(logits[task], yb[:, i]) * weights[task]
                loss = task_loss if loss is None else loss + task_loss
            opt.zero_grad()
            loss.backward()
            opt.step()
            total += loss.item()
            count += 1
        epoch_losses.append(total / max(count, 1))
    return epoch_losses


def build_amr_classifier(
    hidden: Sequence[int] = (128, 64),
    activation: str = "relu",
    dropout: float = 0.2,
) -> Sequential:
    """AMR: MLP over hashed k-mer counts -> resistant/susceptible logit."""
    layers: List = []
    for h in hidden:
        layers.append(Dense(h, activation=activation))
        if dropout > 0:
            layers.append(Dropout(dropout))
    layers.append(Dense(1))
    return Sequential(layers)


def feature_importance(model: Model, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
    """Gradient x input attribution, averaged over samples.

    The mechanism-discovery tool for the AMR workload (claim C5): features
    whose perturbation most moves the resistance logit.  Returns a
    (n_features,) non-negative importance vector.
    """
    x = np.asarray(x)
    total = np.zeros(x.shape[1])
    for start in range(0, len(x), batch_size):
        xb = Tensor(np.asarray(x[start : start + batch_size], dtype=np.float64), requires_grad=True)
        out = model.forward(xb, training=False)
        out.sum().backward()
        total += np.abs(xb.grad * xb.data).sum(axis=0)
    return total / len(x)


def build_imaging_classifier(
    n_classes: int,
    conv_filters: Sequence[int] = (8, 16),
    kernel_size: int = 3,
    pool_size: int = 2,
    dense_units: Sequence[int] = (32,),
    dropout: float = 0.1,
    activation: str = "relu",
) -> Sequential:
    """Tumor-image grade classifier: small 2-D conv net over (N, 1, H, W)
    patches — the keynote's "diagnose and classify tumors" workload."""
    from ..nn import Conv2D, GlobalAvgPool2D, MaxPool2D

    layers: List = []
    for f in conv_filters:
        layers.append(Conv2D(f, kernel_size, activation=activation, padding="same"))
        layers.append(MaxPool2D(pool_size))
    layers.append(GlobalAvgPool2D())
    for u in dense_units:
        layers.append(Dense(u, activation=activation))
        if dropout > 0:
            layers.append(Dropout(dropout))
    layers.append(Dense(n_classes))
    return Sequential(layers)


def build_p3b2_sequence_classifier(
    n_classes: int,
    units: int = 32,
    cell: str = "gru",
    dense_units: Sequence[int] = (),
    dropout: float = 0.0,
) -> Sequential:
    """P3B2-style recurrent classifier over clinical event sequences
    (N, T, n_codes) — order-sensitive outcomes a bag-of-events model
    cannot learn."""
    from ..nn import GRU, LSTM, SimpleRNN

    if cell == "gru":
        rnn = GRU(units)
    elif cell == "lstm":
        rnn = LSTM(units)
    elif cell == "rnn":
        rnn = SimpleRNN(units)
    else:
        raise ValueError(f"unknown cell {cell!r}; choose 'gru', 'lstm' or 'rnn'")
    layers: List = [rnn]
    for u in dense_units:
        layers.append(Dense(u, activation="relu"))
        if dropout > 0:
            layers.append(Dropout(dropout))
    layers.append(Dense(n_classes))
    return Sequential(layers)
