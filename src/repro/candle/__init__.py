"""CANDLE-style benchmark models for cancer and infectious disease, plus
classical baselines (claims C1, C2, C4, C5 / experiment E7)."""

from .baselines import PCA, KNNClassifier, KNNRegressor, LogisticRegression, RidgeRegression
from .models import (
    ComboModel,
    MultitaskModel,
    build_amr_classifier,
    build_combo_mlp,
    build_imaging_classifier,
    build_nt3_classifier,
    build_p1b1_autoencoder,
    build_p1b2_classifier,
    build_p3b2_sequence_classifier,
    encode_p1b1,
    feature_importance,
    fit_multitask,
)
from .registry import REGISTRY, BenchmarkSpec, get_benchmark

__all__ = [
    "RidgeRegression", "LogisticRegression", "KNNClassifier", "KNNRegressor", "PCA",
    "build_p1b1_autoencoder", "encode_p1b1", "build_p1b2_classifier",
    "build_nt3_classifier", "ComboModel", "build_combo_mlp",
    "build_imaging_classifier", "build_p3b2_sequence_classifier",
    "MultitaskModel", "fit_multitask", "build_amr_classifier",
    "feature_importance", "REGISTRY", "BenchmarkSpec", "get_benchmark",
]
