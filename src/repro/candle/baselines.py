"""Classical ML baselines, from scratch in NumPy.

Experiment E7 compares every DL benchmark against the matching classical
method — the keynote's claim is that the DL models out-perform them on
these workloads.  Implemented here so the repository has no ML-library
dependency: ridge regression (closed form), multinomial logistic
regression (full-batch gradient descent), and k-nearest-neighbours.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class RidgeRegression:
    """L2-regularized least squares, solved in closed form.

    Solves (X'X + alpha I) w = X'y with an intercept column handled
    separately (the intercept is not penalized).
    """

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RidgeRegression":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if y.ndim == 1:
            y = y[:, None]
        x_mean = x.mean(axis=0)
        y_mean = y.mean(axis=0)
        xc = x - x_mean
        yc = y - y_mean
        d = x.shape[1]
        a = xc.T @ xc + self.alpha * np.eye(d)
        b = xc.T @ yc
        self.coef_ = np.linalg.solve(a, b)
        self.intercept_ = y_mean - x_mean @ self.coef_
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("fit before predict")
        out = np.asarray(x, dtype=np.float64) @ self.coef_ + self.intercept_
        return out.squeeze(-1) if out.shape[-1] == 1 else out


class LogisticRegression:
    """Multinomial logistic regression with L2, full-batch gradient descent."""

    def __init__(
        self,
        lr: float = 0.5,
        n_iter: int = 300,
        alpha: float = 1e-3,
        tol: float = 1e-7,
    ) -> None:
        self.lr = lr
        self.n_iter = n_iter
        self.alpha = alpha
        self.tol = tol
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[np.ndarray] = None
        self.n_classes_: int = 0

    @staticmethod
    def _softmax(z: np.ndarray) -> np.ndarray:
        z = z - z.max(axis=1, keepdims=True)
        e = np.exp(z)
        return e / e.sum(axis=1, keepdims=True)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y).astype(np.int64)
        n, d = x.shape
        self.n_classes_ = int(y.max()) + 1
        onehot = np.eye(self.n_classes_)[y]
        w = np.zeros((d, self.n_classes_))
        b = np.zeros(self.n_classes_)
        prev_loss = np.inf
        for _ in range(self.n_iter):
            probs = self._softmax(x @ w + b)
            grad_logits = (probs - onehot) / n
            grad_w = x.T @ grad_logits + self.alpha * w
            grad_b = grad_logits.sum(axis=0)
            w -= self.lr * grad_w
            b -= self.lr * grad_b
            loss = -np.log(probs[np.arange(n), y] + 1e-12).mean() + 0.5 * self.alpha * (w ** 2).sum()
            if abs(prev_loss - loss) < self.tol:
                break
            prev_loss = loss
        self.coef_, self.intercept_ = w, b
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("fit before predict")
        return self._softmax(np.asarray(x, dtype=np.float64) @ self.coef_ + self.intercept_)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.predict_proba(x).argmax(axis=1)


class KNNClassifier:
    """Brute-force k-nearest-neighbour classifier (Euclidean)."""

    def __init__(self, k: int = 5) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNClassifier":
        self._x = np.asarray(x, dtype=np.float64)
        self._y = np.asarray(y).astype(np.int64)
        return self

    def predict(self, x: np.ndarray, batch: int = 256) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("fit before predict")
        x = np.asarray(x, dtype=np.float64)
        n_classes = int(self._y.max()) + 1
        preds = np.empty(len(x), dtype=np.int64)
        train_sq = (self._x ** 2).sum(axis=1)
        for start in range(0, len(x), batch):
            xb = x[start : start + batch]
            d2 = (xb ** 2).sum(axis=1)[:, None] - 2 * xb @ self._x.T + train_sq[None, :]
            nn_idx = np.argpartition(d2, self.k - 1, axis=1)[:, : self.k]
            votes = self._y[nn_idx]
            counts = np.zeros((len(xb), n_classes), dtype=np.int64)
            for col in range(self.k):
                np.add.at(counts, (np.arange(len(xb)), votes[:, col]), 1)
            preds[start : start + batch] = counts.argmax(axis=1)
        return preds


class KNNRegressor:
    """Brute-force k-nearest-neighbour regressor (mean of neighbours)."""

    def __init__(self, k: int = 5) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNRegressor":
        self._x = np.asarray(x, dtype=np.float64)
        self._y = np.asarray(y, dtype=np.float64).ravel()
        return self

    def predict(self, x: np.ndarray, batch: int = 256) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("fit before predict")
        x = np.asarray(x, dtype=np.float64)
        preds = np.empty(len(x))
        train_sq = (self._x ** 2).sum(axis=1)
        for start in range(0, len(x), batch):
            xb = x[start : start + batch]
            d2 = (xb ** 2).sum(axis=1)[:, None] - 2 * xb @ self._x.T + train_sq[None, :]
            nn_idx = np.argpartition(d2, self.k - 1, axis=1)[:, : self.k]
            preds[start : start + batch] = self._y[nn_idx].mean(axis=1)
        return preds


class PCA:
    """Principal component analysis via thin SVD (baseline for the P1B1
    autoencoder: the best *linear* bottleneck)."""

    def __init__(self, n_components: int) -> None:
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components
        self.mean_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "PCA":
        x = np.asarray(x, dtype=np.float64)
        self.mean_ = x.mean(axis=0)
        # full_matrices=False: we only need the top singular vectors.
        _, _, vt = np.linalg.svd(x - self.mean_, full_matrices=False)
        self.components_ = vt[: self.n_components]
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        return (np.asarray(x) - self.mean_) @ self.components_.T

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        return np.asarray(z) @ self.components_ + self.mean_

    def reconstruction_mse(self, x: np.ndarray) -> float:
        recon = self.inverse_transform(self.transform(x))
        return float(((recon - np.asarray(x)) ** 2).mean())
