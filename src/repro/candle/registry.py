"""Benchmark registry: one entry per CANDLE-style workload.

Each entry bundles a data generator, a model builder, the training loss,
and the headline metric — the unit of work that the HPO scheduler
(:mod:`repro.hpo`) and the E7 accuracy bench iterate over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..datasets import (
    make_amr_genomes,
    make_autoencoder_expression,
    make_combo_response,
    make_event_sequences,
    make_single_drug_response,
    make_tumor_expression,
    make_tumor_images,
)
from . import models as M


# Per-sample input shapes are a pure function of (generator, seed), but
# deriving one means generating the full synthetic dataset — hundreds of
# samples — just to look at x.shape[1:].  Registry loads and checkpoint
# materialization hit input_shape() far more often than data generation
# changes, so memoize the derived shape.  Keyed by the generator callable
# itself (not just the benchmark name) so a spec rebuilt with a different
# make_data never sees a stale shape.
_SHAPE_CACHE: Dict[tuple, tuple] = {}


@dataclass(frozen=True)
class BenchmarkSpec:
    """Declarative description of one benchmark."""

    name: str
    description: str
    make_data: Callable  # seed -> (x, y)
    build_model: Callable  # **hparams -> Model
    loss: str
    metric: str
    metric_mode: str  # 'max' or 'min'

    def input_shape(self, seed: int = 0) -> tuple:
        """Per-sample input shape, derived (once) from the data generator."""
        key = (self.name, self.make_data, seed)
        shape = _SHAPE_CACHE.get(key)
        if shape is None:
            x, _ = self.make_data(seed=seed)
            shape = _SHAPE_CACHE[key] = tuple(np.asarray(x).shape[1:])
        return shape

    def materialize(self, input_shape: Optional[tuple] = None, seed: int = 0, **hparams):
        """Build the benchmark model *and* run deferred layer construction.

        ``Model.fit`` normally builds lazily from the training data; the
        serving path loads checkpoints into models that never see a fit
        call, so it needs a fully-built model up front.  ``input_shape``
        defaults to the benchmark's own data shape.
        """
        model = self.build_model(**hparams)
        shape = tuple(input_shape) if input_shape is not None else self.input_shape(seed=seed)
        model.build(shape, np.random.default_rng(seed))
        return model


def _p1b1_data(seed: int = 0):
    x, _ = make_autoencoder_expression(n_samples=600, n_genes=200, latent_dim=10, seed=seed)
    return x, None


def _p1b2_data(seed: int = 0):
    ds = make_tumor_expression(n_samples=600, n_genes=200, n_classes=4, seed=seed)
    return ds.x, ds.y


def _nt3_data(seed: int = 0):
    ds = make_tumor_expression(n_samples=500, n_genes=200, n_classes=2, seed=seed)
    return ds.as_conv_input(), ds.y


def _combo_data(seed: int = 0):
    ds = make_combo_response(n_samples=1500, seed=seed)
    return ds.x, ds.y.reshape(-1, 1)


def _single_drug_data(seed: int = 0):
    ds = make_single_drug_response(n_samples=1500, seed=seed)
    return ds.x, ds.y.reshape(-1, 1)


def _imaging_data(seed: int = 0):
    ds = make_tumor_images(n_samples=200, size=16, equal_density=True, standardize=True, seed=seed)
    return ds.x, ds.y


def _sequence_data(seed: int = 0):
    ds = make_event_sequences(n_samples=250, seq_length=12, n_codes=10, seed=seed)
    return ds.x, ds.y


def _amr_data(seed: int = 0):
    ds = make_amr_genomes(n_genomes=300, genome_length=2000, seed=seed)
    return ds.x, ds.y.reshape(-1, 1).astype(np.float64)


REGISTRY: Dict[str, BenchmarkSpec] = {
    "p1b1": BenchmarkSpec(
        name="p1b1",
        description="Gene-expression autoencoder (dimensionality reduction)",
        make_data=_p1b1_data,
        build_model=lambda input_dim=200, **hp: M.build_p1b1_autoencoder(input_dim, **hp),
        loss="mse",
        metric="loss",
        metric_mode="min",
    ),
    "p1b2": BenchmarkSpec(
        name="p1b2",
        description="Tumor-type MLP classifier on expression",
        make_data=_p1b2_data,
        build_model=lambda n_classes=4, **hp: M.build_p1b2_classifier(n_classes, **hp),
        loss="cross_entropy",
        metric="accuracy",
        metric_mode="max",
    ),
    "nt3": BenchmarkSpec(
        name="nt3",
        description="1-D conv tumor/normal classifier",
        make_data=_nt3_data,
        build_model=lambda n_classes=2, **hp: M.build_nt3_classifier(n_classes, **hp),
        loss="cross_entropy",
        metric="accuracy",
        metric_mode="max",
    ),
    "combo": BenchmarkSpec(
        name="combo",
        description="Drug-pair response regressor with synergy",
        make_data=_combo_data,
        build_model=lambda **hp: M.build_combo_mlp(**hp),
        loss="mse",
        metric="r2",
        metric_mode="max",
    ),
    "single_drug": BenchmarkSpec(
        name="single_drug",
        description="Single-drug dose-response regressor",
        make_data=_single_drug_data,
        build_model=lambda **hp: M.build_combo_mlp(**hp),
        loss="mse",
        metric="r2",
        metric_mode="max",
    ),
    "imaging": BenchmarkSpec(
        name="imaging",
        description="Tumor-grade conv2d image classifier",
        make_data=_imaging_data,
        build_model=lambda n_classes=2, **hp: M.build_imaging_classifier(n_classes, **hp),
        loss="cross_entropy",
        metric="accuracy",
        metric_mode="max",
    ),
    "p3b2": BenchmarkSpec(
        name="p3b2",
        description="GRU classifier over order-sensitive clinical event sequences",
        make_data=_sequence_data,
        build_model=lambda n_classes=2, **hp: M.build_p3b2_sequence_classifier(n_classes, **hp),
        loss="cross_entropy",
        metric="accuracy",
        metric_mode="max",
    ),
    "amr": BenchmarkSpec(
        name="amr",
        description="Antibiotic-resistance k-mer classifier",
        make_data=_amr_data,
        build_model=lambda **hp: M.build_amr_classifier(**hp),
        loss="bce_logits",
        metric="roc_auc",
        metric_mode="max",
    ),
}


def get_benchmark(name: str) -> BenchmarkSpec:
    try:
        return REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown benchmark {name!r}; choose from {sorted(REGISTRY)}")
