"""repro: deep-learning driver workloads for cancer and infectious disease,
with an HPC-architecture simulator.

Reproduction of the system described in Rick Stevens' HPDC 2017 keynote
"Deep Learning in Cancer and Infectious Disease: Novel Driver Problems for
Future HPC Architecture".  See DESIGN.md for the claim-by-claim experiment
map and EXPERIMENTS.md for measured results.

Subpackages
-----------
- :mod:`repro.nn` — from-scratch NumPy deep-learning framework.
- :mod:`repro.precision` — reduced-precision (fp16/bf16/int8) emulation.
- :mod:`repro.datasets` — synthetic biomedical data with planted structure.
- :mod:`repro.candle` — CANDLE-style benchmark models + classical baselines.
- :mod:`repro.hpc` — simulated cluster: topologies, collectives, memory
  tiers, NVRAM staging, roofline performance and energy models.
- :mod:`repro.hpo` — hyperparameter search strategies and the parallel
  search orchestrator.
- :mod:`repro.workflow` — end-to-end workflows (training-on-cluster,
  DL-supervised molecular dynamics).
"""

__version__ = "1.0.0"
