"""repro: deep-learning driver workloads for cancer and infectious disease,
with an HPC-architecture simulator.

Reproduction of the system described in Rick Stevens' HPDC 2017 keynote
"Deep Learning in Cancer and Infectious Disease: Novel Driver Problems for
Future HPC Architecture".  See DESIGN.md for the claim-by-claim experiment
map and EXPERIMENTS.md for measured results.

Subpackages
-----------
- :mod:`repro.nn` — from-scratch NumPy deep-learning framework.
- :mod:`repro.precision` — reduced-precision (fp16/bf16/int8) emulation.
- :mod:`repro.datasets` — synthetic biomedical data with planted structure.
- :mod:`repro.candle` — CANDLE-style benchmark models + classical baselines.
- :mod:`repro.hpc` — simulated cluster: topologies, collectives, memory
  tiers, NVRAM staging, roofline performance and energy models.
- :mod:`repro.hpo` — hyperparameter search strategies and the parallel
  search orchestrator.
- :mod:`repro.workflow` — end-to-end workflows (training-on-cluster,
  DL-supervised molecular dynamics).
- :mod:`repro.parallel` — real multi-core execution engine: shared-memory
  data plane, process worker pool, deterministic allreduce, real-clock
  HPO trial executor, prefetching.
- :mod:`repro.resilience` — fault injection, checkpoint/restart, and the
  degradation-policy campaign runtime.
- :mod:`repro.perf` — op-level profiling and kernel benchmarks.
- :mod:`repro.obs` — spans/metrics/trace export and artifact schemas.
- :mod:`repro.serve` — micro-batched inference serving.
"""

__version__ = "1.0.0"
