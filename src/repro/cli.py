"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the benchmark registry, machine catalog, and experiment index.
``train <benchmark>``
    Train a registry benchmark on synthetic data and print its metric.
``price <benchmark>``
    Price one training step of the benchmark on every catalog machine.
``experiments``
    Print how to regenerate the E1-E15 experiment tables.
``serve-bench``
    Run the batched-inference serving benchmark (writes BENCH_serving.json).
``serve-scale-bench``
    Run the distributed serving tier under traffic mixes and chaos
    (writes BENCH_serving_scale.json).
``trace <trace.jsonl>``
    Validate and summarize a recorded trace: per-span-kind time breakdown,
    critical path, recorder overhead estimate; ``--chrome`` converts it
    to a Chrome trace-event file for chrome://tracing / Perfetto.
``registry <root> [name[@version]]``
    Browse a content-addressed model registry: list names and versions,
    show one artifact's manifest (benchmark, hparams, lineage, hash), or
    ``--verify`` its stored bytes against the content checksum.
``registry-bench``
    Run the artifact-store benchmark — publish/load throughput and warm
    hit rate under churn with concurrent readers (writes
    BENCH_registry.json).
``hpo-scale-bench``
    Run the durable elastic HPO benchmark — 10k sim-clock + 1k real-clock
    trials through the on-disk trial queue, scheduler overhead, seeded
    kill/resume replay, ASHA vs synchronous halving (writes
    BENCH_hpo_scale.json).
``ddp-overlap-bench``
    Run the overlapped bucketed gradient-allreduce benchmark — step
    throughput per comm engine under a calibrated wire stall, measured
    bytes-on-wire per wire dtype, and the process-vs-serial bit-parity
    audit (writes BENCH_ddp_overlap.json).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _cmd_list(args: argparse.Namespace) -> int:
    from .candle.registry import REGISTRY
    from .hpc.hardware import MACHINES
    from .utils import format_table

    rows = [[name, spec.description, spec.loss, spec.metric] for name, spec in sorted(REGISTRY.items())]
    print("Benchmarks:")
    print(format_table(["name", "description", "loss", "metric"], rows))
    print("\nMachines:")
    rows = []
    for name, node in MACHINES.items():
        acc = node.accelerator
        precs = "/".join(sorted(acc.peak_flops))
        rows.append([name, acc.name, precs, f"{acc.mem_capacity / 1e9:.0f} GB", f"{node.nic_bandwidth / 1e9:.1f} GB/s"])
    print(format_table(["name", "accelerator", "precisions", "device mem", "NIC"], rows))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from .candle.registry import get_benchmark
    from .nn import metrics as metrics_mod
    from .nn.dataloader import train_val_split

    spec = get_benchmark(args.benchmark)
    x, y = spec.make_data(seed=args.seed)
    rng = np.random.default_rng(args.seed)
    x_tr, y_tr, x_va, y_va = train_val_split(x, y, val_frac=0.3, rng=rng)
    model = spec.build_model()
    print(f"training {spec.name}: {spec.description}")
    history = model.fit(
        x_tr, y_tr, epochs=args.epochs, batch_size=args.batch_size,
        loss=spec.loss, lr=args.lr, seed=args.seed, verbose=True,
    )
    result = model.evaluate(x_va, y_va, loss=spec.loss)
    line = f"val loss: {result['loss']:.4f}"
    if spec.metric != "loss":
        pred = model.predict(x_va)
        target = x_va if y_va is None else y_va
        metric_val = metrics_mod.get(spec.metric)(pred, np.asarray(target))
        line += f"  val {spec.metric}: {metric_val:.4f}"
    print(line)
    return 0


def _cmd_price(args: argparse.Namespace) -> int:
    from .candle.registry import get_benchmark
    from .hpc import DataParallel, SimCluster, SingleNode, profile_model
    from .hpc.hardware import MACHINES
    from .utils import format_table

    spec = get_benchmark(args.benchmark)
    x, _ = spec.make_data(seed=0)
    model = spec.build_model()
    profile = profile_model(model, x.shape[1:], batch_size=args.batch_size)
    print(f"{spec.name}: {profile.params:,} params, {profile.flops_step / 1e9:.2f} GFLOP/step")
    rows = []
    for machine, node in MACHINES.items():
        for precision in ("fp32", "fp16"):
            if not node.accelerator.supports(precision):
                continue
            cluster = SimCluster.build(machine, max(args.nodes, 1))
            plan = DataParallel(args.nodes) if args.nodes > 1 else SingleNode()
            t = plan.step_time(profile, cluster, precision)
            rows.append([machine, precision, args.nodes, t * 1e6, profile.batch_size / t])
    print(format_table(["machine", "precision", "nodes", "us/step", "samples/s"], rows))
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .serve.bench import format_results, run_serving_bench

    results = run_serving_bench(smoke=args.smoke, seed=args.seed, n_requests=args.requests)
    print(format_results(results))
    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {out}")
    acc = results["acceptance"]
    if not acc["parity_ok"]:
        print("FAIL: served outputs differ from Model.predict", file=sys.stderr)
        return 1
    if not acc["accounting_ok"]:
        print("FAIL: request accounting does not balance", file=sys.stderr)
        return 1
    if not acc["speedup_ok"]:
        print(
            f"FAIL: batched speedup {acc['speedup']:.2f}x below gate {acc['speedup_min']}x",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_serve_scale_bench(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .serve.scale_bench import format_results, run_serving_scale_bench

    results = run_serving_scale_bench(
        smoke=args.smoke, seed=args.seed,
        n_replicas=args.replicas, n_requests=args.requests,
    )
    print(format_results(results))
    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {out}")
    acc = results["acceptance"]
    failures = []
    if not acc["parity_ok"]:
        failures.append("distributed outputs differ from Model.predict")
    if not acc["accounting_ok"]:
        failures.append("request accounting does not balance")
    if not acc["chaos_zero_lost"]:
        failures.append("chaos replay lost requests")
    if not acc["respawns_ok"]:
        failures.append("no replica respawned under traffic")
    if args.smoke:
        # Smoke timings are noise on shared machines: only require that
        # replication isn't slower; the full run scores the real gate.
        if acc["speedup"] <= 1.0:
            failures.append(f"replication slower than single: {acc['speedup']:.2f}x")
    elif not acc["speedup_ok"]:
        failures.append(
            f"distributed speedup {acc['speedup']:.2f}x below gate {acc['speedup_min']}x"
        )
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_registry(args: argparse.Namespace) -> int:
    import json

    from .registry import ArtifactStore, CheckpointIntegrityError
    from .utils import format_table

    store = ArtifactStore(args.root)
    if args.spec is None:
        names = store.names()
        if not names:
            print(f"{args.root}: empty registry")
            return 0
        rows = []
        for name in names:
            ref = store.resolve(name)
            rows.append([
                name, ref.version, ref.benchmark or "?",
                ref.content_hash[:12], ref.lineage.get("strategy", ""),
            ])
        print(format_table(["name", "latest", "benchmark", "content", "strategy"], rows))
        return 0
    try:
        ref = store.resolve(args.spec)
    except KeyError as e:
        print(f"FAIL: {e}", file=sys.stderr)
        return 1
    if args.verify:
        try:
            store.verify(ref)
        except CheckpointIntegrityError as e:
            print(f"FAIL: {e}", file=sys.stderr)
            return 1
        print(f"{ref.spec}: ok (sha256:{ref.content_hash})")
        return 0
    print(json.dumps(ref.meta or {"content_hash": ref.content_hash},
                     indent=2, sort_keys=True))
    return 0


def _cmd_registry_bench(args: argparse.Namespace) -> int:
    from .registry.bench import (
        check_gates, format_results, run_registry_bench, write_results,
    )

    results = run_registry_bench(
        smoke=args.smoke, seed=args.seed,
        n_artifacts=args.artifacts, n_readers=args.readers,
    )
    print(format_results(results))
    out = write_results(results, args.out)
    print(f"\nwrote {out}")
    failures = check_gates(results, smoke=args.smoke)
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_hpo_scale_bench(args: argparse.Namespace) -> int:
    from .hpo.scale_bench import (
        check_gates, format_results, run_hpo_scale_bench, write_results,
    )

    results = run_hpo_scale_bench(smoke=args.smoke, seed=args.seed)
    print(format_results(results))
    out = write_results(results, args.out)
    print(f"\nwrote {out}")
    failures = check_gates(results, smoke=args.smoke)
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_ddp_overlap_bench(args: argparse.Namespace) -> int:
    # The bench lives with the other artifact producers in benchmarks/
    # (it spawns rank processes and calibrates a stall, so it stays a
    # standalone script); load it by path so the CLI shares one
    # implementation with pytest and CI.
    import importlib.util
    from pathlib import Path

    bench = Path(__file__).resolve().parents[2] / "benchmarks" / "bench_ddp_overlap.py"
    if not bench.exists():
        print("benchmarks/bench_ddp_overlap.py not found "
              "(a source checkout is required)", file=sys.stderr)
        return 2
    spec = importlib.util.spec_from_file_location("bench_ddp_overlap", bench)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    argv = ["--out", args.out] + (["--smoke"] if args.smoke else [])
    return mod.main(argv)


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import (
        SchemaError, format_summary, read_jsonl, summarize_trace,
        validate_trace, write_chrome_trace,
    )

    try:
        records = read_jsonl(args.trace)
        counts = validate_trace(records)
    except (OSError, SchemaError) as e:
        print(f"FAIL: {e}", file=sys.stderr)
        return 1
    print(f"{args.trace}: valid trace "
          f"({counts['span']} spans, {counts['event']} events, {counts['metric']} metrics)")
    print()
    print(format_summary(summarize_trace(records)))
    if args.chrome:
        out = write_chrome_trace(records, args.chrome)
        print(f"\nwrote Chrome trace to {out} (load in chrome://tracing or ui.perfetto.dev)")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    print("The experiment tables (E1-E15) are regenerated by the bench suite:")
    print("  pytest benchmarks/ --benchmark-only -s")
    print("Each bench prints its table and asserts the expected shape;")
    print("see DESIGN.md for the claim map and EXPERIMENTS.md for results.")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show benchmarks and machines")

    p_train = sub.add_parser("train", help="train a registry benchmark")
    p_train.add_argument("benchmark")
    p_train.add_argument("--epochs", type=int, default=10)
    p_train.add_argument("--batch-size", type=int, default=32)
    p_train.add_argument("--lr", type=float, default=1e-3)
    p_train.add_argument("--seed", type=int, default=0)

    p_price = sub.add_parser("price", help="price a benchmark on the machine catalog")
    p_price.add_argument("benchmark")
    p_price.add_argument("--nodes", type=int, default=1)
    p_price.add_argument("--batch-size", type=int, default=256)

    sub.add_parser("experiments", help="how to regenerate the experiment tables")

    p_serve = sub.add_parser("serve-bench", help="run the batched serving benchmark")
    p_serve.add_argument("--smoke", action="store_true", help="small request counts (CI)")
    p_serve.add_argument("--requests", type=int, default=None, help="override request count")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--out", default="BENCH_serving.json", help="output JSON path")

    p_scale = sub.add_parser(
        "serve-scale-bench", help="run the distributed serving scale benchmark"
    )
    p_scale.add_argument("--smoke", action="store_true", help="small request counts (CI)")
    p_scale.add_argument("--requests", type=int, default=None, help="override request count")
    p_scale.add_argument("--replicas", type=int, default=None, help="override replica count")
    p_scale.add_argument("--seed", type=int, default=0)
    p_scale.add_argument("--out", default="BENCH_serving_scale.json", help="output JSON path")

    p_reg = sub.add_parser("registry", help="browse a model registry directory")
    p_reg.add_argument("root", help="registry root directory")
    p_reg.add_argument("spec", nargs="?", default=None,
                       help="artifact to inspect: name, name@version, or sha256:<hex>")
    p_reg.add_argument("--verify", action="store_true",
                       help="check the stored bytes against the content checksum")

    p_regb = sub.add_parser("registry-bench", help="run the artifact-store benchmark")
    p_regb.add_argument("--smoke", action="store_true", help="small churn (CI)")
    p_regb.add_argument("--artifacts", type=int, default=None,
                        help="override churned artifact count")
    p_regb.add_argument("--readers", type=int, default=None,
                        help="override concurrent reader count")
    p_regb.add_argument("--seed", type=int, default=0)
    p_regb.add_argument("--out", default="BENCH_registry.json", help="output JSON path")

    p_hpob = sub.add_parser("hpo-scale-bench",
                            help="run the durable elastic HPO benchmark")
    p_hpob.add_argument("--smoke", action="store_true", help="small trial counts (CI)")
    p_hpob.add_argument("--seed", type=int, default=0)
    p_hpob.add_argument("--out", default="BENCH_hpo_scale.json", help="output JSON path")

    p_ddpb = sub.add_parser("ddp-overlap-bench",
                            help="run the overlapped bucketed DDP benchmark")
    p_ddpb.add_argument("--smoke", action="store_true",
                        help="short run; gate parity + bytes ratio only (CI)")
    p_ddpb.add_argument("--out", default="BENCH_ddp_overlap.json",
                        help="output JSON path")

    p_trace = sub.add_parser("trace", help="validate and summarize a recorded trace")
    p_trace.add_argument("trace", help="path to a trace .jsonl file")
    p_trace.add_argument("--chrome", default=None, metavar="OUT.json",
                         help="also convert to a Chrome trace-event file")

    args = parser.parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "train": _cmd_train,
        "price": _cmd_price,
        "experiments": _cmd_experiments,
        "serve-bench": _cmd_serve_bench,
        "serve-scale-bench": _cmd_serve_scale_bench,
        "registry": _cmd_registry,
        "registry-bench": _cmd_registry_bench,
        "hpo-scale-bench": _cmd_hpo_scale_bench,
        "ddp-overlap-bench": _cmd_ddp_overlap_bench,
        "trace": _cmd_trace,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
