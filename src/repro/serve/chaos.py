"""Chaos harness: deterministic serving-fault injection under replay.

Robustness claims are only as good as the faults actually exercised, so
the chaos harness drives the *real* distributed tier — real processes,
real kills — from the seeded fault oracle in
:mod:`repro.resilience.faults`:

* :class:`ChaosHarness` hooks the router's dispatch path; for every
  dispatched batch it asks :meth:`FaultInjector.serving_fault` for a
  verdict keyed on ``(seed, first request id, replica)`` — the same
  (seed, ids) discipline every other injector in the library uses, so a
  replayed schedule injects the same faults at the same requests
  regardless of wall-clock jitter;
* the directive executes *inside the replica*: ``kill_replica`` dies
  mid-batch (``os._exit``), ``hang_replica`` wedges until the pool's
  hang detector terminates it, ``slow_replica`` delays the response, and
  ``corrupt_response`` flips the replica into sticky wrong-answers state
  that only a supervisor canary can detect;
* :func:`run_chaos_replay` replays a request stream through the router
  under an active harness and audits the wreckage: the accounting
  invariant must balance (zero lost requests), and every completed
  response must be **bit-identical** to ``Model.predict`` on the same
  micro-batch composition.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..resilience.faults import (
    CORRUPT_RESPONSE,
    HANG_REPLICA,
    KILL_REPLICA,
    SERVING_FAULT_KINDS,
    SLOW_REPLICA,
    as_injector,
)
from .router import Router


class ChaosHarness:
    """Seeded serving-fault oracle wired into a router's dispatch path.

    ``faults`` is a :class:`~repro.resilience.FaultSpec` (or injector)
    whose ``kill_replica_prob`` / ``hang_replica_prob`` /
    ``slow_replica_prob`` / ``corrupt_response_prob`` fields set the
    per-dispatch fault mix.  ``slow_s`` is the injected delay for slow
    faults (keep it under the pool's hang timeout: slow is *degraded*,
    not dead); hang faults sleep ``hang_s`` and rely on the hang
    detector to be put down.
    """

    def __init__(self, faults, slow_s: float = 0.05, hang_s: float = 3600.0) -> None:
        injector = as_injector(faults)
        if injector is None:
            raise ValueError("chaos harness needs a FaultSpec or FaultInjector")
        self.injector = injector
        self.slow_s = slow_s
        self.hang_s = hang_s
        self.planned: List[Dict[str, Any]] = []

    def attach(self, router: Router) -> "ChaosHarness":
        router.chaos = self
        return self

    def plan(self, first_request_id: int, slot: int) -> Optional[Dict[str, Any]]:
        """Router dispatch hook: the fault directive for this batch."""
        kind = self.injector.serving_fault(first_request_id, slot)
        if kind is None:
            return None
        self.planned.append({"kind": kind, "request_id": first_request_id, "slot": slot})
        if kind == KILL_REPLICA:
            return {"fault": "kill"}
        if kind == HANG_REPLICA:
            return {"fault": "hang", "hang_s": self.hang_s}
        if kind == SLOW_REPLICA:
            return {"fault": "slow", "slow_s": self.slow_s}
        if kind == CORRUPT_RESPONSE:
            return {"fault": "corrupt"}
        return None  # pragma: no cover - exhaustive above

    @property
    def counts(self) -> Dict[str, int]:
        return {kind: self.injector.counts[kind] for kind in SERVING_FAULT_KINDS}


def run_chaos_replay(
    router: Router,
    model: str,
    x_pool: np.ndarray,
    n_requests: int,
    use_rows: bool = True,
    arrival_times: Optional[np.ndarray] = None,
    supervisor=None,
    force_kill: Optional[Tuple[int, int]] = None,
    drain_timeout_s: float = 120.0,
) -> Dict[str, Any]:
    """Replay ``n_requests`` through the router and audit the outcome.

    ``x_pool`` is the request pool (row ``i % len(x_pool)`` serves
    request ``i``); with ``use_rows`` the batches are row-addressed
    (the pool must have been published to the replica group's shared
    data plane under ``"x_pool"``).  ``arrival_times`` (seconds from
    start, one per request) paces the open-loop replay; None submits as
    fast as the router admits.  ``force_kill=(i, slot)`` terminates
    ``slot`` right before request ``i`` is submitted — a deterministic
    respawn-under-traffic probe on top of whatever the seeded oracle
    injects.

    The returned report carries the two robustness verdicts the chaos
    suite gates on:

    * ``invariant_ok`` — every submitted request reached exactly one
      terminal state and the counters balance (zero lost requests);
    * ``parity_ok`` — each completed response is bit-identical to the
      parent model's ``predict`` on the same micro-batch composition.
    """
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    router.record_batches = True
    group = router.groups[model]
    handles = []
    t0 = router.clock()
    for i in range(n_requests):
        if arrival_times is not None:
            while router.clock() - t0 < arrival_times[i]:
                router.pump()
                if supervisor is not None:
                    supervisor.tick()
        if force_kill is not None and i == force_kill[0]:
            group.kill_replica(force_kill[1], reason="chaos_forced")
        row = i % len(x_pool)
        if use_rows:
            handles.append(router.submit(model, row=row))
        else:
            handles.append(router.submit(model, x=x_pool[row]))
        router.pump()
        if supervisor is not None:
            supervisor.tick()
    deadline = router.clock() + drain_timeout_s
    while router.pending > 0 and router.clock() < deadline:
        router.pump()
        if supervisor is not None:
            supervisor.tick()
    elapsed = router.clock() - t0

    by_id = {h.request_id: h for h in handles}
    parity_checked = 0
    parity_ok = True
    for batch_model, ids in router.batch_log:
        if batch_model != model:
            continue
        reqs = [by_id[rid] for rid in ids if rid in by_id]
        if not reqs or any(r.status != "completed" for r in reqs):
            continue
        xb = np.stack(
            [x_pool[r.row] if r.row is not None else r.x for r in reqs], axis=0
        )
        expected = group.model.predict(xb, batch_size=len(xb))
        for i, r in enumerate(reqs):
            parity_checked += 1
            if not np.array_equal(r.result, expected[i]):
                parity_ok = False

    stats = router.stats
    terminal = {"completed", "shed", "timed_out", "retried_away"}
    all_resolved = all(h.status in terminal for h in handles)
    invariant_ok = bool(
        stats.accounted(still_queued=router.pending) and all_resolved
        and router.pending == 0
    )
    report: Dict[str, Any] = {
        "n_requests": n_requests,
        "elapsed_s": elapsed,
        "submitted": stats.submitted,
        "completed": stats.completed,
        "shed": stats.shed,
        "timed_out": stats.timed_out,
        "retried_away": stats.retried_away,
        "retries": stats.retries,
        "respawns": group.respawns,
        "invariant_ok": invariant_ok,
        "parity_checked": parity_checked,
        "parity_ok": bool(parity_ok),
    }
    if router.chaos is not None:
        report["fault_counts"] = dict(router.chaos.counts)
    if supervisor is not None:
        report["supervisor"] = supervisor.stats()
    return report
