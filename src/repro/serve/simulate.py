"""Simulated-clock serving experiments on :class:`repro.hpc.events.EventLoop`.

Wall-clock benchmarks answer "how fast is this machine"; the questions a
capacity planner asks — where does p99 blow up as offered load rises,
how much does shedding save, what does a tighter ``max_wait`` cost — are
*queueing* questions, and the discrete-event loop answers them in
milliseconds of CPU regardless of the simulated traffic volume
(E-experiment style, like the E6 async-HPO and E15 resilience studies).

The simulation reuses the real :class:`MicroBatcher` — the policy code
under test is the deployed policy code; only the model forward is
replaced by a service-time model (measured from the real engine via
:func:`fit_service_time`, or synthetic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..hpc.events import EventLoop
from .batcher import BatchPolicy, MicroBatcher, Request
from .metrics import ServingStats


@dataclass(frozen=True)
class AffineServiceTime:
    """Batch service time ``base_s + per_sample_s * batch_size``.

    The standard cost shape for a batched forward: fixed dispatch
    overhead plus per-sample compute.  ``base_s`` is what micro-batching
    amortizes — speedup comes entirely from sharing it.
    """

    base_s: float
    per_sample_s: float

    def __call__(self, batch_size: int) -> float:
        return self.base_s + self.per_sample_s * batch_size

    @property
    def peak_rps(self) -> float:
        """Asymptotic max throughput at infinite batch size."""
        return 1.0 / self.per_sample_s


def fit_service_time(model, input_shape: Sequence[int], batch_sizes=(1, 8, 32, 64), reps: int = 5) -> AffineServiceTime:
    """Measure the model's batch latency and fit the affine cost model.

    Least-squares over the median of ``reps`` timed ``predict`` calls per
    batch size; clamps to tiny positive floors so a degenerate fit can
    never produce a zero/negative-cost simulation.
    """
    import time

    sizes = sorted(set(int(b) for b in batch_sizes))
    rng = np.random.default_rng(0)
    medians = []
    for b in sizes:
        x = rng.standard_normal((b,) + tuple(input_shape))
        model.predict(x, batch_size=b)  # warm-up: buffers, BLAS threads
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            model.predict(x, batch_size=b)
            times.append(time.perf_counter() - t0)
        medians.append(float(np.median(times)))
    coeffs = np.polyfit(np.asarray(sizes, dtype=np.float64), np.asarray(medians), 1)
    per_sample = max(float(coeffs[0]), 1e-9)
    base = max(float(coeffs[1]), 1e-9)
    return AffineServiceTime(base_s=base, per_sample_s=per_sample)


#: The traffic shapes the scale bench replays (names are API).
TRAFFIC_MIXES = ("poisson", "bursty", "diurnal")


def _rate_modulated_arrivals(
    rate_fn: Callable[[float], float], n: int, seed: int
) -> np.ndarray:
    """Arrival times of an inhomogeneous Poisson process.

    Sequential gap sampling with the instantaneous rate at the current
    time — exact for piecewise-constant rates, a good approximation for
    slowly varying ones, and bit-reproducible per seed either way.
    """
    rng = np.random.default_rng(seed)
    times = np.empty(n)
    t = 0.0
    for i in range(n):
        lam = max(float(rate_fn(t)), 1e-9)
        t += float(rng.exponential(1.0 / lam))
        times[i] = t
    return times


def poisson_arrivals(rate: float, n: int, seed: int = 0) -> np.ndarray:
    """Homogeneous Poisson arrivals: the steady-state mix."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    return _rate_modulated_arrivals(lambda t: rate, n, seed)


def bursty_arrivals(
    rate: float,
    n: int,
    seed: int = 0,
    burst_factor: float = 4.0,
    on_fraction: float = 0.2,
    period_s: float = 1.0,
) -> np.ndarray:
    """On/off burst traffic averaging ``rate``: short windows at
    ``burst_factor`` times the mean, quiet troughs in between — the
    mix that finds admission-control bugs (queues fill in the bursts).
    """
    if rate <= 0 or period_s <= 0:
        raise ValueError("rate and period_s must be positive")
    if not 0 < on_fraction < 1:
        raise ValueError("on_fraction must be in (0, 1)")
    if burst_factor < 1 or burst_factor * on_fraction >= 1:
        raise ValueError("need 1 <= burst_factor and burst_factor * on_fraction < 1")
    lull = rate * (1.0 - burst_factor * on_fraction) / (1.0 - on_fraction)

    def lam(t: float) -> float:
        return rate * burst_factor if (t % period_s) < on_fraction * period_s else lull

    return _rate_modulated_arrivals(lam, n, seed)


def diurnal_arrivals(
    rate: float,
    n: int,
    seed: int = 0,
    period_s: float = 10.0,
    depth: float = 0.8,
) -> np.ndarray:
    """Sinusoidal day/night load averaging ``rate``: peak hours at
    ``(1 + depth)`` times the mean, off-hours at ``(1 - depth)`` — the
    mix autoscaling advice is judged against.
    """
    if rate <= 0 or period_s <= 0:
        raise ValueError("rate and period_s must be positive")
    if not 0 <= depth < 1:
        raise ValueError("depth must be in [0, 1)")

    def lam(t: float) -> float:
        return rate * (1.0 + depth * np.sin(2.0 * np.pi * t / period_s))

    return _rate_modulated_arrivals(lam, n, seed)


def traffic_arrivals(mix: str, rate: float, n: int, seed: int = 0) -> np.ndarray:
    """Arrival times for one of :data:`TRAFFIC_MIXES` by name."""
    if mix == "poisson":
        return poisson_arrivals(rate, n, seed)
    if mix == "bursty":
        return bursty_arrivals(rate, n, seed)
    if mix == "diurnal":
        return diurnal_arrivals(rate, n, seed)
    raise ValueError(f"unknown traffic mix {mix!r}; known: {TRAFFIC_MIXES}")


def simulate_serving(
    policy: BatchPolicy,
    service_time: Callable[[int], float],
    arrival_rate: float,
    n_requests: int,
    seed: int = 0,
    loop: Optional[EventLoop] = None,
) -> Dict:
    """One offered-load point: Poisson arrivals into a batched server.

    Arrivals are a Poisson process at ``arrival_rate`` req/s (exponential
    inter-arrival gaps from a seeded generator — bit-reproducible).  The
    server serves one batch at a time; while it is busy the queue grows,
    sheds, and times out exactly as the real :class:`MicroBatcher` says.

    Returns a summary dict (latency percentiles, throughput, shed /
    timeout counts, occupancy, utilization) that always satisfies the
    accounting invariant.
    """
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    loop = loop or EventLoop()
    rng = np.random.default_rng(seed)
    batcher = MicroBatcher(policy)
    stats = ServingStats()
    state = {"busy": False, "wake_at": None}
    sample = np.zeros(1)  # payload is irrelevant to queueing behaviour

    def start_batch_if_ready() -> None:
        if state["busy"]:
            return
        now = loop.now
        if batcher.ready(now):
            batch, expired = batcher.take(now)
            stats.timed_out += len(expired)
            if not batch:
                # Everything expired; re-check whatever remains queued.
                start_batch_if_ready()
                return
            dt = float(service_time(len(batch)))
            state["busy"] = True
            stats.record_batch(len(batch), dt)

            def complete() -> None:
                done = loop.now
                for req in batch:
                    req.status = "completed"
                    req.complete_time = done
                    stats.completed += 1
                    stats.latency.observe(done - req.enqueue_time)
                state["busy"] = False
                start_batch_if_ready()

            loop.schedule(dt, complete)
        else:
            wake = batcher.next_ready_time()
            if wake is not None and state["wake_at"] != wake:
                # One pending wake-up per deadline; duplicates are benign
                # (ready() re-checks) but pointless events.
                state["wake_at"] = wake
                loop.schedule_at(max(wake, now), lambda: start_batch_if_ready())

    def arrive(i: int) -> None:
        req = Request(request_id=i, x=sample, enqueue_time=loop.now)
        stats.submitted += 1
        if not batcher.offer(req):
            stats.shed += 1
            return
        start_batch_if_ready()

    # Pre-materialize the arrival process so event order can't perturb
    # the random stream: same seed -> same arrival times, always.
    gaps = rng.exponential(1.0 / arrival_rate, size=n_requests)
    t = 0.0
    for i, gap in enumerate(gaps):
        t += float(gap)
        loop.schedule_at(t, (lambda idx: (lambda: arrive(idx)))(i))

    loop.run()
    # The wake-up events above serve every trailing partial batch before
    # the queue runs dry, so this is a safety net: anything still queued
    # (it would indicate a scheduling bug) is force-served sequentially
    # rather than lost, keeping the accounting invariant intact.
    while batcher.depth > 0:
        batch, expired = batcher.take(loop.now)
        stats.timed_out += len(expired)
        if not batch:
            continue
        dt = float(service_time(len(batch)))
        stats.record_batch(len(batch), dt)
        for req in batch:
            req.status = "completed"
            req.complete_time = loop.now + dt
            stats.completed += 1
            stats.latency.observe(req.complete_time - req.enqueue_time)

    elapsed = loop.now if loop.now > 0 else 1.0
    out = stats.summary(elapsed=elapsed, max_batch_size=policy.max_batch_size)
    out["offered_rps"] = arrival_rate
    out["sim_time_s"] = loop.now
    out["accounted"] = stats.accounted(still_queued=batcher.depth)
    return out


def sweep_offered_load(
    policy: BatchPolicy,
    service_time: Callable[[int], float],
    rates: Sequence[float],
    n_requests: int = 2000,
    seed: int = 0,
) -> List[Dict]:
    """p99-vs-offered-load curve: one :func:`simulate_serving` per rate."""
    return [
        simulate_serving(policy, service_time, rate, n_requests, seed=seed)
        for rate in rates
    ]
