"""Serving-side registry API, backed by :mod:`repro.registry`.

This module keeps the serving layer's historical surface —
:func:`publish_model`, :func:`read_checkpoint_meta`, and the
path-catalog :class:`ModelRegistry` — but every mechanism now lives in
the unified content-addressed registry package:

* :func:`publish_model` writes a *self-describing* artifact — weights
  plus benchmark name, hyperparameters, input shape, dtype/quantization
  metadata, lineage, and a SHA-256 content checksum — **atomically**
  (temp file + rename, via :func:`repro.registry.write_artifact`);
* :class:`ModelRegistry.get` loads through the content-keyed
  :class:`repro.registry.WarmModelCache` in a **single read**: one
  ``np.load`` per get, checksum verified from the same decoded arrays
  that are installed, and a warm hit never decodes weights at all.
  Two names pointing at byte-identical checkpoints share one resident
  model.

For versioned ``name@version`` aliases, lineage queries, and pluggable
(S3-shaped) backends, use :class:`repro.registry.ArtifactStore`
directly; this class remains the light path-based catalog the serving
benches and tests script against.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

from ..nn.model import Model
from ..registry.artifact import (
    SUPPORTED_SERVING_DTYPES,
    CheckpointIntegrityError,
    UnsupportedDtypeError,
    build_artifact_meta,
    build_from_artifact,
    check_serving_dtypes,
    open_artifact,
    weights_checksum,
    write_artifact,
)
from ..registry.cache import WarmModelCache

__all__ = [
    "SUPPORTED_SERVING_DTYPES",
    "CheckpointIntegrityError",
    "UnsupportedDtypeError",
    "ModelRegistry",
    "publish_model",
    "read_checkpoint_meta",
    "weights_checksum",
]


def publish_model(
    model: Model,
    path: Union[str, Path],
    benchmark: str,
    input_shape: tuple,
    hparams: Optional[Dict] = None,
    metadata: Optional[Dict] = None,
    quantization: Optional[Dict] = None,
    lineage: Optional[Dict] = None,
) -> Path:
    """Write a serving checkpoint that the registry can load by itself.

    ``benchmark`` must name an entry of :data:`repro.candle.registry.REGISTRY`
    (the registry rebuilds the architecture through its ``build_model``);
    ``hparams`` are the builder kwargs the weights were trained with.

    The checkpoint records each parameter's dtype next to the content
    checksum, optional ``lineage`` (campaign/trial span ids), and — when
    the model carries a calibrated int8 plan (see
    :meth:`repro.nn.Model.quantize_int8`) or ``quantization`` is passed
    explicitly — the quantization spec, so a loader can rebuild the
    exact int8 datapath.  The write is atomic: a crash mid-publish never
    leaves a torn checkpoint where a reader will find it.
    """
    meta = build_artifact_meta(
        model, benchmark, tuple(input_shape), hparams=hparams,
        metadata=metadata, quantization=quantization, lineage=lineage,
    )
    return write_artifact(model, path, meta)


def read_checkpoint_meta(path: Union[str, Path], verify: bool = True) -> Dict:
    """Read the serving metadata from a published checkpoint.

    With ``verify`` (the default) the weight arrays are decoded — once —
    and their SHA-256 compared against the checksum recorded at publish
    time; a truncated file, undecodable array, or checksum mismatch
    raises :class:`CheckpointIntegrityError` instead of letting corrupt
    weights reach a model.  Checkpoints published before checksums
    existed (no ``checksum`` field) skip the comparison.
    """
    with open_artifact(path) as art:
        if verify:
            art.weights(verify=True)
        return art.meta


class _Entry:
    """One catalog binding: name -> path, with change detection."""

    __slots__ = ("path", "sig", "key")

    def __init__(self, path: Path, sig: tuple) -> None:
        self.path = path
        self.sig = sig  # (st_size, st_mtime_ns): cheap did-it-change probe
        self.key = None  # content hash, learned on first get


class ModelRegistry:
    """Name -> built model, loaded from checkpoints, warm-cached.

    ``capacity`` bounds how many built models stay resident; getting an
    uncached model beyond capacity evicts the least-recently-used one
    (its weights reload from disk on next use — the checkpoint is the
    source of truth, eviction loses nothing).  The cache is keyed by
    *content hash*, so two names over byte-identical checkpoints share
    one resident model; pass ``cache=`` to pool residency with other
    registries or an :class:`repro.registry.ArtifactStore`.
    """

    def __init__(
        self,
        capacity: int = 2,
        warmup: bool = True,
        warmup_batch: int = 1,
        cache: Optional[WarmModelCache] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.warmup = warmup
        self.warmup_batch = warmup_batch
        self._entries: Dict[str, _Entry] = {}
        # Not `cache or ...`: an empty shared cache is falsy (len 0) and
        # would be silently replaced with a private one.
        self._cache = cache if cache is not None else WarmModelCache(capacity)
        self.loads = 0
        self.hits = 0
        self.evictions = 0

    # -- catalog ---------------------------------------------------------
    def register(self, name: str, path: Union[str, Path]) -> None:
        """Add (or repoint) a served model name to a checkpoint path.

        Re-registering the *same, unchanged* file is a no-op: a periodic
        ``scan()`` over a stable directory must not evict warm models
        (steady-state serving would otherwise re-load and re-warm on
        every scan).  Only an actual change — different path, or the
        same path rewritten (size/mtime moved) — invalidates the cached
        build of the old weights.
        """
        path = Path(path)
        if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
            path = path.with_suffix(path.suffix + ".npz")
        if not path.exists():
            raise FileNotFoundError(path)
        st = path.stat()
        sig = (st.st_size, st.st_mtime_ns)
        old = self._entries.get(name)
        if old is not None and old.path == path and old.sig == sig:
            return  # unchanged: keep the warm model resident
        self._entries[name] = _Entry(path, sig)
        if old is not None and old.key is not None:
            # Drop the stale build unless another name still serves it.
            shared = any(e.key == old.key for e in self._entries.values())
            if not shared:
                self._cache.pop(old.key)

    def scan(self, root: Union[str, Path]) -> int:
        """Register every ``*.npz`` under ``root`` by file stem."""
        count = 0
        for path in sorted(Path(root).glob("*.npz")):
            self.register(path.stem, path)
            count += 1
        return count

    @property
    def names(self):
        return sorted(self._entries)

    @property
    def resident(self):
        """Registered names whose built model is currently warm."""
        return [name for name, e in self._entries.items()
                if e.key is not None and e.key in self._cache]

    # -- loading ---------------------------------------------------------
    def get(self, name: str) -> Model:
        """Return the built model for ``name``, loading it if needed.

        Exactly one ``np.load`` per call: the artifact header yields the
        content hash (cheap — no weight decode); a warm hit returns the
        resident model without touching the arrays, and a cold load
        verifies and installs from one decode.
        """
        if name not in self._entries:
            raise KeyError(f"unknown model {name!r}; registered: {self.names}")
        entry = self._entries[name]
        with open_artifact(entry.path) as art:
            entry.key = art.content_key
            model = self._cache.get(entry.key)
            if model is not None:
                self.hits += 1
                return model
            meta = art.meta
            if meta.get("dtypes"):
                check_serving_dtypes(meta["dtypes"])  # refuse before decoding
            weights = art.weights(verify=True)
        model = build_from_artifact(
            meta, weights, warmup=self.warmup, warmup_batch=self.warmup_batch
        )
        self.loads += 1
        self.evictions += self._cache.put(entry.key, model)
        return model

    def stats(self) -> Dict[str, int]:
        return {
            "registered": len(self._entries),
            "resident": len(self.resident),
            "loads": self.loads,
            "hits": self.hits,
            "evictions": self.evictions,
        }
