"""Model registry: checkpoint-backed model loading with an LRU cache.

A screening campaign serves many models (one per benchmark, per
hyperparameter winner, per data release) from a shared checkpoint
directory, but device memory holds only a few at once.  The registry
maps ``name -> checkpoint`` and materializes models on demand:

* :func:`publish_model` writes a *self-describing* checkpoint — weights
  plus the benchmark name, hyperparameters, and input shape — via
  :func:`repro.nn.serialization.save_weights`;
* :class:`ModelRegistry.get` rebuilds the architecture from
  :mod:`repro.candle.registry`, restores the weights, runs a warm-up
  forward pass (so first-request latency excludes lazy buffer
  allocation), and caches the built model under an LRU policy.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

import numpy as np

from ..candle.registry import get_benchmark
from ..nn.model import Model
from ..nn.serialization import load_weights, save_weights
from ..nn.tensor import no_grad


class CheckpointIntegrityError(RuntimeError):
    """A serving checkpoint failed its integrity check: the file is
    truncated, an array is corrupt, or the content checksum recorded at
    publish time no longer matches the weights on disk.  Raised *before*
    any weights are installed into a model."""


class UnsupportedDtypeError(RuntimeError):
    """A checkpoint's weights use a dtype the host kernels cannot serve.
    Raised at load time, before any weights are installed — loading would
    otherwise silently cast into the model's built dtype and serve
    different numerics than were published."""


#: Weight dtypes the NumPy serving kernels handle natively.  int8
#: checkpoints are served as fp32 weights *plus* quantization metadata
#: (the int8 plan is rebuilt from recorded scales), so int8 never appears
#: as a raw weight dtype here.
SUPPORTED_SERVING_DTYPES = frozenset({"float64", "float32", "float16"})


def weights_checksum(weights: Iterable[np.ndarray]) -> str:
    """SHA-256 over every weight array's dtype, shape, and raw bytes.

    Order-sensitive by design — swapping two layers' weights is corruption
    even though the multiset of bytes is unchanged.
    """
    h = hashlib.sha256()
    for w in weights:
        arr = np.ascontiguousarray(w)
        h.update(str(arr.dtype).encode())
        h.update(repr(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def publish_model(
    model: Model,
    path: Union[str, Path],
    benchmark: str,
    input_shape: tuple,
    hparams: Optional[Dict] = None,
    metadata: Optional[Dict] = None,
    quantization: Optional[Dict] = None,
) -> Path:
    """Write a serving checkpoint that the registry can load by itself.

    ``benchmark`` must name an entry of :data:`repro.candle.registry.REGISTRY`
    (the registry rebuilds the architecture through its ``build_model``);
    ``hparams`` are the builder kwargs the weights were trained with.

    The checkpoint records each parameter's dtype next to the content
    checksum, and — when the model carries a calibrated int8 plan (see
    :meth:`repro.nn.Model.quantize_int8`) or ``quantization`` is passed
    explicitly — the quantization spec (per-layer scales + calibration
    method), so a loader can rebuild the exact int8 datapath.
    """
    get_benchmark(benchmark)  # validate early, not at first request
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    weights = model.get_weights()
    if quantization is None:
        plan = getattr(model, "_int8_plan", None)
        quantization = plan.spec() if plan is not None else None
    meta = {
        "benchmark": benchmark,
        "input_shape": list(input_shape),
        "hparams": hparams or {},
        "checksum": weights_checksum(weights),
        "dtypes": [str(w.dtype) for w in weights],
        "quantization": quantization,
        "extra": metadata or {},
    }
    save_weights(model, path, metadata=meta)
    return path


def read_checkpoint_meta(path: Union[str, Path], verify: bool = True) -> Dict:
    """Read the serving metadata from a published checkpoint.

    With ``verify`` (the default) the weight arrays are also read back
    and their SHA-256 compared against the checksum recorded at publish
    time; a truncated file, undecodable array, or checksum mismatch
    raises :class:`CheckpointIntegrityError` instead of letting corrupt
    weights reach a model.  Checkpoints published before checksums
    existed (no ``checksum`` field) skip the comparison.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    try:
        with np.load(path) as data:
            header = json.loads(bytes(data["_meta"]).decode())
            meta = header.get("metadata", {})
            if "benchmark" not in meta or "input_shape" not in meta:
                raise ValueError(
                    f"{path} is not a serving checkpoint (use publish_model)"
                )
            if verify and "checksum" in meta:
                n = header["n_params"]
                actual = weights_checksum(data[f"param_{i:04d}"] for i in range(n))
                if actual != meta["checksum"]:
                    raise CheckpointIntegrityError(
                        f"{path}: weight checksum mismatch (expected "
                        f"{meta['checksum'][:16]}…, got {actual[:16]}…) — "
                        "checkpoint is corrupt; refusing to load"
                    )
    except (CheckpointIntegrityError, ValueError):
        raise
    except FileNotFoundError:
        raise
    except Exception as exc:  # truncated zip, bad zlib stream, missing _meta…
        raise CheckpointIntegrityError(
            f"{path}: unreadable checkpoint ({type(exc).__name__}: {exc}) — "
            "file is truncated or corrupt; refusing to load"
        ) from exc
    return meta


class ModelRegistry:
    """Name -> built model, loaded from checkpoints, LRU-cached.

    ``capacity`` bounds how many built models stay resident; getting an
    uncached model beyond capacity evicts the least-recently-used one
    (its weights reload from disk on next use — the checkpoint is the
    source of truth, eviction loses nothing).
    """

    def __init__(self, capacity: int = 2, warmup: bool = True, warmup_batch: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.warmup = warmup
        self.warmup_batch = warmup_batch
        self._paths: Dict[str, Path] = {}
        self._cache: "OrderedDict[str, Model]" = OrderedDict()
        self.loads = 0
        self.hits = 0
        self.evictions = 0

    # -- catalog ---------------------------------------------------------
    def register(self, name: str, path: Union[str, Path]) -> None:
        """Add (or repoint) a served model name to a checkpoint path."""
        path = Path(path)
        if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
            path = path.with_suffix(path.suffix + ".npz")
        if not path.exists():
            raise FileNotFoundError(path)
        self._paths[name] = path
        # A repoint invalidates any cached build of the old weights.
        self._cache.pop(name, None)

    def scan(self, root: Union[str, Path]) -> int:
        """Register every ``*.npz`` under ``root`` by file stem."""
        count = 0
        for path in sorted(Path(root).glob("*.npz")):
            self.register(path.stem, path)
            count += 1
        return count

    @property
    def names(self):
        return sorted(self._paths)

    @property
    def resident(self):
        return list(self._cache)

    # -- loading ---------------------------------------------------------
    def get(self, name: str) -> Model:
        """Return the built model for ``name``, loading it if needed."""
        if name in self._cache:
            self.hits += 1
            self._cache.move_to_end(name)
            return self._cache[name]
        if name not in self._paths:
            raise KeyError(f"unknown model {name!r}; registered: {self.names}")
        model = self._load(self._paths[name])
        self._cache[name] = model
        self._cache.move_to_end(name)
        while len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
            self.evictions += 1
        return model

    def _load(self, path: Path) -> Model:
        meta = read_checkpoint_meta(path)
        dtypes = set(meta.get("dtypes", ()))
        unsupported = dtypes - SUPPORTED_SERVING_DTYPES
        if unsupported:
            raise UnsupportedDtypeError(
                f"{path}: checkpoint weight dtype(s) {sorted(unsupported)} are not "
                f"servable by the host kernels (supported: "
                f"{sorted(SUPPORTED_SERVING_DTYPES)})"
            )
        spec = get_benchmark(meta["benchmark"])
        model = spec.materialize(input_shape=tuple(meta["input_shape"]), **meta["hparams"])
        if len(dtypes) == 1:
            # Serve in the published dtype: materialize builds float64
            # parameters, and set_weights casts *into* the existing
            # buffers — without this cast an fp32 checkpoint would be
            # silently upcast and served at the wrong precision.
            model.astype(np.dtype(next(iter(dtypes))))
        load_weights(model, path)
        quant = meta.get("quantization")
        if quant is not None:
            # Rebuild the int8 plan from recorded scales: deterministic,
            # so the served datapath is bit-identical to the published one.
            from ..precision.int8 import plan_from_spec

            model._int8_plan = plan_from_spec(model, quant)
        if self.warmup:
            # One throwaway forward allocates every layer's scratch and
            # triggers BLAS thread-pool spin-up off the request path.
            # Warm up in the served dtype — a float64 warmup batch on an
            # fp32 model would exercise (and cache-prime) the wrong path.
            p0 = next(iter(model.parameters()), None)
            wdtype = p0.data.dtype if p0 is not None else np.float64
            x = np.zeros((self.warmup_batch,) + tuple(meta["input_shape"]), dtype=wdtype)
            with no_grad():
                model.predict(x, batch_size=self.warmup_batch)
        self.loads += 1
        return model

    def stats(self) -> Dict[str, int]:
        return {
            "registered": len(self._paths),
            "resident": len(self._cache),
            "loads": self.loads,
            "hits": self.hits,
            "evictions": self.evictions,
        }
