"""Replicated inference: N model replicas on real worker processes.

The single-process :class:`repro.serve.InferenceServer` tops out at one
core and dies with its process; an inference *campaign* (screening
millions of compounds) needs replicas that survive worker death.  This
module provides the replica plane:

* Model weights are published **once** into shared memory
  (:class:`repro.parallel.SharedArrayStore`); each replica attaches the
  segments read-only at initialization, rebuilds the architecture from
  :mod:`repro.candle.registry`, and installs the weights — so N replicas
  cost one copy of the weights on the wire, and a *respawned* replica
  reloads from the same segments without touching the checkpoint file.
* Each replica is one slot of a :class:`repro.parallel.ProcessWorkerPool`
  in dedicated-queue mode: batches are addressed to a specific replica,
  a dead replica's backlog survives into its replacement (the pool
  respawns in place), and the pool's hang detector recycles replicas
  that wedge mid-batch.
* The request pool for a replay/campaign can also ride the shared-memory
  plane (``data=``): the router then ships row *indices* instead of
  request payloads, which drops per-batch IPC to a few bytes.

Scheduling policy (admission, retries, breakers) lives in
:class:`repro.serve.router.Router`; this class is mechanism only.
Chaos directives (``fault=``) are injected by the parent at dispatch
time and executed inside the replica — see :mod:`repro.serve.chaos`.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..candle.registry import get_benchmark
from ..nn.model import Model
from ..obs.context import get_recorder
from ..parallel.pool import ProcessWorkerPool, TaskResult
from ..parallel.shm import SharedArrayStore, attach
from ..registry.artifact import build_from_artifact, load_artifact

# Replica-global state, installed once per worker process by the pool
# initializer (and re-installed by the initializer of every respawned
# replacement replica).
_MODEL: Optional[Model] = None
_DATA: Dict[str, np.ndarray] = {}
_ATTACHED = []  # keep shm mappings alive for the replica's lifetime
_WEDGED = False  # sticky corrupt-response state (chaos), cleared by respawn
_PRECISION: Optional[str] = None  # serving datapath, set by the initializer


def _init_replica(
    benchmark, input_shape, hparams, weight_refs, data_refs,
    precision=None, quant_spec=None, quant_refs=None,
) -> None:
    global _MODEL, _WEDGED, _PRECISION
    _WEDGED = False
    _PRECISION = precision
    spec = get_benchmark(benchmark)
    model = spec.materialize(input_shape=tuple(input_shape), **hparams)
    if precision in ("fp32", "int8"):
        # The published segments are float32 (or int8); cast the skeleton
        # so set_weights installs them without a silent upcast.
        model.astype(np.float32)
    weights = []
    for ref in weight_refs:
        att = attach(ref)
        _ATTACHED.append(att)
        weights.append(att.array)
    if weights:
        model.set_weights(weights)  # read the shared segments; never write them
    if precision == "int8":
        # int8 groups ship the quantized plan, not full-precision weights:
        # one byte per weight on the shared-memory plane.
        from ..precision.int8 import Int8Plan

        arrays = {}
        for key, ref in (quant_refs or {}).items():
            att = attach(ref)
            _ATTACHED.append(att)
            arrays[key] = att.array
        model._int8_plan = Int8Plan.from_arrays(quant_spec, arrays)
    _DATA.clear()
    for key, ref in data_refs.items():
        att = attach(ref)
        _ATTACHED.append(att)
        _DATA[key] = att.array
    # Warm-up forward: allocate layer scratch off the request path, in
    # the serving dtype (a float64 warmup would prime the wrong path).
    wdtype = np.float64 if precision is None else np.float32
    model.predict(
        np.zeros((1,) + tuple(input_shape), dtype=wdtype),
        batch_size=1, precision=precision,
    )
    _MODEL = model


def _replica_task(payload: Dict[str, Any]) -> np.ndarray:
    """One inference batch inside a replica (canaries included).

    ``payload["fault"]`` carries the parent-drawn chaos directive:
    ``kill`` dies abruptly mid-batch, ``hang`` wedges until the pool's
    hang detector fires, ``slow`` adds latency, ``corrupt`` flips the
    replica into a *sticky* wrong-answers state (every later response is
    corrupted until the supervisor recycles the process).
    """
    global _WEDGED
    fault = payload.get("fault")
    if fault == "kill":
        os._exit(23)
    if fault == "hang":
        time.sleep(payload.get("hang_s", 3600.0))
    if fault == "slow":
        time.sleep(payload.get("slow_s", 0.1))
    if fault == "corrupt":
        _WEDGED = True
    if payload.get("stall_s"):
        # Models accelerator/service latency per batch (the scale bench's
        # overlap target on small CI machines), not a fault.
        time.sleep(payload["stall_s"])
    if "rows" in payload:
        xb = np.asarray(_DATA[payload.get("pool_key", "x_pool")][payload["rows"]])
    else:
        xb = payload["x"]
    out = _MODEL.predict(xb, batch_size=max(len(xb), 1), precision=_PRECISION)
    if _WEDGED:
        out = out + 1.0  # wrong bytes, right shape: only a canary notices
    return out


class ReplicaGroup:
    """N replicas of one model over a dedicated-queue worker pool.

    Parameters
    ----------
    model:
        The built source model (the parent's reference copy; its weights
        are what gets published).
    benchmark / input_shape / hparams:
        How each replica rebuilds the architecture, exactly as
        :func:`repro.serve.publish_model` records them.
    n_replicas:
        Pool width — one process per replica.
    hang_timeout_s:
        Replicas holding one batch longer than this are declared hung,
        terminated, and respawned (the batch comes back ``"hung"`` for
        the router to retry elsewhere).
    data:
        Optional arrays to publish alongside the weights (e.g. the
        replay's request pool for row-addressed dispatch).
    precision:
        Serving datapath for every replica: ``None`` publishes and serves
        the model's native dtype; ``"fp32"`` publishes float32 weight
        segments (half the bytes of fp64) and serves the fp32 path;
        ``"int8"`` publishes the calibrated quantized plan — int8 weight
        segments, one byte per parameter — and serves the int8 fused
        kernels (requires :meth:`repro.nn.Model.quantize_int8` first).
    """

    def __init__(
        self,
        model: Model,
        benchmark: str,
        input_shape: Tuple[int, ...],
        hparams: Optional[Dict] = None,
        n_replicas: int = 2,
        hang_timeout_s: Optional[float] = 5.0,
        data: Optional[Dict[str, np.ndarray]] = None,
        start_method: Optional[str] = None,
        precision: Optional[str] = None,
    ) -> None:
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        if precision not in (None, "fp32", "int8"):
            raise ValueError(
                f"unknown replica precision {precision!r}; choose None, 'fp32' or 'int8'"
            )
        self.model = model
        self.benchmark = benchmark
        self.input_shape = tuple(input_shape)
        self.n_replicas = n_replicas
        self.precision = precision
        self._store = SharedArrayStore(prefix="repro_serve")
        quant_spec = None
        quant_refs = None
        if precision == "int8":
            plan = getattr(model, "_int8_plan", None)
            if plan is None:
                raise ValueError(
                    "precision='int8' needs a calibrated plan; call "
                    "model.quantize_int8(x_calib) (or publish the checkpoint "
                    "with quantization metadata) first"
                )
            quant_spec = plan.spec()
            quant_refs = {
                key: self._store.publish(key, arr)
                for key, arr in plan.arrays().items()
            }
            weight_refs = []  # replicas run the plan; full weights stay home
        elif precision == "fp32":
            weight_refs = [
                self._store.publish(f"w{i}", w, dtype=np.float32)
                for i, w in enumerate(model.get_weights())
            ]
        else:
            weight_refs = [
                self._store.publish(f"w{i}", w) for i, w in enumerate(model.get_weights())
            ]
        data_refs = {
            key: self._store.publish(key, np.asarray(arr))
            for key, arr in (data or {}).items()
        }
        self.weight_bytes = sum(r.nbytes for r in weight_refs) + sum(
            r.nbytes for r in (quant_refs or {}).values()
        )
        rec = get_recorder()
        self._span = None
        if rec is not None:
            self._span = rec.begin(
                "replica_group", kind="serve.replica_group",
                benchmark=benchmark, replicas=n_replicas,
                weight_bytes=self.weight_bytes,
                precision=precision or "native",
            )
        self.pool = ProcessWorkerPool(
            _replica_task,
            n_replicas,
            initializer=_init_replica,
            initargs=(
                benchmark, self.input_shape, hparams or {}, weight_refs, data_refs,
                precision, quant_spec, quant_refs,
            ),
            start_method=start_method,
            dedicated_queues=True,
            max_task_retries=0,  # retry policy belongs to the Router
            task_timeout_s=hang_timeout_s,
        )

    @classmethod
    def from_checkpoint(
        cls,
        path,
        n_replicas: int = 2,
        data: Optional[Dict[str, np.ndarray]] = None,
        **kwargs,
    ) -> "ReplicaGroup":
        """Build a group straight from a published (verified) checkpoint.

        One read: the artifact is decoded once, its checksum verified
        from those same arrays, and the parent's reference model built
        from them (replicas then attach the shared-memory segments the
        constructor publishes).
        """
        meta, weights = load_artifact(path, verify=True)
        model = build_from_artifact(meta, weights, warmup=False)
        return cls(
            model, meta["benchmark"], tuple(meta["input_shape"]),
            hparams=meta.get("hparams") or {}, n_replicas=n_replicas,
            data=data, **kwargs,
        )

    @classmethod
    def from_store(
        cls,
        store,
        spec: str,
        n_replicas: int = 2,
        data: Optional[Dict[str, np.ndarray]] = None,
        **kwargs,
    ) -> "ReplicaGroup":
        """Build a group from a registry artifact (``"name@version"``,
        ``"name"``/``"name@latest"``, or ``"sha256:<hex>"``) resolved
        against a :class:`repro.registry.ArtifactStore`."""
        ref = store.resolve(spec)
        return cls.from_checkpoint(
            store.path_for(ref), n_replicas=n_replicas, data=data, **kwargs
        )

    # -- dispatch --------------------------------------------------------
    def submit(
        self,
        replica: int,
        x: Optional[np.ndarray] = None,
        rows: Optional[Sequence[int]] = None,
        fault: Optional[Dict[str, Any]] = None,
        stall_s: float = 0.0,
    ) -> int:
        """Ship one batch to ``replica``; returns the pool task id.

        Exactly one of ``x`` (stacked batch) or ``rows`` (indices into
        the published request pool) must be given.
        """
        if (x is None) == (rows is None):
            raise ValueError("pass exactly one of x or rows")
        payload: Dict[str, Any] = dict(fault or {})
        if stall_s:
            payload["stall_s"] = stall_s
        if x is not None:
            payload["x"] = np.asarray(x)
        else:
            payload["rows"] = np.asarray(rows, dtype=np.int64)
        return self.pool.submit(payload, slot=replica)

    def wait_ready(self, timeout_s: float = 60.0) -> None:
        """Block until every replica has built its model and attached the
        shared segments (benches call this so replica startup is not
        billed to the first requests)."""
        self.pool.wait_ready(timeout_s=timeout_s)

    def poll(self, timeout: float = 0.0) -> Optional[TaskResult]:
        """One finished batch if any lands within ``timeout``, else None.

        Polling also drives the pool's failure detectors: dead replicas
        are reaped and respawned *during* this call, under traffic.
        """
        return self.pool.poll_result(timeout=timeout)

    # -- health / chaos surface -----------------------------------------
    def replica_alive(self, replica: int) -> bool:
        return self.pool.worker_alive(replica)

    def kill_replica(self, replica: int, reason: str = "killed") -> None:
        """Terminate one replica process (supervisor recycle, chaos)."""
        self.pool.terminate_worker(replica, reason=reason)

    @property
    def respawns(self) -> int:
        return self.pool.respawns

    @property
    def outstanding(self) -> int:
        return self.pool.outstanding

    def close(self) -> None:
        self.pool.close()
        self._store.close()
        rec = get_recorder()
        if rec is not None and self._span is not None:
            rec.end(self._span)
            self._span = None

    def __enter__(self) -> "ReplicaGroup":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
