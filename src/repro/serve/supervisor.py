"""Replica supervision: health probes, recycle-under-traffic, autoscaling.

The pool layer already notices replicas that *die* (liveness reap) or
*hang inside a batch* (task timeout).  What it cannot see is a replica
that is alive, prompt, and **wrong** — wedged state after a partial
failure, silently corrupting every response.  The
:class:`ReplicaSupervisor` closes that gap with canary probes:

* every ``probe_interval_s`` per replica, a canary batch is dispatched
  through the same pipe real traffic uses (scheduling bugs included in
  the probe);
* the canary's output is checked **bit-identical** against the parent's
  own ``Model.predict`` on the same batch — the serving tier's ground
  truth; any mismatch means the replica is wedged and it is terminated
  and respawned in place (its queue survives; the router's breaker for
  the slot is reset because the replacement is a fresh process);
* a canary that neither returns nor fails within ``probe_timeout_s``
  marks the replica unresponsive-while-idle and recycles it the same
  way.

The supervisor also hosts the **autoscaling hook**: it watches the
router's queue-depth gauge (the same ``serve.queue_depth`` signal the
obs layer exports), and after ``autoscale_patience`` consecutive ticks
above/below the watermarks calls ``on_autoscale`` with a scale-up /
scale-down advice dict.  The hook is advisory — this repo's replica
count is fixed at pool construction — but it is the integration point a
real elastic deployment would wire to its resource manager.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..obs.context import get_recorder
from ..parallel.pool import TaskResult
from .router import Router


class ReplicaSupervisor:
    """Periodic liveness + correctness probing over a :class:`Router`.

    Parameters
    ----------
    router:
        The router whose replica groups are supervised.  The supervisor
        attaches itself (``router.supervisor``) so canary results flow
        back through the router's normal result pump.
    canaries:
        ``{model name -> canary batch}``.  The expected output is
        computed here, once, with the parent's reference model —
        ``group.model.predict`` on the exact canary batch.
    probe_interval_s / probe_timeout_s:
        Cadence of probes per replica, and how long an unanswered canary
        may ride before the replica is recycled.
    on_autoscale:
        Optional callback receiving an advice dict whenever the queue
        depth stays beyond a watermark for ``autoscale_patience`` ticks.
    """

    def __init__(
        self,
        router: Router,
        canaries: Dict[str, np.ndarray],
        probe_interval_s: float = 0.5,
        probe_timeout_s: float = 2.0,
        on_autoscale: Optional[Callable[[Dict], None]] = None,
        queue_high: int = 64,
        queue_low: int = 4,
        autoscale_patience: int = 3,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if probe_interval_s <= 0 or probe_timeout_s <= 0:
            raise ValueError("probe interval/timeout must be positive")
        unknown = set(canaries) - set(router.groups)
        if unknown:
            raise KeyError(f"canaries for unrouted models: {sorted(unknown)}")
        self.router = router
        self.probe_interval_s = probe_interval_s
        self.probe_timeout_s = probe_timeout_s
        self.on_autoscale = on_autoscale
        self.queue_high = queue_high
        self.queue_low = queue_low
        self.autoscale_patience = autoscale_patience
        self.clock = clock or time.perf_counter
        self._canary_x: Dict[str, np.ndarray] = {}
        self._expected: Dict[str, np.ndarray] = {}
        for model, x in canaries.items():
            xb = np.asarray(x)
            self._canary_x[model] = xb
            # The ground truth a healthy replica must match bit-for-bit.
            self._expected[model] = router.groups[model].model.predict(
                xb, batch_size=max(len(xb), 1)
            )
        self._last_probe: Dict[Tuple[str, int], float] = {}
        self._pending: Dict[Tuple[str, int], float] = {}  # (model, slot) -> sent at
        self.probes = 0
        self.probe_failures = 0
        self.corrupt_detected = 0
        self.recycled = 0
        self._above = 0
        self._below = 0
        router.supervisor = self

    # -- the supervision loop -------------------------------------------
    def tick(self, now: Optional[float] = None) -> None:
        """One supervision turn: overdue-canary recycles, due probes,
        autoscale watermark bookkeeping.  Call it interleaved with
        ``router.pump()`` — probing rides the same event loop as traffic.
        """
        now = self.clock() if now is None else now
        for model in self._canary_x:
            group = self.router.groups[model]
            for slot in range(group.n_replicas):
                key = (model, slot)
                if key in self._pending:
                    if now - self._pending[key] > self.probe_timeout_s:
                        # Alive-but-unresponsive outside any batch the
                        # pool could time out: recycle it ourselves.
                        del self._pending[key]
                        self.probe_failures += 1
                        self._recycle(model, slot, "unresponsive", now)
                    continue
                if now - self._last_probe.get(key, -np.inf) >= self.probe_interval_s:
                    self._last_probe[key] = now
                    self._pending[key] = now
                    self.probes += 1
                    self.router.submit_canary(
                        model, slot, self._canary_x[model], self._expected[model], now=now
                    )
        self._autoscale_tick(now)

    def handle_canary(
        self, model: str, slot: int, res: TaskResult, expected: np.ndarray, now: float
    ) -> None:
        """Router callback: one canary came back (ok, died, or hung)."""
        self._pending.pop((model, slot), None)
        if res.status != "ok":
            # The pool already reaped and respawned the process; the slot
            # is fresh, so clear its breaker and move on.
            self.probe_failures += 1
            self.recycled += 1
            self.router.note_recycled(model, slot)
            self._probe_event(model, slot, f"canary_{res.status}")
            return
        if not np.array_equal(res.value, expected):
            # Bit-level divergence from Model.predict: the replica is
            # wedged (corrupting state survives in-process) — recycle.
            self.probe_failures += 1
            self.corrupt_detected += 1
            self._recycle(model, slot, "corrupt", now)

    def _recycle(self, model: str, slot: int, reason: str, now: float) -> None:
        group = self.router.groups[model]
        if group.replica_alive(slot):
            group.kill_replica(slot, reason=reason)
        # The reap (on the router's next poll) respawns the slot with the
        # initializer re-run from the shared weight segments; the breaker
        # reset below treats the replacement as a clean slate.
        self.recycled += 1
        self.router.note_recycled(model, slot)
        self._probe_event(model, slot, reason)

    def _probe_event(self, model: str, slot: int, reason: str) -> None:
        rec = get_recorder()
        if rec is not None:
            rec.event(
                "replica_recycled", kind="serve.replica",
                model=model, slot=slot, reason=reason,
            )
            rec.metrics.counter("serve.replica_recycles").inc()

    # -- autoscaling hook ------------------------------------------------
    def _autoscale_tick(self, now: float) -> None:
        if self.on_autoscale is None:
            return
        depth = self.router.queue_depth
        replicas = sum(g.n_replicas for g in self.router.groups.values())
        if depth > self.queue_high:
            self._above += 1
            self._below = 0
        elif depth < self.queue_low:
            self._below += 1
            self._above = 0
        else:
            self._above = self._below = 0
        if self._above >= self.autoscale_patience:
            self._above = 0
            self.on_autoscale({
                "action": "scale_up", "queue_depth": depth,
                "replicas": replicas, "recommended": replicas + 1, "at": now,
            })
        elif self._below >= self.autoscale_patience and replicas > 1:
            self._below = 0
            self.on_autoscale({
                "action": "scale_down", "queue_depth": depth,
                "replicas": replicas, "recommended": replicas - 1, "at": now,
            })

    def stats(self) -> Dict[str, int]:
        return {
            "probes": self.probes,
            "probe_failures": self.probe_failures,
            "corrupt_detected": self.corrupt_detected,
            "recycled": self.recycled,
        }
