"""Serving benchmark library behind ``benchmarks/bench_serving.py`` and
the ``repro serve-bench`` CLI.

Three measurements over the p1b2 expression classifier, served through
the full registry -> server path:

* **single** — one ``predict`` call per request (the unbatched
  baseline a naive deployment would run);
* **batched** — the same requests coalesced into micro-batches of
  ``max_batch_size`` by :class:`InferenceServer`;
* **sim sweep** — offered-load vs latency percentiles on the simulated
  clock, with the service-time model fitted from the measurements above.

The acceptance gates (written into the JSON, enforced by the runner's
exit code) are correctness-first: served outputs must be *bit-identical*
to ``Model.predict`` on the same inputs, request accounting must balance
exactly, and batching must beat the unbatched baseline by the configured
factor.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from ..candle.registry import get_benchmark
from .batcher import BatchPolicy
from .registry import ModelRegistry, publish_model
from .server import InferenceServer
from .simulate import AffineServiceTime, fit_service_time, sweep_offered_load

BENCHMARK = "p1b2"
MAX_BATCH = 64


def _publish_and_load(workdir: Path, seed: int) -> tuple:
    """Round-trip the model through publish -> registry (warm-up included)."""
    spec = get_benchmark(BENCHMARK)
    input_shape = spec.input_shape(seed=seed)
    model = spec.materialize(input_shape=input_shape, seed=seed)
    path = publish_model(model, workdir / f"{BENCHMARK}.npz", BENCHMARK, input_shape)
    registry = ModelRegistry(capacity=1, warmup=True, warmup_batch=MAX_BATCH)
    registry.register(BENCHMARK, path)
    return registry.get(BENCHMARK), registry, input_shape


def _bench_single(model, x: np.ndarray) -> Dict:
    t0 = time.perf_counter()
    outs = [model.predict(x[i : i + 1], batch_size=1) for i in range(len(x))]
    elapsed = time.perf_counter() - t0
    return {
        "requests": len(x),
        "elapsed_s": elapsed,
        "throughput_rps": len(x) / elapsed,
        "mean_latency_s": elapsed / len(x),
        "_outputs": np.concatenate(outs, axis=0),
    }


def _bench_batched(model, x: np.ndarray, profiler=None) -> Dict:
    policy = BatchPolicy(max_batch_size=MAX_BATCH, max_wait_s=0.0, max_queue=len(x))
    server = InferenceServer(model, policy, profiler=profiler)
    t0 = time.perf_counter()
    handles = [server.submit(x[i]) for i in range(len(x))]
    while server.queue_depth > 0:
        server.step()
    elapsed = time.perf_counter() - t0
    assert all(h.status == "completed" for h in handles)
    out = server.stats.summary(elapsed=elapsed, max_batch_size=MAX_BATCH)
    out["elapsed_s"] = elapsed
    out["accounted"] = server.stats.accounted(still_queued=server.queue_depth)
    out["_outputs"] = np.stack([h.result for h in handles], axis=0)
    return out


def _bench_overload(model, input_shape) -> Dict:
    """Bounded queue under a burst: sheds must be counted, never lost."""
    policy = BatchPolicy(max_batch_size=16, max_wait_s=0.0, max_queue=32, timeout_s=10.0)
    server = InferenceServer(model, policy)
    burst = 4 * policy.max_queue
    rng = np.random.default_rng(1)
    xs = rng.standard_normal((burst,) + tuple(input_shape))
    handles = [server.submit(xs[i]) for i in range(burst)]
    server.drain()
    stats = server.stats
    statuses = {}
    for h in handles:
        statuses[h.status] = statuses.get(h.status, 0) + 1
    return {
        "burst": burst,
        "max_queue": policy.max_queue,
        "shed": stats.shed,
        "completed": stats.completed,
        "timed_out": stats.timed_out,
        "handle_statuses": statuses,
        "accounted": stats.accounted(still_queued=server.queue_depth)
        and statuses.get("shed", 0) == stats.shed
        and statuses.get("completed", 0) == stats.completed,
    }


def run_serving_bench(
    smoke: bool = False,
    seed: int = 0,
    n_requests: Optional[int] = None,
    speedup_min: Optional[float] = None,
) -> Dict:
    """Run the full serving benchmark; returns the JSON-ready results.

    ``smoke`` shrinks the request counts for CI and relaxes the speedup
    gate (shared-runner timings are noisy; parity and accounting gates
    stay exact).
    """
    n = n_requests or (256 if smoke else 2048)
    n = (n // MAX_BATCH) * MAX_BATCH or MAX_BATCH  # whole batches: parity vs predict(batch_size=64)
    gate = speedup_min if speedup_min is not None else (1.5 if smoke else 3.0)

    with tempfile.TemporaryDirectory(prefix="repro_serve_bench_") as workdir:
        model, registry, input_shape = _publish_and_load(Path(workdir), seed)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n,) + tuple(input_shape))

        single = _bench_single(model, x)
        batched = _bench_batched(model, x)
        reference = model.predict(x, batch_size=MAX_BATCH)
        single_outputs = single.pop("_outputs")
        served_outputs = batched.pop("_outputs")
        # The gate: the serving path must be bit-identical to predict on
        # the same inputs (same micro-batch composition -> same GEMMs).
        # The batch-1 baseline is only numerically close — BLAS blocking
        # differs by batch shape — so it gets a reported diff, not a gate.
        parity_ok = bool(np.array_equal(served_outputs, reference))
        single["max_abs_diff_vs_batched"] = float(np.abs(single_outputs - reference).max())
        overload = _bench_overload(model, input_shape)

        service = fit_service_time(model, input_shape, batch_sizes=(1, 8, 32, MAX_BATCH), reps=3 if smoke else 7)
        peak = 1.0 / (service.base_s / MAX_BATCH + service.per_sample_s)  # rps at full batches
        rates = [round(f * peak, 3) for f in (0.3, 0.6, 0.8, 0.95, 1.1)]
        policy = BatchPolicy(
            max_batch_size=MAX_BATCH,
            max_wait_s=max(4 * service(MAX_BATCH), 1e-4),
            max_queue=4 * MAX_BATCH,
            timeout_s=1.0,
        )
        sweep = sweep_offered_load(policy, service, rates, n_requests=400 if smoke else 2000, seed=seed)
        sweep_rows = [
            {
                "offered_rps": r["offered_rps"],
                "throughput_rps": r.get("throughput_rps", 0.0),
                "p50_s": r["latency"]["p50_s"],
                "p95_s": r["latency"]["p95_s"],
                "p99_s": r["latency"]["p99_s"],
                "shed": r["shed"],
                "timed_out": r["timed_out"],
                "batch_occupancy": r["batch_occupancy"],
                "utilization": r.get("utilization", 0.0),
                "accounted": r["accounted"],
            }
            for r in sweep
        ]

    speedup = batched["throughput_rps"] / single["throughput_rps"]
    accounting_ok = bool(
        batched["accounted"] and overload["accounted"] and all(r["accounted"] for r in sweep)
    )
    return {
        "benchmark": BENCHMARK,
        "max_batch_size": MAX_BATCH,
        "n_requests": n,
        "smoke": smoke,
        "registry": registry.stats(),
        "single": single,
        "batched": batched,
        "overload": overload,
        "service_time": {"base_s": service.base_s, "per_sample_s": service.per_sample_s},
        "sweep": sweep_rows,
        "acceptance": {
            "speedup": speedup,
            "speedup_min": gate,
            "speedup_ok": bool(speedup >= gate),
            "parity_ok": parity_ok,
            "accounting_ok": accounting_ok,
        },
    }


def format_results(results: Dict) -> str:
    """Human-readable report of one :func:`run_serving_bench` run."""
    from ..utils import format_table

    acc = results["acceptance"]
    lines = [
        f"serving bench — {results['benchmark']}, {results['n_requests']} requests, "
        f"max batch {results['max_batch_size']}",
        "",
        f"single:  {results['single']['throughput_rps']:>10.1f} req/s",
        f"batched: {results['batched']['throughput_rps']:>10.1f} req/s "
        f"(occupancy {results['batched']['batch_occupancy']:.2f}, "
        f"p99 {results['batched']['latency']['p99_s'] * 1e3:.2f} ms)",
        f"speedup: {acc['speedup']:.2f}x (gate >= {acc['speedup_min']}x) "
        f"parity={'ok' if acc['parity_ok'] else 'FAIL'} "
        f"accounting={'ok' if acc['accounting_ok'] else 'FAIL'}",
        "",
        "offered-load sweep (simulated clock):",
    ]
    rows = [
        [
            f"{r['offered_rps']:.0f}",
            f"{r['throughput_rps']:.0f}",
            f"{r['p50_s'] * 1e3:.2f}",
            f"{r['p99_s'] * 1e3:.2f}",
            r["shed"],
            r["timed_out"],
            f"{r['batch_occupancy']:.2f}",
            f"{r['utilization']:.2f}",
        ]
        for r in results["sweep"]
    ]
    lines.append(
        format_table(
            ["offered rps", "done rps", "p50 ms", "p99 ms", "shed", "timeout", "occupancy", "util"],
            rows,
        )
    )
    return "\n".join(lines)
