"""Batched inference serving.

The paper's driver workloads end in *inference campaigns* — screening
millions of compounds, serving treatment-response predictions — so
trained models need a serving layer, not just a fit loop.  This package
provides one, built from the library's own parts:

* :class:`MicroBatcher` / :class:`BatchPolicy` — deadline-aware
  micro-batching (max-batch-size + max-wait) with a bounded queue, load
  shedding, and per-request timeouts (the :mod:`repro.resilience`
  overload idioms applied to serving);
* :class:`ModelRegistry` / :func:`publish_model` — checkpoint-backed
  model loading (via :mod:`repro.nn.serialization`) with an LRU weight
  cache and warm-up;
* :class:`InferenceServer` — the request front-end over the grad-free
  ``no_grad`` predict path, instrumented for :class:`repro.perf.OpProfiler`;
* :class:`LatencyHistogram` / :class:`ServingStats` — tail-latency and
  request-accounting observability;
* :func:`simulate_serving` / :func:`sweep_offered_load` — offered-load
  experiments on the simulated clock (:class:`repro.hpc.events.EventLoop`);
* :func:`repro.serve.bench.run_serving_bench` — the acceptance-gated
  benchmark behind ``repro serve-bench`` / ``benchmarks/bench_serving.py``.
"""

from .batcher import BatchPolicy, MicroBatcher, Request
from .metrics import LatencyHistogram, ServingStats
from .registry import ModelRegistry, publish_model, read_checkpoint_meta
from .server import InferenceServer
from .simulate import AffineServiceTime, fit_service_time, simulate_serving, sweep_offered_load

__all__ = [
    "BatchPolicy",
    "MicroBatcher",
    "Request",
    "LatencyHistogram",
    "ServingStats",
    "ModelRegistry",
    "publish_model",
    "read_checkpoint_meta",
    "InferenceServer",
    "AffineServiceTime",
    "fit_service_time",
    "simulate_serving",
    "sweep_offered_load",
]
