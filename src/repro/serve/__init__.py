"""Batched inference serving.

The paper's driver workloads end in *inference campaigns* — screening
millions of compounds, serving treatment-response predictions — so
trained models need a serving layer, not just a fit loop.  This package
provides one, built from the library's own parts:

* :class:`MicroBatcher` / :class:`BatchPolicy` — deadline-aware
  micro-batching (max-batch-size + max-wait) with a bounded queue, load
  shedding, and per-request timeouts (the :mod:`repro.resilience`
  overload idioms applied to serving);
* :class:`ModelRegistry` / :func:`publish_model` — checkpoint-backed
  model loading (via :mod:`repro.nn.serialization`) with an LRU weight
  cache and warm-up;
* :class:`InferenceServer` — the request front-end over the grad-free
  ``no_grad`` predict path, instrumented for :class:`repro.perf.OpProfiler`;
* :class:`LatencyHistogram` / :class:`ServingStats` — tail-latency and
  request-accounting observability;
* :func:`simulate_serving` / :func:`sweep_offered_load` — offered-load
  experiments on the simulated clock (:class:`repro.hpc.events.EventLoop`);
* :func:`repro.serve.bench.run_serving_bench` — the acceptance-gated
  benchmark behind ``repro serve-bench`` / ``benchmarks/bench_serving.py``.

The **distributed tier** scales this out to real processes and keeps it
alive under failure:

* :class:`ReplicaGroup` (:mod:`repro.serve.distributed`) — N model
  replicas on :class:`repro.parallel.ProcessWorkerPool` workers, weights
  published once through shared memory;
* :class:`Router` (:mod:`repro.serve.router`) — per-model routing,
  admission control, per-request deadlines, bounded retries with
  backoff, and per-replica circuit breakers;
* :class:`ReplicaSupervisor` (:mod:`repro.serve.supervisor`) —
  bit-identical canary probes, recycle-under-traffic, autoscaling hook;
* :class:`ChaosHarness` / :func:`run_chaos_replay`
  (:mod:`repro.serve.chaos`) — seeded kill/hang/slow/corrupt injection
  with accounting + parity audits;
* :func:`repro.serve.scale_bench.run_serving_scale_bench` — the gated
  scale benchmark behind ``repro serve-scale-bench``.
"""

from .batcher import BatchPolicy, MicroBatcher, Request
from .chaos import ChaosHarness, run_chaos_replay
from .distributed import ReplicaGroup
from .metrics import LatencyHistogram, ServingStats
from .registry import (
    SUPPORTED_SERVING_DTYPES,
    CheckpointIntegrityError,
    ModelRegistry,
    UnsupportedDtypeError,
    publish_model,
    read_checkpoint_meta,
    weights_checksum,
)
from .router import CircuitBreaker, RoutedRequest, Router, RouterStats
from .server import InferenceServer
from .simulate import (
    TRAFFIC_MIXES,
    AffineServiceTime,
    bursty_arrivals,
    diurnal_arrivals,
    fit_service_time,
    poisson_arrivals,
    simulate_serving,
    sweep_offered_load,
    traffic_arrivals,
)
from .supervisor import ReplicaSupervisor

__all__ = [
    "BatchPolicy",
    "MicroBatcher",
    "Request",
    "LatencyHistogram",
    "ServingStats",
    "CheckpointIntegrityError",
    "UnsupportedDtypeError",
    "SUPPORTED_SERVING_DTYPES",
    "ModelRegistry",
    "publish_model",
    "read_checkpoint_meta",
    "weights_checksum",
    "InferenceServer",
    "AffineServiceTime",
    "fit_service_time",
    "simulate_serving",
    "sweep_offered_load",
    "TRAFFIC_MIXES",
    "traffic_arrivals",
    "poisson_arrivals",
    "bursty_arrivals",
    "diurnal_arrivals",
    "ReplicaGroup",
    "Router",
    "RouterStats",
    "RoutedRequest",
    "CircuitBreaker",
    "ReplicaSupervisor",
    "ChaosHarness",
    "run_chaos_replay",
]
