"""Serving observability: latency histograms and request accounting.

The serving layer's health is a tail-latency story — mean latency hides
the queueing spikes that matter at high offered load — so the histogram
keeps log-spaced buckets wide enough to cover microsecond kernel calls
through multi-second overload stalls, and :class:`ServingStats` enforces
the accounting invariant every request must satisfy:

    submitted == completed + shed + timed_out + still_queued

A violation means the server lost or double-counted a request, which is
exactly the bug class overload handling tends to breed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


class LatencyHistogram:
    """Log-spaced latency histogram with percentile estimation.

    Buckets are powers of ``2**0.25`` from 1 microsecond up to ~1000
    seconds (fixed at construction, allocation-free to observe).  Exact
    min/max/sum are tracked alongside, so the mean is exact and the
    percentiles are bucket-resolution estimates (within ~19% by
    construction, far tighter than the order-of-magnitude swings they
    exist to detect).
    """

    def __init__(self, min_latency: float = 1e-6, max_latency: float = 1e3) -> None:
        if not 0 < min_latency < max_latency:
            raise ValueError("need 0 < min_latency < max_latency")
        n = int(np.ceil(4 * np.log2(max_latency / min_latency))) + 1
        self.edges = min_latency * 2.0 ** (0.25 * np.arange(n + 1))
        self.counts = np.zeros(n + 2, dtype=np.int64)  # +under/overflow
        self.n = 0
        self.sum = 0.0
        self.min = np.inf
        self.max = 0.0

    def observe(self, latency: float) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        idx = int(np.searchsorted(self.edges, latency, side="right"))
        self.counts[idx] += 1
        self.n += 1
        self.sum += latency
        self.min = min(self.min, latency)
        self.max = max(self.max, latency)

    def percentile(self, q: float) -> float:
        """Latency at quantile ``q`` in [0, 100] (upper bucket edge)."""
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        if self.n == 0:
            return 0.0
        target = q / 100.0 * self.n
        cum = np.cumsum(self.counts)
        idx = int(np.searchsorted(cum, target, side="left"))
        if idx == 0:
            return float(min(self.edges[0], self.max))
        if idx >= len(self.edges):
            return float(self.max)
        return float(min(self.edges[idx], self.max))

    @property
    def mean(self) -> float:
        return self.sum / self.n if self.n else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.n,
            "mean_s": self.mean,
            "min_s": self.min if self.n else 0.0,
            "max_s": self.max,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
        }


@dataclass
class ServingStats:
    """Counters + histograms for one server's lifetime."""

    submitted: int = 0
    completed: int = 0
    shed: int = 0            # rejected at submit: queue full
    timed_out: int = 0       # expired in queue before a batch picked them up
    batches: int = 0
    batch_size_sum: int = 0
    busy_time: float = 0.0   # wall time spent executing batches
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    batch_latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    def record_batch(self, size: int, service_time: float) -> None:
        self.batches += 1
        self.batch_size_sum += size
        self.busy_time += service_time
        self.batch_latency.observe(service_time)

    @property
    def mean_batch_size(self) -> float:
        return self.batch_size_sum / self.batches if self.batches else 0.0

    def occupancy(self, max_batch_size: int) -> float:
        """Mean fraction of the batch budget actually filled."""
        if self.batches == 0 or max_batch_size <= 0:
            return 0.0
        return self.mean_batch_size / max_batch_size

    def accounted(self, still_queued: int = 0) -> bool:
        """True iff every submitted request has exactly one outcome."""
        return self.submitted == self.completed + self.shed + self.timed_out + still_queued

    def summary(self, elapsed: Optional[float] = None, max_batch_size: Optional[int] = None) -> Dict:
        out: Dict = {
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "busy_time_s": self.busy_time,
            "latency": self.latency.summary(),
        }
        if elapsed is not None and elapsed > 0:
            out["throughput_rps"] = self.completed / elapsed
            out["utilization"] = min(self.busy_time / elapsed, 1.0)
        if max_batch_size is not None:
            out["batch_occupancy"] = self.occupancy(max_batch_size)
        return out
