"""Deadline-aware micro-batching policy.

The batcher is pure queueing logic — no model, no clock of its own — so
the same code drives both the wall-clock server (:mod:`repro.serve.server`)
and the simulated-load driver (:mod:`repro.serve.simulate`).  Callers
pass ``now`` explicitly; the batcher never reads time.

Dispatch rule (the classic max-batch-size + max-wait policy used by
production inference servers): a batch is ready as soon as either

* ``max_batch_size`` requests are queued (throughput bound), or
* the oldest queued request has waited ``max_wait_s`` (latency bound).

Overload handling: the queue is bounded (``max_queue``); offers beyond
the bound are *shed* immediately — rejecting cheap at the door beats
timing out expensive in the queue.  Requests that nevertheless exceed
``timeout_s`` while queued are dropped at batch-formation time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the micro-batching and overload policy."""

    max_batch_size: int = 64
    max_wait_s: float = 0.005
    max_queue: int = 1024
    timeout_s: Optional[float] = None  # None: requests never expire

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be non-negative")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")


@dataclass
class Request:
    """One queued predict request (a single sample)."""

    request_id: int
    x: np.ndarray
    enqueue_time: float
    # Filled in by the server as the request moves through its lifecycle.
    status: str = "queued"  # queued | completed | shed | timed_out
    result: Optional[np.ndarray] = None
    complete_time: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.status != "queued"

    @property
    def latency(self) -> Optional[float]:
        if self.complete_time is None:
            return None
        return self.complete_time - self.enqueue_time


class MicroBatcher:
    """Bounded FIFO queue + the batch-formation rule."""

    def __init__(self, policy: BatchPolicy) -> None:
        self.policy = policy
        self._queue: Deque[Request] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def depth(self) -> int:
        return len(self._queue)

    def offer(self, request: Request) -> bool:
        """Enqueue, or shed if the queue is at its bound.

        Returns True when accepted; on shed the request's status is set
        so the caller's handle resolves immediately.
        """
        if len(self._queue) >= self.policy.max_queue:
            request.status = "shed"
            return False
        self._queue.append(request)
        return True

    def ready(self, now: float) -> bool:
        """Is a batch dispatchable at time ``now``?"""
        if not self._queue:
            return False
        if len(self._queue) >= self.policy.max_batch_size:
            return True
        return now - self._queue[0].enqueue_time >= self.policy.max_wait_s

    def next_ready_time(self) -> Optional[float]:
        """Earliest future time a (partial) batch becomes dispatchable.

        None when the queue is empty; the simulated driver schedules its
        wake-up here instead of polling.
        """
        if not self._queue:
            return None
        if len(self._queue) >= self.policy.max_batch_size:
            return self._queue[0].enqueue_time  # ready since then
        return self._queue[0].enqueue_time + self.policy.max_wait_s

    def take(self, now: float) -> Tuple[List[Request], List[Request]]:
        """Pop up to ``max_batch_size`` live requests; expire stale ones.

        Returns ``(batch, expired)``.  Expired requests (queued longer
        than ``timeout_s``) are marked ``timed_out`` and excluded — a
        request that already waited past its deadline must not consume
        batch slots computing an answer nobody is waiting for.
        """
        batch: List[Request] = []
        expired: List[Request] = []
        timeout = self.policy.timeout_s
        while self._queue and len(batch) < self.policy.max_batch_size:
            req = self._queue.popleft()
            if timeout is not None and now - req.enqueue_time > timeout:
                req.status = "timed_out"
                req.complete_time = now
                expired.append(req)
            else:
                batch.append(req)
        return batch, expired
