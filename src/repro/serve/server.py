"""The batched inference server.

Single-threaded and caller-driven, matching the engine it fronts (the
NumPy engine is single-threaded per process; concurrency in this repo is
process-level).  ``submit`` enqueues a request and returns a handle;
``step`` dispatches one micro-batch when the policy says so; ``drain``
forces the queue empty.  A caller loop of ``submit``/``step`` is an
event loop; the simulated driver replaces the wall clock with
:class:`repro.hpc.events.EventLoop` time.

Batch execution routes through :meth:`Model.predict` on the coalesced
batch, i.e. the exact grad-free ``no_grad`` path training evaluation
uses — serving a batch of the same requests in the same order is
bit-identical to calling ``predict`` directly.

The batch execution is also registered with the perf instrumentation
hooks (op name ``serve.batch``): run the server under a
:class:`repro.perf.OpProfiler` (or pass ``profiler=``) and every batch's
wall time and output bytes land in the op table next to the kernels.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..obs.context import get_recorder
from ..perf import hooks
from ..nn.model import Model
from .batcher import BatchPolicy, MicroBatcher, Request
from .metrics import ServingStats


class InferenceServer:
    """Micro-batching front-end over one model.

    Parameters
    ----------
    model:
        Any built :class:`repro.nn.Model` (typically out of a
        :class:`repro.serve.ModelRegistry`).
    policy:
        Batching + overload policy; defaults to :class:`BatchPolicy()`.
    clock:
        0-arg callable returning seconds; defaults to
        ``time.perf_counter``.  Pass a simulated clock for deterministic
        latency experiments (see :mod:`repro.serve.simulate`).
    profiler:
        Optional :class:`repro.perf.OpProfiler` entered around every
        batch execution, attributing the forward's per-op cost (and the
        ``serve.batch`` envelope) to the profiler.
    precision:
        Inference datapath passed to :meth:`Model.predict` on every
        batch — ``None``/"fp64" (native), ``"fp32"``, or ``"int8"``
        (requires a plan from :meth:`Model.quantize_int8`).  Validated
        eagerly so a misconfigured server fails at construction, not on
        the first request.
    """

    def __init__(
        self,
        model: Model,
        policy: Optional[BatchPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
        profiler=None,
        precision: Optional[str] = None,
    ) -> None:
        if precision not in (None, "fp64", "fp32", "int8"):
            raise ValueError(
                f"unknown serving precision {precision!r}; choose None/'fp64', 'fp32' or 'int8'"
            )
        if precision == "int8" and getattr(model, "_int8_plan", None) is None:
            raise ValueError(
                "precision='int8' needs a calibrated plan; call "
                "model.quantize_int8(x_calib) before constructing the server"
            )
        self.model = model
        self.policy = policy or BatchPolicy()
        self.clock = clock or time.perf_counter
        self.profiler = profiler
        self.precision = precision
        self.batcher = MicroBatcher(self.policy)
        self.stats = ServingStats()
        self._next_id = 0

    @classmethod
    def from_store(
        cls,
        store,
        spec: str,
        policy: Optional[BatchPolicy] = None,
        **kwargs,
    ) -> "InferenceServer":
        """Serve a registry artifact: resolve ``spec`` (``"name@version"``,
        ``"name"``/``"name@latest"``, or ``"sha256:<hex>"``) against a
        :class:`repro.registry.ArtifactStore` and front the warm-cached
        model.  When the artifact carries quantization metadata and no
        explicit ``precision`` is passed, the server defaults to the int8
        datapath the artifact was published for.
        """
        ref = store.resolve(spec)
        model = store.get(ref)
        if "precision" not in kwargs and ref.meta.get("quantization") is not None:
            kwargs["precision"] = "int8"
        return cls(model, policy=policy, **kwargs)

    # -- request ingress -------------------------------------------------
    def submit(self, x: np.ndarray, now: Optional[float] = None) -> Request:
        """Queue one sample; returns its handle (possibly already shed).

        ``x`` is a single sample (no batch axis).  A full queue sheds the
        request immediately — the handle comes back with status
        ``"shed"`` and the shed counter increments; nothing is silently
        dropped.
        """
        now = self.clock() if now is None else now
        req = Request(request_id=self._next_id, x=np.asarray(x), enqueue_time=now)
        self._next_id += 1
        self.stats.submitted += 1
        if not self.batcher.offer(req):
            self.stats.shed += 1
            rec = get_recorder()
            if rec is not None:
                rec.event("shed", kind="serve.shed", request_id=req.request_id)
        else:
            rec = get_recorder()
            if rec is not None:
                rec.metrics.gauge("serve.queue_depth").set(self.batcher.depth)
        return req

    # -- batch dispatch --------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return self.batcher.depth

    def step(self, now: Optional[float] = None, force: bool = False) -> int:
        """Dispatch one micro-batch if the policy allows (or ``force``).

        Returns the number of requests completed by this call.
        """
        wall = now is None
        now = self.clock() if wall else now
        if not force and not self.batcher.ready(now):
            return 0
        batch, expired = self.batcher.take(now)
        self.stats.timed_out += len(expired)
        if not batch:
            return 0
        rec = get_recorder()
        if rec is not None:
            span_id = rec.begin(
                "batch", kind="serve.batch",
                batch_size=len(batch), queue_depth=self.batcher.depth,
                timed_out=len(expired),
            )
        outputs = self._execute([req.x for req in batch])
        if rec is not None:
            rec.metrics.gauge("serve.queue_depth").set(self.batcher.depth)
            rec.metrics.counter("serve.batches").inc()
            rec.end(span_id)
        # Wall-clock mode re-reads the clock so latency includes the
        # forward; a simulated caller advances its own clock instead.
        done = max(self.clock(), now) if wall else now
        for req, out in zip(batch, outputs):
            req.result = out
            req.status = "completed"
            req.complete_time = done
            self.stats.completed += 1
            self.stats.latency.observe(done - req.enqueue_time)
        return len(batch)

    def drain(self, now: Optional[float] = None) -> int:
        """Force-dispatch until the queue is empty; returns completions."""
        completed = 0
        while self.batcher.depth > 0:
            completed += self.step(now=now, force=True)
        return completed

    # -- execution -------------------------------------------------------
    def _execute(self, xs: Sequence[np.ndarray]) -> List[np.ndarray]:
        xb = np.stack(xs, axis=0) if xs else np.zeros((0,))
        t0 = time.perf_counter()
        if self.profiler is not None:
            with self.profiler:
                out = _serve_batch(self.model, xb, self.precision)
        else:
            out = _serve_batch(self.model, xb, self.precision)
        self.stats.record_batch(len(xs), time.perf_counter() - t0)
        return [out[i] for i in range(len(xs))]


def _predict_batch(model: Model, xb: np.ndarray, precision: Optional[str] = None) -> np.ndarray:
    # Routing through Model.predict keeps the serving guarantee: a served
    # batch is bit-identical to calling predict(..., precision=) directly.
    return model.predict(xb, batch_size=max(len(xb), 1), precision=precision)


# Instrumented at import time like the functional ops: any active
# OpProfiler sees one "serve.batch" record per dispatched batch.
_serve_batch = hooks.instrument("serve.batch", _predict_batch)
