"""Routing, admission control, and failure policy for replica groups.

The :class:`Router` fronts one or more :class:`~repro.serve.distributed.ReplicaGroup`
instances (per-model routing) and owns every *policy* decision the
replica plane deliberately does not make:

* **Admission control** — each model has a bounded micro-batch queue
  (:class:`~repro.serve.batcher.MicroBatcher`); requests beyond the
  bound are shed *at the door* (rejecting cheap beats timing out
  expensive in the queue), so a traffic burst degrades into an explicit
  shed rate, never an unbounded backlog.
* **Per-request deadlines** — requests carry a deadline (defaulting to
  the policy's ``timeout_s``); they expire at batch formation and again
  before any retry dispatch, so no replica computes answers nobody is
  waiting for.
* **Bounded retries with exponential backoff** — a batch lost to a dead
  or hung replica is re-dispatched (to a *different* replica when one is
  available) up to ``max_retries`` times, with backoff
  ``backoff_base_s * 2**attempt`` between attempts; requests that
  exhaust their retries are surfaced as ``retried_away``.
* **Per-replica circuit breaker** — consecutive failures open a
  replica's breaker (no dispatch) for ``breaker_cooldown_s``, then one
  half-open probe batch decides recovery vs re-open; a replica recycled
  by the supervisor gets its breaker reset (fresh process, clean slate).

Accounting is the load-bearing invariant::

    submitted == completed + shed + timed_out + retried_away + queued

:class:`RouterStats.accounted` checks it; the chaos suite asserts it
under seeded kill/hang/slow fault schedules.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..obs.context import get_recorder
from ..parallel.pool import TaskResult
from .batcher import BatchPolicy, MicroBatcher, Request
from .distributed import ReplicaGroup
from .metrics import ServingStats


@dataclass
class RoutedRequest(Request):
    """A :class:`Request` with routing state: row-addressed payloads,
    a per-request deadline, and its retry trail."""

    row: Optional[int] = None          # index into the published request pool
    deadline_s: Optional[float] = None  # from enqueue_time; None: never expires
    attempts: int = 0                  # dispatches so far (1 = no retries yet)


@dataclass
class RouterStats(ServingStats):
    """Serving counters plus the distributed-tier outcomes."""

    retried_away: int = 0  # terminal: retries exhausted on replica failures
    retries: int = 0       # non-terminal: request re-dispatched after a failure

    def accounted(self, still_queued: int = 0) -> bool:
        return self.submitted == (
            self.completed + self.shed + self.timed_out + self.retried_away + still_queued
        )


class CircuitBreaker:
    """Per-replica failure gate: closed -> open -> half-open -> closed."""

    def __init__(self, threshold: int = 3, cooldown_s: float = 1.0) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.state = "closed"
        self.failures = 0
        self.opens = 0
        self._open_until = 0.0
        self._probe_inflight = False

    def available(self, now: float) -> bool:
        if self.state == "closed":
            return True
        if self.state == "open":
            return now >= self._open_until  # cooldown over: a probe may go
        return not self._probe_inflight      # half-open: one probe at a time

    def on_dispatch(self, now: float) -> None:
        if self.state == "open" and now >= self._open_until:
            self.state = "half_open"
        if self.state == "half_open":
            self._probe_inflight = True

    def on_success(self) -> None:
        self.state = "closed"
        self.failures = 0
        self._probe_inflight = False

    def on_failure(self, now: float) -> None:
        self.failures += 1
        probe_failed = self.state == "half_open"
        self._probe_inflight = False
        if probe_failed or self.failures >= self.threshold:
            self.state = "open"
            self._open_until = now + self.cooldown_s
            self.opens += 1

    def reset(self) -> None:
        """Fresh process behind this slot: forget its predecessor's sins."""
        self.state = "closed"
        self.failures = 0
        self._probe_inflight = False


@dataclass
class _Batch:
    """One dispatched (or retry-pending) unit of work."""

    model: str
    requests: List[RoutedRequest]
    kind: str = "infer"  # "infer" | "canary"
    attempt: int = 0
    slot: Optional[int] = None
    not_before: float = 0.0
    expected: Any = None  # canary: parent-side reference output


class Router:
    """Policy front-end over ``{model name -> ReplicaGroup}``.

    Caller-driven like :class:`repro.serve.InferenceServer`: ``submit``
    enqueues, ``pump`` forms batches, dispatches to replicas, polls
    results, and runs the retry/breaker machinery.  A ``submit``/``pump``
    loop is the serving event loop; :func:`drain` runs it to completion.
    """

    def __init__(
        self,
        groups: Dict[str, ReplicaGroup],
        policy: Optional[BatchPolicy] = None,
        max_retries: int = 2,
        backoff_base_s: float = 0.05,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 1.0,
        clock: Optional[Callable[[], float]] = None,
        record_batches: bool = False,
        stall_s: float = 0.0,
    ) -> None:
        if not groups:
            raise ValueError("need at least one replica group")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        self.groups = dict(groups)
        self.policy = policy or BatchPolicy()
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.clock = clock or time.perf_counter
        self.record_batches = record_batches
        self.stall_s = stall_s
        self.stats = RouterStats()
        self.batch_log: List[Tuple[str, Tuple[int, ...]]] = []
        self.chaos = None       # duck-typed: .plan(first_request_id, slot) -> dict|None
        self.supervisor = None  # duck-typed: .handle_canary(model, slot, result, now)
        self._batchers = {name: MicroBatcher(self.policy) for name in self.groups}
        self._breakers: Dict[Tuple[str, int], CircuitBreaker] = {
            (name, slot): CircuitBreaker(breaker_threshold, breaker_cooldown_s)
            for name, group in self.groups.items()
            for slot in range(group.n_replicas)
        }
        self._inflight: Dict[Tuple[str, int], _Batch] = {}  # (model, task_id)
        self._slot_load: Dict[Tuple[str, int], int] = {}     # batches in flight
        self._retry_q: List[_Batch] = []
        self._next_id = 0

    # -- ingress ---------------------------------------------------------
    def submit(
        self,
        model: str,
        x: Optional[np.ndarray] = None,
        row: Optional[int] = None,
        now: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ) -> RoutedRequest:
        """Queue one request (sample ``x`` or pool ``row``); may shed.

        The returned handle resolves in place as the router pumps:
        ``completed`` (with ``result``), ``shed``, ``timed_out``, or
        ``retried_away``.
        """
        if model not in self.groups:
            raise KeyError(f"unknown model {model!r}; routed: {sorted(self.groups)}")
        if (x is None) == (row is None):
            raise ValueError("pass exactly one of x or row")
        now = self.clock() if now is None else now
        req = RoutedRequest(
            request_id=self._next_id,
            x=None if x is None else np.asarray(x),
            enqueue_time=now,
            row=row,
            deadline_s=self.policy.timeout_s if deadline_s is None else deadline_s,
        )
        self._next_id += 1
        self.stats.submitted += 1
        if not self._batchers[model].offer(req):
            self.stats.shed += 1
            rec = get_recorder()
            if rec is not None:
                rec.event("shed", kind="serve.shed", request_id=req.request_id, model=model)
        self._gauges()
        return req

    def submit_canary(
        self, model: str, replica: int, x: np.ndarray, expected: np.ndarray,
        now: Optional[float] = None,
    ) -> int:
        """Dispatch a supervisor health probe to one specific replica.

        Canaries bypass admission and batching (they must reach the
        replica even when the breaker has it ejected — that is how an
        ejected replica proves it recovered) and are excluded from the
        request accounting; the result is handed to the attached
        supervisor's ``handle_canary``.
        """
        now = self.clock() if now is None else now
        group = self.groups[model]
        task_id = group.submit(replica, x=np.asarray(x))
        self._inflight[(model, task_id)] = _Batch(
            model, [], kind="canary", slot=replica, expected=expected,
        )
        return task_id

    # -- event loop ------------------------------------------------------
    def pump(self, now: Optional[float] = None) -> int:
        """One scheduler turn: dispatch what's due, absorb what's done.

        Returns the number of requests completed by this call.
        """
        now = self.clock() if now is None else now
        due = [b for b in self._retry_q if b.not_before <= now]
        if due:
            self._retry_q = [b for b in self._retry_q if b.not_before > now]
            for batch in due:
                self._dispatch(batch, now)
        for model, batcher in self._batchers.items():
            while batcher.ready(now):
                formed, expired = batcher.take(now)
                self._expire(expired, now)
                if formed:
                    self._dispatch(_Batch(model, formed), now)
        completed = 0
        for model, group in self.groups.items():
            while True:
                res = group.poll(timeout=0.0)
                if res is None:
                    break
                completed += self._resolve(model, res)
        self._gauges()
        return completed

    def drain(self, timeout_s: float = 60.0) -> int:
        """Pump until every submitted request has an outcome (or timeout).

        Returns completions; raises TimeoutError if requests are still
        unresolved at the bound (which would itself be an accounting
        leak, so the bound is generous).
        """
        deadline = self.clock() + timeout_s
        completed = 0
        while self.pending > 0:
            completed += self.pump()
            if self.clock() > deadline:
                raise TimeoutError(
                    f"router failed to drain: {self.pending} requests unresolved"
                )
        return completed

    @property
    def queue_depth(self) -> int:
        """Requests admitted but not yet dispatched (incl. retry backlog)."""
        return sum(b.depth for b in self._batchers.values()) + sum(
            len(b.requests) for b in self._retry_q
        )

    @property
    def pending(self) -> int:
        """Requests with no outcome yet (queued, in flight, or awaiting retry)."""
        inflight = sum(
            len(b.requests) for b in self._inflight.values() if b.kind == "infer"
        )
        return self.queue_depth + inflight

    # -- internals -------------------------------------------------------
    def _expire(self, requests: List[RoutedRequest], now: float) -> None:
        for req in requests:
            req.status = "timed_out"
            req.complete_time = now
            self.stats.timed_out += 1

    def _still_live(self, req: RoutedRequest, now: float) -> bool:
        if req.deadline_s is not None and now - req.enqueue_time > req.deadline_s:
            req.status = "timed_out"
            req.complete_time = now
            self.stats.timed_out += 1
            return False
        return True

    def _choose_slot(self, model: str, now: float, avoid: Optional[int]) -> Optional[int]:
        group = self.groups[model]
        candidates = [
            s for s in range(group.n_replicas)
            if self._breakers[(model, s)].available(now)
        ]
        if avoid is not None and len(candidates) > 1:
            candidates = [s for s in candidates if s != avoid] or candidates
        if not candidates:
            return None
        return min(candidates, key=lambda s: self._slot_load.get((model, s), 0))

    def _dispatch(self, batch: _Batch, now: float) -> None:
        batch.requests = [r for r in batch.requests if self._still_live(r, now)]
        if not batch.requests:
            return
        slot = self._choose_slot(batch.model, now, avoid=batch.slot)
        if slot is None:
            # Every replica ejected: park briefly; deadlines bound the wait.
            batch.not_before = now + self.backoff_base_s
            self._retry_q.append(batch)
            return
        self._breakers[(batch.model, slot)].on_dispatch(now)
        group = self.groups[batch.model]
        fault = None
        if self.chaos is not None:
            fault = self.chaos.plan(batch.requests[0].request_id, slot)
        if batch.requests[0].row is not None:
            rows = [r.row for r in batch.requests]
            task_id = group.submit(slot, rows=rows, fault=fault, stall_s=self.stall_s)
        else:
            xb = np.stack([r.x for r in batch.requests], axis=0)
            task_id = group.submit(slot, x=xb, fault=fault, stall_s=self.stall_s)
        batch.slot = slot
        batch.attempt += 1
        for r in batch.requests:
            r.attempts += 1
        self._inflight[(batch.model, task_id)] = batch
        self._slot_load[(batch.model, slot)] = self._slot_load.get((batch.model, slot), 0) + 1
        rec = get_recorder()
        if rec is not None:
            rec.metrics.counter("serve.dispatches").inc()

    def _resolve(self, model: str, res: TaskResult) -> int:
        batch = self._inflight.pop((model, res.task_id), None)
        if batch is None:  # not ours (stale duplicate already handled by pool)
            return 0
        now = self.clock()
        if batch.slot is not None:
            key = (model, batch.slot)
            self._slot_load[key] = max(0, self._slot_load.get(key, 0) - 1)
        breaker = self._breakers[(model, batch.slot)]
        if batch.kind == "canary":
            if self.supervisor is not None:
                self.supervisor.handle_canary(model, batch.slot, res, batch.expected, now)
            return 0
        if res.status == "ok":
            breaker.on_success()
            outs = res.value
            for i, req in enumerate(batch.requests):
                req.result = outs[i]
                req.status = "completed"
                req.complete_time = now
                self.stats.completed += 1
                self.stats.latency.observe(now - req.enqueue_time)
            self.stats.record_batch(len(batch.requests), res.duration_s)
            if self.record_batches:
                self.batch_log.append(
                    (model, tuple(r.request_id for r in batch.requests))
                )
            return len(batch.requests)
        # Replica failure: died / hung / err.
        breaker.on_failure(now)
        rec = get_recorder()
        if rec is not None:
            rec.event(
                "replica_failure", kind="serve.replica",
                model=model, slot=batch.slot, status=res.status,
                batch_size=len(batch.requests), attempt=batch.attempt,
            )
            rec.metrics.counter("serve.replica_failures").inc()
        if batch.attempt <= self.max_retries:
            live = [r for r in batch.requests if self._still_live(r, now)]
            if live:
                self.stats.retries += len(live)
                if rec is not None:
                    rec.metrics.counter("serve.retries").inc(len(live))
                backoff = self.backoff_base_s * (2.0 ** (batch.attempt - 1))
                self._retry_q.append(
                    _Batch(model, live, attempt=batch.attempt,
                           slot=batch.slot, not_before=now + backoff)
                )
            return 0
        for req in batch.requests:
            req.status = "retried_away"
            req.complete_time = now
            self.stats.retried_away += 1
        if rec is not None:
            rec.metrics.counter("serve.retried_away").inc(len(batch.requests))
        return 0

    def note_recycled(self, model: str, slot: int) -> None:
        """A fresh process now backs (model, slot): reset its breaker."""
        self._breakers[(model, slot)].reset()

    def breaker_state(self, model: str, slot: int) -> str:
        return self._breakers[(model, slot)].state

    @property
    def breakers_open(self) -> int:
        return sum(1 for b in self._breakers.values() if b.state == "open")

    def _gauges(self) -> None:
        rec = get_recorder()
        if rec is not None:
            rec.metrics.gauge("serve.queue_depth").set(self.queue_depth)
            rec.metrics.gauge("serve.breaker_open").set(self.breakers_open)

    def close(self) -> None:
        for group in self.groups.values():
            group.close()
