"""Distributed-serving scale benchmark behind ``benchmarks/bench_serving_scale.py``
and the ``repro serve-scale-bench`` CLI.

Four measurements over the p1b2 expression classifier served through the
full distributed tier (:class:`ReplicaGroup` + :class:`Router`):

* **single** — one process, one model, the same request stream in the
  same micro-batches (the baseline a non-replicated deployment runs);
* **distributed** — the stream through N replicas with row-addressed
  dispatch over the shared-memory data plane; throughput speedup is the
  scale-out gate;
* **mixes** — Poisson / bursty / diurnal arrival processes
  (:func:`repro.serve.simulate.traffic_arrivals`) paced through a
  bounded-queue router: p50/p99 and shed rate per mix, accounting exact;
* **chaos** — the same tier under seeded kill/hang/slow injection plus
  one forced replica kill mid-stream, supervised by canary probes: the
  accounting invariant must balance with zero lost requests, completed
  responses must stay bit-identical to ``Model.predict`` on the same
  micro-batch composition, and at least one replica must respawn under
  traffic.

Each batch carries an artificial ``stall_per_batch_s`` service stall —
identically in the baseline and inside every replica — modelling the
accelerator/service latency that replication overlaps.  On the small CI
machines this repo benches on (often one core), the speedup measures
exactly that overlap, the same device-stall technique
``BENCH_parallel.json`` uses for its DDP/HPO gates; compute-bound
scaling needs real cores but exercises the identical code path.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from typing import Dict, List, Optional

import numpy as np

from ..candle.registry import get_benchmark
from ..resilience.faults import FaultSpec
from .batcher import BatchPolicy
from .chaos import ChaosHarness, run_chaos_replay
from .distributed import ReplicaGroup
from .router import Router
from .simulate import TRAFFIC_MIXES, traffic_arrivals
from .supervisor import ReplicaSupervisor

BENCHMARK = "p1b2"
POOL_ROWS = 256


def _bench_single(model, x_pool: np.ndarray, n: int, batch: int, stall_s: float) -> Dict:
    """The one-process baseline: same rows, same batch composition,
    same per-batch stall the replicas pay."""
    t0 = time.perf_counter()
    for start in range(0, n, batch):
        rows = [i % len(x_pool) for i in range(start, min(start + batch, n))]
        if stall_s:
            time.sleep(stall_s)
        model.predict(x_pool[rows], batch_size=len(rows))
    elapsed = time.perf_counter() - t0
    return {
        "requests": n,
        "batches": (n + batch - 1) // batch,
        "elapsed_s": elapsed,
        "throughput_rps": n / elapsed,
    }


def _mix_router(group: ReplicaGroup, batch: int, stall_s: float) -> Router:
    """Bounded-queue router for the traffic mixes: bursts must shed at
    the door, stragglers must expire, and everything must be counted."""
    policy = BatchPolicy(
        max_batch_size=batch, max_wait_s=0.02, max_queue=4 * batch, timeout_s=2.0,
    )
    return Router({"m": group}, policy=policy, max_retries=2, stall_s=stall_s)


def run_serving_scale_bench(
    smoke: bool = False,
    seed: int = 0,
    n_replicas: Optional[int] = None,
    n_requests: Optional[int] = None,
    speedup_min: Optional[float] = None,
) -> Dict:
    """Run the full scale benchmark; returns the JSON-ready results.

    ``smoke`` shrinks request counts and stalls for CI; the correctness
    gates (parity, accounting, respawn-under-traffic) are identical in
    both modes — only the traffic volume changes.
    """
    replicas = n_replicas or (3 if smoke else 4)
    batch = 16
    n = n_requests or (192 if smoke else 512)
    n = (n // batch) * batch or batch  # whole batches, like the serving bench
    stall_s = 0.01 if smoke else 0.02
    gate = speedup_min if speedup_min is not None else 1.5

    spec = get_benchmark(BENCHMARK)
    input_shape = spec.input_shape(seed=seed)
    model = spec.materialize(input_shape=input_shape, seed=seed)
    rng = np.random.default_rng(seed)
    x_pool = rng.standard_normal((POOL_ROWS,) + tuple(input_shape))

    single = _bench_single(model, x_pool, n, batch, stall_s)

    with ReplicaGroup(
        model, BENCHMARK, input_shape, n_replicas=replicas,
        hang_timeout_s=30.0, data={"x_pool": x_pool},
    ) as group:
        group.wait_ready()  # replica startup is not part of the measurement

        # -- throughput: closed loop, unbounded queue, zero shed ---------
        policy = BatchPolicy(
            max_batch_size=batch, max_wait_s=0.05, max_queue=n, timeout_s=None,
        )
        router = Router({"m": group}, policy=policy, stall_s=stall_s)
        dist = run_chaos_replay(router, "m", x_pool, n)
        dist["throughput_rps"] = n / dist["elapsed_s"] if dist["elapsed_s"] > 0 else 0.0
        dist["latency"] = router.stats.latency.summary()

        # -- traffic mixes: bounded queue, paced arrivals ----------------
        offered = 0.8 * dist["throughput_rps"]
        mix_n = max((n // 2 // batch) * batch, batch)
        mixes: List[Dict] = []
        for mix in TRAFFIC_MIXES:
            mrouter = _mix_router(group, batch, stall_s)
            arrivals = traffic_arrivals(mix, offered, mix_n, seed=seed)
            rep = run_chaos_replay(mrouter, "m", x_pool, mix_n, arrival_times=arrivals)
            lat = mrouter.stats.latency.summary()
            mixes.append({
                "mix": mix,
                "offered_rps": offered,
                "n_requests": mix_n,
                "completed": rep["completed"],
                "shed": rep["shed"],
                "shed_rate": rep["shed"] / mix_n,
                "timed_out": rep["timed_out"],
                "retried_away": rep["retried_away"],
                "throughput_rps": rep["completed"] / rep["elapsed_s"] if rep["elapsed_s"] > 0 else 0.0,
                "p50_s": lat["p50_s"],
                "p99_s": lat["p99_s"],
                "invariant_ok": rep["invariant_ok"],
                "parity_ok": rep["parity_ok"],
            })

    # -- chaos: seeded kill/hang/slow + forced kill, under supervision ---
    chaos_n = max((n * 3 // 4 // batch) * batch, batch)
    chaos_batch = 4  # small batches: more dispatches, more fault draws
    faults = FaultSpec(
        seed=seed + 1,
        kill_replica_prob=0.06, hang_replica_prob=0.05, slow_replica_prob=0.10,
    )
    autoscale_events: List[Dict] = []
    with ReplicaGroup(
        model, BENCHMARK, input_shape, n_replicas=replicas,
        hang_timeout_s=1.0, data={"x_pool": x_pool},
    ) as cgroup:
        cgroup.wait_ready()
        crouter = Router(
            {"m": cgroup},
            policy=BatchPolicy(max_batch_size=chaos_batch, max_wait_s=0.02,
                               max_queue=chaos_n, timeout_s=30.0),
            max_retries=3, backoff_base_s=0.02,
            breaker_threshold=2, breaker_cooldown_s=0.25,
        )
        harness = ChaosHarness(faults, slow_s=0.03).attach(crouter)
        supervisor = ReplicaSupervisor(
            crouter, canaries={"m": x_pool[:4]},
            probe_interval_s=0.25, probe_timeout_s=3.0,
            on_autoscale=autoscale_events.append,
            queue_high=4 * chaos_batch, queue_low=0, autoscale_patience=2,
        )
        chaos = run_chaos_replay(
            crouter, "m", x_pool, chaos_n, supervisor=supervisor,
            force_kill=(chaos_n // 2, 0),
        )
        chaos["autoscale_events"] = len(autoscale_events)
        chaos["breaker_opens"] = sum(
            b.opens for b in crouter._breakers.values()
        )

    speedup = dist["throughput_rps"] / single["throughput_rps"]
    parity_ok = bool(
        dist["parity_ok"] and chaos["parity_ok"] and all(m["parity_ok"] for m in mixes)
    )
    accounting_ok = bool(
        dist["invariant_ok"] and chaos["invariant_ok"]
        and all(m["invariant_ok"] for m in mixes)
    )
    return {
        "benchmark": BENCHMARK,
        "n_replicas": replicas,
        "max_batch_size": batch,
        "n_requests": n,
        "stall_per_batch_s": stall_s,
        "smoke": smoke,
        "single": single,
        "distributed": dist,
        "mixes": mixes,
        "chaos": chaos,
        "acceptance": {
            "speedup": speedup,
            "speedup_min": gate,
            "speedup_ok": bool(speedup >= gate),
            "parity_ok": parity_ok,
            "accounting_ok": accounting_ok,
            "chaos_zero_lost": bool(chaos["invariant_ok"]),
            "respawns_ok": bool(chaos["respawns"] >= 1),
        },
        "meta": {
            "numpy": np.__version__,
            "cpus": os.cpu_count() or 1,
            "start_method": mp.get_start_method(),
            "smoke": smoke,
        },
    }


def format_results(results: Dict) -> str:
    """Human-readable report of one :func:`run_serving_scale_bench` run."""
    from ..utils import format_table

    acc = results["acceptance"]
    chaos = results["chaos"]
    lines = [
        f"serving scale bench — {results['benchmark']}, "
        f"{results['n_replicas']} replicas, {results['n_requests']} requests, "
        f"stall {results['stall_per_batch_s'] * 1e3:.0f} ms/batch",
        "",
        f"single:      {results['single']['throughput_rps']:>10.1f} req/s",
        f"distributed: {results['distributed']['throughput_rps']:>10.1f} req/s "
        f"(p99 {results['distributed']['latency']['p99_s'] * 1e3:.2f} ms)",
        f"speedup: {acc['speedup']:.2f}x (gate >= {acc['speedup_min']}x) "
        f"parity={'ok' if acc['parity_ok'] else 'FAIL'} "
        f"accounting={'ok' if acc['accounting_ok'] else 'FAIL'}",
        "",
        "traffic mixes:",
    ]
    rows = [
        [
            m["mix"],
            f"{m['offered_rps']:.0f}",
            f"{m['throughput_rps']:.0f}",
            f"{m['p50_s'] * 1e3:.2f}",
            f"{m['p99_s'] * 1e3:.2f}",
            f"{m['shed_rate']:.3f}",
            m["timed_out"],
            "ok" if m["invariant_ok"] and m["parity_ok"] else "FAIL",
        ]
        for m in results["mixes"]
    ]
    lines.append(format_table(
        ["mix", "offered rps", "done rps", "p50 ms", "p99 ms", "shed rate", "timeout", "audit"],
        rows,
    ))
    faults = ", ".join(f"{k}={v}" for k, v in sorted(chaos.get("fault_counts", {}).items()))
    lines += [
        "",
        f"chaos: {chaos['n_requests']} requests, faults [{faults}] + 1 forced kill",
        f"  completed={chaos['completed']} retries={chaos['retries']} "
        f"retried_away={chaos['retried_away']} respawns={chaos['respawns']} "
        f"breaker_opens={chaos['breaker_opens']}",
        f"  invariant={'ok' if chaos['invariant_ok'] else 'FAIL'} "
        f"parity={'ok' if chaos['parity_ok'] else 'FAIL'} "
        f"({chaos['parity_checked']} responses audited) "
        f"respawn_under_traffic={'ok' if acc['respawns_ok'] else 'FAIL'}",
    ]
    return "\n".join(lines)
