"""Self-describing model artifacts: one format, one read.

An *artifact* is the unit the registry stores: every model parameter
(ordered), plus a JSON header carrying the benchmark name, input shape,
builder hyperparameters, per-parameter dtypes, optional quantization
spec, lineage back to the producing campaign/trial, and a SHA-256
content checksum over the weights.  The same ``.npz`` layout
:func:`repro.nn.serialization.save_weights` writes — existing serving
checkpoints load unchanged — but written atomically (temp file +
``os.replace``) so a crashed publisher can never leave a torn artifact
where a reader will find it.

The load path is deliberately a **single read**: :func:`open_artifact`
opens the ``.npz`` once and exposes a lazy :class:`ArtifactReader` —
the header decodes immediately (cheap), the weight arrays decode at most
once, on first use, and the integrity checksum is computed from *those
same decoded arrays* before they are installed into a model.  The old
serving loader read the file twice (once to verify, once to install);
callers of :func:`load_artifact` / :func:`build_from_artifact` pay the
decode exactly once.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

import numpy as np


class CheckpointIntegrityError(RuntimeError):
    """An artifact failed its integrity check: the file is truncated, an
    array is corrupt, or the content checksum recorded at publish time no
    longer matches the weights on disk.  Raised *before* any weights are
    installed into a model."""


class UnsupportedDtypeError(RuntimeError):
    """An artifact's weights use a dtype the host kernels cannot serve.
    Raised at load time, before any weights are installed — loading would
    otherwise silently cast into the model's built dtype and serve
    different numerics than were published."""


#: Weight dtypes the NumPy serving kernels handle natively.  int8
#: checkpoints are served as fp32 weights *plus* quantization metadata
#: (the int8 plan is rebuilt from recorded scales), so int8 never appears
#: as a raw weight dtype here.
SUPPORTED_SERVING_DTYPES = frozenset({"float64", "float32", "float16"})


def weights_checksum(weights: Iterable[np.ndarray]) -> str:
    """SHA-256 over every weight array's dtype, shape, and raw bytes.

    Order-sensitive by design — swapping two layers' weights is corruption
    even though the multiset of bytes is unchanged.  This hash is also the
    registry's *content address*: two publishes of byte-identical weights
    share one stored object and one warm-cache slot.
    """
    h = hashlib.sha256()
    for w in weights:
        arr = np.ascontiguousarray(w)
        h.update(str(arr.dtype).encode())
        h.update(repr(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def check_serving_dtypes(dtypes) -> set:
    """Refuse weight dtypes the host kernels cannot serve.

    Called before any weight array is decoded or installed; raises
    :class:`UnsupportedDtypeError`.  Returns the dtype-name set.
    """
    dtypes = set(dtypes)
    unsupported = dtypes - SUPPORTED_SERVING_DTYPES
    if unsupported:
        raise UnsupportedDtypeError(
            f"artifact weight dtype(s) {sorted(unsupported)} are not servable by "
            f"the host kernels (supported: {sorted(SUPPORTED_SERVING_DTYPES)})"
        )
    return dtypes


def json_safe(value):
    """Recursively convert numpy scalars/arrays, tuples, sets, and Paths
    into plain JSON types (campaign configs carry ``np.int64`` etc.)."""
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_safe(v) for v in value]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, Path):
        return str(value)
    return value


def build_artifact_meta(
    model,
    benchmark: str,
    input_shape: tuple,
    hparams: Optional[Dict] = None,
    metadata: Optional[Dict] = None,
    quantization: Optional[Dict] = None,
    lineage: Optional[Dict] = None,
) -> Dict:
    """Assemble the self-describing header for one model artifact.

    ``benchmark`` must name an entry of :data:`repro.candle.registry.REGISTRY`
    (the loader rebuilds the architecture through its ``build_model``);
    ``hparams`` are the builder kwargs the weights were trained with;
    ``lineage`` records where the weights came from (campaign/trial obs
    span ids, strategy, final metric — whatever the producer knows).
    """
    from ..candle.registry import get_benchmark

    get_benchmark(benchmark)  # validate early, not at first request
    weights = model.get_weights()
    if quantization is None:
        plan = getattr(model, "_int8_plan", None)
        quantization = plan.spec() if plan is not None else None
    return json_safe({
        "benchmark": benchmark,
        "input_shape": list(input_shape),
        "hparams": hparams or {},
        "checksum": weights_checksum(weights),
        "dtypes": [str(w.dtype) for w in weights],
        "quantization": quantization,
        "lineage": lineage or {},
        "extra": metadata or {},
    })


def write_artifact(model, path: Union[str, Path], meta: Dict) -> Path:
    """Atomically write ``model``'s weights + ``meta`` as an artifact.

    Uses :func:`repro.nn.serialization.atomic_savez` (temp file +
    ``os.replace``), so concurrent readers see either the previous
    complete artifact or the new complete one — never a torn write.
    """
    from ..nn.serialization import atomic_savez

    weights = model.get_weights()
    arrays = {f"param_{i:04d}": w for i, w in enumerate(weights)}
    arrays["_meta"] = np.frombuffer(
        json.dumps({"n_params": len(weights), "metadata": meta}).encode(), dtype=np.uint8
    )
    return atomic_savez(path, arrays)


class ArtifactReader:
    """One open artifact: header decoded, weights decoded lazily, once.

    Obtained from :func:`open_artifact`.  ``meta`` is available
    immediately (only the tiny ``_meta`` member is decompressed);
    :meth:`weights` decodes every parameter exactly once and caches the
    list, verifying the content checksum from those same arrays.
    """

    def __init__(self, path: Path, npz) -> None:
        self.path = path
        self._npz = npz
        try:
            self.header = json.loads(bytes(npz["_meta"]).decode())
            self.meta = self.header.get("metadata", {})
        except Exception as exc:
            raise CheckpointIntegrityError(
                f"{path}: unreadable artifact header ({type(exc).__name__}: {exc}) — "
                "file is truncated or corrupt; refusing to load"
            ) from exc
        if "benchmark" not in self.meta or "input_shape" not in self.meta:
            raise ValueError(f"{path} is not a serving checkpoint (use publish_model)")
        self._weights: Optional[List[np.ndarray]] = None
        self._verified = False

    @property
    def content_key(self) -> str:
        """Content address without touching the weight arrays.

        The recorded checksum when present; artifacts published before
        checksums existed fall back to a (path, size, mtime) signature —
        still a stable cache key, just not content-shared across copies.
        """
        checksum = self.meta.get("checksum")
        if checksum:
            return checksum
        st = self.path.stat()
        return f"file:{self.path}:{st.st_size}:{st.st_mtime_ns}"

    def weights(self, verify: bool = True) -> List[np.ndarray]:
        """Decode the weight arrays (once); verify the checksum from them.

        A truncated member, undecodable array, or checksum mismatch
        raises :class:`CheckpointIntegrityError` — corrupt weights never
        reach a model.  Artifacts with no recorded checksum skip the
        comparison (there is nothing to compare against).
        """
        if self._weights is None:
            try:
                n = self.header["n_params"]
                self._weights = [self._npz[f"param_{i:04d}"] for i in range(n)]
            except Exception as exc:
                raise CheckpointIntegrityError(
                    f"{self.path}: unreadable weights ({type(exc).__name__}: {exc}) — "
                    "file is truncated or corrupt; refusing to load"
                ) from exc
        if verify and not self._verified and "checksum" in self.meta:
            actual = weights_checksum(self._weights)
            if actual != self.meta["checksum"]:
                raise CheckpointIntegrityError(
                    f"{self.path}: weight checksum mismatch (expected "
                    f"{self.meta['checksum'][:16]}…, got {actual[:16]}…) — "
                    "artifact is corrupt; refusing to load"
                )
            self._verified = True
        return self._weights

    def close(self) -> None:
        self._npz.close()


@contextlib.contextmanager
def open_artifact(path: Union[str, Path]):
    """Open an artifact for a single read; yields :class:`ArtifactReader`.

    Exactly one ``np.load`` per artifact access: the caller reads the
    header (and content key) for free, and decides whether the weights —
    the expensive part — need decoding at all (warm-cache hits don't).
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    try:
        npz = np.load(path)
    except FileNotFoundError:
        raise
    except Exception as exc:  # truncated zip, bad central directory…
        raise CheckpointIntegrityError(
            f"{path}: unreadable artifact ({type(exc).__name__}: {exc}) — "
            "file is truncated or corrupt; refusing to load"
        ) from exc
    try:
        reader = ArtifactReader(path, npz)
    except BaseException:
        npz.close()
        raise
    try:
        yield reader
    finally:
        reader.close()


def load_artifact(path: Union[str, Path], verify: bool = True):
    """Read one artifact in a single pass; returns ``(meta, weights)``.

    The weights come back as in-memory arrays (safe to use after the
    file is closed); ``verify`` checks the content checksum against the
    same decoded arrays — there is no second read.
    """
    with open_artifact(path) as art:
        return art.meta, art.weights(verify=verify)


def build_from_artifact(
    meta: Dict,
    weights: List[np.ndarray],
    warmup: bool = True,
    warmup_batch: int = 1,
):
    """Materialize a served model from already-read artifact contents.

    Refuses unservable weight dtypes *before* building anything, rebuilds
    the architecture from :mod:`repro.candle.registry`, casts the built
    skeleton into the published dtype (so an fp32 artifact is not
    silently upcast), installs the weights, restores the int8 plan when
    quantization metadata is present, and optionally runs one throwaway
    forward so first-request latency excludes lazy buffer allocation.
    """
    from ..candle.registry import get_benchmark
    from ..nn.tensor import no_grad

    dtypes = check_serving_dtypes(meta.get("dtypes") or (str(w.dtype) for w in weights))
    spec = get_benchmark(meta["benchmark"])
    model = spec.materialize(input_shape=tuple(meta["input_shape"]), **meta["hparams"])
    if len(dtypes) == 1:
        # Serve in the published dtype: materialize builds float64
        # parameters, and set_weights casts *into* the existing buffers —
        # without this cast an fp32 artifact would be silently upcast and
        # served at the wrong precision.
        model.astype(np.dtype(next(iter(dtypes))))
    model.set_weights(weights)
    quant = meta.get("quantization")
    if quant is not None:
        # Rebuild the int8 plan from recorded scales: deterministic, so
        # the served datapath is bit-identical to the published one.
        from ..precision.int8 import plan_from_spec

        model._int8_plan = plan_from_spec(model, quant)
    if warmup:
        # One throwaway forward allocates every layer's scratch and
        # triggers BLAS thread-pool spin-up off the request path, in the
        # served dtype (a float64 warmup on an fp32 model would exercise
        # — and cache-prime — the wrong path).
        p0 = next(iter(model.parameters()), None)
        wdtype = p0.data.dtype if p0 is not None else np.float64
        x = np.zeros((warmup_batch,) + tuple(meta["input_shape"]), dtype=wdtype)
        with no_grad():
            model.predict(x, batch_size=warmup_batch)
    return model
