"""Content-addressed model registry: one artifact flow from campaign
publish to serving load.

The paper's CANDLE workflow publishes thousands of models per search
campaign and serves the winners; this package is the load-bearing link
between those two ends — a versioned, content-addressed artifact store
with pluggable storage backends and a warm model cache:

* :mod:`repro.registry.artifact` — the self-describing ``.npz`` artifact
  format, SHA-256 content addressing, crash-safe atomic writes, and the
  **single-read** loader (verify and install from one decode);
* :mod:`repro.registry.backends` — the :class:`RegistryBackend` ABC
  (local directory now, S3-style remotes by the same five-method
  contract) with atomic-write semantics;
* :mod:`repro.registry.cache` — :class:`WarmModelCache`, an LRU of built
  models keyed by content hash so aliases of the same bytes share one
  resident model;
* :mod:`repro.registry.store` — :class:`ArtifactStore`, tying it
  together: ``publish`` appends ``name@version`` manifests over deduped
  blobs (with lineage back to the producing campaign/trial), ``get``
  serves warm models bit-identically to ``Model.predict``.

The serving layer (:mod:`repro.serve.registry`) delegates here;
``benchmarks/bench_registry.py`` gates publish/load throughput and cache
hit rate under a churn of thousands of published models with concurrent
readers.
"""

from .artifact import (
    SUPPORTED_SERVING_DTYPES,
    ArtifactReader,
    CheckpointIntegrityError,
    UnsupportedDtypeError,
    build_artifact_meta,
    build_from_artifact,
    load_artifact,
    open_artifact,
    weights_checksum,
    write_artifact,
)
from .backends import InMemoryBackend, LocalDirBackend, RegistryBackend
from .cache import WarmModelCache
from .store import ArtifactRef, ArtifactStore

__all__ = [
    "ArtifactRef",
    "ArtifactReader",
    "ArtifactStore",
    "CheckpointIntegrityError",
    "InMemoryBackend",
    "LocalDirBackend",
    "RegistryBackend",
    "SUPPORTED_SERVING_DTYPES",
    "UnsupportedDtypeError",
    "WarmModelCache",
    "build_artifact_meta",
    "build_from_artifact",
    "load_artifact",
    "open_artifact",
    "weights_checksum",
    "write_artifact",
]
