"""The content-addressed, versioned model artifact store.

One store subsumes what used to be two half-registries: the serving
LRU (``repro.serve.ModelRegistry``) and the CANDLE benchmark publication
metadata (``repro.candle.registry``).  The campaign → publish → serve
pipeline flows through it as one artifact path:

* **Objects** are immutable blobs named by their weights SHA-256
  (``objects/<hash>.npz``) — publishing byte-identical weights twice
  stores one object, and a hash-named blob can never go stale.
* **Manifests** are tiny JSON aliases, ``name@version``: each publish of
  a name appends a monotonically numbered manifest carrying the content
  hash, benchmark/input-shape/hparams, dtype + quantization metadata,
  and lineage back to the producing campaign/trial (obs span ids).
  ``latest.json`` points at the newest version; repointing an alias is
  one atomic manifest write, so concurrent readers always resolve a
  complete version — old or new, never torn.
* **Loading** goes through the content-keyed
  :class:`~repro.registry.cache.WarmModelCache`: a warm hit costs zero
  file I/O (the manifest already carries the hash), and a cold load is a
  single read of the blob — header, checksum verification, and weight
  install from one decode (see :mod:`repro.registry.artifact`).

Storage is pluggable (:mod:`repro.registry.backends`): a local directory
today, an S3-style remote by implementing the same five-method contract.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from .artifact import (
    CheckpointIntegrityError,
    build_artifact_meta,
    build_from_artifact,
    check_serving_dtypes,
    load_artifact,
    write_artifact,
)
from .backends import LocalDirBackend, RegistryBackend
from .cache import WarmModelCache

OBJECTS = "objects"
MANIFESTS = "manifests"


@dataclass(frozen=True)
class ArtifactRef:
    """A resolved ``name@version`` → content-hash binding."""

    name: Optional[str]
    version: Optional[int]
    content_hash: str
    meta: Dict = field(default_factory=dict, compare=False)

    @property
    def benchmark(self) -> Optional[str]:
        return self.meta.get("benchmark")

    @property
    def input_shape(self) -> tuple:
        return tuple(self.meta.get("input_shape", ()))

    @property
    def hparams(self) -> Dict:
        return self.meta.get("hparams", {})

    @property
    def lineage(self) -> Dict:
        return self.meta.get("lineage", {})

    @property
    def spec(self) -> str:
        if self.name is None:
            return f"sha256:{self.content_hash}"
        return f"{self.name}@{self.version}"


def _version_key(name: str, version: int) -> str:
    return f"{MANIFESTS}/{name}/{version:06d}.json"


def _object_key(content_hash: str) -> str:
    return f"{OBJECTS}/{content_hash}.npz"


class ArtifactStore:
    """Versioned, content-addressed model registry with a warm cache.

    Parameters
    ----------
    root:
        Directory for the default :class:`LocalDirBackend`; ignored when
        ``backend`` is given.
    backend:
        Any :class:`RegistryBackend` (local dir, in-memory/S3-shaped…).
    capacity / warmup / warmup_batch:
        Warm-cache sizing and warm-up policy for loaded models; pass a
        shared :class:`WarmModelCache` via ``cache`` to pool residency
        across stores/registries.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        backend: Optional[RegistryBackend] = None,
        capacity: int = 4,
        warmup: bool = False,
        warmup_batch: int = 1,
        cache: Optional[WarmModelCache] = None,
    ) -> None:
        if backend is None:
            if root is None:
                raise ValueError("pass a root directory or an explicit backend")
            backend = LocalDirBackend(root)
        self.backend = backend
        self.warmup = warmup
        self.warmup_batch = warmup_batch
        # `cache or ...` would discard an *empty* shared cache (len 0 is
        # falsy) — the whole point of passing one is pooled residency.
        self.cache = cache if cache is not None else WarmModelCache(capacity)
        self.publishes = 0
        self.dedup_hits = 0  # publishes whose object already existed
        self.pruned_versions = 0  # manifests dropped by gc retention policy
        self.loads = 0
        self.hits = 0
        self.evictions = 0

    # -- publish ---------------------------------------------------------
    def publish(
        self,
        model,
        name: str,
        benchmark: str,
        input_shape: Optional[tuple] = None,
        hparams: Optional[Dict] = None,
        lineage: Optional[Dict] = None,
        metadata: Optional[Dict] = None,
        quantization: Optional[Dict] = None,
    ) -> ArtifactRef:
        """Store the model's weights and append a new ``name@version``.

        The blob lands before the manifest and the manifest before the
        ``latest`` pointer, each write atomic — a crash at any point
        leaves every already-visible reference loadable.  Returns the
        new version's :class:`ArtifactRef`.
        """
        if not name or "/" in name or "@" in name:
            raise ValueError(f"invalid artifact name {name!r} ('/' and '@' are reserved)")
        if input_shape is None:
            from ..candle.registry import get_benchmark

            input_shape = get_benchmark(benchmark).input_shape()
        meta = build_artifact_meta(
            model, benchmark, tuple(input_shape), hparams=hparams,
            metadata=metadata, quantization=quantization, lineage=lineage,
        )
        content_hash = meta["checksum"]
        obj_key = _object_key(content_hash)
        if self.backend.exists(obj_key):
            self.dedup_hits += 1
        else:
            import tempfile

            # Write the blob next to nothing the store serves (a local
            # temp file), then install it through the backend in one
            # atomic step — remote backends upload here.
            with tempfile.TemporaryDirectory(prefix="repro_publish_") as tmpdir:
                local = write_artifact(model, Path(tmpdir) / "artifact.npz", meta)
                self.backend.put_file(obj_key, local)
        version = self.latest_version(name) + 1
        manifest = dict(
            meta,
            name=name,
            version=version,
            content_hash=content_hash,
            published_at=time.time(),
        )
        self.backend.write_bytes(
            _version_key(name, version), json.dumps(manifest, sort_keys=True).encode()
        )
        self.backend.write_bytes(
            f"{MANIFESTS}/{name}/latest.json", json.dumps({"version": version}).encode()
        )
        self.publishes += 1
        return ArtifactRef(name=name, version=version, content_hash=content_hash, meta=manifest)

    # -- catalog ---------------------------------------------------------
    def names(self) -> List[str]:
        """Every published alias name."""
        seen = set()
        for key in self.backend.list_keys(f"{MANIFESTS}/"):
            parts = key.split("/")
            if len(parts) == 3:
                seen.add(parts[1])
        return sorted(seen)

    def versions(self, name: str) -> List[int]:
        """All published versions of ``name``, ascending."""
        out = []
        for key in self.backend.list_keys(f"{MANIFESTS}/{name}/"):
            stem = key.rsplit("/", 1)[-1]
            if stem.endswith(".json") and stem[:-5].isdigit():
                out.append(int(stem[:-5]))
        return sorted(out)

    def latest_version(self, name: str) -> int:
        """Newest version of ``name`` (0 if never published)."""
        try:
            pointer = json.loads(self.backend.read_bytes(f"{MANIFESTS}/{name}/latest.json"))
            return int(pointer["version"])
        except (FileNotFoundError, ValueError, KeyError):
            versions = self.versions(name)
            return versions[-1] if versions else 0

    def resolve(self, spec: Union[str, ArtifactRef]) -> ArtifactRef:
        """``"name"`` / ``"name@latest"`` / ``"name@<v>"`` / ``"sha256:<hex>"``
        → :class:`ArtifactRef`; raises ``KeyError`` for unknown specs."""
        if isinstance(spec, ArtifactRef):
            return spec
        if spec.startswith("sha256:"):
            content_hash = spec.split(":", 1)[1]
            if not self.backend.exists(_object_key(content_hash)):
                raise KeyError(f"no stored object {spec!r}")
            return ArtifactRef(name=None, version=None, content_hash=content_hash)
        name, _, version_s = spec.partition("@")
        if not version_s or version_s == "latest":
            version = self.latest_version(name)
            if version == 0:
                raise KeyError(f"unknown artifact {name!r}; published: {self.names()}")
        else:
            version = int(version_s)
        try:
            manifest = json.loads(self.backend.read_bytes(_version_key(name, version)))
        except FileNotFoundError:
            raise KeyError(
                f"unknown artifact {name}@{version}; versions: {self.versions(name)}"
            ) from None
        return ArtifactRef(
            name=name, version=version,
            content_hash=manifest["content_hash"], meta=manifest,
        )

    # -- load ------------------------------------------------------------
    def path_for(self, spec: Union[str, ArtifactRef]) -> Path:
        """Local filesystem path of the resolved artifact blob (for
        consumers that stream the file themselves, e.g. shared-memory
        weight publication in :class:`repro.serve.ReplicaGroup`)."""
        ref = self.resolve(spec)
        return self.backend.open_local(_object_key(ref.content_hash))

    def get(self, spec: Union[str, ArtifactRef]):
        """The built model for ``spec``, warm-cached by content hash.

        A warm hit is free of file I/O — the manifest already names the
        content.  A cold load reads the blob exactly once: verify and
        install from the same decoded arrays.
        """
        ref = self.resolve(spec)
        model = self.cache.get(ref.content_hash)
        if model is not None:
            self.hits += 1
            return model
        if ref.meta.get("dtypes"):
            check_serving_dtypes(ref.meta["dtypes"])  # refuse before any blob I/O
        path = self.backend.open_local(_object_key(ref.content_hash))
        meta, weights = load_artifact(path, verify=True)
        if meta.get("checksum") and meta["checksum"] != ref.content_hash:
            raise CheckpointIntegrityError(
                f"{path}: stored object does not match its address "
                f"(manifest says {ref.content_hash[:16]}…, object says "
                f"{meta['checksum'][:16]}…)"
            )
        model = build_from_artifact(
            meta, weights, warmup=self.warmup, warmup_batch=self.warmup_batch
        )
        self.loads += 1
        self.evictions += self.cache.put(ref.content_hash, model)
        return model

    def verify(self, spec: Union[str, ArtifactRef]) -> bool:
        """Full integrity check of one artifact (decode + checksum);
        raises :class:`CheckpointIntegrityError` on any corruption."""
        ref = self.resolve(spec)
        path = self.backend.open_local(_object_key(ref.content_hash))
        meta, _ = load_artifact(path, verify=True)
        if meta.get("checksum") and meta["checksum"] != ref.content_hash:
            raise CheckpointIntegrityError(
                f"{path}: stored object does not match its address"
            )
        return True

    # -- maintenance -----------------------------------------------------
    def gc(
        self,
        keep_last_n: Optional[int] = None,
        max_age_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> int:
        """Prune old versions by retention policy, then sweep objects.

        With no arguments this is the pure unreferenced-object sweep.
        Retention, per alias name: a version survives if it is the
        ``latest`` (never deleted), among the newest ``keep_last_n``, or
        younger than ``max_age_s`` (by the manifest's ``published_at``;
        a manifest predating that field is treated as unknown-age and
        kept by the age rule).  When both knobs are given a version must
        fail *both* to be pruned.  Pruned versions lose their manifests;
        their blobs go in the same sweep unless a surviving version
        shares the content (hash dedup keeps them alive).  Returns the
        number of objects removed; pruned-version count lands in
        :attr:`pruned_versions`.
        """
        if keep_last_n is not None and keep_last_n < 1:
            raise ValueError(f"keep_last_n must be >= 1, got {keep_last_n}")
        if max_age_s is not None and max_age_s < 0:
            raise ValueError(f"max_age_s must be >= 0, got {max_age_s}")
        if keep_last_n is not None or max_age_s is not None:
            cutoff = (time.time() if now is None else float(now)) - (max_age_s or 0.0)
            for name in self.names():
                versions = self.versions(name)
                kept_by_n = set(versions[-keep_last_n:]) if keep_last_n else set()
                for v in versions[:-1]:  # versions[-1] is latest: never pruned
                    if keep_last_n is not None and v in kept_by_n:
                        continue
                    if max_age_s is not None:
                        manifest = json.loads(self.backend.read_bytes(_version_key(name, v)))
                        published = manifest.get("published_at")
                        if published is None or published >= cutoff:
                            continue
                    self.backend.delete(_version_key(name, v))
                    self.pruned_versions += 1
        referenced = set()
        for key in self.backend.list_keys(f"{MANIFESTS}/"):
            if not key.endswith(".json") or key.endswith("latest.json"):
                continue
            manifest = json.loads(self.backend.read_bytes(key))
            referenced.add(manifest["content_hash"])
        removed = 0
        for key in self.backend.list_keys(f"{OBJECTS}/"):
            content_hash = key.rsplit("/", 1)[-1].removesuffix(".npz")
            if content_hash not in referenced:
                self.backend.delete(key)
                removed += 1
        return removed

    def stats(self) -> Dict[str, int]:
        return {
            "names": len(self.names()),
            "objects": len(self.backend.list_keys(f"{OBJECTS}/")),
            "publishes": self.publishes,
            "dedup_hits": self.dedup_hits,
            "pruned_versions": self.pruned_versions,
            "loads": self.loads,
            "hits": self.hits,
            "evictions": self.evictions,
            "resident": len(self.cache),
        }
