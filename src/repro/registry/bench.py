"""Registry benchmark library behind ``benchmarks/bench_registry.py`` and
the ``repro registry-bench`` CLI.

Four measurements over the content-addressed artifact store:

* **churn** — the headline scenario the paper's campaign scale implies:
  a publisher loops new versions of a model (thousands of artifacts in
  full mode) while concurrent reader *processes* resolve ``name@latest``
  and load what they find, checksum-verified.  Zero torn reads is a
  gate — atomic blob + manifest ordering is what's being certified.
* **load** — the single-read loader against the old double-read path
  (verify pass, then a second open to install); the speedup is gated.
* **cache** — warm hit rate over an alias-heavy access pattern; two
  names over byte-identical weights must share one resident model.
* **scan** — a registry re-``scan()`` over an unchanged directory must
  keep ``loads`` flat (the same-path eviction bug this PR fixes).

Correctness gates ride along: a store round-trip must serve
*bit-identical* outputs to ``Model.predict`` on the source model, and a
corrupted blob must be refused before any weights are installed.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from ..candle.registry import get_benchmark
from .artifact import CheckpointIntegrityError, load_artifact, open_artifact
from .store import ArtifactStore

BENCHMARK = "p1b2"
#: Tiny hidden layer for the churn phase: churn measures store mechanics
#: (publish/resolve/verify under concurrency), not GEMM throughput, and a
#: ~3k-parameter artifact keeps thousands of publishes cheap.
CHURN_HPARAMS = {"hidden": (16,)}
CHURN_NAME = "churn-model"


def _tiny_model(seed: int = 0):
    spec = get_benchmark(BENCHMARK)
    shape = spec.input_shape(seed=seed)
    return spec.materialize(input_shape=shape, seed=seed, **CHURN_HPARAMS), shape


def _churn_reader(root, name, ready, stop, out_q, capacity: int = 2) -> None:
    """Reader process body: hammer ``name@latest`` until told to stop.

    Every successful ``get`` is a checksum-verified load of whatever
    version the manifest pointed at — any torn blob, torn manifest, or
    half-published version surfaces as an error, and errors are the
    thing the churn gate counts.
    """
    store = ArtifactStore(root, capacity=capacity, warmup=False)
    ready.set()  # imports done, store attached: the race can start
    reads = errors = 0
    last_error = ""
    while not stop.is_set():
        try:
            ref = store.resolve(f"{name}@latest")
            store.get(ref)
            reads += 1
        except KeyError:
            continue  # publisher hasn't landed version 1 yet
        except Exception as exc:  # torn read, checksum mismatch, …
            errors += 1
            last_error = f"{type(exc).__name__}: {exc}"
    out_q.put({"reads": reads, "errors": errors, "last_error": last_error})


def _bench_churn(root: Path, n_artifacts: int, n_readers: int, seed: int) -> Dict:
    model, _ = _tiny_model(seed)
    param = next(iter(model.parameters()))
    store = ArtifactStore(root, capacity=2, warmup=False)

    ctx = mp.get_context("spawn")
    stop = ctx.Event()
    out_q = ctx.Queue()
    ready = [ctx.Event() for _ in range(n_readers)]
    readers = [
        ctx.Process(target=_churn_reader, args=(str(root), CHURN_NAME, ready[i], stop, out_q))
        for i in range(n_readers)
    ]
    for proc in readers:
        proc.start()
    # Publishing only starts once every reader is in its loop — spawn
    # start-up (a fresh interpreter importing the package) is slower than
    # the whole smoke churn, and an uncontested churn certifies nothing.
    for ev in ready:
        if not ev.wait(timeout=120):
            raise RuntimeError("churn reader failed to start")

    t0 = time.perf_counter()
    for i in range(n_artifacts):
        # Perturb one weight so every version is a distinct content hash
        # (identical bytes would dedup into a single object — a different
        # phase measures that).
        param.data.flat[0] = float(i)
        store.publish(model, CHURN_NAME, BENCHMARK, hparams=CHURN_HPARAMS)
    publish_elapsed = time.perf_counter() - t0

    stop.set()
    reports = [out_q.get(timeout=60) for _ in readers]
    for proc in readers:
        proc.join(timeout=60)
        if proc.is_alive():  # pragma: no cover - defensive
            proc.terminate()
    read_elapsed = time.perf_counter() - t0

    reader_reads = sum(r["reads"] for r in reports)
    reader_errors = sum(r["errors"] for r in reports)
    return {
        "n_artifacts": n_artifacts,
        "n_readers": n_readers,
        "publish_elapsed_s": publish_elapsed,
        "publishes_per_s": n_artifacts / publish_elapsed,
        "reader_reads": reader_reads,
        "reader_errors": reader_errors,
        "reads_per_s": reader_reads / read_elapsed,
        "last_error": next((r["last_error"] for r in reports if r["last_error"]), ""),
        "versions": store.latest_version(CHURN_NAME),
    }


def _bench_load(workdir: Path, reps: int, seed: int) -> Dict:
    """Single-read loader vs the old verify-then-reload double read."""
    spec = get_benchmark(BENCHMARK)
    shape = spec.input_shape(seed=seed)
    model = spec.materialize(input_shape=shape, seed=seed)
    from ..serve.registry import publish_model

    path = publish_model(model, workdir / "load-probe.npz", BENCHMARK, shape)

    t0 = time.perf_counter()
    for _ in range(reps):
        # The pre-fix serving loader: read_checkpoint_meta(verify=True)
        # decoded every array for the checksum, then load_weights opened
        # and decoded the file all over again to install.
        with open_artifact(path) as art:
            art.weights(verify=True)
        with open_artifact(path) as art:
            art.weights(verify=False)
    double_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(reps):
        load_artifact(path, verify=True)  # verify and install from one decode
    single_s = time.perf_counter() - t0

    return {
        "reps": reps,
        "double_read_ms": double_s / reps * 1e3,
        "single_read_ms": single_s / reps * 1e3,
        "speedup": double_s / single_s,
    }


def _bench_cache(root: Path, rounds: int, seed: int) -> Dict:
    """Warm hit rate with aliases: 8 names over 4 distinct contents."""
    model, _ = _tiny_model(seed)
    param = next(iter(model.parameters()))
    store = ArtifactStore(root, capacity=4, warmup=False)
    names = []
    for i in range(4):
        param.data.flat[0] = 1000.0 + i
        for alias in ("a", "b"):  # two aliases of the same bytes
            name = f"cache-{alias}{i}"
            store.publish(model, name, BENCHMARK, hparams=CHURN_HPARAMS)
            names.append(name)
    accesses = 0
    for _ in range(rounds):
        for name in names:
            store.get(name)
            accesses += 1
    stats = store.stats()
    return {
        "names": len(names),
        "distinct_contents": 4,
        "accesses": accesses,
        "hits": stats["hits"],
        "loads": stats["loads"],
        "evictions": stats["evictions"],
        "dedup_hits": stats["dedup_hits"],
        "hit_rate": stats["hits"] / accesses,
        # 8 names but 4 contents: alias sharing holds iff only 4 loads.
        "alias_shared": stats["loads"] == 4,
        "dedup_ok": stats["dedup_hits"] == 4 and stats["objects"] == 4,
        "objects": stats["objects"],
    }


def _bench_scan(workdir: Path, scans: int, seed: int) -> Dict:
    """Re-scanning an unchanged directory must not evict warm models."""
    from ..serve.registry import ModelRegistry, publish_model

    spec = get_benchmark(BENCHMARK)
    shape = spec.input_shape(seed=seed)
    scan_dir = workdir / "scan"
    scan_dir.mkdir()
    rng = np.random.default_rng(seed)
    for i in range(3):
        model = spec.materialize(input_shape=shape, seed=seed, **CHURN_HPARAMS)
        next(iter(model.parameters())).data.flat[0] = rng.standard_normal()
        publish_model(model, scan_dir / f"m{i}.npz", BENCHMARK, shape,
                      hparams=CHURN_HPARAMS)
    registry = ModelRegistry(capacity=3, warmup=False)
    registry.scan(scan_dir)
    for name in registry.names:
        registry.get(name)
    loads_before = registry.loads
    for _ in range(scans):
        registry.scan(scan_dir)
        for name in registry.names:
            registry.get(name)
    return {
        "models": 3,
        "scans": scans,
        "loads_before": loads_before,
        "loads_after": registry.loads,
        "loads_flat": registry.loads == loads_before,
    }


def _check_parity(root: Path, seed: int) -> bool:
    """Store round-trip must serve bit-identical outputs to the source."""
    from ..serve import BatchPolicy, InferenceServer

    spec = get_benchmark(BENCHMARK)
    shape = spec.input_shape(seed=seed)
    model = spec.materialize(input_shape=shape, seed=seed)
    store = ArtifactStore(root / "parity", capacity=1, warmup=False)
    ref = store.publish(model, "parity", BENCHMARK, input_shape=shape)
    x = np.random.default_rng(seed).standard_normal((64,) + tuple(shape))
    reference = model.predict(x, batch_size=64)
    loaded = store.get(ref)
    if not np.array_equal(loaded.predict(x, batch_size=64), reference):
        return False
    server = InferenceServer.from_store(
        store, "parity@latest", BatchPolicy(max_batch_size=64, max_wait_s=0.0)
    )
    handles = [server.submit(x[i]) for i in range(len(x))]
    server.drain()
    served = np.stack([h.result for h in handles], axis=0)
    return bool(np.array_equal(served, reference))


def _check_integrity(root: Path, seed: int) -> bool:
    """A flipped byte in a stored blob must be refused, not installed."""
    model, shape = _tiny_model(seed)
    store = ArtifactStore(root / "integrity", capacity=1, warmup=False)
    ref = store.publish(model, "victim", BENCHMARK, input_shape=shape,
                        hparams=CHURN_HPARAMS)
    blob = store.path_for(ref)
    raw = bytearray(blob.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    blob.write_bytes(bytes(raw))
    try:
        store.get(ref)
    except CheckpointIntegrityError:
        return True
    return False


def run_registry_bench(
    smoke: bool = False,
    seed: int = 0,
    n_artifacts: Optional[int] = None,
    n_readers: Optional[int] = None,
) -> Dict:
    """Run the full registry benchmark; returns the JSON-ready results.

    ``smoke`` shrinks the churn to CI size and relaxes the timing gates
    (shared-runner clocks are noisy); the correctness gates — parity,
    integrity, zero torn reads, flat scan loads, alias sharing — stay
    exact in both modes.
    """
    n_art = n_artifacts or (60 if smoke else 1000)
    n_read = n_readers or (2 if smoke else 4)
    load_reps = 5 if smoke else 20
    cache_rounds = 4 if smoke else 16
    scans = 3 if smoke else 10
    hit_rate_min = 0.8
    speedup_min = 1.1 if smoke else 1.4

    with tempfile.TemporaryDirectory(prefix="repro_registry_bench_") as tmp:
        workdir = Path(tmp)
        churn = _bench_churn(workdir / "churn", n_art, n_read, seed)
        load = _bench_load(workdir, load_reps, seed)
        cache = _bench_cache(workdir / "cache", cache_rounds, seed)
        scan = _bench_scan(workdir, scans, seed)
        parity_ok = _check_parity(workdir, seed)
        integrity_ok = _check_integrity(workdir, seed)

    return {
        "benchmark": BENCHMARK,
        "smoke": smoke,
        "churn": churn,
        "load": load,
        "cache": cache,
        "scan": scan,
        "acceptance": {
            "parity_ok": parity_ok,
            "integrity_ok": integrity_ok,
            "churn_zero_torn": bool(
                churn["reader_errors"] == 0 and churn["reader_reads"] > 0
            ),
            "hit_rate": cache["hit_rate"],
            "hit_rate_min": hit_rate_min,
            "hit_rate_ok": bool(cache["hit_rate"] >= hit_rate_min),
            "alias_shared": bool(cache["alias_shared"]),
            "dedup_ok": bool(cache["dedup_ok"]),
            "single_read_speedup": load["speedup"],
            "single_read_speedup_min": speedup_min,
            "single_read_speedup_ok": bool(load["speedup"] >= speedup_min),
            "scan_loads_flat": bool(scan["loads_flat"]),
        },
    }


def check_gates(results: Dict, smoke: bool = False):
    """Failed-gate messages for one run (empty list = all gates pass)."""
    acc = results["acceptance"]
    failures = []
    if not acc["parity_ok"]:
        failures.append("store round-trip outputs differ from Model.predict")
    if not acc["integrity_ok"]:
        failures.append("corrupt artifact was not refused")
    if not acc["churn_zero_torn"]:
        failures.append(
            f"churn saw {results['churn']['reader_errors']} torn/failed reads "
            f"({results['churn']['last_error'] or 'no reads completed'})"
        )
    if not acc["hit_rate_ok"]:
        failures.append(
            f"warm hit rate {acc['hit_rate']:.2f} below gate {acc['hit_rate_min']}"
        )
    if not acc["alias_shared"]:
        failures.append("aliases of identical bytes did not share a resident model")
    if not acc["dedup_ok"]:
        failures.append("byte-identical publishes did not dedup into one object")
    if not acc["scan_loads_flat"]:
        failures.append(
            f"re-scan evicted warm models (loads {results['scan']['loads_before']} "
            f"-> {results['scan']['loads_after']})"
        )
    if smoke:
        # Smoke timing is noise on shared machines; only refuse a single
        # read that is *slower* than the double read.
        if acc["single_read_speedup"] <= 1.0:
            failures.append(
                f"single-read load slower than double read: "
                f"{acc['single_read_speedup']:.2f}x"
            )
    elif not acc["single_read_speedup_ok"]:
        failures.append(
            f"single-read speedup {acc['single_read_speedup']:.2f}x below gate "
            f"{acc['single_read_speedup_min']}x"
        )
    return failures


def format_results(results: Dict) -> str:
    """Human-readable report of one :func:`run_registry_bench` run."""
    churn, load = results["churn"], results["load"]
    cache, scan, acc = results["cache"], results["scan"], results["acceptance"]
    return "\n".join([
        f"registry bench — {results['benchmark']}, "
        f"{churn['n_artifacts']} artifacts churned, {churn['n_readers']} readers",
        "",
        f"churn:  {churn['publishes_per_s']:>8.1f} publish/s, "
        f"{churn['reads_per_s']:>8.1f} verified reads/s, "
        f"{churn['reader_reads']} reads, {churn['reader_errors']} torn "
        f"({'ok' if acc['churn_zero_torn'] else 'FAIL'})",
        f"load:   double read {load['double_read_ms']:.2f} ms -> "
        f"single read {load['single_read_ms']:.2f} ms "
        f"({acc['single_read_speedup']:.2f}x, gate >= {acc['single_read_speedup_min']}x)",
        f"cache:  hit rate {acc['hit_rate']:.2f} over {cache['accesses']} gets "
        f"(gate >= {acc['hit_rate_min']}), {cache['loads']} loads for "
        f"{cache['names']} names / {cache['distinct_contents']} contents "
        f"(alias sharing {'ok' if acc['alias_shared'] else 'FAIL'}, "
        f"dedup {'ok' if acc['dedup_ok'] else 'FAIL'})",
        f"scan:   loads {scan['loads_before']} -> {scan['loads_after']} across "
        f"{scan['scans']} re-scans ({'flat' if acc['scan_loads_flat'] else 'FAIL'})",
        f"parity: {'bit-identical' if acc['parity_ok'] else 'FAIL'}  "
        f"integrity: {'refused corrupt blob' if acc['integrity_ok'] else 'FAIL'}",
    ])


def write_results(results: Dict, out) -> Path:
    out = Path(out)
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return out
