"""Content-keyed warm cache of built models.

The expensive part of serving a checkpoint is not the catalog lookup —
it is decoding the weight arrays, materializing the architecture, and
running the warm-up forward.  This cache keeps those built models
resident under an LRU policy, keyed by the artifact's **content hash**:
two aliases (``winner@3`` and ``canary@1``, or two registry names
pointing at byte-identical checkpoints) share one resident model and pay
one load between them.

Eviction never invalidates handed-out models: callers holding a model
reference keep a perfectly usable object (the registry's artifacts are
the source of truth — eviction loses nothing but the warm state), the
cache merely drops *its* reference so the next ``get`` reloads.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional


class WarmModelCache:
    """LRU of built models keyed by content hash.

    ``capacity`` bounds how many built models stay resident.  The cache
    is shareable: several :class:`~repro.serve.ModelRegistry` /
    :class:`~repro.registry.ArtifactStore` instances may pool one cache
    so aliases of the same bytes stay deduplicated process-wide.
    """

    def __init__(self, capacity: int = 2) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._models: "OrderedDict[str, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __contains__(self, key: str) -> bool:
        return key in self._models

    def __len__(self) -> int:
        return len(self._models)

    def keys(self) -> List[str]:
        """Resident content keys, least- to most-recently used."""
        return list(self._models)

    def get(self, key: str):
        """The resident model for ``key`` (marking it used), else None."""
        model = self._models.get(key)
        if model is None:
            self.misses += 1
            return None
        self.hits += 1
        self._models.move_to_end(key)
        return model

    def put(self, key: str, model) -> int:
        """Insert a freshly built model; returns how many were evicted."""
        self._models[key] = model
        self._models.move_to_end(key)
        evicted = 0
        while len(self._models) > self.capacity:
            self._models.popitem(last=False)
            evicted += 1
        self.evictions += evicted
        return evicted

    def get_or_load(self, key: str, loader: Callable[[], object]):
        """Resident model for ``key``, or ``loader()`` inserted under it."""
        model = self.get(key)
        if model is None:
            model = loader()
            self.put(key, model)
        return model

    def pop(self, key: str) -> None:
        """Drop one entry (alias repoint invalidation); no-op if absent."""
        self._models.pop(key, None)

    def clear(self) -> None:
        self._models.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "capacity": self.capacity,
            "resident": len(self._models),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
