"""Pluggable storage backends for the artifact store.

The :class:`ArtifactStore` never touches the filesystem directly — every
blob and manifest goes through a :class:`RegistryBackend`, a small
key/value contract (string keys with ``/`` separators, byte values,
atomic writes) chosen so an S3/MinIO-style remote drops in without
changing the store: ``exists/read_bytes/write_bytes/delete/list_keys``
map 1:1 onto HEAD/GET/PUT/DELETE/LIST, and :meth:`~RegistryBackend.open_local`
is the one extra affordance NumPy needs — a real local path to ``np.load``
— which a remote backend satisfies by materializing the object into a
local blob cache (exactly what :class:`InMemoryBackend` demonstrates).

Two implementations ship today:

* :class:`LocalDirBackend` — a directory tree; every write is temp-file
  + ``os.replace`` so concurrent readers never observe a torn object;
* :class:`InMemoryBackend` — a dict, standing in for the remote shape
  (``open_local`` spools through a local cache directory); used by the
  tests and as the template for a real S3 backend.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Dict, List, Union


class RegistryBackend(ABC):
    """Key/value contract the artifact store runs on.

    Keys are relative POSIX-style paths (``objects/<hash>.npz``,
    ``manifests/<name>/000003.json``).  Implementations must make
    :meth:`write_bytes` and :meth:`put_file` atomic — a reader that
    races a writer sees the old value or the new value, never a torn
    one — because the store's crash-safety argument rests on it.
    """

    @abstractmethod
    def exists(self, key: str) -> bool:
        """Whether ``key`` holds a complete object."""

    @abstractmethod
    def read_bytes(self, key: str) -> bytes:
        """The object's bytes; raises ``FileNotFoundError`` if absent."""

    @abstractmethod
    def write_bytes(self, key: str, data: bytes) -> None:
        """Atomically (over)write ``key`` with ``data``."""

    @abstractmethod
    def put_file(self, key: str, src: Union[str, Path]) -> None:
        """Atomically install a finished local file as ``key`` (consumes
        ``src``).  The bulk-upload path — blobs are written locally first
        (atomic temp file), then installed/uploaded in one step."""

    @abstractmethod
    def delete(self, key: str) -> None:
        """Remove ``key``; no-op if absent."""

    @abstractmethod
    def list_keys(self, prefix: str = "") -> List[str]:
        """All keys under ``prefix``, sorted."""

    @abstractmethod
    def open_local(self, key: str) -> Path:
        """A local filesystem path holding the object's current bytes.

        Local backends return the object's own path; remote backends
        download into a blob cache and return the cached copy (content
        addressing makes the cache trivially coherent — a hash-named
        blob never changes).
        """


class LocalDirBackend(RegistryBackend):
    """Registry storage on a local directory tree.

    Every write lands as a temp file in the destination directory and is
    ``os.replace``d into place — atomic on POSIX — so a publisher crash
    mid-write leaves at most a stray temp file, never a torn object.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        path = (self.root / key).resolve()
        if self.root.resolve() not in path.parents and path != self.root.resolve():
            raise ValueError(f"key {key!r} escapes the registry root")
        return path

    def exists(self, key: str) -> bool:
        return self._path(key).is_file()

    def read_bytes(self, key: str) -> bytes:
        return self._path(key).read_bytes()

    def write_bytes(self, key: str, data: bytes) -> None:
        dest = self._path(key)
        dest.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=dest.parent, prefix=".tmp_reg_")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, dest)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def put_file(self, key: str, src: Union[str, Path]) -> None:
        dest = self._path(key)
        dest.parent.mkdir(parents=True, exist_ok=True)
        src = Path(src)
        try:
            os.replace(src, dest)  # atomic when src is on the same filesystem
        except OSError:
            fd, tmp = tempfile.mkstemp(dir=dest.parent, prefix=".tmp_reg_")
            os.close(fd)
            try:
                shutil.copyfile(src, tmp)
                os.replace(tmp, dest)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
            src.unlink(missing_ok=True)

    def delete(self, key: str) -> None:
        self._path(key).unlink(missing_ok=True)

    def list_keys(self, prefix: str = "") -> List[str]:
        base = self.root
        keys = []
        for path in base.rglob("*"):
            if not path.is_file() or path.name.startswith(".tmp_reg_"):
                continue
            key = path.relative_to(base).as_posix()
            if key.startswith(prefix):
                keys.append(key)
        return sorted(keys)

    def open_local(self, key: str) -> Path:
        path = self._path(key)
        if not path.is_file():
            raise FileNotFoundError(path)
        return path


class InMemoryBackend(RegistryBackend):
    """Dict-backed backend shaped like a remote object store.

    Objects live in memory (the stand-in for S3); :meth:`open_local`
    spools the requested object into a local blob-cache directory the
    way a remote backend would download it, so ``np.load`` gets a real
    path.  Used by the failure-path tests and as the template for an
    S3/MinIO backend: replace the dict with GET/PUT/LIST calls and keep
    the blob cache verbatim.
    """

    def __init__(self) -> None:
        self._objects: Dict[str, bytes] = {}
        self._cache_dir = Path(tempfile.mkdtemp(prefix="repro_registry_cache_"))
        self.downloads = 0  # blob-cache misses (what a remote would fetch)

    def exists(self, key: str) -> bool:
        return key in self._objects

    def read_bytes(self, key: str) -> bytes:
        try:
            return self._objects[key]
        except KeyError:
            raise FileNotFoundError(key) from None

    def write_bytes(self, key: str, data: bytes) -> None:
        self._objects[key] = bytes(data)  # dict assignment: atomic by construction
        cached = self._cache_dir / key.replace("/", "_")
        if cached.exists():
            cached.unlink()  # manifest repoint: invalidate the spooled copy

    def put_file(self, key: str, src: Union[str, Path]) -> None:
        src = Path(src)
        self.write_bytes(key, src.read_bytes())
        src.unlink(missing_ok=True)

    def delete(self, key: str) -> None:
        self._objects.pop(key, None)

    def list_keys(self, prefix: str = "") -> List[str]:
        return sorted(k for k in self._objects if k.startswith(prefix))

    def open_local(self, key: str) -> Path:
        if key not in self._objects:
            raise FileNotFoundError(key)
        cached = self._cache_dir / key.replace("/", "_")
        if not cached.exists():
            self.downloads += 1
            fd, tmp = tempfile.mkstemp(dir=self._cache_dir, prefix=".tmp_reg_")
            with os.fdopen(fd, "wb") as fh:
                fh.write(self._objects[key])
            os.replace(tmp, cached)
        return cached
