"""Reproducible random-number plumbing.

Every stochastic component in the library takes an ``np.random.Generator``.
``spawn_rng`` derives independent child streams from a parent so that, e.g.,
HPO trial k always sees the same stream regardless of execution order —
essential for comparing sync vs async search schedules (experiment E6).
"""

from __future__ import annotations

from typing import List

import numpy as np


def seed_everything(seed: int) -> np.random.Generator:
    """Root generator for a run."""
    return np.random.default_rng(seed)


def spawn_rng(parent: np.random.Generator, n: int = 1) -> List[np.random.Generator]:
    """Derive ``n`` statistically independent child generators."""
    if n < 1:
        raise ValueError("n must be >= 1")
    seeds = parent.integers(0, 2**63, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
