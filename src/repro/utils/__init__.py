"""Shared utilities: reproducible RNG trees, simple tables, timers."""

from .rng import spawn_rng, seed_everything
from .tables import format_table

__all__ = ["spawn_rng", "seed_everything", "format_table"]
