"""Minimal fixed-width table formatting for benchmark output."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence], floatfmt: str = ".4g") -> str:
    """Render rows as an aligned text table (benchmarks print these so the
    harness output looks like the paper's tables)."""
    def fmt(v) -> str:
        if isinstance(v, float):
            return format(v, floatfmt)
        return str(v)

    str_rows: List[List[str]] = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
